//! The cluster scheduler is a deterministic function of `(topology,
//! trace, seed)`: re-running the same trace must reproduce every event
//! record and counter exactly, and the `ap_par` worker-pool width must
//! not leak into any placement decision.
//!
//! The second property needs subprocesses: `ap_par` latches
//! `AP_PAR_THREADS` once per process, so the parent re-invokes this test
//! binary with different settings and compares the digests the children
//! print (the same idiom as `journal_determinism`).

use std::sync::Arc;

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterTopology, FaultPlanConfig};
use ap_models::{synthetic_skewed, ModelProfile};
use ap_resilience::FakeClock;
use ap_sched::trace::{self, EventRecord, TraceConfig};
use ap_sched::{ClusterScheduler, SchedConfig, SchedCounters};
use autopipe::HillClimbPlanner;

/// A trace busy enough to exercise every event kind: arrivals that place
/// and queue, departures that drain, worker failures that evacuate, and
/// NIC flaps that re-plan a whole server.
fn run_once() -> (Vec<EventRecord>, SchedCounters) {
    let topo = ClusterTopology::single_switch(6, 4, GpuKind::P100, 25.0);
    let palette = vec![(
        "synthetic",
        ModelProfile::with_batch(&synthetic_skewed(8, 2e9, 20e6, 8e6), 32),
    )];
    let cfg = TraceConfig {
        n_jobs: 60,
        arrival_rate_hz: 1.0,
        mean_duration_s: 12.0,
        min_gpus: 1,
        max_gpus: 4,
        adaptive_fraction: 0.7,
        faults: Some(FaultPlanConfig::default()),
    };
    let events = trace::generate(&topo, &palette, &cfg, 42);
    let mut sched = ClusterScheduler::new(
        topo,
        SchedConfig::default(),
        Box::new(HillClimbPlanner::default()),
        Arc::new(FakeClock::new()),
    );
    let records = trace::run(&mut sched, &events);
    (records, sched.counters())
}

/// FNV-1a over the full debug rendering: every field of every record
/// (including float formatting) participates. Latencies are 0 under the
/// fake clock, so wall time cannot perturb the digest.
fn digest(records: &[EventRecord], counters: &SchedCounters) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{records:?}{counters:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn schedule_is_identical_across_reruns() {
    let (ra, ca) = run_once();
    let (rb, cb) = run_once();
    assert!(!ra.is_empty(), "trace must deliver events");
    assert!(ca.placed > 0, "trace must place work");
    assert!(
        ra.iter().any(|r| r.kind == "worker-fail"),
        "trace must include failures"
    );
    assert_eq!(digest(&ra, &ca), digest(&rb, &cb));
    for (a, b) in ra.iter().zip(&rb) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.resident, b.resident);
        assert_eq!(a.moved, b.moved);
    }
}

/// Child mode: print the digest and nothing else of consequence. Inert
/// unless the parent re-invokes the binary with `AP_DETERMINISM_CHILD=1`.
#[test]
fn sched_digest_child() {
    if std::env::var("AP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let (records, counters) = run_once();
    println!(
        "SCHED_DIGEST={:016x}/{}",
        digest(&records, &counters),
        records.len()
    );
}

#[test]
fn schedule_is_independent_of_worker_pool_width() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["sched_digest_child", "--exact", "--nocapture"])
            .env("AP_DETERMINISM_CHILD", "1")
            .env("AP_PAR_THREADS", threads)
            .output()
            .expect("spawn child test");
        assert!(
            out.status.success(),
            "child (AP_PAR_THREADS={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let start = stdout
            .find("SCHED_DIGEST=")
            .unwrap_or_else(|| panic!("no digest in child output:\n{stdout}"));
        stdout[start..]
            .split_whitespace()
            .next()
            .expect("digest token")
            .to_string()
    };
    let serial = digest_at("1");
    let parallel = digest_at("4");
    assert_eq!(
        serial, parallel,
        "cluster placement must not depend on AP_PAR_THREADS"
    );
}

#[test]
fn different_seeds_produce_different_schedules() {
    // Guard against a degenerate digest / a scheduler that ignores its
    // input: two different traces must not collide.
    let topo = ClusterTopology::single_switch(6, 4, GpuKind::P100, 25.0);
    let palette = vec![(
        "synthetic",
        ModelProfile::with_batch(&synthetic_skewed(8, 2e9, 20e6, 8e6), 32),
    )];
    let cfg = TraceConfig {
        n_jobs: 20,
        ..TraceConfig::default()
    };
    let run_seed = |seed| {
        let events = trace::generate(&topo, &palette, &cfg, seed);
        let mut sched = ClusterScheduler::new(
            topo.clone(),
            SchedConfig::default(),
            Box::new(HillClimbPlanner::default()),
            Arc::new(FakeClock::new()),
        );
        let records = trace::run(&mut sched, &events);
        digest(&records, &sched.counters())
    };
    assert_ne!(run_seed(1), run_seed(2));
}
