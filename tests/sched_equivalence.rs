//! The equivalence property behind neighborhood re-planning: on small
//! instances (≤8 jobs), after **any** event the neighborhood-replanned
//! placement's cluster objective must be within
//! [`ap_sched::EQUIVALENCE_EPSILON`] of whole-world best-response run to
//! a fixed point from the same state. If whole-world planning could beat
//! the neighborhood by more than the declared tolerance, the bounded
//! ripple would be a correctness bug, not an optimization.

use std::sync::Arc;

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterTopology, FaultPlanConfig};
use ap_models::{alexnet, synthetic_skewed, ModelProfile};
use ap_resilience::FakeClock;
use ap_sched::trace::{self, TimedEvent, TraceConfig, TraceEventKind};
use ap_sched::{
    AdmitOutcome, ClusterScheduler, JobId, SchedConfig, SchedEvent, EQUIVALENCE_EPSILON,
};
use autopipe::HillClimbPlanner;

fn palette() -> Vec<(&'static str, ModelProfile)> {
    vec![
        ("alexnet", ModelProfile::of(&alexnet())),
        (
            "synthetic",
            ModelProfile::with_batch(&synthetic_skewed(8, 2e9, 20e6, 8e6), 32),
        ),
    ]
}

fn scheduler() -> ClusterScheduler {
    ClusterScheduler::new(
        ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0),
        SchedConfig::default(),
        Box::new(HillClimbPlanner::default()),
        Arc::new(FakeClock::new()),
    )
}

/// Deliver one trace event; returns whether anything was delivered
/// (departures of rejected arrivals are dropped).
fn deliver(sched: &mut ClusterScheduler, te: &TimedEvent, ids: &mut Vec<Option<JobId>>) -> bool {
    match &te.event {
        TraceEventKind::Arrive(req) => {
            let out = sched.on_event(te.time, &SchedEvent::Arrive(req.clone()));
            ids.push(match out.admit {
                Some(AdmitOutcome::Placed(id)) | Some(AdmitOutcome::Queued(id, _)) => Some(id),
                _ => None,
            });
            true
        }
        TraceEventKind::DepartOrdinal(ordinal) => match ids.get(*ordinal).copied().flatten() {
            Some(id) => {
                sched.on_event(te.time, &SchedEvent::Depart(id));
                true
            }
            None => false,
        },
        TraceEventKind::WorkerFail(g) => {
            sched.on_event(te.time, &SchedEvent::WorkerFail(*g));
            true
        }
        TraceEventKind::WorkerRecover(g) => {
            sched.on_event(te.time, &SchedEvent::WorkerRecover(*g));
            true
        }
        TraceEventKind::LinkFlapDown(s, g) => {
            sched.on_event(te.time, &SchedEvent::LinkFlapDown(*s, *g));
            true
        }
        TraceEventKind::LinkFlapRestore(s) => {
            sched.on_event(te.time, &SchedEvent::LinkFlapRestore(*s));
            true
        }
    }
}

/// After every delivered event, whole-world best-response from the same
/// state must not beat the live placement by more than the epsilon.
fn assert_equivalence_along(events: &[TimedEvent]) -> usize {
    let mut sched = scheduler();
    let mut ids = Vec::new();
    let mut checked = 0;
    for te in events {
        if !deliver(&mut sched, te, &mut ids) {
            continue;
        }
        if sched.n_resident() == 0 {
            continue;
        }
        let live = sched.objective().value();
        let mut fork = sched.fork(Box::new(HillClimbPlanner::default()));
        fork.full_replan(4);
        let full = fork.objective().value();
        let delta = if live > 0.0 { full / live - 1.0 } else { 0.0 };
        assert!(
            delta <= EQUIVALENCE_EPSILON + 1e-9,
            "whole-world best-response beats the neighborhood by {:.2}% (> {:.0}%) \
             at t={:.2} with {} residents",
            delta * 100.0,
            EQUIVALENCE_EPSILON * 100.0,
            te.time,
            sched.n_resident()
        );
        checked += 1;
    }
    checked
}

#[test]
fn neighborhood_matches_whole_world_across_seeds() {
    let topo = ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0);
    let cfg = TraceConfig {
        n_jobs: 8,
        arrival_rate_hz: 0.5,
        mean_duration_s: 30.0,
        min_gpus: 1,
        max_gpus: 3,
        adaptive_fraction: 1.0,
        faults: None,
    };
    for seed in [3, 11, 29] {
        let events = trace::generate(&topo, &palette(), &cfg, seed);
        let checked = assert_equivalence_along(&events);
        assert!(checked > 0, "seed {seed} must exercise a non-empty cluster");
    }
}

#[test]
fn neighborhood_matches_whole_world_under_faults() {
    let topo = ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0);
    let cfg = TraceConfig {
        n_jobs: 6,
        arrival_rate_hz: 0.5,
        mean_duration_s: 40.0,
        min_gpus: 1,
        max_gpus: 2,
        adaptive_fraction: 1.0,
        faults: Some(FaultPlanConfig {
            mtbf: 15.0,
            mttr: 10.0,
            ..FaultPlanConfig::default()
        }),
    };
    let events = trace::generate(&topo, &palette(), &cfg, 7);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, TraceEventKind::WorkerFail(_))),
        "the fault plan must schedule at least one outage"
    );
    let checked = assert_equivalence_along(&events);
    assert!(checked > 0);
}

#[test]
fn non_adaptive_jobs_hold_their_plans_through_equivalence() {
    // A mixed tenancy: static jobs must come out of both planners with
    // the partition they arrived with.
    let topo = ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0);
    let cfg = TraceConfig {
        n_jobs: 6,
        arrival_rate_hz: 0.5,
        mean_duration_s: 50.0,
        min_gpus: 2,
        max_gpus: 3,
        adaptive_fraction: 0.5,
        faults: None,
    };
    let events = trace::generate(&topo, &palette(), &cfg, 5);
    let mut sched = scheduler();
    let mut ids = Vec::new();
    for te in &events {
        deliver(&mut sched, te, &mut ids);
        let statics: Vec<_> = sched
            .jobs()
            .filter(|j| !j.adaptive)
            .map(|j| (j.id, j.partition.clone()))
            .collect();
        let mut fork = sched.fork(Box::new(HillClimbPlanner::default()));
        fork.full_replan(2);
        for (id, partition) in statics {
            assert_eq!(
                fork.job(id).expect("static job stays resident").partition,
                partition,
                "whole-world best-response must not move a non-adaptive job"
            );
        }
    }
}
