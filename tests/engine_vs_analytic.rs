//! Cross-crate validation: the fast analytic model and the discrete-event
//! engine must agree on steady-state throughput where the analytic model's
//! assumptions hold exactly (uniform stages, ample in-flight depth).

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, GpuId, ResourceTimeline};
use ap_models::{resnet50, synthetic_uniform, vgg16, ModelProfile};
use ap_pipesim::{AnalyticModel, Engine, EngineConfig, Partition, Stage};

fn agreement(profile: &ModelProfile, partition: &Partition, link_gbps: f64) -> (f64, f64) {
    let topo = ClusterTopology::paper_testbed(link_gbps);
    let state = ClusterState::new(topo);
    let model = AnalyticModel {
        profile,
        scheme: ap_pipesim::SyncScheme::RingAllReduce,
        framework: ap_pipesim::Framework::pytorch(),
        schedule: ap_pipesim::ScheduleKind::PipeDreamAsync,
        calibration: None,
    };
    let analytic = model.throughput(partition, &state);
    let engine = Engine::new(
        profile,
        partition.clone(),
        state,
        ResourceTimeline::empty(),
        EngineConfig::default(),
    )
    .expect("valid partition")
    .run(3 * partition.in_flight.max(20))
    .expect("engine run")
    .steady_throughput(partition.in_flight);
    (analytic, engine)
}

#[test]
fn uniform_pipeline_agreement_within_ten_percent() {
    let model = synthetic_uniform(8, 4e9, 2e6, 4e6);
    let profile = ModelProfile::with_batch(&model, 32);
    let partition = Partition {
        stages: (0..4)
            .map(|s| Stage::new(s * 2..(s + 1) * 2, vec![GpuId(s)]))
            .collect(),
        in_flight: 8,
    };
    let (a, e) = agreement(&profile, &partition, 100.0);
    let rel = (a - e).abs() / e;
    assert!(rel < 0.10, "analytic {a:.1} vs engine {e:.1} ({rel:.2})");
}

#[test]
fn real_model_agreement_within_twenty_percent() {
    for m in [vgg16(), resnet50()] {
        let profile = ModelProfile::of(&m);
        let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
        let partition = ap_planner::pipedream_plan(
            &profile,
            &gpus,
            ap_planner::PipeDreamView {
                bandwidth: ap_cluster::gbps(25.0),
                gpu_flops: GpuKind::P100.peak_flops(),
            },
        );
        let (a, e) = agreement(&profile, &partition, 25.0);
        let rel = (a - e).abs() / e;
        assert!(
            rel < 0.20,
            "{}: analytic {a:.1} vs engine {e:.1} ({rel:.2})",
            m.name
        );
    }
}

#[test]
fn both_models_agree_on_partition_ranking() {
    // The planner's whole premise: if the analytic model prefers A to B by
    // a clear margin, the engine must not prefer B.
    let profile = ModelProfile::of(&resnet50());
    let good = Partition {
        stages: vec![
            Stage::new(0..45, (0..9).map(GpuId).collect()),
            Stage::new(45..52, vec![GpuId(9)]),
        ],
        in_flight: 18,
    };
    let bad = Partition {
        stages: vec![
            Stage::new(0..4, (0..9).map(GpuId).collect()),
            Stage::new(4..52, vec![GpuId(9)]),
        ],
        in_flight: 18,
    };
    let (a_good, e_good) = agreement(&profile, &good, 25.0);
    let (a_bad, e_bad) = agreement(&profile, &bad, 25.0);
    assert!(
        a_good > 1.5 * a_bad,
        "analytic must separate: {a_good} vs {a_bad}"
    );
    assert!(
        e_good > 1.5 * e_bad,
        "engine must separate: {e_good} vs {e_bad}"
    );
}
