//! Cross-crate randomized-but-deterministic tests: partition-move
//! validity, switch-plan symmetry, planner sanity and engine conservation
//! laws over seeded random inputs.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, GpuId, ResourceTimeline};
use ap_models::{synthetic_skewed, synthetic_uniform, ModelProfile};
use ap_pipesim::{Engine, EngineConfig, Partition, ScheduleKind, Stage, SwitchPlan};
use ap_planner::{all_moves, pipedream_plan, two_worker_moves, PipeDreamView};
use ap_rng::Rng;

/// Random valid partition of `n_layers` over up to `n_gpus` workers.
fn random_partition(rng: &mut Rng, n_layers: usize, n_gpus: usize) -> Partition {
    let stages = rng.gen_range(1..=3usize).min(n_layers).min(n_gpus);
    let mut cuts: Vec<usize> = (1..stages)
        .map(|_| 1 + rng.gen_range(0..n_layers - 1))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut bounds = Vec::new();
    let mut lo = 0;
    for &c in &cuts {
        bounds.push(lo..c);
        lo = c;
    }
    bounds.push(lo..n_layers);
    // Assign workers round-robin, at least one per stage.
    let k = bounds.len();
    let mut counts = vec![1usize; k];
    for _ in k..n_gpus {
        let i = rng.gen_range(0..k);
        counts[i] += 1;
    }
    let mut gi = 0;
    let stages: Vec<Stage> = bounds
        .into_iter()
        .zip(counts)
        .map(|(r, c)| {
            let ws: Vec<GpuId> = (gi..gi + c).map(GpuId).collect();
            gi += c;
            Stage::new(r, ws)
        })
        .collect();
    let mut p = Partition {
        stages,
        in_flight: 1,
    };
    p.in_flight = p.default_in_flight();
    p
}

/// Every incremental move yields a valid partition that preserves the
/// worker set.
#[test]
fn moves_preserve_validity_and_workers() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x30BE + case);
        let p = random_partition(&mut rng, 12, 6);
        let model = synthetic_skewed(12, 1e9, 4e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let mut base_workers = p.all_workers();
        base_workers.sort();
        for (kind, q) in all_moves(&p, &profile) {
            assert!(q.validate(12).is_ok(), "case {case}: {kind:?}");
            let mut w = q.all_workers();
            w.sort();
            assert_eq!(
                &w, &base_workers,
                "case {case}: {kind:?} changed the worker set"
            );
        }
    }
}

/// Switch plans are symmetric in volume: A->B moves the same layers as
/// B->A.
#[test]
fn switch_plans_are_symmetric() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5FAB + case);
        let a = random_partition(&mut rng, 10, 5);
        let b = random_partition(&mut rng, 10, 5);
        let model = synthetic_uniform(10, 1e9, 2e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let ab = SwitchPlan::between(&a, &b, &profile, ScheduleKind::PipeDream2Bw);
        let ba = SwitchPlan::between(&b, &a, &profile, ScheduleKind::PipeDream2Bw);
        assert_eq!(&ab.moved_layers, &ba.moved_layers, "case {case}");
        assert_eq!(&ab.affected_workers, &ba.affected_workers, "case {case}");
        assert!(
            (ab.transfer_bytes - ba.transfer_bytes).abs() < 1.0,
            "case {case}"
        );
        // Self-diff is a no-op.
        let aa = SwitchPlan::between(&a, &a, &profile, ScheduleKind::PipeDream2Bw);
        assert!(aa.is_noop(), "case {case}");
    }
}

/// The engine completes exactly the requested iterations (or slightly
/// more on simultaneous completion), in non-decreasing time order, and
/// busy time never exceeds the makespan.
#[test]
fn engine_conservation() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xE46E + case);
        let p = random_partition(&mut rng, 8, 4);
        let iters = rng.gen_range(5..25usize);
        let model = synthetic_uniform(8, 1e9, 2e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
        let r = Engine::new(
            &profile,
            p,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig::default(),
        )
        .expect("valid partition")
        .run(iters)
        .expect("engine run");
        assert!(r.iterations.len() >= iters, "case {case}");
        for w in r.iterations.windows(2) {
            assert!(w[1].finish >= w[0].finish - 1e-9, "case {case}");
        }
        // Iteration ids are unique; replicas complete out of order, so the
        // final wave may contain an id ahead of a still-in-flight one, but
        // every id stays within the injected range.
        let mut ids: Vec<u64> = r.iterations.iter().map(|i| i.iteration).collect();
        ids.sort_unstable();
        let unique_before = ids.len();
        ids.dedup();
        assert_eq!(
            ids.len(),
            unique_before,
            "case {case}: duplicate iteration ids"
        );
        let max_injected = (r.iterations.len() + 64) as u64;
        assert!(ids.iter().all(|&id| id < max_injected), "case {case}");
        for &b in &r.busy {
            assert!(b <= r.makespan + 1e-6, "case {case}");
        }
    }
}

/// PipeDream's planner output is always valid and uses at most the
/// offered workers, at any bandwidth.
#[test]
fn planner_output_valid() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x91A4 + case);
        let gbps_v = rng.gen_range(1.0..120.0);
        let n = rng.gen_range(2..10usize);
        let model = synthetic_skewed(9, 2e9, 8e6, 6e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let gpus: Vec<GpuId> = (0..n).map(GpuId).collect();
        let plan = pipedream_plan(
            &profile,
            &gpus,
            PipeDreamView {
                bandwidth: ap_cluster::gbps(gbps_v),
                gpu_flops: 9.3e12,
            },
        );
        assert!(plan.validate(9).is_ok(), "case {case}");
        assert!(plan.n_workers() <= n, "case {case}");
        assert!(plan.in_flight >= 1, "case {case}");
        // Two-worker moves of the plan stay valid.
        for (_, q) in two_worker_moves(&plan, 9) {
            assert!(q.validate(9).is_ok(), "case {case}");
        }
    }
}
