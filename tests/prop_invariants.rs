//! Cross-crate property tests: partition-move validity, switch-plan
//! symmetry, planner sanity and engine conservation laws over randomized
//! inputs.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, GpuId, ResourceTimeline};
use ap_models::{synthetic_skewed, synthetic_uniform, ModelProfile};
use ap_pipesim::{
    Engine, EngineConfig, Partition, ScheduleKind, Stage, SwitchPlan,
};
use ap_planner::{all_moves, pipedream_plan, two_worker_moves, PipeDreamView};
use proptest::prelude::*;

/// Arbitrary valid partition of `n_layers` over up to `n_gpus` workers.
fn arb_partition(n_layers: usize, n_gpus: usize) -> impl Strategy<Value = Partition> {
    (1..=3usize, any::<u64>()).prop_map(move |(stages, seed)| {
        let stages = stages.min(n_layers).min(n_gpus);
        // Deterministic pseudo-random cuts/workers from the seed.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let mut cuts: Vec<usize> = (1..stages).map(|_| 1 + next() % (n_layers - 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = Vec::new();
        let mut lo = 0;
        for &c in &cuts {
            bounds.push(lo..c);
            lo = c;
        }
        bounds.push(lo..n_layers);
        // Assign workers round-robin, at least one per stage.
        let k = bounds.len();
        let mut counts = vec![1usize; k];
        for _ in k..n_gpus {
            let i = next() % k;
            counts[i] += 1;
        }
        let mut gi = 0;
        let stages: Vec<Stage> = bounds
            .into_iter()
            .zip(counts)
            .map(|(r, c)| {
                let ws: Vec<GpuId> = (gi..gi + c).map(GpuId).collect();
                gi += c;
                Stage::new(r, ws)
            })
            .collect();
        let mut p = Partition {
            stages,
            in_flight: 1,
        };
        p.in_flight = p.default_in_flight();
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every incremental move yields a valid partition that preserves the
    /// worker set.
    #[test]
    fn moves_preserve_validity_and_workers(p in arb_partition(12, 6)) {
        let model = synthetic_skewed(12, 1e9, 4e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let mut base_workers = p.all_workers();
        base_workers.sort();
        for (kind, q) in all_moves(&p, &profile) {
            prop_assert!(q.validate(12).is_ok(), "{kind:?}");
            let mut w = q.all_workers();
            w.sort();
            prop_assert_eq!(&w, &base_workers, "{:?} changed the worker set", kind);
        }
    }

    /// Switch plans are symmetric in volume: A->B moves the same layers as
    /// B->A.
    #[test]
    fn switch_plans_are_symmetric(a in arb_partition(10, 5), b in arb_partition(10, 5)) {
        let model = synthetic_uniform(10, 1e9, 2e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let ab = SwitchPlan::between(&a, &b, &profile, ScheduleKind::PipeDream2Bw);
        let ba = SwitchPlan::between(&b, &a, &profile, ScheduleKind::PipeDream2Bw);
        prop_assert_eq!(&ab.moved_layers, &ba.moved_layers);
        prop_assert_eq!(&ab.affected_workers, &ba.affected_workers);
        prop_assert!((ab.transfer_bytes - ba.transfer_bytes).abs() < 1.0);
        // Self-diff is a no-op.
        let aa = SwitchPlan::between(&a, &a, &profile, ScheduleKind::PipeDream2Bw);
        prop_assert!(aa.is_noop());
    }

    /// The engine completes exactly the requested iterations (or slightly
    /// more on simultaneous completion), in non-decreasing time order, and
    /// busy time never exceeds the makespan.
    #[test]
    fn engine_conservation(p in arb_partition(8, 4), iters in 5usize..25) {
        let model = synthetic_uniform(8, 1e9, 2e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
        let r = Engine::new(
            &profile,
            p,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig::default(),
        )
        .run(iters);
        prop_assert!(r.iterations.len() >= iters);
        for w in r.iterations.windows(2) {
            prop_assert!(w[1].finish >= w[0].finish - 1e-9);
        }
        // Iteration ids are unique; replicas complete out of order, so the
        // final wave may contain an id ahead of a still-in-flight one, but
        // every id stays within the injected range.
        let mut ids: Vec<u64> = r.iterations.iter().map(|i| i.iteration).collect();
        ids.sort_unstable();
        let unique_before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), unique_before, "duplicate iteration ids");
        let max_injected = (r.iterations.len() + 64) as u64;
        prop_assert!(ids.iter().all(|&id| id < max_injected));
        for &b in &r.busy {
            prop_assert!(b <= r.makespan + 1e-6);
        }
    }

    /// PipeDream's planner output is always valid and uses at most the
    /// offered workers, at any bandwidth.
    #[test]
    fn planner_output_valid(gbps_v in 1.0..120.0f64, n in 2usize..10) {
        let model = synthetic_skewed(9, 2e9, 8e6, 6e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let gpus: Vec<GpuId> = (0..n).map(GpuId).collect();
        let plan = pipedream_plan(&profile, &gpus, PipeDreamView {
            bandwidth: ap_cluster::gbps(gbps_v),
            gpu_flops: 9.3e12,
        });
        prop_assert!(plan.validate(9).is_ok());
        prop_assert!(plan.n_workers() <= n);
        prop_assert!(plan.in_flight >= 1);
        // Two-worker moves of the plan stay valid.
        for (_, q) in two_worker_moves(&plan, 9) {
            prop_assert!(q.validate(9).is_ok());
        }
    }
}
