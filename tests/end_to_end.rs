//! End-to-end integration: the full AutoPipe stack (profiler → detector →
//! meta-net/analytic scorer → RL arbiter → live fine-grained switching)
//! against a static PipeDream baseline, spanning every crate.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{gbps, ClusterTopology, DetectorConfig, EventKind, GpuId, ResourceTimeline};
use ap_models::{resnet50, synthetic_skewed, ModelProfile};
use ap_planner::{pipedream_plan, PipeDreamView};
use autopipe::arbiter::{default_episode_sampler, Arbiter, ArbiterMode};
use autopipe::controller::{run_dynamic_scenario, AutoPipeConfig, AutoPipeController, Scorer};

fn config() -> AutoPipeConfig {
    AutoPipeConfig {
        check_every: 6,
        detector: DetectorConfig {
            threshold: 0.12,
            persistence: 1,
        },
        ..AutoPipeConfig::default()
    }
}

fn initial(profile: &ModelProfile, gbps_v: f64, n: usize) -> ap_pipesim::Partition {
    pipedream_plan(
        profile,
        &(0..n).map(GpuId).collect::<Vec<_>>(),
        PipeDreamView {
            bandwidth: gbps(gbps_v),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    )
}

#[test]
fn autopipe_with_rl_arbiter_never_loses_under_bandwidth_collapse() {
    let profile = ModelProfile::of(&resnet50());
    let topo = ClusterTopology::paper_testbed(40.0);
    let init = initial(&profile, 40.0, 10);
    let mut tl = ResourceTimeline::empty();
    tl.push(2.0, EventKind::SetAllLinksGbps(8.0));
    let cfg = config();

    let baseline = run_dynamic_scenario(&profile, &topo, &tl, init.clone(), None, &cfg, 100)
        .expect("static baseline");

    let mut arbiter = Arbiter::new(7);
    arbiter.train_offline(default_episode_sampler, 4000, 42);
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Rl(arbiter),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let adaptive = run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 100)
        .expect("adaptive scenario");
    assert!(
        adaptive.mean_throughput >= baseline.mean_throughput * 0.97,
        "AutoPipe {:.1} vs PipeDream {:.1}",
        adaptive.mean_throughput,
        baseline.mean_throughput
    );
}

#[test]
fn live_switching_preserves_iteration_accounting() {
    // A controller that switches must still deliver exactly the requested
    // number of iteration completions with monotone timestamps.
    let model = synthetic_skewed(12, 2e9, 40e6, 10e6);
    let profile = ModelProfile::with_batch(&model, 32);
    let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
    let init = initial(&profile, 25.0, 4);
    let mut tl = ResourceTimeline::empty();
    tl.push(3.0, EventKind::SetAllLinksGbps(2.0));
    let cfg = config();
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let r = run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 70)
        .expect("controlled scenario");
    assert_eq!(r.speed_series.len(), 70);
    assert!(r.speed_series.iter().all(|&(_, s)| s > 0.0));
    assert!(r.total_seconds > 0.0);
}

#[test]
fn autopipe_evacuates_a_degraded_gpu() {
    // A GPU degrades 50x mid-run (failure injection). The static plan is
    // throttled by the straggler; AutoPipe's eviction moves shed it.
    let model = synthetic_skewed(12, 4e9, 4e6, 8e6);
    let profile = ModelProfile::with_batch(&model, 32);
    let topo = ClusterTopology::single_switch(6, 1, GpuKind::P100, 25.0);
    let init = initial(&profile, 25.0, 6);
    let mut tl = ResourceTimeline::empty();
    tl.push(1.0, EventKind::SetGpuSharing(GpuId(0), 50));
    let cfg = config();

    let baseline = run_dynamic_scenario(&profile, &topo, &tl, init.clone(), None, &cfg, 90)
        .expect("static baseline");
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let adaptive = run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 90)
        .expect("adaptive scenario");
    assert!(
        adaptive.mean_throughput > baseline.mean_throughput * 1.1,
        "evacuation should clearly win: {:.1} vs {:.1} (final plan {})",
        adaptive.mean_throughput,
        baseline.mean_throughput,
        ctrl.partition.summary()
    );
    // The degraded GPU is gone from the final plan.
    assert!(
        !ctrl.partition.all_workers().contains(&GpuId(0)),
        "GPU 0 should have been evacuated: {}",
        ctrl.partition.summary()
    );
}

#[test]
fn autopipe_survives_stochastic_multi_tenant_churn() {
    // A long run under diurnal background churn: the controller must never
    // crash, must complete the requested iterations, and must not end up
    // slower than the static plan.
    use ap_cluster::{BackgroundJobGenerator, DiurnalGenerator};
    let profile = ModelProfile::of(&resnet50());
    let topo = ClusterTopology::paper_testbed(25.0);
    let gen = DiurnalGenerator {
        base: BackgroundJobGenerator {
            arrival_rate: 0.4,
            mean_duration: 4.0,
            max_gpus: 6,
            net_bytes_per_sec: gbps(4.0),
        },
        period: 12.0,
        peak_factor: 4.0,
    };
    let tl = gen.generate(&topo, 60.0, 77);
    assert!(!tl.events().is_empty());
    let init = initial(&profile, 25.0, 10);
    // Churn this fast calls for the conservative end of §4.1's
    // sensitivity/fluctuation balance: confirm changes over several
    // observations and amortize switching over a short horizon.
    let mut cfg = config();
    cfg.detector = DetectorConfig {
        threshold: 0.25,
        persistence: 4,
    };
    cfg.horizon_iterations = 25.0;
    cfg.moves_per_decision = 2;

    let baseline = run_dynamic_scenario(&profile, &topo, &tl, init.clone(), None, &cfg, 120)
        .expect("static baseline");
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.1),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let adaptive = run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 120)
        .expect("adaptive scenario");
    assert_eq!(adaptive.speed_series.len(), 120);
    assert!(
        adaptive.mean_throughput >= baseline.mean_throughput * 0.9,
        "churn: AutoPipe {:.1} vs static {:.1}",
        adaptive.mean_throughput,
        baseline.mean_throughput
    );
}

#[test]
fn meta_net_scorer_controller_runs_end_to_end() {
    use autopipe::controller::pretrain_meta_net;
    use autopipe::meta_net::MetaNetConfig;

    let model = synthetic_skewed(10, 2e9, 10e6, 8e6);
    let profile = ModelProfile::with_batch(&model, 32);
    let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
    let cfg = config();
    let net = pretrain_meta_net(&profile, &topo, &cfg, MetaNetConfig::default(), 150, 25, 3);
    let init = initial(&profile, 25.0, 4);
    let mut tl = ResourceTimeline::empty();
    tl.push(2.0, EventKind::ScaleAllLinks(0.25));
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::MetaNet(Box::new(net)),
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let r = run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 50)
        .expect("meta-net scenario");
    assert!(r.mean_throughput > 0.0);
    assert_eq!(r.speed_series.len(), 50);
}
