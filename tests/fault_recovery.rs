//! Fault-recovery properties (DESIGN.md §7): seeded fault schedules must
//! never lose a mini-batch, work must flow only through survivors, a
//! mid-migration kill must roll back or complete (never wedge), and the
//! whole fault pipeline — plan generation through the decision journal —
//! must be byte-identical across reruns and `AP_PAR_THREADS` settings.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{
    gbps, ClusterTopology, DetectorConfig, EventKind, FaultEvent, FaultPlan, FaultPlanConfig,
    GpuId, ResourceTimeline,
};
use ap_models::{synthetic_skewed, ModelProfile};
use ap_pipesim::{FaultRecord, ScheduleKind, SimResult, SwitchPlan};
use ap_planner::{pipedream_plan, uniform_plan, PipeDreamView};
use autopipe::arbiter::ArbiterMode;
use autopipe::controller::{
    run_dynamic_scenario, run_dynamic_scenario_traced, AutoPipeConfig, AutoPipeController, Scorer,
};
use autopipe::{DecisionEvent, ScenarioResult};

const N_ITERATIONS: usize = 40;

fn profile() -> ModelProfile {
    ModelProfile::with_batch(&synthetic_skewed(12, 2e9, 40e6, 10e6), 32)
}

fn topology() -> ClusterTopology {
    ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0)
}

fn initial_plan(profile: &ModelProfile, topo: &ClusterTopology) -> ap_pipesim::Partition {
    pipedream_plan(
        profile,
        &(0..topo.n_gpus()).map(GpuId).collect::<Vec<_>>(),
        PipeDreamView {
            bandwidth: gbps(25.0),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    )
}

fn base_cfg() -> AutoPipeConfig {
    AutoPipeConfig {
        check_every: 5,
        detector: DetectorConfig {
            threshold: 0.15,
            persistence: 2,
        },
        ..AutoPipeConfig::default()
    }
}

/// The fault-free makespan, used to scale the fault schedule so the same
/// seed yields the same *relative* schedule at any iteration count.
fn clean_horizon(profile: &ModelProfile, topo: &ClusterTopology) -> f64 {
    let init = initial_plan(profile, topo);
    let cfg = base_cfg();
    run_dynamic_scenario(
        profile,
        topo,
        &ResourceTimeline::empty(),
        init,
        None,
        &cfg,
        N_ITERATIONS,
    )
    .expect("fault-free scenario")
    .total_seconds
}

/// A seeded fault schedule of transient worker outages and NIC flaps,
/// scaled to the fault-free makespan.
fn fault_plan(topo: &ClusterTopology, horizon: f64, seed: u64) -> FaultPlan {
    let iter_time = horizon / N_ITERATIONS as f64;
    let cfg = FaultPlanConfig {
        mtbf: horizon / 3.0,
        mttr: horizon / 2.0,
        max_concurrent_failures: 1,
        flap_mtbf: horizon / 1.5,
        flap_down_gbps: 2.0,
        flap_period: (horizon / 25.0).max(4.0 * iter_time),
        flap_count: 2,
    };
    let mut plan = FaultPlan::generate(topo, &cfg, horizon, seed);
    // Faults push the run past the horizon, so a recovery clipped off the
    // plan's end (`until: None`, a permanent loss) would land mid-run;
    // keep the sweep to transient outages so every seed is comparable.
    plan.faults
        .retain(|f| !matches!(f, FaultEvent::WorkerOutage { until: None, .. }));
    plan
}

/// Run the controlled scenario under the seed's fault schedule.
fn run_faulted(seed: u64) -> (ScenarioResult, SimResult, FaultPlan) {
    let profile = profile();
    let topo = topology();
    let init = initial_plan(&profile, &topo);
    let horizon = clean_horizon(&profile, &topo);
    let plan = fault_plan(&topo, horizon, seed);
    let mut cfg = base_cfg();
    cfg.retry_base_delay_seconds = (4.0 * horizon / N_ITERATIONS as f64).max(1e-3);
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let (scenario, sim) = run_dynamic_scenario_traced(
        &profile,
        &topo,
        &plan.to_timeline(),
        init,
        Some(&mut ctrl),
        &cfg,
        N_ITERATIONS,
    )
    .unwrap_or_else(|e| panic!("seed {seed} wedged: {e:?}"));
    (scenario, sim, plan)
}

/// Exactly `N_ITERATIONS` distinct mini-batches completed. The engine
/// stops at the Nth *completion*, so a unit a fault delayed (aborted
/// compute requeued, or stranded and restarted) can still be in flight at
/// the horizon while a later-injected unit took its completion slot —
/// that unit's id is then missing and a `>= N` id appears instead. Work
/// is re-done or late, never dropped: displaced ids are only legal when
/// the run actually saw faults.
fn assert_units_accounted(sim: &SimResult, faulted: bool, ctx: &str) {
    let mut ids: Vec<u64> = sim.iterations.iter().map(|r| r.iteration).collect();
    ids.sort_unstable();
    assert_eq!(ids.len(), N_ITERATIONS, "{ctx}: completion count");
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "{ctx}: a mini-batch completed twice: {ids:?}"
    );
    let displaced = ids.iter().filter(|&&i| i >= N_ITERATIONS as u64).count();
    if !faulted {
        assert_eq!(
            displaced, 0,
            "{ctx}: a fault-free run must complete exactly 0..N: {ids:?}"
        );
    }
}

/// FNV-1a over a string rendering.
fn digest(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every requested mini-batch completes exactly once — faults may re-run
/// stranded work (`UnitsRestarted`) but never silently drop or duplicate
/// a completion.
#[test]
fn no_minibatch_is_silently_lost_under_faults() {
    let mut outages_seen = 0usize;
    for seed in [1u64, 2, 3, 5, 8] {
        let (scenario, sim, plan) = run_faulted(seed);
        outages_seen += plan
            .faults
            .iter()
            .filter(|f| matches!(f, FaultEvent::WorkerOutage { .. }))
            .count();
        let faulted = !plan.faults.is_empty();
        assert_units_accounted(&sim, faulted, &format!("seed {seed}"));
        // The journal mirrors engine-observed faults, so a schedule with
        // outages must leave WorkerFailed records behind.
        let failures = scenario
            .journal
            .records
            .iter()
            .filter(|r| matches!(r.event, DecisionEvent::WorkerFailed { .. }))
            .count();
        let planned = plan
            .faults
            .iter()
            .filter(|f| matches!(f, FaultEvent::WorkerOutage { .. }))
            .count();
        assert_eq!(
            failures, planned,
            "seed {seed}: journal must record every planned outage"
        );
    }
    assert!(
        outages_seen > 0,
        "the sweep must actually exercise worker outages"
    );
}

/// With a replicated stage and no controller, a worker death sheds the
/// victim and the survivors absorb its work: the run still completes
/// every mini-batch and the dead worker accrues no busy time after the
/// failure (cold recovery — it rejoins only via a repartition).
#[test]
fn work_is_conserved_on_survivors() {
    let profile = profile();
    let topo = topology();
    let all: Vec<GpuId> = (0..topo.n_gpus()).map(GpuId).collect();
    // Two stages, four replicas each: any single death is survivable
    // without repartitioning.
    let init = uniform_plan(&profile, 2, &all);
    let cfg = base_cfg();
    let horizon = run_dynamic_scenario(
        &profile,
        &topo,
        &ResourceTimeline::empty(),
        init.clone(),
        None,
        &cfg,
        N_ITERATIONS,
    )
    .expect("fault-free scenario")
    .total_seconds;

    // The fault-free run must complete exactly 0..N, in order.
    let (_, clean_sim) = run_dynamic_scenario_traced(
        &profile,
        &topo,
        &ResourceTimeline::empty(),
        init.clone(),
        None,
        &cfg,
        N_ITERATIONS,
    )
    .expect("fault-free scenario");
    assert_units_accounted(&clean_sim, false, "fault-free");

    let victim = GpuId(1);
    let fail_at = 0.3 * horizon;
    let mut tl = ResourceTimeline::empty();
    tl.push(fail_at, EventKind::WorkerFail(victim));

    let (_, sim) =
        run_dynamic_scenario_traced(&profile, &topo, &tl, init.clone(), None, &cfg, N_ITERATIONS)
            .expect("replicated stage must survive one death");

    assert_units_accounted(&sim, true, "one death, replicated stages");

    let victim_idx = init
        .all_workers()
        .iter()
        .position(|g| *g == victim)
        .expect("victim is in the plan");
    let posthumous: Vec<_> = sim
        .segments
        .iter()
        .filter(|s| s.worker == victim_idx && s.start > fail_at + 1e-9)
        .collect();
    assert!(
        posthumous.is_empty(),
        "dead worker must accrue no busy time after failing: {posthumous:?}"
    );
    let survivor_busy: f64 = sim
        .segments
        .iter()
        .filter(|s| s.worker != victim_idx && s.start > fail_at)
        .map(|s| s.end - s.start)
        .sum();
    assert!(
        survivor_busy > 0.0,
        "survivors must keep working after the failure"
    );
}

/// The rollback order is the exact inverse of the completed migration
/// prefix: every copied stash version reverts exactly once (restoring the
/// pre-switch assignment), layers unwind most-recently-started first, and
/// within a layer the later active mini-batch's copy reverts first —
/// the dual of the §4.4 forward order.
#[test]
fn rollback_restores_pre_switch_stash_assignment() {
    let profile = profile();
    let all: Vec<GpuId> = (0..8).map(GpuId).collect();
    let pairs = [
        (
            uniform_plan(&profile, 2, &all),
            uniform_plan(&profile, 4, &all),
        ),
        (
            uniform_plan(&profile, 3, &all),
            uniform_plan(&profile, 1, &all),
        ),
        (
            uniform_plan(&profile, 4, &all),
            initial_plan(&profile, &topology()),
        ),
    ];
    for (old, new) in &pairs {
        let plan = SwitchPlan::between(old, new, &profile, ScheduleKind::PipeDreamAsync);
        let forward = plan.migration_order();
        if forward.is_empty() {
            continue;
        }
        for completed in 0..=forward.len() {
            let done = &forward[..completed];
            let rollback = plan.rollback_order(completed);

            // Multiset equality: exactly the copied versions revert.
            let mut a: Vec<_> = done.iter().map(|s| (s.layer, s.version)).collect();
            let mut b: Vec<_> = rollback.iter().map(|s| (s.layer, s.version)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "rollback must revert exactly the completed copies");

            // Layers unwind in reverse first-touch order.
            let first_touch = |steps: &[ap_pipesim::MigrationStep]| -> Vec<usize> {
                let mut seen = Vec::new();
                for s in steps {
                    if !seen.contains(&s.layer) {
                        seen.push(s.layer);
                    }
                }
                seen
            };
            let mut expected = first_touch(done);
            expected.reverse();
            assert_eq!(first_touch(&rollback), expected);

            // Later active mini-batch's copy first within each layer.
            for w in rollback.windows(2) {
                if w[0].layer == w[1].layer {
                    assert!(
                        w[0].version > w[1].version,
                        "stash versions must revert newest-first within a layer"
                    );
                }
            }
        }
    }
}

/// A worker killed inside the migration window either aborts the switch
/// (journal records `MigrationRolledBack`) or the switch completes — in
/// both cases the run finishes every mini-batch. Replays the fault-free
/// journal to find the switch window, then kills each worker mid-window
/// in turn.
#[test]
fn mid_migration_kill_rolls_back_or_completes() {
    let profile = profile();
    let topo = topology();
    let init = initial_plan(&profile, &topo);
    let cfg = base_cfg();

    // A bandwidth collapse forces a fine-grained switch; find its window
    // from the journal of an undisturbed run.
    let mut collapse = ResourceTimeline::empty();
    collapse.push(3.0, EventKind::SetAllLinksGbps(2.0));
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let quiet = run_dynamic_scenario(
        &profile,
        &topo,
        &collapse,
        init.clone(),
        Some(&mut ctrl),
        &cfg,
        N_ITERATIONS,
    )
    .expect("collapse scenario");
    let (switch_at, pause) = quiet
        .journal
        .records
        .iter()
        .find_map(|r| match r.event {
            DecisionEvent::SwitchApplied { pause_seconds, .. } if pause_seconds > 0.0 => {
                Some((r.time, pause_seconds))
            }
            _ => None,
        })
        .expect("the collapse must trigger a paid switch");

    let mut rollbacks = 0usize;
    for victim in 0..topo.n_gpus() {
        let mut tl = collapse.clone();
        tl.push(
            switch_at + 0.5 * pause,
            EventKind::WorkerFail(GpuId(victim)),
        );
        let mut ctrl = AutoPipeController::new(
            &profile,
            init.clone(),
            Scorer::Analytic,
            ArbiterMode::Threshold(0.0),
            cfg.clone(),
        )
        .expect("valid initial partition");
        let (scenario, sim) = run_dynamic_scenario_traced(
            &profile,
            &topo,
            &tl,
            init.clone(),
            Some(&mut ctrl),
            &cfg,
            N_ITERATIONS,
        )
        .unwrap_or_else(|e| panic!("victim {victim}: mid-migration kill wedged the run: {e:?}"));
        assert_units_accounted(&sim, true, &format!("victim {victim}"));
        for f in &sim.faults {
            if let FaultRecord::MigrationRolledBack {
                progress,
                rollback_seconds,
                ..
            } = f
            {
                rollbacks += 1;
                assert!(
                    (0.0..1.0).contains(progress),
                    "rollback progress must be a fraction of the window"
                );
                assert!(*rollback_seconds >= 0.0);
                // The engine's record must be mirrored into the journal.
                assert!(
                    scenario
                        .journal
                        .records
                        .iter()
                        .any(|r| matches!(r.event, DecisionEvent::MigrationRolledBack { .. })),
                    "victim {victim}: journal must mirror the rollback"
                );
            }
        }
    }
    assert!(
        rollbacks > 0,
        "killing every worker mid-window must abort the migration at least once"
    );
}

/// Child mode: print a digest of the fault plan and the resulting journal.
/// Inert unless the parent re-invokes the binary with
/// `AP_DETERMINISM_CHILD=1`.
#[test]
fn fault_digest_child() {
    if std::env::var("AP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let (scenario, sim, plan) = run_faulted(3);
    let rendered = format!("{:?}|{:?}|{:?}", plan, scenario.journal, sim.iterations);
    println!("FAULT_DIGEST={:016x}/{}", digest(&rendered), rendered.len());
}

/// The fault plan and everything downstream of it (decisions, completion
/// times) are byte-identical across reruns in one process.
#[test]
fn fault_schedule_is_identical_across_reruns() {
    let (sa, ra, pa) = run_faulted(3);
    let (sb, rb, pb) = run_faulted(3);
    assert_eq!(pa, pb, "fault plans must match structurally");
    assert_eq!(sa.journal, sb.journal);
    assert_eq!(
        format!("{:?}", ra.iterations),
        format!("{:?}", rb.iterations)
    );
    // And distinct seeds must actually differ.
    let (_, _, pc) = run_faulted(5);
    assert_ne!(pa, pc, "different seeds must draw different schedules");
}

/// The `ap_par` worker-pool width must not leak into the fault schedule
/// or anything it drives. `ap_par` latches `AP_PAR_THREADS` once per
/// process, so the parent re-invokes this binary with different settings
/// and compares the digests the children print.
#[test]
fn fault_schedule_is_independent_of_worker_pool_width() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["fault_digest_child", "--exact", "--nocapture"])
            .env("AP_DETERMINISM_CHILD", "1")
            .env("AP_PAR_THREADS", threads)
            .output()
            .expect("spawn child test");
        assert!(
            out.status.success(),
            "child (AP_PAR_THREADS={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let start = stdout
            .find("FAULT_DIGEST=")
            .unwrap_or_else(|| panic!("no digest in child output:\n{stdout}"));
        stdout[start..]
            .split_whitespace()
            .next()
            .expect("digest token")
            .to_string()
    };
    let serial = digest_at("1");
    let parallel = digest_at("4");
    assert_eq!(
        serial, parallel,
        "fault schedule and journal must not depend on AP_PAR_THREADS"
    );
}
