//! The decision journal is a deterministic function of the scenario and
//! the seed: re-running a dynamic scenario must reproduce it exactly, and
//! the `ap_par` worker-pool width must not leak into any decision.
//!
//! The second property needs subprocesses: `ap_par` latches
//! `AP_PAR_THREADS` once per process, so the parent re-invokes this test
//! binary with different settings and compares the journal digests the
//! children print.

use std::collections::VecDeque;

use ap_cluster::gpu::GpuKind;
use ap_cluster::{gbps, ClusterTopology, DetectorConfig, EventKind, GpuId, ResourceTimeline};
use ap_models::{synthetic_skewed, ModelProfile};
use ap_planner::{pipedream_plan, PipeDreamView};
use autopipe::arbiter::ArbiterMode;
use autopipe::controller::{run_dynamic_scenario, AutoPipeConfig, AutoPipeController, Scorer};
use autopipe::{DecisionJournal, ScenarioResult};

/// A scenario busy enough to exercise every journal event kind: a
/// bandwidth collapse forces detection, scoring, switching and
/// verification.
fn run_once() -> ScenarioResult {
    let model = synthetic_skewed(12, 2e9, 40e6, 10e6);
    let profile = ModelProfile::with_batch(&model, 32);
    let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
    let init = pipedream_plan(
        &profile,
        &(0..4).map(GpuId).collect::<Vec<_>>(),
        PipeDreamView {
            bandwidth: gbps(25.0),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    );
    let mut tl = ResourceTimeline::empty();
    tl.push(3.0, EventKind::SetAllLinksGbps(2.0));
    let cfg = AutoPipeConfig {
        check_every: 6,
        detector: DetectorConfig {
            threshold: 0.12,
            persistence: 1,
        },
        ..AutoPipeConfig::default()
    };
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    run_dynamic_scenario(&profile, &topo, &tl, init, Some(&mut ctrl), &cfg, 60)
        .expect("controlled scenario")
}

/// FNV-1a over the journal's full debug rendering (every field of every
/// event, including float formatting, participates).
fn digest(journal: &DecisionJournal) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{journal:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn journal_is_identical_across_reruns() {
    let a = run_once();
    let b = run_once();
    assert!(!a.journal.is_empty(), "scenario must produce decisions");
    assert_eq!(a.journal, b.journal, "journals must match structurally");
    assert_eq!(a.speed_series, b.speed_series);
    assert_eq!(a.switches, b.switches);
}

/// Child mode: print the journal digest and nothing else of consequence.
/// Inert unless the parent test re-invokes the binary with
/// `AP_DETERMINISM_CHILD=1`.
#[test]
fn journal_digest_child() {
    if std::env::var("AP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let r = run_once();
    println!(
        "JOURNAL_DIGEST={:016x}/{}",
        digest(&r.journal),
        r.journal.len()
    );
}

#[test]
fn journal_is_independent_of_worker_pool_width() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["journal_digest_child", "--exact", "--nocapture"])
            .env("AP_DETERMINISM_CHILD", "1")
            .env("AP_PAR_THREADS", threads)
            .output()
            .expect("spawn child test");
        assert!(
            out.status.success(),
            "child (AP_PAR_THREADS={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // The libtest harness may print its own status text around (or on
        // the same line as) the digest, so match by substring.
        let start = stdout
            .find("JOURNAL_DIGEST=")
            .unwrap_or_else(|| panic!("no digest in child output:\n{stdout}"));
        stdout[start..]
            .split_whitespace()
            .next()
            .expect("digest token")
            .to_string()
    };
    let serial = digest_at("1");
    let parallel = digest_at("4");
    assert_eq!(
        serial, parallel,
        "decision journal must not depend on AP_PAR_THREADS"
    );
}

#[test]
fn journal_digest_separates_different_scenarios() {
    // Guard against a degenerate digest: an empty journal and a populated
    // one must not collide.
    let r = run_once();
    assert_ne!(digest(&r.journal), digest(&DecisionJournal::new()));
}

#[test]
fn scorer_history_snapshot_is_order_stable() {
    // The scorer consumes the observation history in insertion order; a
    // cheap structural check that the VecDeque-to-Vec snapshot the MetaNet
    // path takes preserves it.
    let mut dq: VecDeque<Vec<f64>> = VecDeque::new();
    for i in 0..5 {
        dq.push_back(vec![i as f64]);
    }
    let snap: Vec<Vec<f64>> = dq.iter().cloned().collect();
    assert_eq!(
        snap,
        vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]
    );
}
