#!/usr/bin/env bash
# The full local gate: everything CI runs, in the same order.
#
#   ./ci.sh
#
# The build is hermetic (workspace-only dependencies), so every cargo
# invocation runs --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --all-targets -- -D warnings

echo "== build =="
cargo build --release --offline

echo "== test =="
cargo test -q --offline

echo "== chaos drill =="
# Fault-injection smoke: exits 2 on a wedged (deadlocked) run and 3 if
# AutoPipe fails to keep completing work through a scored outage.
cargo run --release --offline -p ap-bench --bin repro -- chaos --smoke

echo "== serve + resilience smoke =="
# Serving-layer smoke: spawns the ap-serve daemon on an ephemeral port and
# drives every endpoint — plan + cache hit, invalidation, simulate,
# malformed input, a 4x-capacity overload burst (503 with a computed
# Retry-After that shed clients honor and recover from, queue depth
# within bound), the degraded-operation drill (induced verification
# failures open the circuit breaker, /plan keeps answering 200 with
# "degraded": true, the half-open probe closes it again, a zero-capacity
# bulkhead sheds cleanly) and a graceful drain. Exits 2 if the daemon
# fails to run and 3 if any check fails. Run twice under different
# AP_PAR_THREADS: smoke output uses fixed-clock reporting, so the JSON
# must be byte-identical (the planner is deterministic across thread
# counts).
cargo test -q --offline -p ap-json -p ap-resilience -p ap-serve
serve_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp"' EXIT
cargo run --release --offline -p ap-bench --bin repro -- serve-bench --smoke --json "$serve_tmp/a"
AP_PAR_THREADS=1 cargo run --release --offline -p ap-bench --bin repro -- serve-bench --smoke --json "$serve_tmp/b"
cmp "$serve_tmp/a/serve.json" "$serve_tmp/b/serve.json"

echo "== exec smoke =="
# Execution-runtime smoke: trains partitioned Mlps for real on the
# ap-exec pipeline runtime (threads + byte channels, 1F1B with weight
# stashing) and replays a controller-driven reconfiguration live through
# the §4.4 drain-free migration protocol. Exits 2 if a run fails, 3 if
# an invariant breaks (loss not decreasing, pipeline drained, migration
# bytes over the SwitchPlan prediction). The static op schedules make
# numerics independent of thread timing, so the two runs' JSON must be
# byte-identical — including the calibrated predictions and the emitted
# calibration.json (smoke pins synthetic calibration constants, and the
# engine's calibrated simulation is deterministic).
# Both an async and a flush schedule replay the same IR contract, so the
# determinism gate runs per schedule kind.
exec_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp" "$exec_tmp"' EXIT
for sched in pipedream_async gpipe; do
  cargo run --release --offline -p ap-bench --bin repro -- exec-validate --smoke --calibrate --schedule "$sched" --json "$exec_tmp/$sched-a"
  AP_PAR_THREADS=1 cargo run --release --offline -p ap-bench --bin repro -- exec-validate --smoke --calibrate --schedule "$sched" --json "$exec_tmp/$sched-b"
  cmp "$exec_tmp/$sched-a/exec_validate.json" "$exec_tmp/$sched-b/exec_validate.json"
  cmp "$exec_tmp/$sched-a/calibration.json" "$exec_tmp/$sched-b/calibration.json"
done

echo "== cluster control-plane smoke =="
# Control-plane smoke: seeded arrival/departure/fault traces through the
# ap-sched event loop, with whole-world best-response forks sampled
# mid-trace. Exits 3 if placement stalls or the neighborhood-replanned
# objective drifts past the declared epsilon from whole-world
# best-response. Smoke runs under a fake clock (every wall-clock field
# zeroed), so the JSON must be byte-identical across AP_PAR_THREADS —
# placement decisions never depend on the worker-pool width.
# (plain grep, not -q: -q exits on first match and breaks repro's pipe
# mid-listing, which pipefail turns into a spurious failure)
cargo run --release --offline -p ap-bench --bin repro -- list | grep cluster-bench >/dev/null
sched_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp" "$exec_tmp" "$sched_tmp"' EXIT
cargo run --release --offline -p ap-bench --bin repro -- cluster-bench --smoke --json "$sched_tmp/a"
AP_PAR_THREADS=1 cargo run --release --offline -p ap-bench --bin repro -- cluster-bench --smoke --json "$sched_tmp/b"
cmp "$sched_tmp/a/cluster.json" "$sched_tmp/b/cluster.json"

echo "== memory-aware planning smoke =="
# ap-mem smoke: self-calibrating per-GPU capacity ladder on BERT-48 —
# rich keeps the requested async schedule at full depth, mid clamps the
# in-flight depth, starved switches schedule (recompute), hopeless is
# infeasible. Exits 3 if the schedule choice fails to flip with
# capacity. Pure closed-form model arithmetic, so the JSON must be
# byte-identical across AP_PAR_THREADS.
cargo run --release --offline -p ap-bench --bin repro -- list | grep mem-bench >/dev/null
mem_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp" "$exec_tmp" "$sched_tmp" "$mem_tmp"' EXIT
cargo run --release --offline -p ap-bench --bin repro -- mem-bench --smoke --json "$mem_tmp/a"
AP_PAR_THREADS=1 cargo run --release --offline -p ap-bench --bin repro -- mem-bench --smoke --json "$mem_tmp/b"
cmp "$mem_tmp/a/mem.json" "$mem_tmp/b/mem.json"

echo "ci: all green"
