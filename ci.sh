#!/usr/bin/env bash
# The full local gate: everything CI runs, in the same order.
#
#   ./ci.sh
#
# The build is hermetic (workspace-only dependencies), so every cargo
# invocation runs --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --all-targets -- -D warnings

echo "== build =="
cargo build --release --offline

echo "== test =="
cargo test -q --offline

echo "== chaos drill =="
# Fault-injection smoke: exits 2 on a wedged (deadlocked) run and 3 if
# AutoPipe fails to keep completing work through a scored outage.
cargo run --release --offline -p ap-bench --bin repro -- chaos --smoke

echo "ci: all green"
