//! Randomized-but-deterministic tests for the cluster substrate:
//! fair-share feasibility and timeline replay invariants, driven by the
//! in-tree seeded PRNG so every run checks the same cases.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{
    gbps, max_min_fair_rates, ClusterState, ClusterTopology, EventKind, Flow, GpuId, LinkId,
    ResourceTimeline, ServerId,
};
use ap_rng::Rng;

/// Random flow over a small single-switch cluster.
fn random_flow(rng: &mut Rng, n_servers: usize) -> Flow {
    let s = rng.gen_range(0..n_servers);
    let d = rng.gen_range(0..n_servers);
    let links = if s == d {
        vec![]
    } else {
        vec![LinkId::Up(ServerId(s)), LinkId::Down(ServerId(d))]
    };
    let demand = if rng.gen::<bool>() {
        gbps(rng.gen_range(1.0..50.0))
    } else {
        f64::INFINITY
    };
    Flow { links, demand }
}

/// No link is ever oversubscribed and no flow exceeds its demand.
#[test]
fn fair_share_is_feasible() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xFA1E + case);
        let n_flows = rng.gen_range(1..12usize);
        let flows: Vec<Flow> = (0..n_flows).map(|_| random_flow(&mut rng, 4)).collect();
        let cap_gbps = rng.gen_range(1.0..100.0);
        let rates = max_min_fair_rates(&flows, |_| gbps(cap_gbps), gbps(96.0));
        assert_eq!(rates.len(), flows.len());
        // Per-flow demand respected.
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.demand + 1.0, "case {case}: rate {r} over demand");
            assert!(r >= 0.0);
        }
        // Per-link feasibility.
        for s in 0..4 {
            for l in [LinkId::Up(ServerId(s)), LinkId::Down(ServerId(s))] {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                assert!(
                    used <= gbps(cap_gbps) + 1.0,
                    "case {case}: link {l:?} oversubscribed: {used} > {}",
                    gbps(cap_gbps)
                );
            }
        }
    }
}

/// Every network-crossing elastic flow gets strictly positive rate
/// (work conservation / no starvation).
#[test]
fn fair_share_never_starves() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x57A4 + case);
        let n = rng.gen_range(1..10usize);
        let cap_gbps = rng.gen_range(1.0..100.0);
        let flows: Vec<Flow> = (0..n)
            .map(|i| {
                Flow::elastic(vec![
                    LinkId::Up(ServerId(0)),
                    LinkId::Down(ServerId(1 + i % 3)),
                ])
            })
            .collect();
        let rates = max_min_fair_rates(&flows, |_| gbps(cap_gbps), gbps(96.0));
        for r in rates {
            assert!(r > 0.0, "case {case}: starved flow");
        }
    }
}

/// Replaying any prefix of arrivals/departures keeps GPU job counts >= 1
/// and link background >= 0.
#[test]
fn timeline_replay_keeps_invariants() {
    for seed in 0..200u64 {
        let topo = ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0);
        let gen = ap_cluster::BackgroundJobGenerator {
            arrival_rate: 0.2,
            mean_duration: 20.0,
            max_gpus: 5,
            net_bytes_per_sec: gbps(3.0),
        };
        let tl = gen.generate(&topo, 300.0, seed);
        for t in [0.0, 50.0, 150.0, 299.0, 1000.0] {
            let st = ClusterState::at_time(topo.clone(), &tl, t);
            assert!(st.topology.gpus.iter().all(|g| g.colocated_jobs >= 1));
            assert!(st.background.values().all(|&b| b >= 0.0));
            for s in 0..4 {
                assert!(st.available_capacity(LinkId::Up(ServerId(s))) > 0.0);
            }
        }
    }
}

/// Bandwidth events override each other in time order regardless of
/// insertion order.
#[test]
fn timeline_order_independent_of_insertion() {
    let evs = [
        (10.0, EventKind::SetAllLinksGbps(25.0)),
        (20.0, EventKind::SetAllLinksGbps(40.0)),
        (30.0, EventKind::SetAllLinksGbps(100.0)),
    ];
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x0DE2 + case);
        let mut perm = vec![0usize, 1, 2];
        rng.shuffle(&mut perm);
        let mut tl = ResourceTimeline::empty();
        for &i in &perm {
            let (t, k) = &evs[i];
            tl.push(*t, k.clone());
        }
        let base = ClusterTopology::paper_testbed(10.0);
        let st = ClusterState::at_time(base, &tl, 25.0);
        assert!(
            (st.available_capacity(LinkId::Up(ServerId(0))) - gbps(40.0)).abs() < 1.0,
            "case {case}: insertion order {perm:?} changed replay"
        );
        let _ = GpuId(0);
    }
}
