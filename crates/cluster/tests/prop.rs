//! Property tests for the cluster substrate: fair-share feasibility and
//! timeline replay invariants.

use ap_cluster::{
    gbps, max_min_fair_rates, ClusterState, ClusterTopology, EventKind, Flow, GpuId, LinkId,
    ResourceTimeline, ServerId,
};
use ap_cluster::gpu::GpuKind;
use proptest::prelude::*;

/// Arbitrary flow over a small single-switch cluster.
fn arb_flow(n_servers: usize) -> impl Strategy<Value = Flow> {
    (0..n_servers, 0..n_servers, prop::option::of(1.0..50.0f64)).prop_map(move |(s, d, cap)| {
        let links = if s == d {
            vec![]
        } else {
            vec![LinkId::Up(ServerId(s)), LinkId::Down(ServerId(d))]
        };
        Flow {
            links,
            demand: cap.map(gbps).unwrap_or(f64::INFINITY),
        }
    })
}

proptest! {
    /// No link is ever oversubscribed and no flow exceeds its demand.
    #[test]
    fn fair_share_is_feasible(flows in prop::collection::vec(arb_flow(4), 1..12),
                              cap_gbps in 1.0..100.0f64) {
        let rates = max_min_fair_rates(&flows, |_| gbps(cap_gbps), gbps(96.0));
        prop_assert_eq!(rates.len(), flows.len());
        // Per-flow demand respected.
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r <= f.demand + 1.0);
            prop_assert!(r >= 0.0);
        }
        // Per-link feasibility.
        for s in 0..4 {
            for l in [LinkId::Up(ServerId(s)), LinkId::Down(ServerId(s))] {
                let used: f64 = flows.iter().zip(&rates)
                    .filter(|(f, _)| f.links.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                prop_assert!(used <= gbps(cap_gbps) + 1.0,
                    "link {:?} oversubscribed: {} > {}", l, used, gbps(cap_gbps));
            }
        }
    }

    /// Every network-crossing elastic flow gets strictly positive rate
    /// (work conservation / no starvation).
    #[test]
    fn fair_share_never_starves(n in 1usize..10, cap_gbps in 1.0..100.0f64) {
        let flows: Vec<Flow> = (0..n)
            .map(|i| Flow::elastic(vec![LinkId::Up(ServerId(0)), LinkId::Down(ServerId(1 + i % 3))]))
            .collect();
        let rates = max_min_fair_rates(&flows, |_| gbps(cap_gbps), gbps(96.0));
        for r in rates {
            prop_assert!(r > 0.0);
        }
    }

    /// Replaying any prefix of arrivals/departures keeps GPU job counts >= 1
    /// and link background >= 0.
    #[test]
    fn timeline_replay_keeps_invariants(seed in 0u64..1000) {
        let topo = ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0);
        let gen = ap_cluster::BackgroundJobGenerator {
            arrival_rate: 0.2,
            mean_duration: 20.0,
            max_gpus: 5,
            net_bytes_per_sec: gbps(3.0),
        };
        let tl = gen.generate(&topo, 300.0, seed);
        for t in [0.0, 50.0, 150.0, 299.0, 1000.0] {
            let st = ClusterState::at_time(topo.clone(), &tl, t);
            prop_assert!(st.topology.gpus.iter().all(|g| g.colocated_jobs >= 1));
            prop_assert!(st.background.values().all(|&b| b >= 0.0));
            for s in 0..4 {
                prop_assert!(st.available_capacity(LinkId::Up(ServerId(s))) > 0.0);
            }
        }
    }

    /// Bandwidth events override each other in time order regardless of
    /// insertion order.
    #[test]
    fn timeline_order_independent_of_insertion(perm in Just(()).prop_perturb(|_, mut rng| {
        let mut idx = vec![0usize, 1, 2];
        for i in (1..3).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    })) {
        let evs = [
            (10.0, EventKind::SetAllLinksGbps(25.0)),
            (20.0, EventKind::SetAllLinksGbps(40.0)),
            (30.0, EventKind::SetAllLinksGbps(100.0)),
        ];
        let mut tl = ResourceTimeline::empty();
        for &i in &perm {
            let (t, k) = &evs[i];
            tl.push(*t, k.clone());
        }
        let base = ClusterTopology::paper_testbed(10.0);
        let st = ClusterState::at_time(base, &tl, 25.0);
        prop_assert!((st.available_capacity(LinkId::Up(ServerId(0))) - gbps(40.0)).abs() < 1.0);
        let _ = GpuId(0);
    }
}
