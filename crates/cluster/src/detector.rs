//! Resource-change detector.
//!
//! AutoPipe's prototype includes "a resource changing detector, which is
//! used to monitor the available bandwidth and GPUs" (§1). The detector
//! consumes per-iteration observations (the measured bandwidth of each
//! worker and the effective compute share of each GPU — both already
//! collected by the profiler, §4.2) and raises a [`ResourceChange`] when a
//! relative deviation from the reference level persists for a configurable
//! number of observations. The persistence requirement is hysteresis: §4.1
//! requires "a strategic balance between reaction sensitivity and
//! environmental fluctuations", so a single noisy sample must not trigger a
//! re-partition. Persistence is additionally *direction-consistent*: a
//! deviation streak only accumulates while successive samples deviate the
//! same way (all above or all below the reference), so a flapping NIC that
//! alternates between levels is debounced instead of confirming a bogus
//! averaged change.

/// Which resource moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Available bandwidth of a worker changed.
    Bandwidth,
    /// Effective compute speed of a worker changed.
    Compute,
}

/// A confirmed, persistent resource change.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceChange {
    /// What changed.
    pub kind: ChangeKind,
    /// Index of the worker whose resource changed.
    pub worker: usize,
    /// Reference (pre-change) level.
    pub before: f64,
    /// Newly confirmed level.
    pub after: f64,
}

impl ResourceChange {
    /// Signed relative magnitude, e.g. `-0.5` for a halving.
    pub fn relative(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            (self.after - self.before) / self.before
        }
    }
}

/// Detector tuning.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Minimum relative deviation considered a change (e.g. 0.15 = 15%).
    pub threshold: f64,
    /// Number of consecutive deviating observations before confirming.
    pub persistence: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold: 0.15,
            persistence: 3,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Channel {
    reference: Option<f64>,
    deviating: usize,
    candidate_sum: f64,
    /// Direction of the current deviation streak: `1` above the
    /// reference, `-1` below. A flip restarts the streak, so a flapping
    /// link (alternating high/low samples) never accumulates persistence.
    sign: i8,
}

/// Per-worker, per-resource change detection with hysteresis.
#[derive(Debug, Clone)]
pub struct ResourceChangeDetector {
    cfg: DetectorConfig,
    bandwidth: Vec<Channel>,
    compute: Vec<Channel>,
}

impl ResourceChangeDetector {
    /// A detector for `n_workers` workers.
    pub fn new(n_workers: usize, cfg: DetectorConfig) -> Self {
        assert!(cfg.threshold > 0.0, "threshold must be positive");
        assert!(cfg.persistence >= 1, "persistence must be at least 1");
        ResourceChangeDetector {
            cfg,
            bandwidth: vec![Channel::default(); n_workers],
            compute: vec![Channel::default(); n_workers],
        }
    }

    /// Feed one iteration's observations; returns confirmed changes.
    ///
    /// `bandwidths[i]` is worker `i`'s measured available bandwidth,
    /// `computes[i]` its effective FLOP/s.
    pub fn observe(&mut self, bandwidths: &[f64], computes: &[f64]) -> Vec<ResourceChange> {
        assert_eq!(bandwidths.len(), self.bandwidth.len(), "worker count drift");
        assert_eq!(computes.len(), self.compute.len(), "worker count drift");
        let mut out = Vec::new();
        for (w, &v) in bandwidths.iter().enumerate() {
            if let Some(c) = step(&mut self.bandwidth[w], v, &self.cfg) {
                out.push(ResourceChange {
                    kind: ChangeKind::Bandwidth,
                    worker: w,
                    before: c.0,
                    after: c.1,
                });
            }
        }
        for (w, &v) in computes.iter().enumerate() {
            if let Some(c) = step(&mut self.compute[w], v, &self.cfg) {
                out.push(ResourceChange {
                    kind: ChangeKind::Compute,
                    worker: w,
                    before: c.0,
                    after: c.1,
                });
            }
        }
        out
    }

    /// Forget history (e.g. after a partition switch changes what "normal"
    /// looks like).
    pub fn reset(&mut self) {
        for c in self.bandwidth.iter_mut().chain(self.compute.iter_mut()) {
            *c = Channel::default();
        }
    }
}

/// Advance one channel; returns `(before, after)` when a change confirms.
fn step(ch: &mut Channel, value: f64, cfg: &DetectorConfig) -> Option<(f64, f64)> {
    let reference = match ch.reference {
        None => {
            ch.reference = Some(value);
            return None;
        }
        Some(r) => r,
    };
    let signed = if reference == 0.0 {
        0.0
    } else {
        (value - reference) / reference
    };
    let rel = signed.abs();
    if rel >= cfg.threshold {
        let sign = if signed >= 0.0 { 1 } else { -1 };
        if ch.deviating > 0 && sign != ch.sign {
            // The deviation flipped direction mid-streak: that is flap
            // noise, not a persistent change. Start counting afresh from
            // this sample.
            ch.deviating = 0;
            ch.candidate_sum = 0.0;
        }
        ch.sign = sign;
        ch.deviating += 1;
        ch.candidate_sum += value;
        if ch.deviating >= cfg.persistence {
            let after = ch.candidate_sum / ch.deviating as f64;
            ch.reference = Some(after);
            ch.deviating = 0;
            ch.candidate_sum = 0.0;
            return Some((reference, after));
        }
    } else {
        // Deviation did not persist: fold the sample into the reference to
        // track slow drift without firing.
        ch.deviating = 0;
        ch.candidate_sum = 0.0;
        ch.reference = Some(0.9 * reference + 0.1 * value);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(n: usize) -> ResourceChangeDetector {
        ResourceChangeDetector::new(
            n,
            DetectorConfig {
                threshold: 0.2,
                persistence: 3,
            },
        )
    }

    #[test]
    fn steady_signal_never_fires() {
        let mut d = det(2);
        for _ in 0..50 {
            assert!(d.observe(&[10.0, 10.0], &[5.0, 5.0]).is_empty());
        }
    }

    #[test]
    fn single_spike_is_ignored() {
        let mut d = det(1);
        d.observe(&[10.0], &[5.0]);
        assert!(d.observe(&[2.0], &[5.0]).is_empty());
        assert!(d.observe(&[10.0], &[5.0]).is_empty());
        assert!(d.observe(&[10.0], &[5.0]).is_empty());
        assert!(d.observe(&[10.0], &[5.0]).is_empty());
    }

    #[test]
    fn persistent_bandwidth_halving_fires_once() {
        let mut d = det(1);
        d.observe(&[10.0], &[5.0]);
        let mut fired = Vec::new();
        for _ in 0..6 {
            fired.extend(d.observe(&[5.0], &[5.0]));
        }
        assert_eq!(fired.len(), 1);
        let c = &fired[0];
        assert_eq!(c.kind, ChangeKind::Bandwidth);
        assert_eq!(c.worker, 0);
        assert!((c.relative() + 0.5).abs() < 1e-9);
        // After confirmation the new level is the reference — no re-fire.
        assert!(d.observe(&[5.0], &[5.0]).is_empty());
    }

    #[test]
    fn compute_change_reports_right_worker() {
        let mut d = det(3);
        d.observe(&[10.0; 3], &[9.3e12, 9.3e12, 9.3e12]);
        let mut fired = Vec::new();
        for _ in 0..3 {
            fired.extend(d.observe(&[10.0; 3], &[9.3e12, 4.65e12, 9.3e12]));
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, ChangeKind::Compute);
        assert_eq!(fired[0].worker, 1);
    }

    #[test]
    fn alternating_flap_noise_never_confirms() {
        // A flapping link swings ±30% around the reference — every sample
        // deviates past the 20% threshold, but the direction alternates,
        // so persistence must never accumulate to 3.
        let mut d = det(1);
        d.observe(&[10.0], &[1.0]);
        for i in 0..40 {
            let v = if i % 2 == 0 { 13.0 } else { 7.0 };
            assert!(d.observe(&[v], &[1.0]).is_empty(), "fired at sample {i}");
        }
    }

    #[test]
    fn direction_flip_restarts_the_streak_at_the_boundary() {
        // persistence = 3: two low samples, a flip up, then two more low
        // samples — five deviating observations, but no three consecutive
        // ones agree in direction until the 3rd post-flip low sample.
        let mut d = det(1);
        d.observe(&[10.0], &[1.0]);
        assert!(d.observe(&[5.0], &[1.0]).is_empty());
        assert!(d.observe(&[5.0], &[1.0]).is_empty());
        assert!(d.observe(&[14.0], &[1.0]).is_empty()); // flip: streak resets to 1 (up)
        assert!(d.observe(&[5.0], &[1.0]).is_empty()); // flip back: streak = 1 (down)
        assert!(d.observe(&[5.0], &[1.0]).is_empty()); // streak = 2
        let fired = d.observe(&[5.0], &[1.0]); // streak = 3: confirm
        assert_eq!(fired.len(), 1);
        assert!((fired[0].after - 5.0).abs() < 1e-9);
    }

    #[test]
    fn slow_drift_tracks_without_firing() {
        let mut d = det(1);
        let mut v = 10.0;
        for _ in 0..100 {
            v *= 1.002; // 0.2% per observation, below the 20% threshold
            assert!(d.observe(&[v], &[1.0]).is_empty());
        }
    }

    #[test]
    fn reset_forgets_reference() {
        let mut d = det(1);
        d.observe(&[10.0], &[1.0]);
        d.reset();
        // First post-reset observation becomes the new reference silently.
        assert!(d.observe(&[3.0], &[1.0]).is_empty());
        for _ in 0..3 {
            let _ = d.observe(&[3.0], &[1.0]);
        }
        // Still quiet: 3.0 is the reference now.
        assert!(d.observe(&[3.0], &[1.0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker count drift")]
    fn wrong_width_panics() {
        let mut d = det(2);
        let _ = d.observe(&[1.0], &[1.0, 1.0]);
    }
}
