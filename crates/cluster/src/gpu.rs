//! GPU device model.
//!
//! A [`Gpu`] has a [`GpuKind`] (peak throughput) and a contention state: the
//! number of jobs time-sharing it. The paper's motivation experiments (§3.2,
//! Figure 4) emulate contention by launching an extra training job per GPU;
//! we model the same thing as equal time slicing, so a GPU shared by `k`
//! jobs gives each of them `1/k` of its effective throughput.

use crate::units::tflops;

/// Identifier of a GPU within a [`crate::ClusterTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub usize);

/// The GPU generations mentioned by the paper ("there may be multiple types
/// of GPUs in the shared GPU cluster, e.g., P100, V100, A100", §3.1 Obs. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuKind {
    /// NVIDIA Tesla P100 (the paper's testbed GPU).
    P100,
    /// NVIDIA Tesla V100.
    V100,
    /// NVIDIA A100.
    A100,
}

impl GpuKind {
    /// Peak dense FP32 throughput in FLOP/s.
    ///
    /// P100: 9.3 TFLOPS, V100: 15.7 TFLOPS, A100: 19.5 TFLOPS (vendor specs).
    pub fn peak_flops(self) -> f64 {
        match self {
            GpuKind::P100 => tflops(9.3),
            GpuKind::V100 => tflops(15.7),
            GpuKind::A100 => tflops(19.5),
        }
    }

    /// Device memory in bytes (16 GB / 32 GB / 40 GB).
    pub fn memory_bytes(self) -> f64 {
        match self {
            GpuKind::P100 => 16.0 * 1024.0 * 1024.0 * 1024.0,
            GpuKind::V100 => 32.0 * 1024.0 * 1024.0 * 1024.0,
            GpuKind::A100 => 40.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// PCIe host-to-device bandwidth in bytes/s, used to cost layer-by-layer
    /// state migration (§4.4 refers to "the cost of making numerous PCIe
    /// calls to send the data"). P100/V100 are PCIe 3.0 x16, A100 PCIe 4.0.
    pub fn pcie_bytes_per_sec(self) -> f64 {
        match self {
            GpuKind::P100 | GpuKind::V100 => 12.0e9,
            GpuKind::A100 => 24.0e9,
        }
    }
}

/// A single GPU device and its sharing state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gpu {
    /// Hardware generation.
    pub kind: GpuKind,
    /// Number of jobs currently time-sharing this device, **including** the
    /// job under study. Never zero for an in-use device.
    pub colocated_jobs: u32,
    /// Usable device memory in bytes. Defaults to the generation's nominal
    /// capacity but can be lowered per device (framework reservations,
    /// colocated jobs pinning memory) or raised (MIG-less A100 80GB SKUs),
    /// making heterogeneous-memory clusters expressible.
    pub mem_bytes: f64,
}

impl Gpu {
    /// An exclusively-held GPU of the given kind.
    pub fn exclusive(kind: GpuKind) -> Self {
        Gpu {
            kind,
            colocated_jobs: 1,
            mem_bytes: kind.memory_bytes(),
        }
    }

    /// An exclusively-held GPU with an explicit memory capacity.
    pub fn with_memory(kind: GpuKind, mem_bytes: f64) -> Self {
        Gpu {
            kind,
            colocated_jobs: 1,
            mem_bytes,
        }
    }

    /// Usable device memory in bytes for this specific device.
    pub fn memory_bytes(&self) -> f64 {
        self.mem_bytes
    }

    /// The fraction of the device the observed job receives under equal
    /// time slicing.
    pub fn share(&self) -> f64 {
        1.0 / f64::from(self.colocated_jobs.max(1))
    }

    /// Effective FLOP/s available to the observed job.
    pub fn effective_flops(&self) -> f64 {
        self.kind.peak_flops() * self.share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_gpu_gets_full_device() {
        let g = Gpu::exclusive(GpuKind::P100);
        assert_eq!(g.share(), 1.0);
        assert!((g.effective_flops() - 9.3e12).abs() < 1.0);
    }

    #[test]
    fn contention_halves_throughput() {
        let mut g = Gpu::exclusive(GpuKind::V100);
        g.colocated_jobs = 2;
        assert_eq!(g.share(), 0.5);
        assert!((g.effective_flops() - 15.7e12 / 2.0).abs() < 1.0);
    }

    #[test]
    fn zero_job_count_is_clamped() {
        let g = Gpu {
            kind: GpuKind::A100,
            colocated_jobs: 0,
            mem_bytes: GpuKind::A100.memory_bytes(),
        };
        assert_eq!(g.share(), 1.0);
    }

    #[test]
    fn per_device_memory_defaults_to_kind_and_can_be_overridden() {
        let g = Gpu::exclusive(GpuKind::V100);
        assert_eq!(g.memory_bytes(), GpuKind::V100.memory_bytes());
        let starved = Gpu::with_memory(GpuKind::V100, 4.0 * 1024.0 * 1024.0 * 1024.0);
        assert!(starved.memory_bytes() < g.memory_bytes());
        // Capacity override leaves compute untouched.
        assert_eq!(starved.effective_flops(), g.effective_flops());
    }

    #[test]
    fn kinds_are_ordered_by_speed() {
        assert!(GpuKind::P100.peak_flops() < GpuKind::V100.peak_flops());
        assert!(GpuKind::V100.peak_flops() < GpuKind::A100.peak_flops());
    }

    #[test]
    fn a100_has_faster_pcie() {
        assert!(GpuKind::A100.pcie_bytes_per_sec() > GpuKind::P100.pcie_bytes_per_sec());
    }
}
