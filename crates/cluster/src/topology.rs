//! Cluster topology: servers with GPUs and NICs behind a single switch.
//!
//! The paper's testbed is "5 physical GPU servers, each with 2 NVIDIA P100
//! GPUs ... 1 Mellanox ConnectX5 100Gbps dual ports NIC, and 1 Mellanox
//! SN2100 switch, which builds a single switch topology" (§5.1). We model
//! exactly that shape: every server has one full-duplex uplink to the
//! switch; a flow between two servers traverses the sender's uplink and the
//! receiver's downlink. Intra-server transfers go over PCIe/NVLink and are
//! modeled with a fixed (high) local bandwidth.

use crate::gpu::{Gpu, GpuId, GpuKind};
use crate::units::gbps;

/// Identifier of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub usize);

/// Identifier of a directed link (server uplink or downlink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// Server -> switch direction.
    Up(ServerId),
    /// Switch -> server direction.
    Down(ServerId),
}

/// One physical server.
#[derive(Debug, Clone)]
pub struct Server {
    /// GPUs installed in this server (global ids).
    pub gpus: Vec<GpuId>,
    /// NIC line rate in bytes/s (both directions, full duplex).
    pub nic_bytes_per_sec: f64,
}

/// A single-switch GPU cluster.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    /// All servers, indexed by `ServerId.0`.
    pub servers: Vec<Server>,
    /// All GPUs, indexed by `GpuId.0`.
    pub gpus: Vec<Gpu>,
    /// Bandwidth for transfers between GPUs of the same server, bytes/s.
    pub local_bytes_per_sec: f64,
}

impl ClusterTopology {
    /// Build the paper's testbed shape: `n_servers` servers with
    /// `gpus_per_server` GPUs of `kind` each, all NICs at `link_gbps`.
    pub fn single_switch(
        n_servers: usize,
        gpus_per_server: usize,
        kind: GpuKind,
        link_gbps: f64,
    ) -> Self {
        assert!(n_servers > 0 && gpus_per_server > 0, "empty topology");
        let mut servers = Vec::with_capacity(n_servers);
        let mut gpus = Vec::with_capacity(n_servers * gpus_per_server);
        for s in 0..n_servers {
            let ids: Vec<GpuId> = (0..gpus_per_server)
                .map(|g| GpuId(s * gpus_per_server + g))
                .collect();
            for _ in 0..gpus_per_server {
                gpus.push(Gpu::exclusive(kind));
            }
            servers.push(Server {
                gpus: ids,
                nic_bytes_per_sec: gbps(link_gbps),
            });
        }
        ClusterTopology {
            servers,
            gpus,
            // PCIe 3.0 x16-ish local bandwidth; fast relative to any NIC.
            local_bytes_per_sec: kind.pcie_bytes_per_sec(),
        }
    }

    /// The paper's testbed: 5 servers x 2 P100 at the given link speed.
    pub fn paper_testbed(link_gbps: f64) -> Self {
        Self::single_switch(5, 2, GpuKind::P100, link_gbps)
    }

    /// Total number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Which server hosts a GPU.
    pub fn server_of(&self, gpu: GpuId) -> ServerId {
        for (s, srv) in self.servers.iter().enumerate() {
            if srv.gpus.contains(&gpu) {
                return ServerId(s);
            }
        }
        panic!("GPU {gpu:?} not present in topology");
    }

    /// Whether two GPUs are colocated on one server.
    pub fn same_server(&self, a: GpuId, b: GpuId) -> bool {
        self.server_of(a) == self.server_of(b)
    }

    /// The sequence of directed links a transfer from `src` GPU to `dst`
    /// GPU traverses. Empty when both GPUs share a server (local transfer).
    pub fn path(&self, src: GpuId, dst: GpuId) -> Vec<LinkId> {
        let (s, d) = (self.server_of(src), self.server_of(dst));
        if s == d {
            Vec::new()
        } else {
            vec![LinkId::Up(s), LinkId::Down(d)]
        }
    }

    /// Line-rate capacity of a link in bytes/s.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        let sid = match link {
            LinkId::Up(s) | LinkId::Down(s) => s,
        };
        self.servers[sid.0].nic_bytes_per_sec
    }

    /// Mutable GPU access.
    pub fn gpu_mut(&mut self, id: GpuId) -> &mut Gpu {
        &mut self.gpus[id.0]
    }

    /// Immutable GPU access.
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.0]
    }

    /// Set every NIC to the same line rate (used by bandwidth sweeps).
    pub fn set_uniform_link_gbps(&mut self, link_gbps: f64) {
        for s in &mut self.servers {
            s.nic_bytes_per_sec = gbps(link_gbps);
        }
    }

    /// Set every GPU's usable memory to the same capacity (memory-rich vs
    /// memory-starved cluster sweeps).
    pub fn set_uniform_memory_bytes(&mut self, mem_bytes: f64) {
        assert!(mem_bytes > 0.0, "memory capacity must be positive");
        for g in &mut self.gpus {
            g.mem_bytes = mem_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape_matches_paper() {
        let t = ClusterTopology::paper_testbed(100.0);
        assert_eq!(t.servers.len(), 5);
        assert_eq!(t.n_gpus(), 10);
        for s in &t.servers {
            assert_eq!(s.gpus.len(), 2);
            assert!((s.nic_bytes_per_sec - gbps(100.0)).abs() < 1.0);
        }
    }

    #[test]
    fn server_lookup_and_paths() {
        let t = ClusterTopology::single_switch(3, 2, GpuKind::P100, 25.0);
        assert_eq!(t.server_of(GpuId(0)), ServerId(0));
        assert_eq!(t.server_of(GpuId(5)), ServerId(2));
        assert!(t.same_server(GpuId(2), GpuId(3)));
        assert!(t.path(GpuId(0), GpuId(1)).is_empty());
        assert_eq!(
            t.path(GpuId(0), GpuId(4)),
            vec![LinkId::Up(ServerId(0)), LinkId::Down(ServerId(2))]
        );
    }

    #[test]
    fn link_capacity_reads_nic_rate() {
        let t = ClusterTopology::single_switch(2, 1, GpuKind::V100, 40.0);
        assert!((t.link_capacity(LinkId::Up(ServerId(1))) - gbps(40.0)).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_topology_rejected() {
        let _ = ClusterTopology::single_switch(0, 1, GpuKind::P100, 10.0);
    }

    #[test]
    fn uniform_link_update_applies_everywhere() {
        let mut t = ClusterTopology::paper_testbed(10.0);
        t.set_uniform_link_gbps(25.0);
        assert!(t
            .servers
            .iter()
            .all(|s| (s.nic_bytes_per_sec - gbps(25.0)).abs() < 1.0));
    }

    #[test]
    fn uniform_memory_update_applies_everywhere() {
        let mut t = ClusterTopology::paper_testbed(10.0);
        let cap = 8.0 * 1024.0 * 1024.0 * 1024.0;
        t.set_uniform_memory_bytes(cap);
        assert!(t.gpus.iter().all(|g| g.memory_bytes() == cap));
    }
}
