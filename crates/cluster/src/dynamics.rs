//! Resource dynamics: what changes while a training job runs.
//!
//! §3.1 Observation 1: "during the lifetime of a training job, other shared
//! GPU jobs may start, complete or suspend, which causes the fluctuation of
//! GPU resources. The fluctuation of bandwidth is more common". We model a
//! [`ResourceTimeline`] of [`ResourceEvent`]s applied to a base
//! [`ClusterTopology`], yielding a [`ClusterState`] snapshot at any time.
//! Scripted timelines drive the paper's controlled experiments (Figures
//! 3–6, 9, 10); [`BackgroundJobGenerator`] produces stochastic multi-tenant
//! churn for stress tests.

use std::collections::{BTreeSet, HashMap};

use ap_rng::Rng;

use crate::gpu::GpuId;
use crate::topology::{ClusterTopology, LinkId, ServerId};
use crate::units::gbps;

/// Identifier of a background job placed by the dynamics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BgJobId(pub u64);

/// What happened to the shared cluster.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Set every NIC to this many Gbps (e.g. the Figure 9 staircase).
    SetAllLinksGbps(f64),
    /// Set one server's NIC rate.
    SetServerLinkGbps(ServerId, f64),
    /// Multiply every NIC rate by a factor (Figure 3 halves bandwidth).
    ScaleAllLinks(f64),
    /// A competing flow consumes this many bytes/s on a server's up+down
    /// links (e.g. a dataset upload).
    SetBackgroundTraffic(ServerId, f64),
    /// A background job arrives and time-shares the listed GPUs; it may also
    /// consume `net_bytes_per_sec` on each touched server's links (a
    /// distributed job uses both, Figure 5).
    JobArrive {
        id: BgJobId,
        gpus: Vec<GpuId>,
        net_bytes_per_sec: f64,
    },
    /// The background job releases its GPUs and bandwidth (Figure 6).
    JobDepart(BgJobId),
    /// Directly set a GPU's sharing degree (failure injection: a huge
    /// value models a device that has effectively dropped out — the
    /// cluster-utilization study the paper cites (ref. 7) lists failures as a
    /// distinct churn source).
    SetGpuSharing(GpuId, u32),
    /// A worker dies fail-stop: it leaves the availability view, its
    /// effective compute drops to zero, and any state it held is lost.
    WorkerFail(GpuId),
    /// A previously failed worker rejoins the cluster at full health
    /// (cold: it holds no model state until the job re-plans onto it).
    WorkerRecover(GpuId),
    /// A server NIC flaps down to the given Gbps; the pre-flap rate is
    /// saved so [`EventKind::LinkFlapRestore`] can undo exactly this flap
    /// even if other bandwidth events interleave.
    LinkFlapDown(ServerId, f64),
    /// The flapped NIC returns to its saved pre-flap rate (no-op if the
    /// server is not currently flapped down).
    LinkFlapRestore(ServerId),
}

/// A timestamped cluster event.
#[derive(Debug, Clone)]
pub struct ResourceEvent {
    /// Seconds since experiment start.
    pub time: f64,
    /// What changed.
    pub kind: EventKind,
}

/// A time-ordered script of events.
#[derive(Debug, Clone, Default)]
pub struct ResourceTimeline {
    events: Vec<ResourceEvent>,
}

impl ResourceTimeline {
    /// Empty timeline (static cluster).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from events, sorted by time. The sort is stable, so events
    /// sharing a timestamp keep their order in `events` — coincident fault
    /// and bandwidth events apply in a defined (input) order.
    pub fn new(mut events: Vec<ResourceEvent>) -> Self {
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        ResourceTimeline { events }
    }

    /// Append an event, keeping time order. Among events at exactly the
    /// same timestamp, insertion order is preserved: the one pushed first
    /// applies first (and is returned first by
    /// [`ResourceTimeline::events_between`]).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        let idx = self.events.partition_point(|e| e.time <= time);
        self.events.insert(idx, ResourceEvent { time, kind });
    }

    /// All events.
    pub fn events(&self) -> &[ResourceEvent] {
        &self.events
    }

    /// Events with `prev < time <= now` (what a poller sees this interval).
    pub fn events_between(&self, prev: f64, now: f64) -> &[ResourceEvent] {
        let start = self.events.partition_point(|e| e.time <= prev);
        let end = self.events.partition_point(|e| e.time <= now);
        &self.events[start..end]
    }

    /// Time of the next event strictly after `t`, if any. The event engine
    /// uses this to re-evaluate rates exactly at change points.
    pub fn next_event_after(&self, t: f64) -> Option<f64> {
        let idx = self.events.partition_point(|e| e.time <= t);
        self.events.get(idx).map(|e| e.time)
    }
}

/// The live state of the cluster at some instant: the base topology with
/// contention applied plus background traffic per link.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// Topology with per-GPU `colocated_jobs` reflecting current sharing.
    pub topology: ClusterTopology,
    /// Background traffic (bytes/s) currently consuming each link.
    pub background: HashMap<LinkId, f64>,
    /// Live background jobs (for departures).
    jobs: HashMap<BgJobId, (Vec<GpuId>, f64)>,
    /// Workers currently failed (fail-stop). Ordered so iteration — and
    /// everything derived from it — is deterministic.
    failed: BTreeSet<GpuId>,
    /// Pre-flap NIC rates of servers currently flapped down, keyed by
    /// server, so a restore undoes exactly the matching flap.
    flap_saved: HashMap<ServerId, f64>,
}

impl ClusterState {
    /// Fresh state from a base topology.
    pub fn new(topology: ClusterTopology) -> Self {
        ClusterState {
            topology,
            background: HashMap::new(),
            jobs: HashMap::new(),
            failed: BTreeSet::new(),
            flap_saved: HashMap::new(),
        }
    }

    /// `true` if `gpu` is alive (not failed fail-stop).
    pub fn is_available(&self, gpu: GpuId) -> bool {
        !self.failed.contains(&gpu)
    }

    /// Workers currently failed, in id order.
    pub fn failed_workers(&self) -> Vec<GpuId> {
        self.failed.iter().copied().collect()
    }

    /// The subset of `candidates` that is alive, preserving order. Planners
    /// go through this view so they only ever place stages on survivors.
    pub fn available_of(&self, candidates: &[GpuId]) -> Vec<GpuId> {
        candidates
            .iter()
            .copied()
            .filter(|&g| self.is_available(g))
            .collect()
    }

    /// Every live worker in the cluster, in id order.
    pub fn available_workers(&self) -> Vec<GpuId> {
        (0..self.topology.n_gpus())
            .map(GpuId)
            .filter(|&g| self.is_available(g))
            .collect()
    }

    /// Capacity of `link` left for the observed job, bytes/s.
    pub fn available_capacity(&self, link: LinkId) -> f64 {
        let cap = self.topology.link_capacity(link);
        let bg = self.background.get(&link).copied().unwrap_or(0.0);
        (cap - bg).max(cap * 0.01) // a fair-share floor: never fully starved
    }

    /// Effective FLOP/s of a GPU for the observed job. A failed worker
    /// contributes zero.
    pub fn effective_flops(&self, gpu: GpuId) -> f64 {
        if self.failed.contains(&gpu) {
            return 0.0;
        }
        self.topology.gpu(gpu).effective_flops()
    }

    /// Usable device memory of a GPU at this instant, bytes. A failed
    /// worker holds nothing: planners consulting the fault timeline see
    /// zero capacity and route stages elsewhere.
    pub fn memory_bytes(&self, gpu: GpuId) -> f64 {
        if self.failed.contains(&gpu) {
            return 0.0;
        }
        self.topology.gpu(gpu).memory_bytes()
    }

    /// Apply one event.
    pub fn apply(&mut self, kind: &EventKind) {
        match kind {
            EventKind::SetAllLinksGbps(g) => self.topology.set_uniform_link_gbps(*g),
            EventKind::SetServerLinkGbps(s, g) => {
                self.topology.servers[s.0].nic_bytes_per_sec = gbps(*g);
            }
            EventKind::ScaleAllLinks(f) => {
                assert!(*f > 0.0, "bandwidth scale factor must be positive");
                for s in &mut self.topology.servers {
                    s.nic_bytes_per_sec *= f;
                }
            }
            EventKind::SetBackgroundTraffic(s, b) => {
                self.background.insert(LinkId::Up(*s), *b);
                self.background.insert(LinkId::Down(*s), *b);
            }
            EventKind::JobArrive {
                id,
                gpus,
                net_bytes_per_sec,
            } => {
                for &g in gpus {
                    self.topology.gpu_mut(g).colocated_jobs += 1;
                }
                if *net_bytes_per_sec > 0.0 {
                    let mut touched: Vec<ServerId> =
                        gpus.iter().map(|&g| self.topology.server_of(g)).collect();
                    touched.sort();
                    touched.dedup();
                    for s in touched {
                        *self.background.entry(LinkId::Up(s)).or_insert(0.0) += net_bytes_per_sec;
                        *self.background.entry(LinkId::Down(s)).or_insert(0.0) += net_bytes_per_sec;
                    }
                }
                self.jobs.insert(*id, (gpus.clone(), *net_bytes_per_sec));
            }
            EventKind::SetGpuSharing(g, n) => {
                self.topology.gpu_mut(*g).colocated_jobs = (*n).max(1);
            }
            EventKind::WorkerFail(g) => {
                self.failed.insert(*g);
            }
            EventKind::WorkerRecover(g) => {
                self.failed.remove(g);
            }
            EventKind::LinkFlapDown(s, g) => {
                let nic = &mut self.topology.servers[s.0].nic_bytes_per_sec;
                // Only the first flap of a down/down/restore pile-up saves
                // the rate: restores unwind to the true pre-flap level.
                self.flap_saved.entry(*s).or_insert(*nic);
                *nic = gbps(*g);
            }
            EventKind::LinkFlapRestore(s) => {
                if let Some(rate) = self.flap_saved.remove(s) {
                    self.topology.servers[s.0].nic_bytes_per_sec = rate;
                }
            }
            EventKind::JobDepart(id) => {
                if let Some((gpus, net)) = self.jobs.remove(id) {
                    for g in &gpus {
                        let dev = self.topology.gpu_mut(*g);
                        dev.colocated_jobs = dev.colocated_jobs.saturating_sub(1).max(1);
                    }
                    if net > 0.0 {
                        let mut touched: Vec<ServerId> =
                            gpus.iter().map(|&g| self.topology.server_of(g)).collect();
                        touched.sort();
                        touched.dedup();
                        for s in touched {
                            for l in [LinkId::Up(s), LinkId::Down(s)] {
                                if let Some(b) = self.background.get_mut(&l) {
                                    *b = (*b - net).max(0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Replay a timeline up to and including time `t` onto a fresh state.
    pub fn at_time(base: ClusterTopology, timeline: &ResourceTimeline, t: f64) -> Self {
        let mut st = ClusterState::new(base);
        for e in timeline.events() {
            if e.time <= t {
                st.apply(&e.kind);
            } else {
                break;
            }
        }
        st
    }
}

/// Stochastic multi-tenant churn: Poisson arrivals of background jobs with
/// exponential durations, random GPU footprints and network usage.
#[derive(Debug, Clone)]
pub struct BackgroundJobGenerator {
    /// Mean arrivals per second.
    pub arrival_rate: f64,
    /// Mean job duration in seconds.
    pub mean_duration: f64,
    /// Max GPUs a background job grabs.
    pub max_gpus: usize,
    /// Network bytes/s a distributed background job consumes per server.
    pub net_bytes_per_sec: f64,
}

impl BackgroundJobGenerator {
    /// Generate a timeline of arrivals/departures over `[0, horizon)`.
    pub fn generate(&self, topo: &ClusterTopology, horizon: f64, seed: u64) -> ResourceTimeline {
        assert!(self.arrival_rate > 0.0 && self.mean_duration > 0.0);
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        let mut next_id = 0u64;
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / self.arrival_rate;
            if t >= horizon {
                break;
            }
            let n = rng.gen_range(1..=self.max_gpus.min(topo.n_gpus()));
            let mut gpus: Vec<GpuId> = (0..topo.n_gpus()).map(GpuId).collect();
            // Fisher-Yates prefix shuffle for the footprint.
            for i in 0..n {
                let j = rng.gen_range(i..gpus.len());
                gpus.swap(i, j);
            }
            gpus.truncate(n);
            let id = BgJobId(next_id);
            next_id += 1;
            let ud: f64 = rng.gen_range(1e-12..1.0);
            let dur = -ud.ln() * self.mean_duration;
            let net = if n > 1 { self.net_bytes_per_sec } else { 0.0 };
            events.push(ResourceEvent {
                time: t,
                kind: EventKind::JobArrive {
                    id,
                    gpus,
                    net_bytes_per_sec: net,
                },
            });
            if t + dur < horizon {
                events.push(ResourceEvent {
                    time: t + dur,
                    kind: EventKind::JobDepart(id),
                });
            }
        }
        ResourceTimeline::new(events)
    }
}

/// A day-night load pattern on top of [`BackgroundJobGenerator`]: arrival
/// intensity follows a raised cosine with the given period, peaking at
/// `peak_factor` x the base rate (shared clusters see exactly this kind of
/// office-hours swell in the study the paper cites, ref. 7).
#[derive(Debug, Clone)]
pub struct DiurnalGenerator {
    /// The underlying job mix.
    pub base: BackgroundJobGenerator,
    /// Seconds per day-night cycle.
    pub period: f64,
    /// Peak-to-base arrival intensity ratio (>= 1).
    pub peak_factor: f64,
}

impl DiurnalGenerator {
    /// Generate a timeline over `[0, horizon)` by thinning a peak-rate
    /// Poisson process against the diurnal intensity profile.
    pub fn generate(&self, topo: &ClusterTopology, horizon: f64, seed: u64) -> ResourceTimeline {
        assert!(self.period > 0.0 && self.peak_factor >= 1.0);
        let peak_rate = self.base.arrival_rate * self.peak_factor;
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        let mut next_id = 500_000u64;
        loop {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / peak_rate;
            if t >= horizon {
                break;
            }
            // Thinning: accept proportionally to the instantaneous rate.
            let phase = (t / self.period) * std::f64::consts::TAU;
            let intensity =
                (1.0 + (self.peak_factor - 1.0) * 0.5 * (1.0 - phase.cos())) / self.peak_factor;
            if rng.gen::<f64>() > intensity {
                continue;
            }
            let n = rng.gen_range(1..=self.base.max_gpus.min(topo.n_gpus()));
            let mut gpus: Vec<GpuId> = (0..topo.n_gpus()).map(GpuId).collect();
            for i in 0..n {
                let j = rng.gen_range(i..gpus.len());
                gpus.swap(i, j);
            }
            gpus.truncate(n);
            let id = BgJobId(next_id);
            next_id += 1;
            let ud: f64 = rng.gen_range(1e-12..1.0);
            let dur = -ud.ln() * self.base.mean_duration;
            let net = if n > 1 {
                self.base.net_bytes_per_sec
            } else {
                0.0
            };
            events.push(ResourceEvent {
                time: t,
                kind: EventKind::JobArrive {
                    id,
                    gpus,
                    net_bytes_per_sec: net,
                },
            });
            if t + dur < horizon {
                events.push(ResourceEvent {
                    time: t + dur,
                    kind: EventKind::JobDepart(id),
                });
            }
        }
        ResourceTimeline::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuKind;

    fn topo() -> ClusterTopology {
        ClusterTopology::single_switch(3, 2, GpuKind::P100, 25.0)
    }

    #[test]
    fn static_state_mirrors_topology() {
        let st = ClusterState::new(topo());
        assert!((st.available_capacity(LinkId::Up(ServerId(0))) - gbps(25.0)).abs() < 1.0);
        assert!((st.effective_flops(GpuId(0)) - GpuKind::P100.peak_flops()).abs() < 1.0);
    }

    #[test]
    fn bandwidth_staircase_replays() {
        let mut tl = ResourceTimeline::empty();
        tl.push(20.0, EventKind::SetAllLinksGbps(25.0));
        tl.push(40.0, EventKind::SetAllLinksGbps(40.0));
        tl.push(60.0, EventKind::SetAllLinksGbps(100.0));
        let base = ClusterTopology::paper_testbed(10.0);
        for (t, want) in [(0.0, 10.0), (20.0, 25.0), (41.0, 40.0), (99.0, 100.0)] {
            let st = ClusterState::at_time(base.clone(), &tl, t);
            assert!(
                (st.available_capacity(LinkId::Up(ServerId(0))) - gbps(want)).abs() < 1.0,
                "t={t}"
            );
        }
    }

    #[test]
    fn job_arrival_and_departure_round_trip() {
        let mut st = ClusterState::new(topo());
        let id = BgJobId(7);
        st.apply(&EventKind::JobArrive {
            id,
            gpus: vec![GpuId(0), GpuId(2)],
            net_bytes_per_sec: gbps(5.0),
        });
        assert_eq!(st.topology.gpu(GpuId(0)).colocated_jobs, 2);
        assert_eq!(st.topology.gpu(GpuId(1)).colocated_jobs, 1);
        assert!(st.available_capacity(LinkId::Up(ServerId(0))) < gbps(25.0));
        st.apply(&EventKind::JobDepart(id));
        assert_eq!(st.topology.gpu(GpuId(0)).colocated_jobs, 1);
        assert!((st.available_capacity(LinkId::Up(ServerId(0))) - gbps(25.0)).abs() < 1.0);
    }

    #[test]
    fn background_traffic_leaves_fair_share_floor() {
        let mut st = ClusterState::new(topo());
        st.apply(&EventKind::SetBackgroundTraffic(ServerId(1), gbps(500.0)));
        let avail = st.available_capacity(LinkId::Up(ServerId(1)));
        assert!(avail > 0.0, "must never be fully starved");
    }

    #[test]
    fn scale_halves_bandwidth() {
        let mut st = ClusterState::new(topo());
        st.apply(&EventKind::ScaleAllLinks(0.5));
        assert!((st.available_capacity(LinkId::Down(ServerId(2))) - gbps(12.5)).abs() < 1.0);
    }

    #[test]
    fn events_between_is_half_open() {
        let mut tl = ResourceTimeline::empty();
        tl.push(1.0, EventKind::SetAllLinksGbps(25.0));
        tl.push(2.0, EventKind::SetAllLinksGbps(40.0));
        assert_eq!(tl.events_between(0.0, 1.0).len(), 1);
        assert_eq!(tl.events_between(1.0, 2.0).len(), 1);
        assert_eq!(tl.events_between(2.0, 9.0).len(), 0);
        assert_eq!(tl.next_event_after(1.0), Some(2.0));
        assert_eq!(tl.next_event_after(2.0), None);
    }

    #[test]
    fn coincident_events_keep_insertion_order() {
        // Regression: `push` used to re-sort the whole vec; the sort was
        // stable so this passed by accident. Now insertion order at equal
        // timestamps is an explicit contract that fault + bandwidth events
        // at the same instant rely on.
        let mut tl = ResourceTimeline::empty();
        tl.push(5.0, EventKind::SetAllLinksGbps(1.0));
        tl.push(2.0, EventKind::WorkerFail(GpuId(0)));
        tl.push(5.0, EventKind::SetAllLinksGbps(2.0));
        tl.push(5.0, EventKind::WorkerRecover(GpuId(0)));
        tl.push(1.0, EventKind::SetAllLinksGbps(9.0));
        let at5: Vec<_> = tl.events_between(2.0, 5.0).iter().collect();
        assert_eq!(at5.len(), 3);
        assert!(matches!(at5[0].kind, EventKind::SetAllLinksGbps(g) if g == 1.0));
        assert!(matches!(at5[1].kind, EventKind::SetAllLinksGbps(g) if g == 2.0));
        assert!(matches!(at5[2].kind, EventKind::WorkerRecover(GpuId(0))));
        // Replay applies them in the same order: the last SetAllLinksGbps
        // wins, and the worker ends alive.
        let st = ClusterState::at_time(topo(), &tl, 5.0);
        assert!((st.available_capacity(LinkId::Up(ServerId(0))) - gbps(2.0)).abs() < 1.0);
        assert!(st.is_available(GpuId(0)));
        assert_eq!(tl.next_event_after(2.0), Some(5.0));
    }

    #[test]
    fn worker_failure_leaves_availability_view() {
        let mut st = ClusterState::new(topo());
        assert_eq!(st.available_workers().len(), 6);
        st.apply(&EventKind::WorkerFail(GpuId(2)));
        assert!(!st.is_available(GpuId(2)));
        assert_eq!(st.effective_flops(GpuId(2)), 0.0);
        assert_eq!(st.memory_bytes(GpuId(2)), 0.0);
        assert!(st.memory_bytes(GpuId(1)) > 0.0);
        assert_eq!(st.failed_workers(), vec![GpuId(2)]);
        let avail = st.available_of(&[GpuId(1), GpuId(2), GpuId(3)]);
        assert_eq!(avail, vec![GpuId(1), GpuId(3)]);
        st.apply(&EventKind::WorkerRecover(GpuId(2)));
        assert!(st.is_available(GpuId(2)));
        assert!(st.effective_flops(GpuId(2)) > 0.0);
        assert_eq!(st.available_workers().len(), 6);
    }

    #[test]
    fn link_flap_restores_pre_flap_rate_across_interleaved_events() {
        let mut st = ClusterState::new(topo());
        st.apply(&EventKind::SetServerLinkGbps(ServerId(1), 40.0));
        st.apply(&EventKind::LinkFlapDown(ServerId(1), 0.5));
        assert!((st.available_capacity(LinkId::Up(ServerId(1))) - gbps(0.5)).abs() < 1.0);
        // A second down before the restore must not clobber the saved rate.
        st.apply(&EventKind::LinkFlapDown(ServerId(1), 0.25));
        st.apply(&EventKind::LinkFlapRestore(ServerId(1)));
        assert!((st.available_capacity(LinkId::Up(ServerId(1))) - gbps(40.0)).abs() < 1.0);
        // Restore without a matching down is a no-op.
        st.apply(&EventKind::LinkFlapRestore(ServerId(1)));
        assert!((st.available_capacity(LinkId::Up(ServerId(1))) - gbps(40.0)).abs() < 1.0);
    }

    #[test]
    fn gpu_sharing_override_and_failure_injection() {
        let mut st = ClusterState::new(topo());
        st.apply(&EventKind::SetGpuSharing(GpuId(3), 1000));
        assert!(st.effective_flops(GpuId(3)) < st.effective_flops(GpuId(0)) / 100.0);
        st.apply(&EventKind::SetGpuSharing(GpuId(3), 0));
        assert_eq!(st.topology.gpu(GpuId(3)).colocated_jobs, 1);
    }

    #[test]
    fn diurnal_generator_concentrates_arrivals_at_the_peak() {
        let g = DiurnalGenerator {
            base: BackgroundJobGenerator {
                arrival_rate: 0.5,
                mean_duration: 10.0,
                max_gpus: 3,
                net_bytes_per_sec: 0.0,
            },
            period: 200.0,
            peak_factor: 6.0,
        };
        let t = topo();
        let tl = g.generate(&t, 1000.0, 9);
        // Arrivals in the peak half-cycle (phase near pi) vs the trough.
        let in_window = |lo: f64, hi: f64| {
            tl.events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::JobArrive { .. }))
                .filter(|e| {
                    let phase = (e.time % 200.0) / 200.0;
                    phase >= lo && phase < hi
                })
                .count()
        };
        let peak = in_window(0.25, 0.75);
        let trough = in_window(0.0, 0.25) + in_window(0.75, 1.0);
        assert!(
            peak > 2 * trough,
            "diurnal peak {peak} should dwarf trough {trough}"
        );
        // Deterministic by seed.
        let tl2 = g.generate(&t, 1000.0, 9);
        assert_eq!(tl.events().len(), tl2.events().len());
    }

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let g = BackgroundJobGenerator {
            arrival_rate: 0.1,
            mean_duration: 30.0,
            max_gpus: 4,
            net_bytes_per_sec: gbps(2.0),
        };
        let t = topo();
        let a = g.generate(&t, 600.0, 42);
        let b = g.generate(&t, 600.0, 42);
        assert_eq!(a.events().len(), b.events().len());
        assert!(!a.events().is_empty());
        assert!(a.events().iter().all(|e| e.time < 600.0));
        // Replaying the whole thing never drops a GPU below 1 job.
        let st = ClusterState::at_time(t, &a, 600.0);
        assert!(st.topology.gpus.iter().all(|g| g.colocated_jobs >= 1));
    }
}
