//! # ap-cluster — shared GPU cluster substrate
//!
//! This crate models the hardware environment AutoPipe runs in: a small
//! cluster of multi-GPU servers behind a single switch, shared by multiple
//! jobs. It provides
//!
//! * device models ([`gpu`]) — GPU kinds with peak throughput and
//!   time-sliced contention between colocated jobs,
//! * a topology model ([`topology`]) — servers, NICs, a single switch, and
//!   link capacities (the paper's testbed is 5 servers x 2 P100 behind one
//!   Mellanox SN2100),
//! * max-min fair bandwidth sharing between concurrent flows
//!   ([`bandwidth`]),
//! * resource dynamics ([`dynamics`]) — timelines of bandwidth changes and
//!   background-job arrivals/departures, both scripted and stochastic,
//! * seeded fault injection ([`faults`]) — fail-stop worker outages
//!   (MTBF/MTTR) and NIC flap bursts that compile into the same
//!   timelines, and
//! * a resource-change detector ([`detector`]) matching AutoPipe's monitor
//!   component (§4.1 of the paper: "a resource changing detector, which is
//!   used to monitor the available bandwidth and GPUs").
//!
//! Everything is deterministic given a seed; time is in seconds and
//! bandwidth in bytes/second (use [`units::gbps`] to convert).

pub mod bandwidth;
pub mod detector;
pub mod dynamics;
pub mod faults;
pub mod gpu;
pub mod topology;
pub mod units;

pub use bandwidth::{max_min_fair_rates, Flow};
pub use detector::{ChangeKind, DetectorConfig, ResourceChange, ResourceChangeDetector};
pub use dynamics::{
    BackgroundJobGenerator, ClusterState, DiurnalGenerator, EventKind, ResourceEvent,
    ResourceTimeline,
};
pub use faults::{FaultEvent, FaultPlan, FaultPlanConfig};
pub use gpu::{Gpu, GpuId, GpuKind};
pub use topology::{ClusterTopology, LinkId, Server, ServerId};
pub use units::{gbps, to_gbps};
