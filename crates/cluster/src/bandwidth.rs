//! Max-min fair bandwidth allocation.
//!
//! PipeDream's planner assumes a hierarchical topology with identical
//! bandwidth per level (§3.1 Obs. 2 calls this out as an oversimplification).
//! The simulator instead computes the rate every concurrent flow actually
//! gets with progressive filling (water-filling) over the real link
//! capacities, which is the standard fluid approximation of per-flow fair
//! queueing on a single-switch fabric.

use std::collections::HashMap;

use crate::topology::LinkId;

/// A flow competing for bandwidth: a set of links it traverses plus an
/// optional demand cap (bytes/s). `demand = f64::INFINITY` means elastic.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Links traversed (empty = node-local, gets `local_rate`).
    pub links: Vec<LinkId>,
    /// Application-level rate cap in bytes/s.
    pub demand: f64,
}

impl Flow {
    /// An elastic flow over the given path.
    pub fn elastic(links: Vec<LinkId>) -> Self {
        Flow {
            links,
            demand: f64::INFINITY,
        }
    }
}

/// Compute max-min fair rates (bytes/s) for `flows` over links with the
/// given capacities. `capacity(link)` must return the free capacity of the
/// link; `local_rate` is assigned to flows with an empty path.
///
/// Progressive filling: raise all unfrozen flows' rates equally until a
/// link saturates or a flow hits its demand; freeze those and repeat.
pub fn max_min_fair_rates<F>(flows: &[Flow], capacity: F, local_rate: f64) -> Vec<f64>
where
    F: Fn(LinkId) -> f64,
{
    let n = flows.len();
    let mut rates = vec![0.0_f64; n];
    if n == 0 {
        return rates;
    }

    // Residual capacity per link and which unfrozen flows cross it.
    let mut residual: HashMap<LinkId, f64> = HashMap::new();
    for f in flows {
        for &l in &f.links {
            residual.entry(l).or_insert_with(|| capacity(l));
        }
    }

    let mut frozen = vec![false; n];
    // Local flows are only limited by their demand and the local fabric.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rates[i] = f.demand.min(local_rate);
            frozen[i] = true;
        }
    }

    loop {
        let active: Vec<usize> = (0..n).filter(|&i| !frozen[i]).collect();
        if active.is_empty() {
            break;
        }

        // The smallest per-flow increment that saturates some link.
        let mut min_incr = f64::INFINITY;
        for (&l, &cap) in &residual {
            let crossers = active
                .iter()
                .filter(|&&i| flows[i].links.contains(&l))
                .count();
            if crossers > 0 && cap.is_finite() {
                min_incr = min_incr.min(cap / crossers as f64);
            }
        }
        // Or the smallest remaining demand.
        for &i in &active {
            let remaining = flows[i].demand - rates[i];
            min_incr = min_incr.min(remaining);
        }
        if !min_incr.is_finite() {
            // All active flows are elastic and cross no finite link.
            for &i in &active {
                rates[i] = f64::INFINITY;
            }
            break;
        }
        debug_assert!(min_incr >= -1e-9, "negative fill increment");
        let incr = min_incr.max(0.0);

        for &i in &active {
            rates[i] += incr;
            for &l in &flows[i].links {
                if let Some(c) = residual.get_mut(&l) {
                    *c -= incr;
                }
            }
        }

        // Freeze flows at demand or on saturated links.
        for &i in &active {
            let at_demand = rates[i] >= flows[i].demand - 1e-9;
            let on_saturated = flows[i]
                .links
                .iter()
                .any(|l| residual.get(l).is_some_and(|&c| c <= 1e-6));
            if at_demand || on_saturated {
                frozen[i] = true;
            }
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ServerId;
    use crate::units::gbps;

    fn up(s: usize) -> LinkId {
        LinkId::Up(ServerId(s))
    }
    fn down(s: usize) -> LinkId {
        LinkId::Down(ServerId(s))
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let flows = vec![Flow::elastic(vec![up(0), down(1)])];
        let r = max_min_fair_rates(&flows, |_| gbps(10.0), gbps(96.0));
        assert!((r[0] - gbps(10.0)).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_common_uplink_evenly() {
        let flows = vec![
            Flow::elastic(vec![up(0), down(1)]),
            Flow::elastic(vec![up(0), down(2)]),
        ];
        let r = max_min_fair_rates(&flows, |_| gbps(10.0), gbps(96.0));
        assert!((r[0] - gbps(5.0)).abs() < 1.0);
        assert!((r[1] - gbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn demand_capped_flow_releases_bandwidth() {
        let flows = vec![
            Flow {
                links: vec![up(0), down(1)],
                demand: gbps(2.0),
            },
            Flow::elastic(vec![up(0), down(2)]),
        ];
        let r = max_min_fair_rates(&flows, |_| gbps(10.0), gbps(96.0));
        assert!((r[0] - gbps(2.0)).abs() < 1.0);
        assert!((r[1] - gbps(8.0)).abs() < 1.0);
    }

    #[test]
    fn local_flow_uses_local_fabric() {
        let flows = vec![Flow::elastic(vec![])];
        let r = max_min_fair_rates(&flows, |_| gbps(10.0), 12.0e9);
        assert!((r[0] - 12.0e9).abs() < 1.0);
    }

    #[test]
    fn heterogeneous_capacities_respected() {
        // Flow A crosses a 10G uplink; flow B crosses a 100G uplink but
        // shares flow A's 25G downlink.
        let caps = |l: LinkId| match l {
            LinkId::Up(ServerId(0)) => gbps(10.0),
            LinkId::Up(ServerId(1)) => gbps(100.0),
            LinkId::Down(ServerId(2)) => gbps(25.0),
            _ => gbps(100.0),
        };
        let flows = vec![
            Flow::elastic(vec![up(0), down(2)]),
            Flow::elastic(vec![up(1), down(2)]),
        ];
        let r = max_min_fair_rates(&flows, caps, gbps(96.0));
        // A is limited by its 10G uplink; B picks up the rest of the 25G
        // downlink.
        assert!((r[0] - gbps(10.0)).abs() < gbps(0.01));
        assert!((r[1] - gbps(15.0)).abs() < gbps(0.01));
    }

    #[test]
    fn empty_flow_set_is_fine() {
        let r = max_min_fair_rates(&[], |_| gbps(10.0), gbps(96.0));
        assert!(r.is_empty());
    }

    #[test]
    fn total_on_link_never_exceeds_capacity() {
        let flows: Vec<Flow> = (0..7)
            .map(|i| Flow::elastic(vec![up(0), down(1 + i % 3)]))
            .collect();
        let r = max_min_fair_rates(&flows, |_| gbps(40.0), gbps(96.0));
        let total: f64 = r.iter().sum();
        assert!(total <= gbps(40.0) + 1.0, "uplink oversubscribed: {total}");
    }
}
