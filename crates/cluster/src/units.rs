//! Unit helpers. All bandwidths inside the crate are **bytes per second**;
//! all times are **seconds**; all data sizes are **bytes**.

/// Convert a link speed in gigabits per second to bytes per second.
#[inline]
pub fn gbps(g: f64) -> f64 {
    g * 1e9 / 8.0
}

/// Convert a rate in bytes per second back to gigabits per second.
#[inline]
pub fn to_gbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e9
}

/// Mebibytes to bytes.
#[inline]
pub fn mib(m: f64) -> f64 {
    m * 1024.0 * 1024.0
}

/// TeraFLOPs to FLOPs.
#[inline]
pub fn tflops(t: f64) -> f64 {
    t * 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_round_trips() {
        for g in [10.0, 25.0, 40.0, 100.0] {
            assert!((to_gbps(gbps(g)) - g).abs() < 1e-9);
        }
    }

    #[test]
    fn ten_gbps_is_1_25_gigabytes() {
        assert!((gbps(10.0) - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn mib_and_tflops_scale() {
        assert_eq!(mib(1.0), 1048576.0);
        assert_eq!(tflops(2.0), 2e12);
    }
}
