//! Seeded fault injection: fail-stop workers and flapping NICs.
//!
//! The cluster-churn study the paper cites (ref. 7) lists *failures* as a
//! churn source distinct from the contention fluctuations of §3.1. This
//! module turns that into a first-class, reproducible input: a
//! [`FaultPlan`] is a schedule of [`FaultEvent`]s — worker outages with
//! sampled MTBF/MTTR and NIC flap bursts — generated deterministically
//! from a seed and compiled into the ordinary [`ResourceTimeline`] the
//! simulator already consumes. The fault model is **fail-stop**: a failed
//! worker does no work, holds no state, and is invisible to planners via
//! [`crate::ClusterState`]'s availability view until it recovers (cold).

use ap_rng::Rng;

use crate::dynamics::{EventKind, ResourceTimeline};
use crate::gpu::GpuId;
use crate::topology::{ClusterTopology, ServerId};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// `worker` dies fail-stop at `at`; if `until` is set it recovers then
    /// (cold — it holds no model state), otherwise it stays dead for the
    /// rest of the run.
    WorkerOutage {
        /// The victim.
        worker: GpuId,
        /// Failure time, seconds.
        at: f64,
        /// Recovery time, if within the horizon.
        until: Option<f64>,
    },
    /// `server`'s NIC flaps: `count` times, starting at `at`, it drops to
    /// `down_gbps` for half of each `period` and recovers for the other
    /// half.
    LinkFlap {
        /// The server whose NIC flaps.
        server: ServerId,
        /// Degraded rate while down, Gbps.
        down_gbps: f64,
        /// Start of the first down phase, seconds.
        at: f64,
        /// Seconds per down+up cycle.
        period: f64,
        /// Number of down+up cycles.
        count: usize,
    },
}

/// Tuning for [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Mean time between worker failures, cluster-wide (exponential), s.
    pub mtbf: f64,
    /// Mean time to recover a failed worker (exponential), s. `f64::INFINITY`
    /// makes every failure permanent.
    pub mttr: f64,
    /// At most this many workers down at once; failure draws that would
    /// exceed the cap are skipped (the job must stay schedulable).
    pub max_concurrent_failures: usize,
    /// Mean time between NIC flap bursts (exponential); `f64::INFINITY`
    /// disables flapping.
    pub flap_mtbf: f64,
    /// Degraded NIC rate during a flap, Gbps.
    pub flap_down_gbps: f64,
    /// Seconds per flap cycle.
    pub flap_period: f64,
    /// Flap cycles per burst.
    pub flap_count: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            mtbf: 60.0,
            mttr: 30.0,
            max_concurrent_failures: 1,
            flap_mtbf: 45.0,
            flap_down_gbps: 1.0,
            flap_period: 2.0,
            flap_count: 3,
        }
    }
}

/// A deterministic, seeded schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in start-time order.
    pub faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Sample a fault schedule over `[0, horizon)`.
    ///
    /// Fully deterministic: the same `(topo, cfg, horizon, seed)` yields a
    /// byte-identical plan on every run and under any thread count —
    /// worker outages and link flaps draw from independent
    /// [`Rng::stream`]s, and victims are picked from id-ordered worker
    /// lists.
    pub fn generate(
        topo: &ClusterTopology,
        cfg: &FaultPlanConfig,
        horizon: f64,
        seed: u64,
    ) -> FaultPlan {
        assert!(
            cfg.mtbf > 0.0 && cfg.mttr > 0.0,
            "MTBF/MTTR must be positive"
        );
        assert!(horizon > 0.0, "horizon must be positive");
        let mut faults = Vec::new();

        // Worker outages: a Poisson process of failures over the cluster.
        let mut rng = Rng::stream(seed, 0);
        // (worker, recovery time) of outstanding outages, insertion order.
        let mut down: Vec<(GpuId, f64)> = Vec::new();
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, cfg.mtbf);
            if t >= horizon {
                break;
            }
            down.retain(|&(_, until)| until > t);
            if down.len() >= cfg.max_concurrent_failures.max(1) {
                continue; // cap reached: this draw fizzles
            }
            let alive: Vec<GpuId> = (0..topo.n_gpus())
                .map(GpuId)
                .filter(|g| down.iter().all(|&(w, _)| w != *g))
                .collect();
            let Some(&victim) = rng.choose(&alive) else {
                continue;
            };
            let until = if cfg.mttr.is_finite() {
                Some(t + exponential(&mut rng, cfg.mttr))
            } else {
                None
            };
            down.push((victim, until.unwrap_or(f64::INFINITY)));
            faults.push(FaultEvent::WorkerOutage {
                worker: victim,
                at: t,
                until: until.filter(|&u| u < horizon),
            });
        }

        // Link flaps: an independent stream so toggling one knob does not
        // reshuffle the other's draws.
        if cfg.flap_mtbf.is_finite() && cfg.flap_count > 0 {
            let mut rng = Rng::stream(seed, 1);
            let mut t = 0.0;
            loop {
                t += exponential(&mut rng, cfg.flap_mtbf);
                if t >= horizon {
                    break;
                }
                let server = ServerId(rng.gen_range(0..topo.servers.len()));
                faults.push(FaultEvent::LinkFlap {
                    server,
                    down_gbps: cfg.flap_down_gbps,
                    at: t,
                    period: cfg.flap_period,
                    count: cfg.flap_count,
                });
            }
        }

        faults.sort_by(|a, b| start_of(a).total_cmp(&start_of(b)));
        FaultPlan { faults }
    }

    /// Compile the plan into timeline events. Events are pushed in
    /// timestamp order, so coincident faults keep plan order (the
    /// timeline's same-timestamp contract).
    pub fn compile_into(&self, timeline: &mut ResourceTimeline) {
        let mut pending: Vec<(f64, EventKind)> = Vec::new();
        for f in &self.faults {
            match f {
                FaultEvent::WorkerOutage { worker, at, until } => {
                    pending.push((*at, EventKind::WorkerFail(*worker)));
                    if let Some(u) = until {
                        pending.push((*u, EventKind::WorkerRecover(*worker)));
                    }
                }
                FaultEvent::LinkFlap {
                    server,
                    down_gbps,
                    at,
                    period,
                    count,
                } => {
                    for k in 0..*count {
                        let t0 = at + *period * k as f64;
                        pending.push((t0, EventKind::LinkFlapDown(*server, *down_gbps)));
                        pending.push((t0 + period * 0.5, EventKind::LinkFlapRestore(*server)));
                    }
                }
            }
        }
        // Stable by time: ties keep the order built above.
        pending.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, kind) in pending {
            timeline.push(t, kind);
        }
    }

    /// Convenience: a fresh timeline holding only this plan's events.
    pub fn to_timeline(&self) -> ResourceTimeline {
        let mut tl = ResourceTimeline::empty();
        self.compile_into(&mut tl);
        tl
    }
}

/// Exponential variate with the given mean.
fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() * mean
}

/// Start time of a fault (sort key).
fn start_of(f: &FaultEvent) -> f64 {
    match f {
        FaultEvent::WorkerOutage { at, .. } | FaultEvent::LinkFlap { at, .. } => *at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::ClusterState;
    use crate::gpu::GpuKind;

    fn topo() -> ClusterTopology {
        ClusterTopology::single_switch(4, 2, GpuKind::P100, 25.0)
    }

    #[test]
    fn generation_is_deterministic_by_seed() {
        let t = topo();
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(&t, &cfg, 300.0, 11);
        let b = FaultPlan::generate(&t, &cfg, 300.0, 11);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty(), "300 s at 60 s MTBF should fault");
        let c = FaultPlan::generate(&t, &cfg, 300.0, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn outages_respect_the_concurrency_cap() {
        let t = topo();
        let cfg = FaultPlanConfig {
            mtbf: 2.0,
            mttr: 50.0,
            max_concurrent_failures: 2,
            flap_mtbf: f64::INFINITY,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&t, &cfg, 400.0, 3);
        // Sweep the compiled timeline: never more than 2 down at once, and
        // no worker fails while already down.
        let tl = plan.to_timeline();
        let mut st = ClusterState::new(t.clone());
        for e in tl.events() {
            if let EventKind::WorkerFail(g) = e.kind {
                assert!(st.is_available(g), "{g:?} failed while already down");
            }
            st.apply(&e.kind);
            assert!(st.failed_workers().len() <= 2);
        }
    }

    #[test]
    fn flap_bursts_compile_to_matched_down_restore_pairs() {
        let plan = FaultPlan {
            faults: vec![FaultEvent::LinkFlap {
                server: ServerId(1),
                down_gbps: 0.5,
                at: 10.0,
                period: 2.0,
                count: 3,
            }],
        };
        let tl = plan.to_timeline();
        let downs = tl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkFlapDown(..)))
            .count();
        let ups = tl
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LinkFlapRestore(..)))
            .count();
        assert_eq!((downs, ups), (3, 3));
        // After the full burst the NIC is back at its base rate.
        let st = ClusterState::at_time(topo(), &tl, 100.0);
        let base = ClusterState::new(topo());
        for s in 0..topo().servers.len() {
            use crate::topology::LinkId;
            let l = LinkId::Up(ServerId(s));
            assert!((st.available_capacity(l) - base.available_capacity(l)).abs() < 1.0);
        }
    }

    #[test]
    fn permanent_failures_never_recover() {
        let t = topo();
        let cfg = FaultPlanConfig {
            mtbf: 20.0,
            mttr: f64::INFINITY,
            flap_mtbf: f64::INFINITY,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&t, &cfg, 500.0, 7);
        assert!(plan
            .faults
            .iter()
            .all(|f| matches!(f, FaultEvent::WorkerOutage { until: None, .. })));
        let tl = plan.to_timeline();
        assert!(!tl
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerRecover(_))));
    }
}
