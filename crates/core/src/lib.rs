//! # autopipe — self-adaptive configuration of pipeline parallelism
//!
//! The reproduction of the paper's contribution (AutoPipe, ICPP'24): a
//! control layer that keeps a pipeline-parallel training job's work
//! partition matched to the *current* state of a shared GPU cluster.
//!
//! ## Architecture (paper §4)
//!
//! The control loop is an explicit pipeline of stages (the traits in
//! [`controller::stages`]), composed by [`controller::AutoPipeController`]
//! and journaled at every step:
//!
//! ```text
//!  ┌───────────────────── AutoPipeController (decision pipeline) ─────────────────────┐
//!  │                                                                                  │
//!  │ Verify ─▶ Observe ─▶ Detect ─▶ Enumerate ─▶ Score ─▶ Arbitrate ─▶ Switch         │
//!  │ revert/   Profiler,  Resource  two-worker   MetaNet   RL /        plan, price,   │
//!  │ trust     Table-1    Change-   moves        (LSTM+FC) threshold   fine-grained   │
//!  │           history    Detector  (O(L²))      /analytic             pause          │
//!  │    │          │          │          │           │         │          │           │
//!  │    └──────────┴──────────┴──── DecisionJournal (typed events) ───────┘           │
//!  └──────────────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`metrics`] — the profiling metrics of Table 1 and their encoding into
//!   fixed-width feature vectors;
//! * [`profiler`] — non-intrusive measurement: bandwidth from the last
//!   iteration's transfers, per-layer times reconstructed from constant
//!   ratios (§4.2 "Profiling the training");
//! * [`meta_net`] — the LSTM + fully-connected speed predictor (Figure 7),
//!   trained offline across environments and adapted online by fine-tuning
//!   the head (§4.3 "Offline training and online adapting");
//! * [`switch_cost`] — predicted cost of a partition switch;
//! * [`arbiter`] — the RL model (two hidden layers, 32 and 16 neurons)
//!   deciding whether the predicted gain justifies the switch;
//! * [`controller`] — the staged decision pipeline, its default stage
//!   implementations, the [`controller::DecisionJournal`] audit trail, and
//!   a dynamic-scenario runner that produces the paper's
//!   speed-vs-iteration curves (with an optional merged chrome trace);
//! * [`enhanced`] — AutoPipe-enhanced DAPPLE / Chimera / PipeDream-2BW
//!   (Figure 13), built on the same Enumerate/Score stages;
//! * [`multi_job`] — best-response dynamics over several jobs sharing the
//!   cluster, likewise built on the stage interfaces.

pub mod arbiter;
pub mod controller;
pub mod enhanced;
pub mod json;
pub mod meta_net;
pub mod metrics;
pub mod multi_job;
pub mod profiler;
pub mod switch_cost;

pub use arbiter::{Arbiter, ArbiterInput, ArbiterMode};
pub use controller::{
    AutoPipeConfig, AutoPipeController, Decision, DecisionEvent, DecisionJournal, DecisionRecord,
    KeepReason, ScenarioResult, Scorer, SwitchMode,
};
pub use enhanced::enhanced_throughput;
pub use meta_net::{MetaNet, MetaNetConfig, TrainingSample};
pub use metrics::{FeatureEncoder, ProfilingMetrics, DYNAMIC_DIM, STATIC_DIM};
pub use multi_job::{
    best_response_rounds, HillClimbPlanner, JobSpec, MultiJobEnv, MultiJobOutcome,
};
pub use profiler::{profile_from_metrics, Profiler};
pub use switch_cost::SwitchCostModel;
