//! Non-intrusive runtime profiler (§4.2 "Profiling the training").
//!
//! "Our profiler works on the idea of not interfering with training. For
//! the available bandwidth of each worker, we measure it from the
//! communication speed of the last iteration. We observe that the ratio of
//! the computation time of each layer is almost constant. Therefore, we do
//! not need to record all FP_ij and BP_ij. We measure the ratios before
//! training, and obtain the speed of the certain layer ... from the last
//! iteration. Then we calculate the FP_ij and BP_ij ... based on the speed
//! of layer j and the ratios."
//!
//! The simulator gives us the ground-truth cluster state; the profiler
//! *measures* it the way the real system would: one probe layer per worker
//! per iteration, everything else reconstructed from pre-training ratios,
//! with multiplicative measurement noise.

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;
use ap_pipesim::sync::worker_bandwidth;
use ap_rng::Rng;

use crate::metrics::ProfilingMetrics;

/// Runtime profiler for one job.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Pre-training per-layer time ratios (unit: seconds on a reference
    /// 1 FLOP/s device — i.e. effective FLOPs).
    fp_ratio: Vec<f64>,
    bp_ratio: Vec<f64>,
    /// Static tensor sizes.
    out_bytes: Vec<f64>,
    grad_bytes: Vec<f64>,
    param_bytes: Vec<f64>,
    /// Which layer each worker probes this iteration (rotates).
    probe_layer: usize,
    /// Multiplicative 1-sigma measurement noise (e.g. 0.03 = 3%).
    pub noise: f64,
    rng: Rng,
}

impl Profiler {
    /// Build from the pre-training profile pass.
    pub fn new(profile: &ModelProfile, noise: f64, seed: u64) -> Self {
        Profiler {
            fp_ratio: profile.eff_flops_fwd.clone(),
            bp_ratio: profile.eff_flops_bwd.clone(),
            out_bytes: profile.out_bytes.clone(),
            grad_bytes: profile.grad_bytes.clone(),
            param_bytes: profile.param_bytes.clone(),
            probe_layer: 0,
            noise,
            rng: Rng::seed_from_u64(seed),
        }
    }

    fn noisy(&mut self, v: f64) -> f64 {
        if self.noise == 0.0 {
            return v;
        }
        let eps: f64 = self.rng.gen_range(-1.0..1.0) * self.noise;
        v * (1.0 + eps)
    }

    /// Take one iteration's measurements of `workers` in `state` and
    /// return a full Table 1 snapshot.
    ///
    /// Per worker we "time" one probe layer (its true duration under the
    /// current effective FLOP/s, with noise) and scale every other layer by
    /// the constant ratios; bandwidth comes from the last iteration's
    /// transfer rate (the current fair-share availability, with noise).
    pub fn observe(&mut self, workers: &[GpuId], state: &ClusterState) -> ProfilingMetrics {
        let l = self.fp_ratio.len();
        let n = workers.len();
        let probe = self.probe_layer % l;
        self.probe_layer = self.probe_layer.wrapping_add(1);

        let mut fp_time = Vec::with_capacity(n);
        let mut bp_time = Vec::with_capacity(n);
        let mut bandwidth = Vec::with_capacity(n);
        for &w in workers {
            let flops = state.effective_flops(w);
            // Measured probe duration -> implied device speed.
            let measured = self.noisy(self.fp_ratio[probe] / flops);
            let implied_flops = self.fp_ratio[probe] / measured;
            fp_time.push(self.fp_ratio.iter().map(|r| r / implied_flops).collect());
            bp_time.push(self.bp_ratio.iter().map(|r| r / implied_flops).collect());
            bandwidth.push(self.noisy(worker_bandwidth(w, state)));
        }
        ProfilingMetrics {
            n_layers: l,
            n_workers: n,
            out_bytes: self.out_bytes.clone(),
            grad_bytes: self.grad_bytes.clone(),
            param_bytes: self.param_bytes.clone(),
            bandwidth,
            fp_time,
            bp_time,
        }
    }
}

/// Rebuild a planner-facing [`ModelProfile`] from *measured* Table-1
/// metrics — the inverse of `static_metrics_from_profile`, and the path by
/// which ground truth from the execution runtime (ap-exec) enters the
/// planner/simulator stack.
///
/// Per-layer fwd/bwd times are averaged across workers and converted back
/// into effective FLOPs against `ref_flops`, so
/// `profile.fp_time(j, ref_flops)` reproduces the measured mean exactly.
/// Byte columns are copied verbatim (they were measured off the wire).
pub fn profile_from_metrics(
    name: &str,
    batch: usize,
    m: &ProfilingMetrics,
    ref_flops: f64,
) -> Result<ModelProfile, String> {
    m.validate()?;
    if ref_flops.is_nan() || ref_flops <= 0.0 {
        return Err(format!("ref_flops must be positive, got {ref_flops}"));
    }
    let n = m.n_layers;
    let w = m.n_workers as f64;
    let mean = |per_worker: &[Vec<f64>], j: usize| -> f64 {
        per_worker.iter().map(|t| t[j]).sum::<f64>() / w
    };
    let eff_fwd: Vec<f64> = (0..n).map(|j| mean(&m.fp_time, j) * ref_flops).collect();
    let eff_bwd: Vec<f64> = (0..n).map(|j| mean(&m.bp_time, j) * ref_flops).collect();
    Ok(ModelProfile::from_raw(
        name,
        batch,
        m.out_bytes.clone(),
        m.grad_bytes.clone(),
        m.param_bytes.clone(),
        eff_fwd,
        eff_bwd,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{gbps, ClusterTopology};
    use ap_models::{synthetic_skewed, ModelProfile};

    fn setup() -> (ClusterState, ModelProfile) {
        let topo = ClusterTopology::single_switch(3, 1, GpuKind::P100, 25.0);
        let profile = ModelProfile::with_batch(&synthetic_skewed(5, 1e9, 1e6, 2e6), 16);
        (ClusterState::new(topo), profile)
    }

    #[test]
    fn noiseless_observation_matches_ground_truth() {
        let (st, p) = setup();
        let mut prof = Profiler::new(&p, 0.0, 1);
        let workers: Vec<GpuId> = (0..3).map(GpuId).collect();
        let m = prof.observe(&workers, &st);
        assert!(m.validate().is_ok());
        for w in 0..3 {
            assert!((m.bandwidth[w] - gbps(25.0)).abs() < 1.0);
            for j in 0..5 {
                let want = p.fp_time(j, GpuKind::P100.peak_flops());
                assert!((m.fp_time[w][j] - want).abs() / want < 1e-9);
            }
        }
    }

    #[test]
    fn ratio_reconstruction_tracks_contention() {
        let (mut st, p) = setup();
        st.topology.gpu_mut(GpuId(1)).colocated_jobs = 2;
        let mut prof = Profiler::new(&p, 0.0, 1);
        let workers: Vec<GpuId> = (0..3).map(GpuId).collect();
        let m = prof.observe(&workers, &st);
        // Worker 1 is time-shared: every reconstructed layer time doubles.
        for j in 0..5 {
            assert!((m.fp_time[1][j] / m.fp_time[0][j] - 2.0).abs() < 1e-9);
            assert!((m.bp_time[1][j] / m.bp_time[0][j] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let (st, p) = setup();
        let workers: Vec<GpuId> = (0..3).map(GpuId).collect();
        let mut a = Profiler::new(&p, 0.05, 42);
        let mut b = Profiler::new(&p, 0.05, 42);
        let ma = a.observe(&workers, &st);
        let mb = b.observe(&workers, &st);
        assert_eq!(ma.bandwidth, mb.bandwidth, "same seed, same noise");
        for w in 0..3 {
            let rel = (ma.bandwidth[w] - gbps(25.0)).abs() / gbps(25.0);
            assert!(rel <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn measured_metrics_round_trip_into_a_profile() {
        let (st, p) = setup();
        let mut prof = Profiler::new(&p, 0.0, 3);
        let workers: Vec<GpuId> = (0..3).map(GpuId).collect();
        let m = prof.observe(&workers, &st);
        let ref_flops = GpuKind::P100.peak_flops();
        let q = profile_from_metrics(&p.name, p.batch, &m, ref_flops).unwrap();
        // Inverse property: reconstructed profile reproduces the measured
        // mean layer times at the reference speed, and carries the byte
        // columns through untouched.
        for j in 0..p.n_layers() {
            let want: f64 = (0..3).map(|w| m.fp_time[w][j]).sum::<f64>() / 3.0;
            assert!((q.fp_time(j, ref_flops) - want).abs() / want < 1e-12);
            let want_b: f64 = (0..3).map(|w| m.bp_time[w][j]).sum::<f64>() / 3.0;
            assert!((q.bp_time(j, ref_flops) - want_b).abs() / want_b < 1e-12);
        }
        assert_eq!(q.out_bytes, m.out_bytes);
        assert_eq!(q.param_bytes, m.param_bytes);
        assert!(profile_from_metrics("x", 1, &m, 0.0).is_err());
    }

    #[test]
    fn probe_layer_rotates() {
        let (st, p) = setup();
        let workers: Vec<GpuId> = (0..3).map(GpuId).collect();
        let mut prof = Profiler::new(&p, 0.0, 7);
        // Rotation is internal; observable effect: repeated noiseless
        // observations stay exact regardless of which layer was probed.
        for _ in 0..7 {
            let m = prof.observe(&workers, &st);
            let want = p.fp_time(2, GpuKind::P100.peak_flops());
            assert!((m.fp_time[0][2] - want).abs() / want < 1e-9);
        }
    }
}
