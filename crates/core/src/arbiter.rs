//! The RL arbiter (§4.3): should we apply the proposed partition now?
//!
//! "The input of our RL model consists of three parts, the environment
//! metrics described in Table 1, the current partition solution and the
//! new partition. The output is simply a boolean value that determines
//! whether or not to switch. We use a fully connected neural network ...
//! two hidden layers with 32 and 16 neurons are enough. The reward
//! function is the training speed of one iteration. We consider the
//! normalized switching cost."
//!
//! We cast the decision as a contextual bandit: the state summarizes the
//! predicted speeds of both partitions and the normalized switching cost;
//! the two-output Q-network scores {stay, switch}; the reward of a switch
//! is the fractional speed gain over the amortization window minus the
//! normalized switching cost, and staying earns zero. The optimal policy
//! (switch iff amortized gain exceeds cost) is *learned*, not hard-coded —
//! and the tests verify the learned boundary against the analytic one.

use ap_nn::{mse_loss, ActKind, Adam, Matrix, Mlp, Optimizer};
use ap_rng::Rng;

/// Feature width of the arbiter's state.
pub const ARBITER_FEATURES: usize = 6;

/// Everything the arbiter sees for one decision.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterInput {
    /// Current partition's (predicted or measured) speed, samples/sec.
    pub current_speed: f64,
    /// Candidate partition's predicted speed, samples/sec.
    pub candidate_speed: f64,
    /// Predicted switching cost, seconds.
    pub switch_cost: f64,
    /// Current iteration time, seconds.
    pub iteration_time: f64,
    /// Expected iterations until the environment shifts again (the
    /// amortization window for the switching cost).
    pub horizon_iterations: f64,
    /// Mean available bandwidth (normalized to 100 Gbps) — environment
    /// context so the policy can be bandwidth-sensitive.
    pub mean_bandwidth_norm: f64,
}

impl ArbiterInput {
    /// Fractional speed gain of the candidate.
    pub fn gain(&self) -> f64 {
        if self.current_speed <= 0.0 {
            return 0.0;
        }
        (self.candidate_speed - self.current_speed) / self.current_speed
    }

    /// Switching cost normalized by the amortization window.
    pub fn normalized_cost(&self) -> f64 {
        let window = (self.horizon_iterations * self.iteration_time).max(1e-9);
        self.switch_cost / window
    }

    /// The bandit reward of switching (staying earns 0).
    pub fn switch_reward(&self) -> f64 {
        self.gain() - self.normalized_cost()
    }

    fn features(&self) -> [f64; ARBITER_FEATURES] {
        [
            self.gain().clamp(-1.0, 2.0),
            self.normalized_cost().min(3.0),
            (self.current_speed.max(1e-3)).ln() / 8.0,
            (self.iteration_time.max(1e-6)).ln() / 10.0,
            (self.horizon_iterations.max(1.0)).ln() / 8.0,
            self.mean_bandwidth_norm.min(2.0),
        ]
    }
}

/// Decision policies (the RL net plus ablation baselines).
#[derive(Debug, Clone)]
pub enum ArbiterMode {
    /// The learned Q-network.
    Rl(Arbiter),
    /// Switch whenever the candidate predicts faster (ablation).
    AlwaysSwitch,
    /// Never switch (ablation; equals static PipeDream).
    NeverSwitch,
    /// Switch when the amortized gain exceeds a fixed threshold (ablation).
    Threshold(f64),
}

impl ArbiterMode {
    /// Evaluate the policy.
    pub fn decide(&self, input: &ArbiterInput) -> bool {
        match self {
            ArbiterMode::Rl(a) => a.decide(input),
            ArbiterMode::AlwaysSwitch => input.gain() > 0.0,
            ArbiterMode::NeverSwitch => false,
            ArbiterMode::Threshold(t) => input.switch_reward() > *t,
        }
    }
}

/// Serializable snapshot of a trained arbiter.
#[derive(Debug, Clone)]
pub struct ArbiterWeights {
    /// Q-network weights.
    pub q: ap_nn::mlp::MlpWeights,
}

/// The Q-network arbiter: `[features] -> 32 -> 16 -> [Q_stay, Q_switch]`.
#[derive(Debug, Clone)]
pub struct Arbiter {
    q: Mlp,
}

impl Default for Arbiter {
    fn default() -> Self {
        Self::new(11)
    }
}

impl Arbiter {
    /// Fresh (untrained) arbiter with the paper's 32/16 hidden layout.
    pub fn new(seed: u64) -> Self {
        Arbiter {
            q: Mlp::new(&[ARBITER_FEATURES, 32, 16, 2], ActKind::Tanh, seed),
        }
    }

    /// Snapshot the trained Q-network (offline training artifact).
    pub fn weights(&self) -> ArbiterWeights {
        ArbiterWeights {
            q: self.q.weights(),
        }
    }

    /// Rebuild an arbiter from a snapshot.
    pub fn from_weights(w: &ArbiterWeights) -> Self {
        let mut a = Arbiter::new(0);
        a.q.load(&w.q);
        a
    }

    fn q_values(&self, input: &ArbiterInput) -> (f64, f64) {
        let y = self
            .q
            .forward_inference(&Matrix::row_vector(input.features().to_vec()));
        (y.get(0, 0), y.get(0, 1))
    }

    /// Greedy decision: switch iff Q(switch) > Q(stay).
    pub fn decide(&self, input: &ArbiterInput) -> bool {
        let (stay, switch) = self.q_values(input);
        switch > stay
    }

    /// Offline training on simulated decision episodes.
    ///
    /// `episodes` samples random (gain, cost, horizon) situations from the
    /// provided generator, executes an epsilon-greedy action, and regresses
    /// the taken action's Q toward the observed reward (+noise), exactly a
    /// contextual bandit.
    pub fn train_offline<F>(&mut self, mut sample: F, episodes: usize, seed: u64) -> f64
    where
        F: FnMut(&mut Rng) -> ArbiterInput,
    {
        let mut rng = Rng::seed_from_u64(seed);
        let mut opt = Adam::new(2e-3);
        let mut last = 0.0;
        for ep in 0..episodes {
            let input = sample(&mut rng);
            let eps = 0.3 * (1.0 - ep as f64 / episodes as f64) + 0.02;
            let explore: f64 = rng.gen();
            let action = if explore < eps {
                rng.gen::<bool>()
            } else {
                self.decide(&input)
            };
            // Observed reward with measurement noise.
            let noise: f64 = rng.gen_range(-0.02..0.02);
            let reward = if action {
                input.switch_reward() + noise
            } else {
                noise * 0.1
            };
            // Q-learning update on the taken action only.
            self.q.zero_grad();
            let x = Matrix::row_vector(input.features().to_vec());
            let y = self.q.forward(&x);
            let mut target = y.clone();
            target.set(0, usize::from(action), reward);
            let (l, g) = mse_loss(&y, &target);
            self.q.backward(&g);
            opt.step(&mut self.q.params_mut());
            last = l;
        }
        last
    }

    /// Online adaptation: fine-tune the output layer on observed
    /// (decision, realized reward) pairs from the live job.
    pub fn adapt_online(&mut self, experience: &[(ArbiterInput, bool, f64)], steps: usize) {
        if experience.is_empty() {
            return;
        }
        let mut opt = Adam::new(5e-3);
        for k in 0..steps {
            let (input, action, reward) = &experience[k % experience.len()];
            self.q.zero_grad();
            let x = Matrix::row_vector(input.features().to_vec());
            let y = self.q.forward(&x);
            let mut target = y.clone();
            target.set(0, usize::from(*action), *reward);
            let (_, g) = mse_loss(&y, &target);
            self.q.backward(&g);
            let mut head = self.q.head_params_mut(1);
            opt.step(&mut head);
        }
    }
}

/// Sample a realistic decision situation for offline training.
pub fn default_episode_sampler(rng: &mut Rng) -> ArbiterInput {
    let current_speed = rng.gen_range(5.0..300.0);
    let gain = rng.gen_range(-0.3..0.8);
    let iteration_time = rng.gen_range(0.05..3.0);
    ArbiterInput {
        current_speed,
        candidate_speed: current_speed * (1.0 + gain),
        switch_cost: rng.gen_range(0.0..20.0),
        iteration_time,
        horizon_iterations: rng.gen_range(5.0..500.0),
        mean_bandwidth_norm: rng.gen_range(0.05..1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> Arbiter {
        let mut a = Arbiter::new(3);
        a.train_offline(default_episode_sampler, 6000, 42);
        a
    }

    fn input(gain: f64, cost: f64, horizon: f64) -> ArbiterInput {
        let speed = 100.0;
        ArbiterInput {
            current_speed: speed,
            candidate_speed: speed * (1.0 + gain),
            switch_cost: cost,
            iteration_time: 0.5,
            horizon_iterations: horizon,
            mean_bandwidth_norm: 0.25,
        }
    }

    #[test]
    fn reward_math() {
        let i = input(0.2, 5.0, 100.0);
        assert!((i.gain() - 0.2).abs() < 1e-12);
        // window = 100 * 0.5 = 50 s; cost 5 s -> 0.1.
        assert!((i.normalized_cost() - 0.1).abs() < 1e-12);
        assert!((i.switch_reward() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn learns_to_switch_on_clear_wins() {
        let a = trained();
        // +50% speed, negligible cost: must switch.
        assert!(a.decide(&input(0.5, 0.1, 200.0)));
    }

    #[test]
    fn learns_to_stay_on_clear_losses() {
        let a = trained();
        // Candidate is slower: must stay.
        assert!(!a.decide(&input(-0.2, 0.1, 200.0)));
        // Tiny gain, enormous cost over a short horizon: must stay.
        assert!(!a.decide(&input(0.02, 18.0, 10.0)));
    }

    #[test]
    fn decision_boundary_tracks_amortization() {
        let a = trained();
        // Same gain and cost; a long horizon amortizes the cost away, a
        // very short one does not.
        let long = a.decide(&input(0.25, 10.0, 400.0));
        let short = a.decide(&input(0.25, 10.0, 6.0));
        assert!(long, "long horizon should switch");
        assert!(!short, "short horizon should stay");
    }

    #[test]
    fn boundary_accuracy_against_analytic_policy() {
        let a = trained();
        let mut rng = Rng::seed_from_u64(77);
        let mut correct = 0;
        let n = 400;
        for _ in 0..n {
            let i = default_episode_sampler(&mut rng);
            // Skip near-boundary cases where either answer is fine.
            if i.switch_reward().abs() < 0.08 {
                correct += 1;
                continue;
            }
            if a.decide(&i) == (i.switch_reward() > 0.0) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.85, "policy accuracy {acc}");
    }

    #[test]
    fn weights_round_trip_preserves_policy() {
        let a = trained();
        let b = Arbiter::from_weights(&a.weights());
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..50 {
            let i = default_episode_sampler(&mut rng);
            assert_eq!(a.decide(&i), b.decide(&i));
        }
    }

    #[test]
    fn ablation_modes() {
        let i = input(0.1, 50.0, 10.0); // positive gain, ruinous cost
        assert!(ArbiterMode::AlwaysSwitch.decide(&i));
        assert!(!ArbiterMode::NeverSwitch.decide(&i));
        assert!(!ArbiterMode::Threshold(0.0).decide(&i));
        assert!(ArbiterMode::Threshold(-100.0).decide(&i));
    }

    #[test]
    fn online_adaptation_shifts_the_boundary() {
        let mut a = trained();
        let i = input(0.3, 2.0, 100.0);
        assert!(a.decide(&i));
        // Live experience says switching at this operating point is bad
        // (e.g. hidden interference): punish it repeatedly.
        let exp: Vec<(ArbiterInput, bool, f64)> = (0..20).map(|_| (i, true, -1.0)).collect();
        a.adapt_online(&exp, 400);
        assert!(!a.decide(&i), "adapted policy should now refuse");
    }
}
