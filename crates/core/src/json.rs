//! [`ToJson`] conversions for the decision journal (moved here from
//! `ap-bench` when the JSON implementation became the shared `ap-json`
//! crate — orphan rules require the impls to live with the types). The
//! journal export in `repro --trace` and serve's `/plan` responses both
//! serialize through these impls.

use ap_json::{Json, ToJson};

use crate::controller::{DecisionEvent, DecisionJournal, DecisionRecord};

impl ToJson for DecisionEvent {
    fn to_json(&self) -> Json {
        use DecisionEvent as E;
        let mut fields = vec![("event", self.name().to_json())];
        match self {
            E::ChangeDetected {
                signals,
                degraded_workers,
            } => {
                fields.push(("signals", signals.to_json()));
                fields.push(("degraded_workers", degraded_workers.to_json()));
            }
            E::CandidatesScored {
                rounds,
                scored,
                current_pred,
                best_pred,
                best,
            } => {
                fields.push(("rounds", rounds.to_json()));
                fields.push(("scored", scored.to_json()));
                fields.push(("current_pred", current_pred.to_json()));
                fields.push(("best_pred", best_pred.to_json()));
                fields.push(("best", best.to_json()));
            }
            E::ArbiterVerdict {
                approved,
                predicted_speedup,
                switch_cost_seconds,
                reward,
            } => {
                fields.push(("approved", approved.to_json()));
                fields.push(("predicted_speedup", predicted_speedup.to_json()));
                fields.push(("switch_cost_seconds", switch_cost_seconds.to_json()));
                fields.push(("reward", reward.to_json()));
            }
            E::SwitchApplied {
                from,
                to,
                moved_layers,
                transfer_bytes,
                pause_seconds,
            } => {
                fields.push(("from", from.to_json()));
                fields.push(("to", to.to_json()));
                fields.push(("moved_layers", moved_layers.to_json()));
                fields.push(("transfer_bytes", transfer_bytes.to_json()));
                fields.push(("pause_seconds", pause_seconds.to_json()));
            }
            E::Verified {
                measured,
                expected_floor,
                trust,
            } => {
                fields.push(("measured", measured.to_json()));
                fields.push(("expected_floor", expected_floor.to_json()));
                fields.push(("trust", trust.to_json()));
            }
            E::Reverted {
                to,
                measured,
                expected_floor,
                trust,
            } => {
                fields.push(("to", to.to_json()));
                fields.push(("measured", measured.to_json()));
                fields.push(("expected_floor", expected_floor.to_json()));
                fields.push(("trust", trust.to_json()));
            }
            E::Kept { reason } => fields.push(("reason", reason.label().to_json())),
            E::InfeasibleDetected { failed_workers } => {
                fields.push(("failed_workers", failed_workers.to_json()));
            }
            E::EmergencyRepartition {
                from,
                to,
                dropped,
                attempt,
                pause_seconds,
            } => {
                fields.push(("from", from.to_json()));
                fields.push(("to", to.to_json()));
                fields.push(("dropped", dropped.to_json()));
                fields.push(("attempt", attempt.to_json()));
                fields.push(("pause_seconds", pause_seconds.to_json()));
            }
            E::RetryScheduled {
                attempt,
                not_before,
            } => {
                fields.push(("attempt", attempt.to_json()));
                fields.push(("not_before", not_before.to_json()));
            }
            E::RetryExhausted { attempts } => fields.push(("attempts", attempts.to_json())),
            E::WorkerFailed { worker } | E::WorkerRecovered { worker } => {
                fields.push(("worker", worker.to_json()));
            }
            E::MigrationRolledBack {
                worker,
                progress,
                rollback_seconds,
            } => {
                fields.push(("worker", worker.to_json()));
                fields.push(("progress", progress.to_json()));
                fields.push(("rollback_seconds", rollback_seconds.to_json()));
            }
            E::UnitsRestarted { count } => fields.push(("count", count.to_json())),
            E::SwitchRejected => {}
        }
        Json::obj(fields)
    }
}

impl ToJson for DecisionRecord {
    fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.event.to_json() else {
            unreachable!("DecisionEvent serializes to an object");
        };
        let mut all = vec![
            ("decision".to_string(), self.decision.to_json()),
            ("iteration".to_string(), self.iteration.to_json()),
            ("time".to_string(), self.time.to_json()),
        ];
        all.append(&mut fields);
        Json::Obj(all)
    }
}

impl ToJson for DecisionJournal {
    fn to_json(&self) -> Json {
        self.records.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::KeepReason;

    #[test]
    fn record_flattens_event_fields_after_position() {
        let mut journal = DecisionJournal::new();
        journal.record(
            3,
            40,
            1.5,
            DecisionEvent::Kept {
                reason: KeepReason::NoImprovement,
            },
        );
        let s = journal.to_json().pretty();
        assert!(s.contains("\"decision\": 3"));
        assert!(s.contains("\"event\": \"keep\""));
        assert!(s.contains("\"reason\": \"no-improvement\""));
    }
}
