//! AutoPipe-enhanced pipeline-parallel variants (Figure 13).
//!
//! "Although our design is heavily based on PipeDream, the idea of
//! AutoPipe is naturally applicable to improve other pipeline parallelism
//! variants. Here, we implement and compare the AutoPipe-enhanced version
//! of three recent works, i.e., DAPPLE, Chimera and PipeDream-2BW."
//!
//! The vanilla versions of these systems split structurally uniform models
//! *evenly* (§2.1, category 1) and never re-plan. The enhancement is an
//! alternative composition of the controller's stage implementations: the
//! same [`MoveEnumerator`] and analytic [`Scorer`] the live controller
//! runs, driven by the shared [`refine`] loop on top of the same schedule.

use std::collections::VecDeque;

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;
use ap_pipesim::{AnalyticModel, Framework, ScheduleKind, SyncScheme};
use ap_planner::{sort_stage_workers_by, uniform_plan};

use crate::controller::{refine, MoveEnumerator, Score, ScoreCtx, Scorer};

/// Throughput of the vanilla (even-split, static) and AutoPipe-enhanced
/// (environment-aware, refined) configuration of a schedule, in
/// samples/sec under the given cluster state.
pub fn enhanced_throughput(
    schedule: ScheduleKind,
    profile: &ModelProfile,
    state: &ClusterState,
    scheme: SyncScheme,
    framework: Framework,
    n_stages: usize,
) -> (f64, f64) {
    let model = AnalyticModel {
        profile,
        scheme,
        framework,
        schedule,
        calibration: None,
    };
    let gpus: Vec<GpuId> = (0..state.topology.n_gpus()).map(GpuId).collect();
    let vanilla = uniform_plan(profile, n_stages, &gpus);
    let vanilla_tp = model.throughput(&vanilla, state);
    // Stage composition: group replicas by effective speed, then greedily
    // chain two-worker moves under the analytic scorer.
    let mut start = vanilla;
    sort_stage_workers_by(&mut start, |g| state.effective_flops(g));
    let history = VecDeque::new();
    let ctx = ScoreCtx {
        profile,
        scheme,
        framework,
        schedule,
        calibration: None,
        history: &history,
        state,
    };
    let scorer = Scorer::Analytic;
    let start_tp = scorer.predict(&ctx, &start);
    let (enhanced, _) = refine(&MoveEnumerator::new(), &scorer, &ctx, start, start_tp, 30);
    let enhanced_tp = model.throughput(&enhanced, state);
    (vanilla_tp, enhanced_tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterTopology, EventKind};
    use ap_models::{bert_n, ModelProfile};

    fn shared_state() -> ClusterState {
        // A shared cluster: heterogeneous contention so the even split is
        // wrong.
        let topo = ClusterTopology::single_switch(5, 2, GpuKind::P100, 25.0);
        let mut st = ClusterState::new(topo);
        st.apply(&EventKind::JobArrive {
            id: ap_cluster::dynamics::BgJobId(1),
            gpus: vec![GpuId(0), GpuId(1), GpuId(2)],
            net_bytes_per_sec: ap_cluster::gbps(3.0),
        });
        st
    }

    #[test]
    fn enhancement_improves_all_three_variants() {
        let profile = ModelProfile::of(&bert_n(16));
        let st = shared_state();
        for schedule in [
            ScheduleKind::Dapple { micro_batches: 8 },
            ScheduleKind::Chimera { micro_batches: 8 },
            ScheduleKind::PipeDream2Bw,
        ] {
            let (vanilla, enhanced) = enhanced_throughput(
                schedule,
                &profile,
                &st,
                SyncScheme::RingAllReduce,
                Framework::pytorch(),
                4,
            );
            assert!(
                enhanced >= vanilla,
                "{}: {vanilla} -> {enhanced}",
                schedule.label()
            );
            assert!(
                enhanced > vanilla * 1.02,
                "{}: expected a visible gain under contention, got {vanilla} -> {enhanced}",
                schedule.label()
            );
        }
    }

    #[test]
    fn enhancement_is_noop_when_even_split_is_already_right() {
        // Uniform model, exclusive homogeneous cluster: the even split is
        // near-optimal; the enhancement must not regress it.
        let profile = ModelProfile::of(&bert_n(8));
        let st = ClusterState::new(ClusterTopology::single_switch(4, 1, GpuKind::P100, 100.0));
        let (vanilla, enhanced) = enhanced_throughput(
            ScheduleKind::Dapple { micro_batches: 8 },
            &profile,
            &st,
            SyncScheme::RingAllReduce,
            Framework::pytorch(),
            4,
        );
        assert!(enhanced >= vanilla * 0.999);
    }
}
