//! Switching-cost prediction.
//!
//! §4.3: "The reward function is the training speed of one iteration. We
//! consider the normalized switching cost in this case. To calculate the
//! switching cost, we apply a similar meta-network as the speed prediction
//! model." We provide both the learned predictor (a small MLP over the
//! switch plan's features) and the analytic ground truth it is trained on.

use ap_cluster::ClusterState;
use ap_models::ModelProfile;
use ap_nn::{mse_loss, ActKind, Adam, Matrix, Mlp, Optimizer};
use ap_pipesim::{fine_grained_cost, Partition, ScheduleKind, SwitchPlan};
use ap_rng::Rng;

/// Feature width of the cost predictor.
pub const COST_FEATURES: usize = 5;

/// Learned + analytic switching-cost model.
#[derive(Debug, Clone)]
pub struct SwitchCostModel {
    net: Mlp,
    trained: bool,
}

impl Default for SwitchCostModel {
    fn default() -> Self {
        Self::new(3)
    }
}

impl SwitchCostModel {
    /// Fresh model.
    pub fn new(seed: u64) -> Self {
        SwitchCostModel {
            net: Mlp::new(&[COST_FEATURES, 16, 8, 1], ActKind::Tanh, seed),
            trained: false,
        }
    }

    /// Features of a prospective switch: transfer volume, layer count,
    /// available bandwidth, pipeline slack, iteration time (all in rough
    /// log/normalized scales).
    pub fn features(
        plan: &SwitchPlan,
        iteration_time: f64,
        partition: &Partition,
        state: &ClusterState,
    ) -> [f64; COST_FEATURES] {
        let bw = plan
            .affected_workers
            .iter()
            .map(|&w| ap_pipesim::sync::worker_bandwidth(w, state))
            .fold(f64::INFINITY, f64::min);
        [
            (plan.transfer_bytes.max(1.0)).ln() / 25.0,
            plan.moved_layers.len() as f64 / 32.0,
            (bw.max(1.0)).ln() / 25.0,
            (partition.in_flight as f64).ln().max(0.0) / 3.0,
            (iteration_time.max(1e-6)).ln() / 10.0,
        ]
    }

    /// Analytic ground truth: the fine-grained switching cost in seconds.
    pub fn analytic(
        plan: &SwitchPlan,
        iteration_time: f64,
        partition: &Partition,
        state: &ClusterState,
    ) -> f64 {
        fine_grained_cost(plan, iteration_time, partition, state)
    }

    /// Predict the cost in seconds (falls back to analytic until trained).
    pub fn predict(
        &self,
        plan: &SwitchPlan,
        iteration_time: f64,
        partition: &Partition,
        state: &ClusterState,
    ) -> f64 {
        if !self.trained || plan.is_noop() {
            return Self::analytic(plan, iteration_time, partition, state);
        }
        let f = Self::features(plan, iteration_time, partition, state);
        let y = self
            .net
            .forward_inference(&Matrix::row_vector(f.to_vec()))
            .get(0, 0);
        y.exp() - 1e-3
    }

    /// Fit the predictor on `(features, cost)` pairs harvested from
    /// simulated switches. Targets are log-scaled.
    pub fn train(&mut self, data: &[([f64; COST_FEATURES], f64)], epochs: usize, seed: u64) -> f64 {
        assert!(!data.is_empty(), "no cost samples");
        let mut opt = Adam::new(3e-3);
        let mut rng = Rng::seed_from_u64(seed);
        let mut last = f64::INFINITY;
        for _ in 0..epochs {
            let mut total = 0.0;
            for _ in 0..data.len() {
                let (f, c) = &data[rng.gen_range(0..data.len())];
                self.net.zero_grad();
                let y = self.net.forward(&Matrix::row_vector(f.to_vec()));
                let t = Matrix::row_vector(vec![(c + 1e-3).ln()]);
                let (l, g) = mse_loss(&y, &t);
                self.net.backward(&g);
                opt.step(&mut self.net.params_mut());
                total += l;
            }
            last = total / data.len() as f64;
        }
        self.trained = true;
        last
    }

    /// Harvest training data for the cost net by diffing random partition
    /// pairs and pricing them analytically.
    pub fn harvest(
        profile: &ModelProfile,
        pairs: &[(Partition, Partition)],
        iteration_time: f64,
        state: &ClusterState,
        schedule: ScheduleKind,
    ) -> Vec<([f64; COST_FEATURES], f64)> {
        pairs
            .iter()
            .map(|(a, b)| {
                let plan = SwitchPlan::between(a, b, profile, schedule);
                let f = Self::features(&plan, iteration_time, a, state);
                let c = Self::analytic(&plan, iteration_time, a, state);
                (f, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterTopology, GpuId};
    use ap_models::{synthetic_uniform, ModelProfile};
    use ap_pipesim::Stage;

    fn setup() -> (ClusterState, ModelProfile) {
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
        let profile = ModelProfile::with_batch(&synthetic_uniform(10, 1e9, 4e6, 20e6), 32);
        (ClusterState::new(topo), profile)
    }

    fn part(split: usize) -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..split, vec![GpuId(0)]),
                Stage::new(split..10, vec![GpuId(1)]),
            ],
            in_flight: 2,
        }
    }

    #[test]
    fn untrained_model_falls_back_to_analytic() {
        let (st, p) = setup();
        let m = SwitchCostModel::new(1);
        let plan = SwitchPlan::between(&part(5), &part(7), &p, ScheduleKind::PipeDreamAsync);
        let a = m.predict(&plan, 0.1, &part(5), &st);
        let b = SwitchCostModel::analytic(&plan, 0.1, &part(5), &st);
        assert_eq!(a, b);
    }

    #[test]
    fn trained_model_approximates_analytic_cost() {
        let (st, p) = setup();
        let pairs: Vec<(Partition, Partition)> = (1..10)
            .flat_map(|a| (1..10).map(move |b| (part(a), part(b))))
            .filter(|(a, b)| a != b)
            .collect();
        let data = SwitchCostModel::harvest(&p, &pairs, 0.1, &st, ScheduleKind::PipeDreamAsync);
        let mut m = SwitchCostModel::new(2);
        m.train(&data, 300, 5);
        let plan = SwitchPlan::between(&part(3), &part(8), &p, ScheduleKind::PipeDreamAsync);
        let truth = SwitchCostModel::analytic(&plan, 0.1, &part(3), &st);
        let pred = m.predict(&plan, 0.1, &part(3), &st);
        let rel = (pred - truth).abs() / truth.max(1e-6);
        assert!(rel < 0.5, "pred {pred} vs truth {truth}");
    }

    #[test]
    fn noop_plan_costs_zero_even_when_trained() {
        let (st, p) = setup();
        let mut m = SwitchCostModel::new(3);
        let pairs = vec![(part(3), part(6))];
        let data = SwitchCostModel::harvest(&p, &pairs, 0.1, &st, ScheduleKind::PipeDreamAsync);
        m.train(&data, 10, 1);
        let noop = SwitchPlan::between(&part(5), &part(5), &p, ScheduleKind::PipeDreamAsync);
        assert_eq!(m.predict(&noop, 0.1, &part(5), &st), 0.0);
    }

    #[test]
    fn bigger_moves_cost_more() {
        let (st, p) = setup();
        let small = SwitchPlan::between(&part(5), &part(6), &p, ScheduleKind::PipeDreamAsync);
        let large = SwitchPlan::between(&part(5), &part(9), &p, ScheduleKind::PipeDreamAsync);
        let cs = SwitchCostModel::analytic(&small, 0.01, &part(5), &st);
        let cl = SwitchCostModel::analytic(&large, 0.01, &part(5), &st);
        assert!(cl > cs);
    }
}
