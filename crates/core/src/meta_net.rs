//! The meta-network: AutoPipe's learned speed predictor (§4.2, Figure 7).
//!
//! "We use a long short-term memory (LSTM) block to learn the dynamic
//! environment, then together with the static inputs and partition
//! solution, we apply the fully connected layers. Finally, we predict the
//! training speed."
//!
//! Input:  a short sequence of dynamic observations (per-iteration
//!         bandwidth/compute features) → LSTM → final hidden state,
//!         concatenated with the static features of a candidate partition.
//! Output: predicted log training speed (samples/sec).
//!
//! Offline training fits the whole network across many synthetic
//! environments; online adaptation fine-tunes only the fully-connected
//! head ("employ transfer learning to swiftly adjust the meta-network ...
//! while minimizing system overhead", §4.3).

use ap_nn::{mse_loss, ActKind, Adam, Lstm, Matrix, Mlp, Optimizer};

use ap_rng::Rng;

use crate::metrics::{DYNAMIC_DIM, STATIC_DIM};

/// Meta-network hyper-parameters.
#[derive(Debug, Clone)]
pub struct MetaNetConfig {
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// Hidden layer widths of the fully-connected head.
    pub head_hidden: Vec<usize>,
    /// Dynamic-observation sequence length fed to the LSTM.
    pub seq_len: usize,
    /// Offline learning rate.
    pub lr: f64,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for MetaNetConfig {
    fn default() -> Self {
        MetaNetConfig {
            lstm_hidden: 24,
            head_hidden: vec![64, 32],
            seq_len: 8,
            lr: 3e-3,
            seed: 7,
        }
    }
}

/// One supervised example for the speed predictor.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// Sequence of dynamic observations, oldest first, each `DYNAMIC_DIM`.
    pub dynamic_seq: Vec<Vec<f64>>,
    /// Static features of the candidate partition, `STATIC_DIM`.
    pub static_feat: Vec<f64>,
    /// Target: natural log of throughput in samples/sec.
    pub log_throughput: f64,
}

/// Serializable snapshot of a trained meta-network (§4.3's offline
/// training produces one of these; deployments load it and adapt online).
#[derive(Debug, Clone)]
pub struct MetaNetWeights {
    /// Configuration the network was built with.
    pub config: MetaNetConfig,
    /// LSTM gate weights.
    pub lstm_w: Matrix,
    /// LSTM gate bias.
    pub lstm_b: Matrix,
    /// Fully-connected head weights.
    pub head: ap_nn::mlp::MlpWeights,
}

/// The LSTM + fully-connected speed predictor.
#[derive(Debug, Clone)]
pub struct MetaNet {
    lstm: Lstm,
    head: Mlp,
    cfg: MetaNetConfig,
}

impl MetaNet {
    /// Fresh network.
    pub fn new(cfg: MetaNetConfig) -> Self {
        let lstm = Lstm::new(DYNAMIC_DIM, cfg.lstm_hidden, cfg.seed);
        let mut sizes = vec![cfg.lstm_hidden + STATIC_DIM];
        sizes.extend(&cfg.head_hidden);
        sizes.push(1);
        let head = Mlp::new(&sizes, ActKind::Tanh, cfg.seed.wrapping_add(101));
        MetaNet { lstm, head, cfg }
    }

    /// Configuration used to build this network.
    pub fn config(&self) -> &MetaNetConfig {
        &self.cfg
    }

    /// Snapshot the trained weights for persistence.
    pub fn weights(&self) -> MetaNetWeights {
        let (lstm_w, lstm_b) = self.lstm.weights();
        MetaNetWeights {
            config: self.cfg.clone(),
            lstm_w,
            lstm_b,
            head: self.head.weights(),
        }
    }

    /// Rebuild a network from a snapshot.
    pub fn from_weights(w: &MetaNetWeights) -> Self {
        let mut net = MetaNet::new(w.config.clone());
        net.lstm.load(&w.lstm_w, &w.lstm_b);
        net.head.load(&w.head);
        net
    }

    fn seq_matrices(&self, seq: &[Vec<f64>]) -> Vec<Matrix> {
        assert!(!seq.is_empty(), "empty dynamic sequence");
        // Trim/pad (repeat oldest) to seq_len.
        let mut rows: Vec<&Vec<f64>> = Vec::with_capacity(self.cfg.seq_len);
        for i in 0..self.cfg.seq_len {
            let idx = if seq.len() >= self.cfg.seq_len {
                seq.len() - self.cfg.seq_len + i
            } else {
                i.min(seq.len() - 1)
            };
            rows.push(&seq[idx]);
        }
        rows.iter()
            .map(|r| {
                assert_eq!(r.len(), DYNAMIC_DIM, "dynamic width mismatch");
                Matrix::row_vector((*r).clone())
            })
            .collect()
    }

    /// Run the LSTM over the dynamic history once and return the final
    /// hidden state.
    ///
    /// Within one decision round the history is identical for every
    /// candidate partition — only the static features differ — so the
    /// scorer encodes once and amortizes the `seq_len` LSTM steps across
    /// the whole O(L²) candidate set via [`predict_from_encoding`].
    ///
    /// [`predict_from_encoding`]: MetaNet::predict_from_encoding
    pub fn encode_history(&self, dynamic_seq: &[Vec<f64>]) -> Matrix {
        self.lstm.forward_inference(&self.seq_matrices(dynamic_seq))
    }

    /// Predict log throughput from a pre-computed history encoding: pays
    /// only the fully-connected head per candidate.
    pub fn predict_from_encoding(&self, h: &Matrix, static_feat: &[f64]) -> f64 {
        assert_eq!(static_feat.len(), STATIC_DIM, "static width mismatch");
        let x = h.hcat(&Matrix::row_vector(static_feat.to_vec()));
        self.head.forward_inference(&x).get(0, 0)
    }

    /// Predict throughput in samples/sec from a pre-computed encoding.
    pub fn predict_throughput_from_encoding(&self, h: &Matrix, static_feat: &[f64]) -> f64 {
        self.predict_from_encoding(h, static_feat).exp()
    }

    /// Predict log throughput for one (environment history, candidate).
    pub fn predict(&self, dynamic_seq: &[Vec<f64>], static_feat: &[f64]) -> f64 {
        let h = self.encode_history(dynamic_seq);
        self.predict_from_encoding(&h, static_feat)
    }

    /// Predict throughput in samples/sec.
    pub fn predict_throughput(&self, dynamic_seq: &[Vec<f64>], static_feat: &[f64]) -> f64 {
        self.predict(dynamic_seq, static_feat).exp()
    }

    fn step_one(&mut self, s: &TrainingSample, opt: &mut Adam, head_only: bool) -> f64 {
        let seq = self.seq_matrices(&s.dynamic_seq);
        let h = self.lstm.forward(&seq);
        let x = h.hcat(&Matrix::row_vector(s.static_feat.clone()));
        let y = self.head.forward(&x);
        let target = Matrix::row_vector(vec![s.log_throughput]);
        let (loss, grad) = mse_loss(&y, &target);
        let gx = self.head.backward(&grad);
        if head_only {
            let mut params = self.head.head_params_mut(1);
            opt.step(&mut params);
            self.head.zero_grad();
        } else {
            let (gh, _) = gx.hsplit(self.cfg.lstm_hidden);
            let _ = self.lstm.backward(&gh);
            let mut params = self.head.params_mut();
            params.extend(self.lstm.params_mut());
            opt.step(&mut params);
            // Zero grads for the next sample.
            self.head.zero_grad();
            for p in self.lstm.params_mut() {
                p.zero_grad();
            }
        }
        loss
    }

    /// Offline training over the full sample set; returns the mean loss of
    /// the final epoch.
    pub fn train(&mut self, samples: &[TrainingSample], epochs: usize, seed: u64) -> f64 {
        assert!(!samples.is_empty(), "no training samples");
        let mut opt = Adam::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = Rng::seed_from_u64(seed);
        let mut last = f64::INFINITY;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0;
            for &i in &order {
                total += self.step_one(&samples[i], &mut opt, false);
            }
            last = total / samples.len() as f64;
        }
        last
    }

    /// Online adaptation: a few head-only gradient steps on fresh
    /// measurements from the *current* environment (transfer learning).
    pub fn adapt_online(&mut self, samples: &[TrainingSample], steps: usize) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut opt = Adam::new(self.cfg.lr * 3.0);
        let mut last = 0.0;
        for k in 0..steps {
            let s = &samples[k % samples.len()];
            last = self.step_one(s, &mut opt, true);
        }
        last
    }

    /// Mean squared error on a held-out set (log space).
    pub fn evaluate(&self, samples: &[TrainingSample]) -> f64 {
        samples
            .iter()
            .map(|s| {
                let d = self.predict(&s.dynamic_seq, &s.static_feat) - s.log_throughput;
                d * d
            })
            .sum::<f64>()
            / samples.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic ground truth: speed depends on bandwidth history and how
    /// balanced the candidate's work shares are — loosely the real task.
    fn synth_sample(rng: &mut Rng) -> TrainingSample {
        let bw: f64 = rng.gen_range(0.05..1.0);
        let balance: f64 = rng.gen_range(0.5..1.0);
        let mut dyn_seq = Vec::new();
        for _ in 0..6 {
            let mut v = vec![0.0; DYNAMIC_DIM];
            for slot in 0..2 {
                v[slot * 2] = bw * rng.gen_range(0.95..1.05);
                v[slot * 2 + 1] = rng.gen_range(0.8..1.0);
            }
            dyn_seq.push(v);
        }
        let mut st = vec![0.0; STATIC_DIM];
        st[0] = balance; // stage-0 work share
        st[4] = 1.0 - balance;
        st[3] = 0.5;
        st[7] = 0.5;
        let speed = 80.0 * bw.powf(0.5) * (1.0 - (balance - 0.5).abs());
        TrainingSample {
            dynamic_seq: dyn_seq,
            static_feat: st,
            log_throughput: speed.ln(),
        }
    }

    #[test]
    fn learns_a_synthetic_speed_function() {
        let mut rng = Rng::seed_from_u64(5);
        let train: Vec<_> = (0..300).map(|_| synth_sample(&mut rng)).collect();
        let test: Vec<_> = (0..50).map(|_| synth_sample(&mut rng)).collect();
        let mut net = MetaNet::new(MetaNetConfig {
            seq_len: 6,
            ..MetaNetConfig::default()
        });
        let before = net.evaluate(&test);
        let final_loss = net.train(&train, 40, 99);
        let after = net.evaluate(&test);
        assert!(final_loss < before, "training reduced loss");
        assert!(
            after < before * 0.2,
            "generalization: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn ranks_balanced_partitions_above_skewed_ones() {
        let mut rng = Rng::seed_from_u64(17);
        let train: Vec<_> = (0..400).map(|_| synth_sample(&mut rng)).collect();
        let mut net = MetaNet::new(MetaNetConfig {
            seq_len: 6,
            ..MetaNetConfig::default()
        });
        net.train(&train, 50, 3);
        let dyn_seq: Vec<Vec<f64>> = (0..6)
            .map(|_| {
                let mut v = vec![0.0; DYNAMIC_DIM];
                v[0] = 0.5;
                v[1] = 0.9;
                v[2] = 0.5;
                v[3] = 0.9;
                v
            })
            .collect();
        let mk = |balance: f64| {
            let mut st = vec![0.0; STATIC_DIM];
            st[0] = balance;
            st[4] = 1.0 - balance;
            st[3] = 0.5;
            st[7] = 0.5;
            st
        };
        let good = net.predict(&dyn_seq, &mk(0.55));
        let bad = net.predict(&dyn_seq, &mk(0.95));
        assert!(good > bad, "balanced {good} should beat skewed {bad}");
    }

    #[test]
    fn online_adaptation_improves_shifted_environment() {
        let mut rng = Rng::seed_from_u64(23);
        let train: Vec<_> = (0..300).map(|_| synth_sample(&mut rng)).collect();
        let mut net = MetaNet::new(MetaNetConfig {
            seq_len: 6,
            ..MetaNetConfig::default()
        });
        net.train(&train, 30, 11);
        // Environment shift: every true speed drops 40% (e.g. a slower
        // framework stack).
        let shifted: Vec<TrainingSample> = (0..60)
            .map(|_| {
                let mut s = synth_sample(&mut rng);
                s.log_throughput += (0.6f64).ln();
                s
            })
            .collect();
        let before = net.evaluate(&shifted);
        net.adapt_online(&shifted[..40], 200);
        let after = net.evaluate(&shifted[40..]);
        assert!(
            after < before * 0.7,
            "adaptation: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn short_histories_are_padded() {
        let net = MetaNet::new(MetaNetConfig::default());
        let one = vec![vec![0.5; DYNAMIC_DIM]];
        let st = vec![0.1; STATIC_DIM];
        let y = net.predict(&one, &st);
        assert!(y.is_finite());
        // Padding repeats the oldest row: identical to an 8-long history
        // of the same vector.
        let eight = vec![vec![0.5; DYNAMIC_DIM]; 8];
        assert!((net.predict(&eight, &st) - y).abs() < 1e-12);
    }

    #[test]
    fn weight_snapshot_round_trips() {
        let mut rng = Rng::seed_from_u64(31);
        let train: Vec<_> = (0..80).map(|_| synth_sample(&mut rng)).collect();
        let mut net = MetaNet::new(MetaNetConfig {
            seq_len: 6,
            ..MetaNetConfig::default()
        });
        net.train(&train, 5, 1);
        let snap = net.weights();
        let rebuilt = MetaNet::from_weights(&snap);
        let s = &train[0];
        let a = net.predict(&s.dynamic_seq, &s.static_feat);
        let b = rebuilt.predict(&s.dynamic_seq, &s.static_feat);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    #[should_panic(expected = "static width mismatch")]
    fn wrong_static_width_panics() {
        let net = MetaNet::new(MetaNetConfig::default());
        let _ = net.predict(&[vec![0.0; DYNAMIC_DIM]], &[0.0; 3]);
    }
}
