//! Multiple AutoPipe jobs sharing one cluster — now a thin shim.
//!
//! The tenancy primitives (induced state, traffic estimation, measured
//! evaluation, best-response rounds) moved to [`ap_sched::tenancy`] so the
//! cluster control plane can drive them without depending on the
//! controller. This module re-exports them under the historical
//! `autopipe::multi_job` path and contributes the one piece that *does*
//! belong here: [`HillClimbPlanner`], the [`ProposePlan`] implementation
//! backed by the controller's Enumerate + Score composition
//! ([`hill_climb`]).

pub use ap_sched::tenancy::{
    comm_bytes_per_sec, evaluate, induced_state, JobSpec, MultiJobEnv, MultiJobOutcome, ProposePlan,
};

use ap_cluster::{ClusterState, ClusterTopology};
use ap_models::ModelProfile;
use ap_pipesim::{AnalyticModel, Partition, SimError};

use crate::controller::hill_climb;

/// The controller's per-job proposal: incremental moves under the analytic
/// model, scored against the state the rest of the tenancy induces.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbPlanner {
    /// Hill-climb round budget per proposal.
    pub rounds: usize,
}

impl Default for HillClimbPlanner {
    fn default() -> Self {
        HillClimbPlanner { rounds: 20 }
    }
}

impl ProposePlan for HillClimbPlanner {
    fn propose(
        &self,
        profile: &ModelProfile,
        current: &Partition,
        state: &ClusterState,
        env: &MultiJobEnv,
    ) -> Partition {
        let model = AnalyticModel {
            profile,
            scheme: env.scheme,
            framework: env.framework,
            schedule: env.schedule,
            calibration: None,
        };
        hill_climb(&model, current.clone(), state, self.rounds)
    }
}

/// Coordinated adaptation with the controller's hill climb as the per-job
/// proposal — the historical `autopipe::multi_job::best_response_rounds`
/// signature. See [`ap_sched::tenancy::best_response_rounds`] for the
/// acceptance discipline (measured tenancy-wide throughput must rise).
pub fn best_response_rounds(
    topo: &ClusterTopology,
    jobs: &mut [JobSpec],
    env: &MultiJobEnv,
    max_rounds: usize,
) -> Result<usize, SimError> {
    ap_sched::tenancy::best_response_rounds(
        topo,
        jobs,
        env,
        max_rounds,
        &HillClimbPlanner::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::GpuId;
    use ap_models::resnet50;
    use ap_planner::{pipedream_plan, PipeDreamView};

    fn testbed() -> ClusterTopology {
        ClusterTopology::single_switch(5, 2, GpuKind::P100, 25.0)
    }

    fn static_job(adaptive: bool) -> JobSpec {
        let profile = ModelProfile::of(&resnet50());
        let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
        let partition = pipedream_plan(
            &profile,
            &gpus,
            PipeDreamView {
                bandwidth: ap_cluster::gbps(25.0),
                gpu_flops: GpuKind::P100.peak_flops(),
            },
        );
        JobSpec {
            profile,
            partition,
            adaptive,
        }
    }

    #[test]
    fn induced_state_reflects_other_tenants() {
        let topo = testbed();
        let jobs = vec![static_job(false), static_job(false), static_job(false)];
        let env = MultiJobEnv::default();
        let st = induced_state(&topo, &jobs, 0, &env);
        // Two other whole-cluster jobs: every GPU 3-way shared.
        assert!(st.topology.gpus.iter().all(|g| g.colocated_jobs >= 2));
        // And their traffic consumes link bandwidth.
        let cap = st.available_capacity(ap_cluster::LinkId::Up(ap_cluster::ServerId(0)));
        assert!(cap < ap_cluster::gbps(25.0));
    }

    #[test]
    fn comm_estimate_positive_and_scales_with_cuts() {
        let env = MultiJobEnv::default();
        let topo = testbed();
        let st = ClusterState::new(topo);
        let job = static_job(false);
        let c = comm_bytes_per_sec(&job.profile, &job.partition, &st, &env);
        assert!(c > 0.0);
        // A single-stage plan with one worker communicates nothing.
        let lonely = Partition::single_stage(job.profile.n_layers(), vec![GpuId(0)]);
        assert_eq!(comm_bytes_per_sec(&job.profile, &lonely, &st, &env), 0.0);
    }

    #[test]
    fn all_autopipe_tenancy_beats_all_static() {
        let topo = testbed();
        let env = MultiJobEnv::default();
        let static_jobs = vec![static_job(false), static_job(false), static_job(false)];
        let before = evaluate(&topo, &static_jobs, &env).expect("static tenancy");

        let mut adaptive_jobs = vec![static_job(true), static_job(true), static_job(true)];
        let changes =
            best_response_rounds(&topo, &mut adaptive_jobs, &env, 4).expect("best response");
        let after = evaluate(&topo, &adaptive_jobs, &env).expect("adaptive tenancy");
        assert!(
            after.total >= before.total,
            "coordinated tenancy must not lose: {:.1} -> {:.1} ({} changes)",
            before.total,
            after.total,
            changes
        );
    }

    #[test]
    fn best_response_terminates_at_a_fixed_point() {
        let topo = testbed();
        let env = MultiJobEnv::default();
        let mut jobs = vec![static_job(true), static_job(true)];
        let _ = best_response_rounds(&topo, &mut jobs, &env, 6).expect("first pass");
        // Re-running from the fixed point changes nothing.
        let again = best_response_rounds(&topo, &mut jobs, &env, 3).expect("second pass");
        assert_eq!(again, 0);
    }
}
