//! The AutoPipe control loop and dynamic-scenario runner.
//!
//! Every `check_every` iterations the controller: profiles the cluster
//! (Table 1 metrics), feeds the change detector, and — when a change is
//! confirmed — enumerates the two-worker neighborhood of the current
//! partition, scores every candidate with the meta-network (or the
//! analytic model, for ablation), prices the switch, and lets the RL
//! arbiter decide. Approved switches are applied with fine-grained
//! layer-by-layer migration (or stop-and-restart, for ablation).
//!
//! [`run_dynamic_scenario`] replays a resource timeline against either a
//! static plan (the PipeDream baseline of Figures 9/10) or a live
//! controller, producing the paper's speed-vs-iteration curves.

use std::collections::VecDeque;

use ap_cluster::{
    ClusterState, ClusterTopology, DetectorConfig, GpuId, ResourceChangeDetector,
    ResourceTimeline,
};
use ap_models::ModelProfile;
use ap_pipesim::{
    AnalyticModel, Engine, EngineConfig, Framework, Partition, ScheduleKind, SwitchPlan,
    SyncScheme,
};
use ap_planner::all_moves;
use ap_rng::Rng;

use crate::arbiter::{ArbiterInput, ArbiterMode};
use crate::meta_net::{MetaNet, MetaNetConfig, TrainingSample};
use crate::metrics::FeatureEncoder;
use crate::profiler::Profiler;
use crate::switch_cost::SwitchCostModel;

/// What scores candidate partitions.
pub enum Scorer {
    /// The learned meta-network (the paper's design).
    MetaNet(Box<MetaNet>),
    /// Direct analytic evaluation (ablation: perfect model, slower in
    /// spirit — on a real system this is the "tens of minutes" full model
    /// the paper rejects).
    Analytic,
}

/// How an approved switch is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchMode {
    /// AutoPipe's layer-by-layer migration (§4.4).
    FineGrained,
    /// The straw-man: drain, move, restart.
    StopRestart,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AutoPipeConfig {
    /// Gradient sync scheme.
    pub scheme: SyncScheme,
    /// Framework constants.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Decision cadence in iterations.
    pub check_every: usize,
    /// Amortization horizon (iterations) for switching decisions.
    pub horizon_iterations: f64,
    /// Change-detector tuning.
    pub detector: DetectorConfig,
    /// Switch execution mode.
    pub switch_mode: SwitchMode,
    /// Profiler measurement noise (1-sigma, fraction).
    pub profiler_noise: f64,
    /// Incremental moves chained per approved switch (the paper migrates
    /// gradually; chaining a few moves per decision reaches the target
    /// configuration with fewer pipeline disturbances).
    pub moves_per_decision: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutoPipeConfig {
    fn default() -> Self {
        AutoPipeConfig {
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
            check_every: 5,
            horizon_iterations: 100.0,
            detector: DetectorConfig::default(),
            switch_mode: SwitchMode::FineGrained,
            profiler_noise: 0.02,
            moves_per_decision: 4,
            seed: 1,
        }
    }
}

/// The controller's verdict for one decision point.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Keep the current partition.
    Keep,
    /// Apply `partition`, paying `pause_seconds` of pipeline disturbance.
    Switch {
        /// The new partition.
        partition: Partition,
        /// Pipeline pause charged at the switch point (the refill after a
        /// stop-restart switch is simulated by the engine itself and not
        /// included here).
        pause_seconds: f64,
    },
}

/// The AutoPipe controller for one training job.
pub struct AutoPipeController<'a> {
    profile: &'a ModelProfile,
    /// Current partition (updated on approved switches).
    pub partition: Partition,
    cfg: AutoPipeConfig,
    scorer: Scorer,
    arbiter: ArbiterMode,
    cost_model: SwitchCostModel,
    profiler: Profiler,
    detector: ResourceChangeDetector,
    encoder: FeatureEncoder,
    detector_width: usize,
    history: VecDeque<Vec<f64>>,
    first_decision_done: bool,
    /// Count of approved switches (diagnostics).
    pub switches_applied: usize,
    /// Pending verification of the last switch: (previous partition,
    /// measured speed before the switch, predicted speed of the previous
    /// partition at switch time, decision points until verdict — the
    /// pipeline needs a couple of windows to re-reach steady state).
    last_switch: Option<(Partition, f64, f64, u8)>,
    /// Candidates that measured worse after being applied (negative
    /// reward); never re-proposed.
    rejected: Vec<Partition>,
    /// Confidence in the scorer's predicted gains, decayed by every
    /// reverted switch and restored by verified ones. A low trust raises
    /// the minimum predicted gain worth acting on, extinguishing
    /// switch/revert thrash when the model and reality disagree.
    trust: f64,
    /// Decision points to sit out after a revert.
    cooldown: u8,
}

impl<'a> AutoPipeController<'a> {
    /// Build a controller around an initial partition.
    pub fn new(
        profile: &'a ModelProfile,
        initial: Partition,
        scorer: Scorer,
        arbiter: ArbiterMode,
        cfg: AutoPipeConfig,
    ) -> Self {
        initial
            .validate(profile.n_layers())
            .expect("invalid initial partition");
        let n_workers = initial.n_workers();
        AutoPipeController {
            profile,
            partition: initial,
            profiler: Profiler::new(profile, cfg.profiler_noise, cfg.seed),
            detector: ResourceChangeDetector::new(n_workers, cfg.detector.clone()),
            cfg,
            scorer,
            arbiter,
            cost_model: SwitchCostModel::default(),
            encoder: FeatureEncoder,
            detector_width: n_workers,
            history: VecDeque::new(),
            first_decision_done: false,
            switches_applied: 0,
            last_switch: None,
            rejected: Vec::new(),
            trust: 1.0,
            cooldown: 0,
        }
    }

    fn analytic(&self) -> AnalyticModel<'a> {
        AnalyticModel {
            profile: self.profile,
            scheme: self.cfg.scheme,
            framework: self.cfg.framework,
            schedule: self.cfg.schedule,
        }
    }

    /// Score a candidate's throughput (samples/sec).
    fn score(&self, candidate: &Partition, state: &ClusterState) -> f64 {
        match &self.scorer {
            Scorer::Analytic => self.analytic().throughput(candidate, state),
            Scorer::MetaNet(net) => {
                let seq: Vec<Vec<f64>> = self.history.iter().cloned().collect();
                let m = crate::metrics::static_metrics_from_profile(
                    self.profile,
                    candidate.n_workers(),
                );
                // Candidate encodings only need static Table-1 fields.
                let stat = self.encoder.encode_static(&m, candidate);
                net.predict_throughput(&seq, &stat)
            }
        }
    }

    /// Score a whole candidate set and return the best `(speed, partition)`.
    ///
    /// This is the hot path of a decision round — O(L²) candidates — so it
    /// is built for throughput:
    ///
    /// * **MetaNet**: the dynamic history is identical for every candidate,
    ///   so the LSTM runs *once* ([`MetaNet::encode_history`]) and each
    ///   candidate pays only the fully-connected head. Static Table-1
    ///   metrics depend only on the worker count, so they are computed once
    ///   per distinct count instead of once per candidate.
    /// * Both scorer arms fan the per-candidate work across `ap_par`'s
    ///   order-preserving parallel map; the final `max_by` runs serially
    ///   over results in input order, so the selected candidate is
    ///   identical to a fully serial scan (ties included).
    fn score_candidates(
        &self,
        candidates: Vec<Partition>,
        state: &ClusterState,
    ) -> Option<(f64, Partition)> {
        let scored = match &self.scorer {
            Scorer::Analytic => {
                let model = self.analytic();
                ap_par::map(candidates, |p| (model.throughput(&p, state), p))
            }
            Scorer::MetaNet(net) => {
                let seq: Vec<Vec<f64>> = self.history.iter().cloned().collect();
                let h = net.encode_history(&seq);
                let mut static_by_workers: Vec<(usize, crate::metrics::ProfilingMetrics)> =
                    Vec::new();
                for p in &candidates {
                    let n = p.n_workers();
                    if !static_by_workers.iter().any(|&(k, _)| k == n) {
                        static_by_workers
                            .push((n, crate::metrics::static_metrics_from_profile(self.profile, n)));
                    }
                }
                let encoder = &self.encoder;
                ap_par::map(candidates, |p| {
                    let m = &static_by_workers
                        .iter()
                        .find(|&&(k, _)| k == p.n_workers())
                        .expect("metrics precomputed for every worker count")
                        .1;
                    let stat = encoder.encode_static(m, &p);
                    (net.predict_throughput_from_encoding(&h, &stat), p)
                })
            }
        };
        scored.into_iter().max_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// One decision point: observe the cluster, maybe propose and switch.
    pub fn observe_and_decide(&mut self, state: &ClusterState) -> Decision {
        self.observe_and_decide_measured(state, None)
    }

    /// Decision point with the job's *measured* recent speed (samples/sec)
    /// when available. The measured speed is the arbiter's reward signal
    /// (§4.3 "the reward function is the training speed of one
    /// iteration"): a switch whose measured outcome is worse than what it
    /// replaced is reverted and the candidate black-listed.
    pub fn observe_and_decide_measured(
        &mut self,
        state: &ClusterState,
        measured: Option<f64>,
    ) -> Decision {
        // Verify the previous switch against its realized reward, once the
        // pipeline has had time to settle. The expected speed is the
        // pre-switch measurement scaled by the *predicted* ratio of the
        // two partitions under the current state, so a cluster-wide
        // slowdown (which hits either partition) does not trigger a bogus
        // revert.
        if let Some((prev, prev_speed, prev_pred_then, wait)) = self.last_switch.take() {
            if wait > 0 {
                self.last_switch = Some((prev, prev_speed, prev_pred_then, wait - 1));
            } else if let Some(m) = measured {
                // Expected outcome = pre-switch measurement scaled by the
                // *predicted* change (new partition under the current
                // state vs the old partition under the state it was
                // measured in) — robust to the environment moving again
                // between the switch and its verification.
                let new_pred_now = self.score(&self.partition, state);
                let ratio = (new_pred_now / prev_pred_then.max(1e-9)).clamp(0.1, 10.0);
                if m < prev_speed * ratio * 0.75 {
                    let bad = std::mem::replace(&mut self.partition, prev.clone());
                    self.rejected.push(bad);
                    if self.rejected.len() > 16 {
                        self.rejected.remove(0);
                    }
                    self.detector.reset();
                    // Negative reward: trust the scorer less and sit out a
                    // couple of windows, but stay armed — the environment
                    // may still be far from the reverted plan's optimum.
                    self.trust *= 0.6;
                    self.cooldown = 2;
                    self.first_decision_done = false;
                    // Reverting is itself a two-worker fine-grained switch
                    // back onto stashed weights: negligible pause.
                    return Decision::Switch {
                        partition: prev,
                        pause_seconds: 0.0,
                    };
                }
                // Positive reward: the prediction held up.
                self.trust = (self.trust * 1.15).min(1.0);
            }
        }
        let workers = self.partition.all_workers();
        // Worker evictions change the observation width; resize the
        // detector when that happens.
        if workers.len() != self.detector_width {
            self.detector = ResourceChangeDetector::new(workers.len(), self.cfg.detector.clone());
            self.detector_width = workers.len();
        }
        let metrics = self.profiler.observe(&workers, state);
        let dynamic = self.encoder.encode_dynamic(&metrics, &self.partition);
        self.history.push_back(dynamic);
        while self.history.len() > 16 {
            self.history.pop_front();
        }
        let computes: Vec<f64> = (0..workers.len())
            .map(|w| metrics.relative_speed(w))
            .collect();
        let changes = self.detector.observe(&metrics.bandwidth, &computes);
        // A severely degraded worker (< 35% of the fastest: failed or
        // nearly so) is a *standing* change: stay armed until it is
        // evacuated or recovers, even though the detector's reference has
        // re-baselined onto the degraded readings.
        let degraded_present = computes.iter().any(|&s| s < 0.35);
        if changes.is_empty() && self.first_decision_done && !degraded_present {
            return Decision::Keep;
        }
        self.first_decision_done = true;

        // Greedy chain of incremental moves (two-worker moves plus stage
        // merges/splits), each round keeping the best-scoring candidate;
        // previously punished candidates are never re-proposed.
        let current_speed = self.score(&self.partition, state);
        let mut best = self.partition.clone();
        let mut best_speed = current_speed;
        // Workers running below 35% of the fastest are treated as failed
        // or severely degraded: only those are eligible for eviction.
        // (Mild contention is better handled by re-balancing — shedding
        // capacity for a 2x-slow replica rarely pays once transition costs
        // are counted.)
        let degraded: Vec<ap_cluster::GpuId> = workers
            .iter()
            .zip(&computes)
            .filter(|&(_, &speed)| speed < 0.35)
            .map(|(&g, _)| g)
            .collect();
        for _ in 0..self.cfg.moves_per_decision.max(1) {
            let mut candidates = all_moves(&best, self.profile);
            if !degraded.is_empty() {
                candidates.extend(ap_planner::drop_moves(&best).into_iter().filter(|(_, p)| {
                    degraded.iter().any(|g| !p.all_workers().contains(g))
                }));
            }
            candidates.retain(|(_, p)| !self.rejected.contains(p));
            if candidates.is_empty() {
                break;
            }
            let round_best =
                self.score_candidates(candidates.into_iter().map(|(_, p)| p).collect(), state);
            match round_best {
                Some((speed, p)) if speed > best_speed * (1.0 + 1e-9) => {
                    best_speed = speed;
                    best = p;
                }
                _ => break,
            }
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Decision::Keep;
        }
        // Minimum predicted gain worth the risk, inflated when the scorer
        // has been caught over-promising.
        let floor = 1.0 + 0.03 / self.trust;
        if best == self.partition || best_speed <= current_speed * floor {
            return Decision::Keep;
        }
        let best = &best;

        // Price the switch and ask the arbiter.
        let plan = SwitchPlan::between(&self.partition, best, self.profile, self.cfg.schedule);
        let iter_time = self.profile.batch as f64 / current_speed.max(1e-9);
        let cost = self
            .cost_model
            .predict(&plan, iter_time, &self.partition, state);
        let mean_bw = metrics.bandwidth.iter().sum::<f64>()
            / metrics.bandwidth.len().max(1) as f64
            / 12.5e9;
        let input = ArbiterInput {
            current_speed,
            candidate_speed: best_speed,
            switch_cost: cost,
            iteration_time: iter_time,
            horizon_iterations: self.cfg.horizon_iterations,
            mean_bandwidth_norm: mean_bw,
        };
        if !self.arbiter.decide(&input) {
            return Decision::Keep;
        }

        // Pause actually charged to the pipeline at the switch point; the
        // engine restart already re-simulates the refill, so only the
        // non-refill components are charged here.
        let pause = match self.cfg.switch_mode {
            SwitchMode::StopRestart => {
                self.partition.in_flight as f64 * iter_time + plan.raw_transfer_time(state)
            }
            SwitchMode::FineGrained => {
                let slack = (self.partition.in_flight.saturating_sub(1)) as f64 * iter_time;
                (plan.raw_transfer_time(state) - slack).max(0.0)
                    + ap_pipesim::switching::PER_LAYER_CALL_OVERHEAD
                        * plan.moved_layers.len() as f64
            }
        };
        let new_partition = best.clone();
        self.last_switch = Some((
            self.partition.clone(),
            measured.unwrap_or(current_speed),
            current_speed,
            2,
        ));
        self.partition = new_partition.clone();
        self.detector.reset();
        self.switches_applied += 1;
        Decision::Switch {
            partition: new_partition,
            pause_seconds: pause,
        }
    }
}

/// Outcome of a dynamic scenario replay.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Per-iteration speed samples `(iteration, samples/sec)`.
    pub speed_series: Vec<(u64, f64)>,
    /// Approved switches `(iteration, pause_seconds)`.
    pub switches: Vec<(u64, f64)>,
    /// Overall samples/sec across the run.
    pub mean_throughput: f64,
    /// Total wall-clock seconds simulated.
    pub total_seconds: f64,
}

/// Replay `timeline` for `n_iterations` mini-batches.
///
/// With `controller = None` the initial partition stays fixed (the static
/// PipeDream baseline); otherwise the controller is consulted every
/// `cfg.check_every` completed iterations and approved switches are
/// applied **live** inside the engine: in-flight mini-batches drain on the
/// old assignment while new ones use the new one (fine-grained switching,
/// §4.4), with only the affected workers stalled — or every worker, for
/// the stop-and-restart ablation.
pub fn run_dynamic_scenario(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    timeline: &ResourceTimeline,
    initial: Partition,
    controller: Option<&mut AutoPipeController<'_>>,
    cfg: &AutoPipeConfig,
    n_iterations: usize,
) -> ScenarioResult {
    let engine = Engine::new(
        profile,
        initial,
        ClusterState::new(topo.clone()),
        timeline.clone(),
        EngineConfig {
            scheme: cfg.scheme,
            framework: cfg.framework,
            schedule: cfg.schedule,
            record_timeline: false,
        },
    );
    let mut switches: Vec<(u64, f64)> = Vec::new();
    let result = match controller {
        None => engine.run(n_iterations),
        Some(ctrl) => {
            let global_stall = cfg.switch_mode == SwitchMode::StopRestart;
            engine.run_controlled(n_iterations, cfg.check_every, |state, done, _now, measured| {
                match ctrl.observe_and_decide_measured(state, measured) {
                    Decision::Keep => None,
                    Decision::Switch {
                        partition,
                        pause_seconds,
                    } => {
                        switches.push((done, pause_seconds));
                        Some((partition, pause_seconds, global_stall))
                    }
                }
            })
        }
    };

    // Simultaneous completions can overshoot the request; trim.
    let mut result = result;
    result.iterations.truncate(n_iterations);
    // Per-iteration speeds; completions sharing an instant share the rate
    // measured at the next distinct completion time.
    let mut speed_series = Vec::with_capacity(result.iterations.len());
    let mut prev_finish = 0.0_f64;
    let mut pending: Vec<u64> = Vec::new();
    for (idx, rec) in result.iterations.iter().enumerate() {
        pending.push(idx as u64);
        let dt = rec.finish - prev_finish;
        if dt > 1e-12 {
            let speed = pending.len() as f64 * profile.batch as f64 / dt;
            for &i in &pending {
                speed_series.push((i, speed));
            }
            pending.clear();
            prev_finish = rec.finish;
        }
    }
    if !pending.is_empty() {
        let speed = speed_series.last().map(|&(_, s)| s).unwrap_or(0.0);
        for &i in &pending {
            speed_series.push((i, speed));
        }
    }

    let total = result
        .iterations
        .last()
        .map(|r| r.finish)
        .unwrap_or(result.makespan)
        .max(1e-12);
    ScenarioResult {
        mean_throughput: result.iterations.len() as f64 * profile.batch as f64 / total,
        speed_series,
        switches,
        total_seconds: total,
    }
}

/// Greedy hill-climbing with two-worker moves under the analytic model:
/// AutoPipe's steady-state optimizer, used for the static experiments.
pub fn hill_climb(
    model: &AnalyticModel<'_>,
    start: Partition,
    state: &ClusterState,
    max_rounds: usize,
) -> Partition {
    let mut current = start;
    // Group replicas by effective speed so split moves can isolate
    // stragglers (order within a stage has no execution semantics).
    ap_planner::sort_stage_workers_by(&mut current, |g| state.effective_flops(g));
    let mut current_tp = model.throughput(&current, state);
    for _ in 0..max_rounds {
        let moves = all_moves(&current, model.profile);
        let best = ap_par::map(moves, |(_, p)| {
            let tp = model.throughput(&p, state);
            (tp, p)
        })
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0));
        match best {
            Some((tp, p)) if tp > current_tp * (1.0 + 1e-9) => {
                current = p;
                current_tp = tp;
            }
            _ => break,
        }
    }
    current
}

/// Offline meta-network pretraining: sample environments (bandwidth and
/// contention levels) and candidate partitions, label them with the
/// analytic model, and fit the network (§4.3 "offline training").
pub fn pretrain_meta_net(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    cfg: &AutoPipeConfig,
    meta_cfg: MetaNetConfig,
    n_samples: usize,
    epochs: usize,
    seed: u64,
) -> MetaNet {
    let encoder = FeatureEncoder;
    let model = AnalyticModel {
        profile,
        scheme: cfg.scheme,
        framework: cfg.framework,
        schedule: cfg.schedule,
    };
    let all_gpus: Vec<GpuId> = (0..topo.n_gpus()).map(GpuId).collect();
    let seq_len = meta_cfg.seq_len;
    // Labeled samples are independent, so they are generated in parallel.
    // Sample `i` draws from its own RNG stream `(seed, i)` and retries
    // infeasible environments within that stream, so the data set is
    // identical for any thread count.
    let samples: Vec<TrainingSample> = ap_par::map_indexed(n_samples, |i| {
        let mut rng = Rng::stream(seed, i as u64);
        loop {
            // Random environment.
            let mut st = ClusterState::new(topo.clone());
            let g: f64 = rng.gen_range(5.0..100.0);
            st.topology.set_uniform_link_gbps(g);
            for gi in 0..st.topology.n_gpus() {
                st.topology.gpu_mut(GpuId(gi)).colocated_jobs = rng.gen_range(1..=3u32);
            }
            // Random partition: a planner start plus a few random moves.
            let n_stages = rng.gen_range(1..=4usize.min(all_gpus.len()));
            let mut p = ap_planner::uniform_plan(profile, n_stages, &all_gpus);
            for _ in 0..rng.gen_range(0..4usize) {
                let moves = all_moves(&p, profile);
                if moves.is_empty() {
                    break;
                }
                p = moves[rng.gen_range(0..moves.len())].1.clone();
            }
            let tp = model.throughput(&p, &st);
            if !(tp.is_finite() && tp > 0.0) {
                continue;
            }
            // Stationary dynamic history for this environment.
            let mut prof = Profiler::new(profile, cfg.profiler_noise, rng.gen());
            let workers = p.all_workers();
            let dynamic_seq: Vec<Vec<f64>> = (0..seq_len)
                .map(|_| {
                    let m = prof.observe(&workers, &st);
                    encoder.encode_dynamic(&m, &p)
                })
                .collect();
            let m = crate::metrics::static_metrics_from_profile(profile, p.n_workers());
            return TrainingSample {
                dynamic_seq,
                static_feat: encoder.encode_static(&m, &p),
                log_throughput: tp.ln(),
            };
        }
    });
    let mut net = MetaNet::new(meta_cfg);
    net.train(&samples, epochs, seed.wrapping_add(1));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::EventKind;
    use ap_models::{synthetic_uniform, ModelProfile};
    use ap_pipesim::Stage;
    use ap_planner::{pipedream_plan, PipeDreamView};

    fn topo() -> ClusterTopology {
        ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0)
    }

    fn profile() -> ModelProfile {
        ModelProfile::with_batch(&synthetic_uniform(12, 2e9, 6e6, 10e6), 32)
    }

    fn initial(profile: &ModelProfile) -> Partition {
        let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        pipedream_plan(
            profile,
            &gpus,
            PipeDreamView {
                bandwidth: ap_cluster::gbps(25.0),
                gpu_flops: GpuKind::P100.peak_flops(),
            },
        )
    }

    #[test]
    fn hill_climb_never_regresses_and_improves_imbalanced_starts() {
        let p = profile();
        let st = ClusterState::new(topo());
        let model = AnalyticModel {
            profile: &p,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
        };
        // Deliberately terrible start: 11 layers on one GPU.
        let bad = Partition {
            stages: vec![
                Stage::new(0..1, vec![GpuId(0)]),
                Stage::new(1..12, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let bad_tp = model.throughput(&bad, &st);
        let better = hill_climb(&model, bad.clone(), &st, 20);
        let better_tp = model.throughput(&better, &st);
        assert!(better_tp > bad_tp * 1.5, "{bad_tp} -> {better_tp}");
    }

    #[test]
    fn controller_keeps_quiet_in_steady_state() {
        let p = profile();
        let st = ClusterState::new(topo());
        let mut ctrl = AutoPipeController::new(
            &p,
            initial(&p),
            Scorer::Analytic,
            ArbiterMode::Threshold(0.02),
            AutoPipeConfig::default(),
        );
        // First decision may adjust (initialization), afterwards silence.
        let _ = ctrl.observe_and_decide(&st);
        for _ in 0..10 {
            match ctrl.observe_and_decide(&st) {
                Decision::Keep => {}
                Decision::Switch { .. } => panic!("switched without a resource change"),
            }
        }
    }

    #[test]
    fn controller_reacts_to_bandwidth_drop() {
        // Skewed model: activations shrink with depth, so when bandwidth
        // collapses, the optimal cut moves deeper (smaller tensors) even
        // at the cost of compute imbalance.
        let model = ap_models::synthetic_skewed(12, 2e9, 40e6, 10e6);
        let p = ModelProfile::with_batch(&model, 32);
        // Compute-balanced boundary (what a high-bandwidth plan picks).
        let init = Partition {
            stages: vec![
                Stage::new(0..8, vec![GpuId(0)]),
                Stage::new(8..12, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let mut cfg = AutoPipeConfig::default();
        cfg.detector.persistence = 2;
        let mut ctrl = AutoPipeController::new(
            &p,
            init.clone(),
            Scorer::Analytic,
            ArbiterMode::Threshold(0.0),
            cfg,
        );
        let st = ClusterState::new(topo());
        for _ in 0..4 {
            let _ = ctrl.observe_and_decide(&st);
        }
        let before = ctrl.partition.clone();
        // Drop bandwidth 25x: the cut must move toward smaller tensors.
        let mut slow = ClusterState::new(topo());
        slow.apply(&EventKind::SetAllLinksGbps(1.0));
        let mut switched = false;
        for _ in 0..6 {
            if let Decision::Switch { .. } = ctrl.observe_and_decide(&slow) {
                switched = true;
                break;
            }
        }
        assert!(switched, "controller must react to a 25x bandwidth drop");
        assert_ne!(ctrl.partition, before);
        // The new configuration is analytically better at low bandwidth
        // (a deeper cut or a merge into fewer comm-bound stages).
        let model = AnalyticModel {
            profile: &p,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
        };
        assert!(model.throughput(&ctrl.partition, &slow) > model.throughput(&before, &slow));
    }

    #[test]
    fn dynamic_scenario_baseline_matches_plain_engine() {
        let p = profile();
        let cfg = AutoPipeConfig::default();
        let r = run_dynamic_scenario(
            &p,
            &topo(),
            &ResourceTimeline::empty(),
            initial(&p),
            None,
            &cfg,
            30,
        );
        assert!(r.mean_throughput > 0.0);
        assert!(r.switches.is_empty());
        assert_eq!(r.speed_series.len(), 30);
    }

    #[test]
    fn autopipe_beats_static_plan_under_bandwidth_drop() {
        let cfg = AutoPipeConfig {
            check_every: 3,
            detector: DetectorConfig {
                threshold: 0.15,
                persistence: 1,
            },
            ..AutoPipeConfig::default()
        };
        // Comm-heavy model so partitioning matters.
        let pc = ModelProfile::with_batch(&synthetic_uniform(12, 5e8, 40e6, 10e6), 32);
        let init = {
            let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
            pipedream_plan(
                &pc,
                &gpus,
                PipeDreamView {
                    bandwidth: ap_cluster::gbps(25.0),
                    gpu_flops: GpuKind::P100.peak_flops(),
                },
            )
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(3.0, EventKind::SetAllLinksGbps(5.0));
        let baseline = run_dynamic_scenario(&pc, &topo(), &tl, init.clone(), None, &cfg, 60);
        let mut ctrl = AutoPipeController::new(
            &pc,
            init.clone(),
            Scorer::Analytic,
            ArbiterMode::Threshold(0.0),
            cfg.clone(),
        );
        let auto = run_dynamic_scenario(&pc, &topo(), &tl, init, Some(&mut ctrl), &cfg, 60);
        assert!(
            auto.mean_throughput >= baseline.mean_throughput,
            "AutoPipe {} must be at least the static baseline {}",
            auto.mean_throughput,
            baseline.mean_throughput
        );
    }

    #[test]
    fn pretrained_meta_net_correlates_with_analytic_truth() {
        let p = profile();
        let cfg = AutoPipeConfig::default();
        let net = pretrain_meta_net(&p, &topo(), &cfg, MetaNetConfig::default(), 400, 60, 9);
        // Spot-check ranking: balanced two-stage beats absurd split in a
        // mid-bandwidth environment.
        let st = ClusterState::new(topo());
        let model = AnalyticModel {
            profile: &p,
            scheme: cfg.scheme,
            framework: cfg.framework,
            schedule: cfg.schedule,
        };
        let good = Partition {
            stages: vec![
                Stage::new(0..6, vec![GpuId(0), GpuId(1)]),
                Stage::new(6..12, vec![GpuId(2), GpuId(3)]),
            ],
            in_flight: 6,
        };
        // Same worker budget as `good` (in-distribution for the sampler)
        // but a badly skewed layer boundary.
        let bad = Partition {
            stages: vec![
                Stage::new(0..1, vec![GpuId(0), GpuId(1)]),
                Stage::new(1..12, vec![GpuId(2), GpuId(3)]),
            ],
            in_flight: 6,
        };
        let enc = FeatureEncoder;
        let mut prof = Profiler::new(&p, 0.0, 4);
        let seq: Vec<Vec<f64>> = (0..8)
            .map(|_| {
                let m = prof.observe(&good.all_workers(), &st);
                enc.encode_dynamic(&m, &good)
            })
            .collect();
        let stat = |part: &Partition| {
            let m = crate::metrics::static_metrics_from_profile(&p, part.n_workers());
            enc.encode_static(&m, part)
        };
        let pg = net.predict_throughput(&seq, &stat(&good));
        let pb = net.predict_throughput(&seq, &stat(&bad));
        assert!(
            pg > pb,
            "meta-net must rank like the analytic model ({} vs {}), truth {} vs {}",
            pg,
            pb,
            model.throughput(&good, &st),
            model.throughput(&bad, &st)
        );
    }

    /// The hoisted-LSTM parallel scorer must select exactly the same best
    /// candidate — bit-identical score, equal partition — as a serial scan
    /// through the unhoisted per-candidate path, across seeded scenarios
    /// and both scorer arms.
    #[test]
    fn parallel_scoring_matches_serial_reference() {
        let p = profile();
        for seed in [3u64, 11, 42] {
            let mut rng = ap_rng::Rng::seed_from_u64(seed);
            let mut st = ClusterState::new(topo());
            st.apply(&EventKind::SetAllLinksGbps(rng.gen_range(5.0..60.0)));
            st.apply(&EventKind::SetGpuSharing(
                GpuId(rng.gen_range(0..4usize)),
                rng.gen_range(1..=3u32),
            ));
            let scorers = [
                Scorer::Analytic,
                Scorer::MetaNet(Box::new(MetaNet::new(MetaNetConfig {
                    seed,
                    ..MetaNetConfig::default()
                }))),
            ];
            for scorer in scorers {
                let mut c = AutoPipeController::new(
                    &p,
                    initial(&p),
                    scorer,
                    ArbiterMode::AlwaysSwitch,
                    AutoPipeConfig::default(),
                );
                for _ in 0..8 {
                    let obs: Vec<f64> = (0..crate::metrics::DYNAMIC_DIM)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect();
                    c.history.push_back(obs);
                }
                let candidates: Vec<Partition> = all_moves(&c.partition, &p)
                    .into_iter()
                    .map(|(_, q)| q)
                    .collect();
                assert!(candidates.len() > 4, "neighborhood too small to exercise");
                // Serial reference: the per-candidate path (full LSTM pass
                // each time for MetaNet) scanned in input order.
                let serial = candidates
                    .iter()
                    .map(|q| (c.score(q, &st), q.clone()))
                    .max_by(|a, b| a.0.total_cmp(&b.0))
                    .unwrap();
                let fast = c.score_candidates(candidates, &st).unwrap();
                assert_eq!(
                    fast.0.to_bits(),
                    serial.0.to_bits(),
                    "seed {seed}: scores diverged: {} vs {}",
                    fast.0,
                    serial.0
                );
                assert_eq!(fast.1, serial.1, "seed {seed}: selected different candidate");
            }
        }
    }
}
