//! Default [`Arbitrate`] stage: the RL arbiter (or a threshold/always
//! policy for ablation) behind the stage interface.

use super::stages::Arbitrate;
use crate::arbiter::{ArbiterInput, ArbiterMode};

impl Arbitrate for ArbiterMode {
    fn arbitrate(&self, input: &ArbiterInput) -> bool {
        self.decide(input)
    }
}
