//! Steady-state optimization built from the [`Enumerate`] and [`Score`]
//! stages: the greedy refinement loop shared by the live controller, the
//! static planners and the multi-job best-response dynamics.

use std::collections::VecDeque;

use ap_cluster::ClusterState;
use ap_pipesim::{AnalyticModel, Partition};
use ap_planner::sort_stage_workers_by;

use super::enumerate::MoveEnumerator;
use super::score::Scorer;
use super::stages::{Enumerate, Score, ScoreCtx};

/// Greedy refinement: chain incremental moves from `start`, each round
/// keeping the best-scoring candidate, until no candidate beats the
/// incumbent (beyond float noise) or `max_rounds` is exhausted. Returns
/// the refined partition and its score.
pub fn refine<E: Enumerate, S: Score>(
    enumerator: &E,
    scorer: &S,
    ctx: &ScoreCtx<'_>,
    start: Partition,
    start_score: f64,
    max_rounds: usize,
) -> (Partition, f64) {
    let mut current = start;
    let mut current_score = start_score;
    for _ in 0..max_rounds {
        let candidates = enumerator.candidates(&current, ctx.profile, &[]);
        if candidates.is_empty() {
            break;
        }
        match scorer.best(ctx, candidates) {
            Some((score, p)) if score > current_score * (1.0 + 1e-9) => {
                current = p;
                current_score = score;
            }
            _ => break,
        }
    }
    (current, current_score)
}

/// Greedy hill-climbing with two-worker moves under the analytic model:
/// AutoPipe's steady-state optimizer, used for the static experiments.
/// A thin composition of [`MoveEnumerator`] and [`Scorer::Analytic`] over
/// [`refine`].
pub fn hill_climb(
    model: &AnalyticModel<'_>,
    start: Partition,
    state: &ClusterState,
    max_rounds: usize,
) -> Partition {
    let mut current = start;
    // Group replicas by effective speed so split moves can isolate
    // stragglers (order within a stage has no execution semantics).
    sort_stage_workers_by(&mut current, |g| state.effective_flops(g));
    let history = VecDeque::new();
    let ctx = ScoreCtx {
        profile: model.profile,
        scheme: model.scheme,
        framework: model.framework,
        schedule: model.schedule,
        calibration: model.calibration,
        history: &history,
        state,
    };
    let scorer = Scorer::Analytic;
    let start_score = scorer.predict(&ctx, &current);
    refine(
        &MoveEnumerator::new(),
        &scorer,
        &ctx,
        current,
        start_score,
        max_rounds,
    )
    .0
}
