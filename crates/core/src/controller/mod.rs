//! The AutoPipe control loop as a staged decision pipeline.
//!
//! Every `check_every` iterations the controller walks an explicit stage
//! pipeline (the traits in [`stages`]):
//!
//! ```text
//! Verify ──▶ Observe ──▶ Detect ──▶ Enumerate ──▶ Score ──▶ Arbitrate ──▶ Switch
//! (revert    (profile,   (confirm   (two-worker    (meta-net  (RL /         (plan,
//!  or trust)  history)    changes)   neighborhood)  or         threshold)    price,
//!                                                   analytic)                pause)
//! ```
//!
//! profiling the cluster (Table 1 metrics), feeding the change detector,
//! and — when a change is confirmed — enumerating the two-worker
//! neighborhood of the current partition, scoring every candidate with
//! the meta-network (or the analytic model, for ablation), pricing the
//! switch, and letting the RL arbiter decide. Approved switches are
//! applied with fine-grained layer-by-layer migration (or
//! stop-and-restart, for ablation) and later verified against their
//! measured reward.
//!
//! Every stage appends typed events to a [`DecisionJournal`] — the audit
//! trail of what was observed, proposed, priced, approved and verified —
//! which can be merged with the engine's worker timeline into one chrome
//! trace.
//!
//! [`scenario::run_dynamic_scenario`] replays a resource timeline against
//! either a static plan (the PipeDream baseline of Figures 9/10) or a
//! live controller, producing the paper's speed-vs-iteration curves.

pub mod arbitrate;
pub mod config;
pub mod detect;
pub mod enumerate;
pub mod journal;
pub mod observe;
pub mod optimize;
pub mod pretrain;
pub mod retry;
pub mod scenario;
pub mod score;
pub mod stages;
pub mod switch;
pub mod verify;

#[cfg(test)]
mod tests;

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;
use ap_pipesim::{Partition, PartitionError};

use crate::arbiter::{ArbiterInput, ArbiterMode};

pub use config::AutoPipeConfig;
use detect::describe_change;
pub use detect::ChangeMonitor;
pub use enumerate::MoveEnumerator;
pub use journal::{DecisionEvent, DecisionJournal, DecisionRecord, KeepReason};
pub use observe::ProfilerObserver;
pub use optimize::{hill_climb, refine};
pub use pretrain::pretrain_meta_net;
pub use retry::RetryPolicy;
pub use scenario::{run_dynamic_scenario, run_dynamic_scenario_traced, ScenarioResult};
pub use score::Scorer;
pub use stages::{
    Arbitrate, Decision, Detect, Enumerate, Observe, PendingSwitch, Score, ScoreCtx, Switch,
    Verdict, Verify,
};
pub use switch::{SwitchExecutor, SwitchMode};
pub use verify::RewardVerifier;

/// Workers measured below this fraction of the fastest are treated as
/// failed or severely degraded (eviction-eligible, standing change).
const DEGRADED_SPEED_FRACTION: f64 = 0.35;

/// The AutoPipe controller for one training job: a thin composition of
/// the default stage implementations, stepped once per decision point.
pub struct AutoPipeController<'a> {
    profile: &'a ModelProfile,
    /// Current partition (updated on approved switches).
    pub partition: Partition,
    cfg: AutoPipeConfig,
    observer: ProfilerObserver,
    monitor: ChangeMonitor,
    enumerator: MoveEnumerator,
    scorer: Scorer,
    arbiter: ArbiterMode,
    switcher: SwitchExecutor,
    verifier: RewardVerifier,
    /// The audit trail of every decision point.
    pub journal: DecisionJournal,
    /// Paces emergency-repair attempts (bounded, backed off, seeded).
    retry: retry::RetryPolicy,
    /// Whether this fault episode's exhaustion was already journaled.
    retry_exhausted_logged: bool,
    /// A fault episode ended (worker recovered) before any repair switch
    /// was applied: the engine's live epoch still excludes the worker, so
    /// the current partition must be re-applied to rebuild it.
    reinstate_pending: bool,
    first_decision_done: bool,
    /// Count of approved switches (diagnostics).
    pub switches_applied: usize,
    /// Decision points taken (the journal's decision ordinal).
    decisions: u64,
}

impl<'a> AutoPipeController<'a> {
    /// Build a controller around an initial partition. Fails with the
    /// structural [`PartitionError`] when `initial` is invalid for
    /// `profile`.
    pub fn new(
        profile: &'a ModelProfile,
        initial: Partition,
        scorer: Scorer,
        arbiter: ArbiterMode,
        cfg: AutoPipeConfig,
    ) -> Result<Self, PartitionError> {
        initial.validate(profile.n_layers())?;
        let n_workers = initial.n_workers();
        Ok(AutoPipeController {
            profile,
            partition: initial,
            observer: ProfilerObserver::new(profile, cfg.profiler_noise, cfg.seed),
            monitor: ChangeMonitor::new(n_workers, cfg.detector.clone()),
            enumerator: MoveEnumerator::new(),
            switcher: SwitchExecutor::new(cfg.switch_mode),
            verifier: RewardVerifier::new(),
            retry: retry::RetryPolicy::new(
                cfg.retry_max_attempts,
                cfg.retry_base_delay_seconds,
                cfg.retry_base_delay_seconds.max(1e-3) * 64.0,
                cfg.seed ^ 0x5e7f,
            ),
            retry_exhausted_logged: false,
            reinstate_pending: false,
            cfg,
            scorer,
            arbiter,
            journal: DecisionJournal::new(),
            first_decision_done: false,
            switches_applied: 0,
            decisions: 0,
        })
    }

    /// The observation stage (read access for diagnostics and tests).
    pub fn observer(&self) -> &ProfilerObserver {
        &self.observer
    }

    /// Seed the observation history directly (offline evaluation).
    pub fn push_history(&mut self, observation: Vec<f64>) {
        self.observer.push_history(observation);
    }

    /// One decision point: observe the cluster, maybe propose and switch.
    pub fn observe_and_decide(&mut self, state: &ClusterState) -> Decision {
        self.observe_and_decide_measured(state, None)
    }

    /// Decision point with the job's *measured* recent speed (samples/sec)
    /// when available. The measured speed is the arbiter's reward signal
    /// (§4.3 "the reward function is the training speed of one
    /// iteration"): a switch whose measured outcome is worse than what it
    /// replaced is reverted and the candidate black-listed.
    pub fn observe_and_decide_measured(
        &mut self,
        state: &ClusterState,
        measured: Option<f64>,
    ) -> Decision {
        let decision = self.decisions;
        self.observe_and_decide_at(state, measured, decision, 0.0)
    }

    /// [`Self::observe_and_decide_measured`] with the run position
    /// (`iteration` completed mini-batches at simulated time `now`
    /// seconds) stamped onto this decision point's journal records.
    pub fn observe_and_decide_at(
        &mut self,
        state: &ClusterState,
        measured: Option<f64>,
        iteration: u64,
        now: f64,
    ) -> Decision {
        let decision = self.decisions;
        self.decisions += 1;
        let Self {
            profile,
            ref mut partition,
            ref cfg,
            ref mut observer,
            ref mut monitor,
            ref mut enumerator,
            ref scorer,
            ref arbiter,
            ref switcher,
            ref mut verifier,
            ref mut journal,
            ref mut retry,
            ref mut retry_exhausted_logged,
            ref mut reinstate_pending,
            ref mut first_decision_done,
            ref mut switches_applied,
            decisions: _,
        } = *self;

        // — Detect (fault class): a partition that names a failed worker
        // is *infeasible* — a stage has lost a replica for good — which is
        // a different class from "degraded". The gain-vs-cost gate does
        // not apply (the current plan cannot run at all), so the repair
        // bypasses the arbiter entirely; attempts are paced by the seeded
        // retry policy so a repair that keeps failing backs off instead
        // of thrashing.
        let failed: Vec<GpuId> = partition
            .all_workers()
            .iter()
            .copied()
            .filter(|g| !state.is_available(*g))
            .collect();
        if !failed.is_empty() {
            journal.record(
                decision,
                iteration,
                now,
                DecisionEvent::InfeasibleDetected {
                    failed_workers: failed.iter().map(|g| g.0).collect(),
                },
            );
            if retry.exhausted() {
                if !*retry_exhausted_logged {
                    *retry_exhausted_logged = true;
                    journal.record(
                        decision,
                        iteration,
                        now,
                        DecisionEvent::RetryExhausted {
                            attempts: retry.attempts(),
                        },
                    );
                }
                *reinstate_pending = true;
                return Decision::Keep;
            }
            if !retry.ready(now) {
                journal.record(
                    decision,
                    iteration,
                    now,
                    DecisionEvent::Kept {
                        reason: KeepReason::RetryBackoff,
                    },
                );
                *reinstate_pending = true;
                return Decision::Keep;
            }
            let attempt = retry.attempt(now);
            journal.record(
                decision,
                iteration,
                now,
                DecisionEvent::RetryScheduled {
                    attempt,
                    not_before: retry.next_allowed(),
                },
            );
            // Greedy evacuation: chain the incremental moves (merges make
            // a sole dead replica droppable) that shed the most failed
            // workers, score breaking ties, until none remain.
            let ctx = ScoreCtx {
                profile,
                scheme: cfg.scheme,
                framework: cfg.framework,
                schedule: cfg.schedule,
                calibration: cfg.calibration,
                history: observer.history(),
                state,
            };
            let dead_count = |p: &Partition| {
                p.all_workers()
                    .iter()
                    .filter(|g| failed.contains(g))
                    .count()
            };
            let mut best = partition.clone();
            let mut bad = dead_count(&best);
            for _ in 0..(failed.len() * 4).max(4) {
                if bad == 0 {
                    break;
                }
                let viable: Vec<Partition> = enumerator
                    .candidates(&best, profile, &failed)
                    .into_iter()
                    .filter(|p| dead_count(p) < bad)
                    .collect();
                let Some((_, p)) = scorer.best(&ctx, viable) else {
                    break;
                };
                bad = dead_count(&p);
                best = p;
            }
            if bad > 0 {
                // The incremental chain stalled — e.g. a dead worker is a
                // stage's sole replica, so a merge keeps it in the union
                // and a drop needs two replicas: no single move strictly
                // reduces the dead count. Fall back to pure data
                // parallelism over the survivors, which is always
                // schedulable (the scorer-guided chain stays the primary
                // path because it preserves pipeline structure).
                let survivors: Vec<GpuId> = partition
                    .all_workers()
                    .iter()
                    .copied()
                    .filter(|g| state.is_available(*g))
                    .collect();
                if survivors.is_empty() {
                    journal.record(
                        decision,
                        iteration,
                        now,
                        DecisionEvent::Kept {
                            reason: KeepReason::RetryBackoff,
                        },
                    );
                    *reinstate_pending = true;
                    return Decision::Keep;
                }
                best = Partition::single_stage(profile.n_layers(), survivors);
            }
            let plan = switcher.plan(partition, &best, profile, cfg.schedule);
            let pred = scorer.predict(&ctx, &best).max(1e-9);
            let iter_time = profile.batch as f64 / pred;
            let pause = switcher.pause_seconds(&plan, iter_time, partition, state);
            let dropped: Vec<usize> = failed
                .iter()
                .filter(|g| !best.all_workers().contains(g))
                .map(|g| g.0)
                .collect();
            journal.record(
                decision,
                iteration,
                now,
                DecisionEvent::EmergencyRepartition {
                    from: partition.summary(),
                    to: best.summary(),
                    dropped,
                    attempt,
                    pause_seconds: pause,
                },
            );
            // A pending verification would revert onto a partition that
            // may name the dead worker; drop it.
            verifier.disarm();
            monitor.reset();
            *reinstate_pending = false;
            *first_decision_done = false;
            *partition = best.clone();
            *switches_applied += 1;
            return Decision::Switch {
                partition: best,
                pause_seconds: pause,
            };
        }
        // Feasible: any fault episode is over — the next one starts with
        // a full repair budget.
        if retry.attempts() > 0 {
            retry.reset();
            *retry_exhausted_logged = false;
        }
        if *reinstate_pending {
            // The episode ended with no repair switch applied (the worker
            // recovered first, or every attempt was held back). The engine
            // shed the worker from its live epoch when it died and rejoins
            // it only on a switch, so re-apply the current partition:
            // zero-cost structurally (nothing moves), and it restarts any
            // mini-batches the outage stranded.
            *reinstate_pending = false;
            journal.record(
                decision,
                iteration,
                now,
                DecisionEvent::EmergencyRepartition {
                    from: partition.summary(),
                    to: partition.summary(),
                    dropped: Vec::new(),
                    attempt: 0,
                    pause_seconds: 0.0,
                },
            );
            verifier.disarm();
            monitor.reset();
            *first_decision_done = false;
            *switches_applied += 1;
            return Decision::Switch {
                partition: partition.clone(),
                pause_seconds: 0.0,
            };
        }

        // — Verify: judge the previous switch against its realized reward,
        // once the pipeline has had time to settle.
        let verdict = {
            let ctx = ScoreCtx {
                profile,
                scheme: cfg.scheme,
                framework: cfg.framework,
                schedule: cfg.schedule,
                calibration: cfg.calibration,
                history: observer.history(),
                state,
            };
            verifier.check(measured, || scorer.predict(&ctx, partition))
        };
        match verdict {
            Verdict::Revert {
                prev,
                measured: m,
                expected_floor,
            } => {
                let bad = std::mem::replace(partition, prev.clone());
                enumerator.reject(bad);
                monitor.reset();
                *first_decision_done = false;
                journal.record(
                    decision,
                    iteration,
                    now,
                    DecisionEvent::Reverted {
                        to: prev.summary(),
                        measured: m,
                        expected_floor,
                        trust: verifier.trust(),
                    },
                );
                // Reverting is itself a two-worker fine-grained switch
                // back onto stashed weights: negligible pause.
                return Decision::Switch {
                    partition: prev,
                    pause_seconds: 0.0,
                };
            }
            Verdict::Verified {
                measured: m,
                expected_floor,
            } => {
                journal.record(
                    decision,
                    iteration,
                    now,
                    DecisionEvent::Verified {
                        measured: m,
                        expected_floor,
                        trust: verifier.trust(),
                    },
                );
            }
            Verdict::Idle | Verdict::Waiting => {}
        }

        // — Observe: profile the cluster, extend the history.
        let workers = partition.all_workers();
        // Worker evictions change the observation width; resize the
        // detector when that happens.
        monitor.resize(workers.len());
        let metrics = observer.observe(&workers, state, partition);
        let computes: Vec<f64> = (0..workers.len())
            .map(|w| metrics.relative_speed(w))
            .collect();

        // — Detect: confirm changes; a severely degraded worker (failed
        // or nearly so) is a *standing* change: stay armed until it is
        // evacuated or recovers, even though the detector's reference has
        // re-baselined onto the degraded readings.
        let changes = monitor.detect(&metrics, &computes);
        let degraded_present = computes.iter().any(|&s| s < DEGRADED_SPEED_FRACTION);
        if changes.is_empty() && *first_decision_done && !degraded_present {
            return Decision::Keep;
        }
        *first_decision_done = true;
        // Only sub-threshold workers are eligible for eviction. (Mild
        // contention is better handled by re-balancing — shedding
        // capacity for a 2x-slow replica rarely pays once transition
        // costs are counted.)
        let degraded: Vec<GpuId> = workers
            .iter()
            .zip(&computes)
            .filter(|&(_, &speed)| speed < DEGRADED_SPEED_FRACTION)
            .map(|(&g, _)| g)
            .collect();
        journal.record(
            decision,
            iteration,
            now,
            DecisionEvent::ChangeDetected {
                signals: changes.iter().map(describe_change).collect(),
                degraded_workers: degraded.iter().map(|g| g.0).collect(),
            },
        );

        // — Enumerate + Score: greedy chain of incremental moves (two-
        // worker moves plus stage merges/splits), each round keeping the
        // best-scoring candidate; previously punished candidates are
        // never re-proposed.
        let ctx = ScoreCtx {
            profile,
            scheme: cfg.scheme,
            framework: cfg.framework,
            schedule: cfg.schedule,
            calibration: cfg.calibration,
            history: observer.history(),
            state,
        };
        let current_speed = scorer.predict(&ctx, partition);
        let mut best = partition.clone();
        let mut best_speed = current_speed;
        let mut rounds = 0usize;
        let mut scored = 0usize;
        for _ in 0..cfg.moves_per_decision.max(1) {
            let candidates = enumerator.candidates(&best, profile, &degraded);
            if candidates.is_empty() {
                break;
            }
            rounds += 1;
            scored += candidates.len();
            match scorer.best(&ctx, candidates) {
                Some((speed, p)) if speed > best_speed * (1.0 + 1e-9) => {
                    best_speed = speed;
                    best = p;
                }
                _ => break,
            }
        }
        journal.record(
            decision,
            iteration,
            now,
            DecisionEvent::CandidatesScored {
                rounds,
                scored,
                current_pred: current_speed,
                best_pred: best_speed,
                best: best.summary(),
            },
        );
        let keep = |journal: &mut DecisionJournal, reason| {
            journal.record(decision, iteration, now, DecisionEvent::Kept { reason });
            Decision::Keep
        };
        if verifier.tick_cooldown() {
            return keep(journal, KeepReason::Cooldown);
        }
        if best == *partition {
            return keep(journal, KeepReason::NoImprovement);
        }
        // Minimum predicted gain worth the risk, inflated when the scorer
        // has been caught over-promising.
        let floor = 1.0 + 0.03 / verifier.trust();
        if best_speed <= current_speed * floor {
            return keep(journal, KeepReason::BelowGainFloor);
        }
        let best = &best;

        // — Arbitrate: price the switch and ask for a ruling.
        let plan = switcher.plan(partition, best, profile, cfg.schedule);
        let iter_time = profile.batch as f64 / current_speed.max(1e-9);
        let cost = switcher.predict_cost(&plan, iter_time, partition, state);
        let mean_bw =
            metrics.bandwidth.iter().sum::<f64>() / metrics.bandwidth.len().max(1) as f64 / 12.5e9;
        let input = ArbiterInput {
            current_speed,
            candidate_speed: best_speed,
            switch_cost: cost,
            iteration_time: iter_time,
            horizon_iterations: cfg.horizon_iterations,
            mean_bandwidth_norm: mean_bw,
        };
        let approved = arbiter.arbitrate(&input);
        journal.record(
            decision,
            iteration,
            now,
            DecisionEvent::ArbiterVerdict {
                approved,
                predicted_speedup: best_speed / current_speed.max(1e-9),
                switch_cost_seconds: cost,
                reward: input.switch_reward(),
            },
        );
        if !approved {
            return keep(journal, KeepReason::ArbiterRejected);
        }

        // — Switch: charge the pause and apply.
        let pause = switcher.pause_seconds(&plan, iter_time, partition, state);
        let new_partition = best.clone();
        verifier.arm(PendingSwitch {
            prev: partition.clone(),
            prev_speed: measured.unwrap_or(current_speed),
            prev_pred_then: current_speed,
            wait: 2,
        });
        journal.record(
            decision,
            iteration,
            now,
            DecisionEvent::SwitchApplied {
                from: partition.summary(),
                to: new_partition.summary(),
                moved_layers: plan.moved_layers.len(),
                transfer_bytes: plan.transfer_bytes,
                pause_seconds: pause,
            },
        );
        *partition = new_partition.clone();
        monitor.reset();
        *switches_applied += 1;
        Decision::Switch {
            partition: new_partition,
            pause_seconds: pause,
        }
    }
}
