//! The stage traits the decision pipeline is composed of.
//!
//! One decision point walks the stages in order:
//!
//! ```text
//! Verify ─▶ Observe ─▶ Detect ─▶ Enumerate ─▶ Score ─▶ Arbitrate ─▶ Switch
//! ```
//!
//! Each trait owns one concern of §4 of the paper; the default
//! implementations live in the sibling modules ([`super::verify`],
//! [`super::observe`], [`super::detect`], [`super::enumerate`],
//! [`super::score`], [`super::arbitrate`], [`super::switch`]) and are
//! composed by [`super::AutoPipeController`]. Alternative compositions
//! (the multi-job planner, the enhanced-PipeDream planner) reuse the same
//! implementations through these interfaces.

use std::collections::VecDeque;

use ap_cluster::{ClusterState, GpuId, ResourceChange};
use ap_models::ModelProfile;
use ap_pipesim::{Calibration, Framework, Partition, ScheduleKind, SwitchPlan, SyncScheme};

use crate::arbiter::ArbiterInput;
use crate::metrics::ProfilingMetrics;

/// Everything a scorer needs to evaluate a candidate partition: the model,
/// the modeling knobs, the recent observation history (for learned
/// scorers) and the current cluster state (for analytic ones).
pub struct ScoreCtx<'a> {
    /// Model being trained.
    pub profile: &'a ModelProfile,
    /// Gradient sync scheme.
    pub scheme: SyncScheme,
    /// Framework constants.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Fitted runtime overheads; `None` scores raw.
    pub calibration: Option<Calibration>,
    /// Recent dynamic observations, oldest first (the meta-network's LSTM
    /// input; ignored by the analytic scorer).
    pub history: &'a VecDeque<Vec<f64>>,
    /// Current cluster state.
    pub state: &'a ClusterState,
}

/// Profiles the cluster and maintains the dynamic observation history
/// (Table 1 metrics, §4.1).
pub trait Observe {
    /// Take one profiling measurement over `workers` and fold the encoded
    /// dynamic features into the history.
    fn observe(
        &mut self,
        workers: &[GpuId],
        state: &ClusterState,
        partition: &Partition,
    ) -> ProfilingMetrics;

    /// Recent dynamic observations, oldest first.
    fn history(&self) -> &VecDeque<Vec<f64>>;
}

/// Confirms resource changes from consecutive observations (§4.1's
/// resource changing detector).
pub trait Detect {
    /// Feed one observation; returns the changes confirmed at this point.
    fn detect(&mut self, metrics: &ProfilingMetrics, computes: &[f64]) -> Vec<ResourceChange>;

    /// Adapt to a new observation width (worker evictions/additions).
    fn resize(&mut self, n_workers: usize);

    /// Re-baseline after a switch (the old readings no longer apply).
    fn reset(&mut self);
}

/// Proposes candidate partitions around a base configuration (§4.2's
/// two-worker neighborhood).
pub trait Enumerate {
    /// Candidates reachable from `base` in one incremental move.
    /// `degraded` lists workers eligible for eviction; implementations may
    /// extend the neighborhood with drop moves that shed them.
    fn candidates(
        &self,
        base: &Partition,
        profile: &ModelProfile,
        degraded: &[GpuId],
    ) -> Vec<Partition>;
}

/// Predicts candidate throughput (§4.3's meta-network, or the analytic
/// model for ablation).
pub trait Score {
    /// Predicted throughput (samples/sec) of one candidate.
    fn predict(&self, ctx: &ScoreCtx<'_>, candidate: &Partition) -> f64;

    /// Score a whole candidate set and return the best `(speed,
    /// partition)`. Implementations may hoist candidate-independent work
    /// (e.g. the LSTM history encoding) out of the per-candidate loop, but
    /// must select exactly the candidate a serial [`Score::predict`] scan
    /// in input order would (ties included).
    fn best(&self, ctx: &ScoreCtx<'_>, candidates: Vec<Partition>) -> Option<(f64, Partition)>;
}

/// Decides whether a priced switch is worth taking (§4.3's RL arbiter, or
/// a fixed threshold for ablation).
pub trait Arbitrate {
    /// `true` to approve the switch.
    fn arbitrate(&self, input: &ArbiterInput) -> bool;
}

/// Plans and prices the execution of an approved switch (§4.4).
pub trait Switch {
    /// The migration plan between two partitions.
    fn plan(
        &self,
        from: &Partition,
        to: &Partition,
        profile: &ModelProfile,
        schedule: ScheduleKind,
    ) -> SwitchPlan;

    /// Predicted switch cost in seconds (the arbiter's cost input).
    fn predict_cost(
        &self,
        plan: &SwitchPlan,
        iteration_time: f64,
        current: &Partition,
        state: &ClusterState,
    ) -> f64;

    /// Pipeline pause actually charged at the switch point (the engine
    /// re-simulates the refill itself, so only non-refill components are
    /// charged).
    fn pause_seconds(
        &self,
        plan: &SwitchPlan,
        iteration_time: f64,
        current: &Partition,
        state: &ClusterState,
    ) -> f64;
}

/// A switch awaiting verification against its realized reward.
#[derive(Debug, Clone)]
pub struct PendingSwitch {
    /// The partition that was replaced (the revert target).
    pub prev: Partition,
    /// Measured speed just before the switch.
    pub prev_speed: f64,
    /// Predicted speed of the previous partition at switch time.
    pub prev_pred_then: f64,
    /// Decision points until the verdict — the pipeline needs a couple of
    /// windows to re-reach steady state.
    pub wait: u8,
}

/// Outcome of one verification check.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No switch pending.
    Idle,
    /// A switch is pending but not yet due (or no measurement arrived).
    Waiting,
    /// The last switch's measured reward met expectations.
    Verified {
        /// The measured speed that passed.
        measured: f64,
        /// The minimum speed that would have passed.
        expected_floor: f64,
    },
    /// The last switch under-delivered; roll back to `prev`.
    Revert {
        /// The partition to reinstate.
        prev: Partition,
        /// The measured speed that failed.
        measured: f64,
        /// The minimum speed that would have passed.
        expected_floor: f64,
    },
}

/// Judges applied switches by their measured reward (§4.3 "the reward
/// function is the training speed of one iteration") and tracks trust in
/// the scorer.
pub trait Verify {
    /// Arm verification for a just-applied switch.
    fn arm(&mut self, pending: PendingSwitch);

    /// Check the pending switch (if due) against the measured speed.
    /// `predict_current` lazily prices the *current* partition under the
    /// current state so a cluster-wide slowdown does not trigger a bogus
    /// revert; it is only invoked when a verdict is actually due.
    fn check<F: FnOnce() -> f64>(&mut self, measured: Option<f64>, predict_current: F) -> Verdict;

    /// Confidence in the scorer's predicted gains, in `(0, 1]`.
    fn trust(&self) -> f64;

    /// Tick the post-revert cooldown; `true` while sitting out.
    fn tick_cooldown(&mut self) -> bool;

    /// Drop any pending verification. Emergency repairs call this: the
    /// pending revert target may name a worker that just died, and
    /// reinstating it would re-break the job.
    fn disarm(&mut self) {}
}

/// The controller's verdict for one decision point.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Keep the current partition.
    Keep,
    /// Apply `partition`, paying `pause_seconds` of pipeline disturbance.
    Switch {
        /// The new partition.
        partition: Partition,
        /// Pipeline pause charged at the switch point (the refill after a
        /// stop-restart switch is simulated by the engine itself and not
        /// included here).
        pause_seconds: f64,
    },
}
