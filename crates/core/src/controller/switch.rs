//! Default [`Switch`] stage: plan a migration, price it for the arbiter,
//! and charge the pipeline pause of the configured execution mode.

use ap_cluster::ClusterState;
use ap_models::ModelProfile;
use ap_pipesim::switching::PER_LAYER_CALL_OVERHEAD;
use ap_pipesim::{Partition, ScheduleKind, SwitchPlan};

use super::stages::Switch;
use crate::switch_cost::SwitchCostModel;

/// How an approved switch is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchMode {
    /// AutoPipe's layer-by-layer migration (§4.4).
    FineGrained,
    /// The straw-man: drain, move, restart.
    StopRestart,
}

/// Plans switches with [`SwitchPlan`], prices them with the learned
/// [`SwitchCostModel`], and charges the pause of the configured
/// [`SwitchMode`].
pub struct SwitchExecutor {
    cost_model: SwitchCostModel,
    mode: SwitchMode,
}

impl SwitchExecutor {
    /// An executor in `mode` with the default cost model.
    pub fn new(mode: SwitchMode) -> Self {
        SwitchExecutor {
            cost_model: SwitchCostModel::default(),
            mode,
        }
    }
}

impl Switch for SwitchExecutor {
    fn plan(
        &self,
        from: &Partition,
        to: &Partition,
        profile: &ModelProfile,
        schedule: ScheduleKind,
    ) -> SwitchPlan {
        SwitchPlan::between(from, to, profile, schedule)
    }

    fn predict_cost(
        &self,
        plan: &SwitchPlan,
        iteration_time: f64,
        current: &Partition,
        state: &ClusterState,
    ) -> f64 {
        self.cost_model
            .predict(plan, iteration_time, current, state)
    }

    fn pause_seconds(
        &self,
        plan: &SwitchPlan,
        iteration_time: f64,
        current: &Partition,
        state: &ClusterState,
    ) -> f64 {
        match self.mode {
            SwitchMode::StopRestart => {
                current.in_flight as f64 * iteration_time + plan.raw_transfer_time(state)
            }
            SwitchMode::FineGrained => {
                // Transfers overlap with the draining pipeline's remaining
                // compute; only the uncovered tail plus per-layer call
                // overhead stalls anyone.
                let slack = (current.in_flight.saturating_sub(1)) as f64 * iteration_time;
                (plan.raw_transfer_time(state) - slack).max(0.0)
                    + PER_LAYER_CALL_OVERHEAD * plan.moved_layers.len() as f64
            }
        }
    }
}
