//! Default [`Detect`] stage: the persistence-filtered resource-change
//! detector, resized on worker evictions.

use ap_cluster::{ChangeKind, DetectorConfig, ResourceChange, ResourceChangeDetector};

use super::stages::Detect;
use crate::metrics::ProfilingMetrics;

/// Wraps [`ResourceChangeDetector`], rebuilding it when the observation
/// width changes (worker evictions change how many per-worker series the
/// detector tracks).
pub struct ChangeMonitor {
    detector: ResourceChangeDetector,
    cfg: DetectorConfig,
    width: usize,
}

impl ChangeMonitor {
    /// A monitor over `n_workers` observation series.
    pub fn new(n_workers: usize, cfg: DetectorConfig) -> Self {
        ChangeMonitor {
            detector: ResourceChangeDetector::new(n_workers, cfg.clone()),
            cfg,
            width: n_workers,
        }
    }
}

impl Detect for ChangeMonitor {
    fn detect(&mut self, metrics: &ProfilingMetrics, computes: &[f64]) -> Vec<ResourceChange> {
        self.detector.observe(&metrics.bandwidth, computes)
    }

    fn resize(&mut self, n_workers: usize) {
        if n_workers != self.width {
            self.detector = ResourceChangeDetector::new(n_workers, self.cfg.clone());
            self.width = n_workers;
        }
    }

    fn reset(&mut self) {
        self.detector.reset();
    }
}

/// Human-readable one-liner for a confirmed change (journal signal text).
pub fn describe_change(c: &ResourceChange) -> String {
    let kind = match c.kind {
        ChangeKind::Bandwidth => "bandwidth",
        ChangeKind::Compute => "compute",
    };
    format!(
        "{kind}[w{}] {:.3e} -> {:.3e} ({:+.0}%)",
        c.worker,
        c.before,
        c.after,
        c.relative() * 100.0
    )
}
