//! Deterministic retry policy for failure-repair switches.
//!
//! When the cluster leaves the controller's partition infeasible (a worker
//! died) the controller proposes an emergency repartition. That proposal
//! can itself fail — the engine may reject it, or another worker may die
//! while it is in flight — so repair attempts are paced by this policy:
//! a bounded number of attempts with exponential backoff in *simulated*
//! time, plus seeded jitter so co-scheduled jobs do not retry in
//! lockstep. Everything is a pure function of the seed and the attempt
//! count: replaying a scenario replays the exact same retry schedule.

use ap_rng::Rng;

/// Bounded, exponentially backed-off retry schedule in sim-time seconds.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts allowed before the policy reports exhaustion.
    max_attempts: u32,
    /// Backoff base: attempt `n` waits `base * 2^n` seconds (jittered).
    base_delay: f64,
    /// Ceiling on any single backoff delay, seconds.
    max_delay: f64,
    rng: Rng,
    attempts: u32,
    not_before: f64,
}

impl RetryPolicy {
    /// A fresh policy. `base_delay` is the wait after the first failed
    /// attempt; successive waits double, capped at `max_delay`.
    pub fn new(max_attempts: u32, base_delay: f64, max_delay: f64, seed: u64) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: base_delay.max(0.0),
            max_delay: max_delay.max(base_delay.max(0.0)),
            rng: Rng::stream(seed, 0x7e717),
            attempts: 0,
            not_before: 0.0,
        }
    }

    /// Whether another attempt may start at sim-time `now`.
    pub fn ready(&self, now: f64) -> bool {
        !self.exhausted() && now >= self.not_before
    }

    /// Whether the attempt budget is spent.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Earliest sim-time the next attempt may start.
    pub fn next_allowed(&self) -> f64 {
        self.not_before
    }

    /// Consume one attempt at sim-time `now`; returns its 1-based ordinal
    /// and schedules the backoff window for the next one. The jitter adds
    /// up to 50% of the nominal delay, drawn from the seeded stream.
    pub fn attempt(&mut self, now: f64) -> u32 {
        let exp = self.attempts.min(30);
        let nominal = (self.base_delay * f64::from(1u32 << exp)).min(self.max_delay);
        let jitter = self.rng.gen_range(0.0..0.5);
        self.attempts += 1;
        self.not_before = now + nominal * (1.0 + jitter);
        self.attempts
    }

    /// Clear the schedule after the fault is repaired (the partition is
    /// feasible again): future faults start from a full budget.
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.not_before = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut p = RetryPolicy::new(10, 1.0, 8.0, 7);
        let mut prev_delay = 0.0;
        for i in 0..5 {
            assert!(p.ready(1000.0 * i as f64));
            p.attempt(0.0);
            let delay = p.next_allowed();
            assert!(
                delay >= prev_delay,
                "delay must not shrink: {prev_delay} -> {delay}"
            );
            // nominal * 1.5 is the jitter ceiling; cap is 8.0 * 1.5.
            assert!(delay <= 8.0 * 1.5 + 1e-9);
            prev_delay = delay;
        }
    }

    #[test]
    fn bounded_attempts_then_exhausted() {
        let mut p = RetryPolicy::new(3, 0.1, 1.0, 1);
        for _ in 0..3 {
            assert!(!p.exhausted());
            p.attempt(0.0);
        }
        assert!(p.exhausted());
        assert!(!p.ready(f64::INFINITY));
        p.reset();
        assert!(p.ready(0.0));
    }

    #[test]
    fn not_ready_inside_the_backoff_window() {
        let mut p = RetryPolicy::new(5, 2.0, 100.0, 3);
        p.attempt(10.0);
        assert!(!p.ready(10.0 + 1.9));
        // Jitter is at most +50%, so 10 + 3 seconds is always past it.
        assert!(p.ready(10.0 + 3.0 + 1e-9));
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = RetryPolicy::new(6, 1.0, 64.0, 42);
        let mut b = RetryPolicy::new(6, 1.0, 64.0, 42);
        for i in 0..6 {
            a.attempt(i as f64);
            b.attempt(i as f64);
            assert_eq!(a.next_allowed().to_bits(), b.next_allowed().to_bits());
        }
    }
}
