//! Default [`Enumerate`] stage: the planner's two-worker neighborhood,
//! extended with eviction moves for degraded workers and filtered against
//! a blacklist of candidates that measured worse after being applied.

use ap_cluster::GpuId;
use ap_models::ModelProfile;
use ap_pipesim::Partition;
use ap_planner::{all_moves, drop_moves};

use super::stages::Enumerate;

/// Reverted candidates remembered (and never re-proposed).
const REJECTED_CAP: usize = 16;

/// Enumerates `ap_planner`'s incremental moves (two-worker moves plus
/// stage merges/splits), plus drop moves that shed a degraded worker.
#[derive(Default)]
pub struct MoveEnumerator {
    /// Candidates that measured worse after being applied (negative
    /// reward); never re-proposed.
    rejected: Vec<Partition>,
}

impl MoveEnumerator {
    /// An enumerator with an empty blacklist.
    pub fn new() -> Self {
        MoveEnumerator::default()
    }

    /// Blacklist a candidate (bounded memory: oldest entries fall off).
    pub fn reject(&mut self, candidate: Partition) {
        self.rejected.push(candidate);
        if self.rejected.len() > REJECTED_CAP {
            self.rejected.remove(0);
        }
    }

    /// The current blacklist.
    pub fn rejected(&self) -> &[Partition] {
        &self.rejected
    }
}

impl Enumerate for MoveEnumerator {
    fn candidates(
        &self,
        base: &Partition,
        profile: &ModelProfile,
        degraded: &[GpuId],
    ) -> Vec<Partition> {
        let mut candidates = all_moves(base, profile);
        if !degraded.is_empty() {
            candidates.extend(
                drop_moves(base)
                    .into_iter()
                    .filter(|(_, p)| degraded.iter().any(|g| !p.all_workers().contains(g))),
            );
        }
        candidates.retain(|(_, p)| !self.rejected.contains(p));
        candidates.into_iter().map(|(_, p)| p).collect()
    }
}
