//! Offline meta-network pretraining (§4.3 "offline training").

use ap_cluster::{ClusterState, ClusterTopology, GpuId};
use ap_models::ModelProfile;
use ap_pipesim::AnalyticModel;
use ap_planner::{all_moves, uniform_plan};
use ap_rng::Rng;

use super::AutoPipeConfig;
use crate::meta_net::{MetaNet, MetaNetConfig, TrainingSample};
use crate::metrics::{static_metrics_from_profile, FeatureEncoder};
use crate::profiler::Profiler;

/// Offline meta-network pretraining: sample environments (bandwidth and
/// contention levels) and candidate partitions, label them with the
/// analytic model, and fit the network.
pub fn pretrain_meta_net(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    cfg: &AutoPipeConfig,
    meta_cfg: MetaNetConfig,
    n_samples: usize,
    epochs: usize,
    seed: u64,
) -> MetaNet {
    let encoder = FeatureEncoder;
    let model = AnalyticModel {
        profile,
        scheme: cfg.scheme,
        framework: cfg.framework,
        schedule: cfg.schedule,
        calibration: cfg.calibration,
    };
    let all_gpus: Vec<GpuId> = (0..topo.n_gpus()).map(GpuId).collect();
    let seq_len = meta_cfg.seq_len;
    // Labeled samples are independent, so they are generated in parallel.
    // Sample `i` draws from its own RNG stream `(seed, i)` and retries
    // infeasible environments within that stream, so the data set is
    // identical for any thread count.
    let samples: Vec<TrainingSample> = ap_par::map_indexed(n_samples, |i| {
        let mut rng = Rng::stream(seed, i as u64);
        loop {
            // Random environment.
            let mut st = ClusterState::new(topo.clone());
            let g: f64 = rng.gen_range(5.0..100.0);
            st.topology.set_uniform_link_gbps(g);
            for gi in 0..st.topology.n_gpus() {
                st.topology.gpu_mut(GpuId(gi)).colocated_jobs = rng.gen_range(1..=3u32);
            }
            // Random partition: a planner start plus a few random moves.
            let n_stages = rng.gen_range(1..=4usize.min(all_gpus.len()));
            let mut p = uniform_plan(profile, n_stages, &all_gpus);
            for _ in 0..rng.gen_range(0..4usize) {
                let moves = all_moves(&p, profile);
                if moves.is_empty() {
                    break;
                }
                p = moves[rng.gen_range(0..moves.len())].1.clone();
            }
            let tp = model.throughput(&p, &st);
            if !(tp.is_finite() && tp > 0.0) {
                continue;
            }
            // Stationary dynamic history for this environment.
            let mut prof = Profiler::new(profile, cfg.profiler_noise, rng.gen());
            let workers = p.all_workers();
            let dynamic_seq: Vec<Vec<f64>> = (0..seq_len)
                .map(|_| {
                    let m = prof.observe(&workers, &st);
                    encoder.encode_dynamic(&m, &p)
                })
                .collect();
            let m = static_metrics_from_profile(profile, p.n_workers());
            return TrainingSample {
                dynamic_seq,
                static_feat: encoder.encode_static(&m, &p),
                log_throughput: tp.ln(),
            };
        }
    });
    let mut net = MetaNet::new(meta_cfg);
    net.train(&samples, epochs, seed.wrapping_add(1));
    net
}
