use std::collections::VecDeque;

use super::*;
use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, EventKind, GpuId, ResourceTimeline};
use ap_models::{synthetic_uniform, ModelProfile};
use ap_pipesim::{AnalyticModel, Framework, Partition, ScheduleKind, Stage, SyncScheme};
use ap_planner::{all_moves, pipedream_plan, PipeDreamView};

use crate::arbiter::ArbiterMode;
use crate::meta_net::{MetaNet, MetaNetConfig};
use crate::metrics::FeatureEncoder;
use crate::profiler::Profiler;

fn topo() -> ClusterTopology {
    ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0)
}

fn profile() -> ModelProfile {
    ModelProfile::with_batch(&synthetic_uniform(12, 2e9, 6e6, 10e6), 32)
}

fn initial(profile: &ModelProfile) -> Partition {
    let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
    pipedream_plan(
        profile,
        &gpus,
        PipeDreamView {
            bandwidth: ap_cluster::gbps(25.0),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    )
}

#[test]
fn invalid_initial_partition_is_a_typed_error() {
    let p = profile();
    let mut bad = initial(&p);
    bad.in_flight = 0;
    let err = AutoPipeController::new(
        &p,
        bad,
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        AutoPipeConfig::default(),
    )
    .err()
    .expect("zero in-flight must be rejected");
    assert_eq!(err, ap_pipesim::PartitionError::ZeroInFlight);
}

#[test]
fn hill_climb_never_regresses_and_improves_imbalanced_starts() {
    let p = profile();
    let st = ClusterState::new(topo());
    let model = AnalyticModel {
        profile: &p,
        scheme: SyncScheme::RingAllReduce,
        framework: Framework::pytorch(),
        schedule: ScheduleKind::PipeDreamAsync,
        calibration: None,
    };
    // Deliberately terrible start: 11 layers on one GPU.
    let bad = Partition {
        stages: vec![
            Stage::new(0..1, vec![GpuId(0)]),
            Stage::new(1..12, vec![GpuId(1)]),
        ],
        in_flight: 2,
    };
    let bad_tp = model.throughput(&bad, &st);
    let better = hill_climb(&model, bad.clone(), &st, 20);
    let better_tp = model.throughput(&better, &st);
    assert!(better_tp > bad_tp * 1.5, "{bad_tp} -> {better_tp}");
}

#[test]
fn controller_keeps_quiet_in_steady_state() {
    let p = profile();
    let st = ClusterState::new(topo());
    let mut ctrl = AutoPipeController::new(
        &p,
        initial(&p),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        AutoPipeConfig::default(),
    )
    .expect("valid initial partition");
    // First decision may adjust (initialization), afterwards silence.
    let _ = ctrl.observe_and_decide(&st);
    for _ in 0..10 {
        match ctrl.observe_and_decide(&st) {
            Decision::Keep => {}
            Decision::Switch { .. } => panic!("switched without a resource change"),
        }
    }
}

#[test]
fn controller_reacts_to_bandwidth_drop() {
    // Skewed model: activations shrink with depth, so when bandwidth
    // collapses, the optimal cut moves deeper (smaller tensors) even
    // at the cost of compute imbalance.
    let model = ap_models::synthetic_skewed(12, 2e9, 40e6, 10e6);
    let p = ModelProfile::with_batch(&model, 32);
    // Compute-balanced boundary (what a high-bandwidth plan picks).
    let init = Partition {
        stages: vec![
            Stage::new(0..8, vec![GpuId(0)]),
            Stage::new(8..12, vec![GpuId(1)]),
        ],
        in_flight: 2,
    };
    let mut cfg = AutoPipeConfig::default();
    cfg.detector.persistence = 2;
    let mut ctrl = AutoPipeController::new(
        &p,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg,
    )
    .expect("valid initial partition");
    let st = ClusterState::new(topo());
    for _ in 0..4 {
        let _ = ctrl.observe_and_decide(&st);
    }
    let before = ctrl.partition.clone();
    // Drop bandwidth 25x: the cut must move toward smaller tensors.
    let mut slow = ClusterState::new(topo());
    slow.apply(&EventKind::SetAllLinksGbps(1.0));
    let mut switched = false;
    for _ in 0..6 {
        if let Decision::Switch { .. } = ctrl.observe_and_decide(&slow) {
            switched = true;
            break;
        }
    }
    assert!(switched, "controller must react to a 25x bandwidth drop");
    assert_ne!(ctrl.partition, before);
    // The new configuration is analytically better at low bandwidth
    // (a deeper cut or a merge into fewer comm-bound stages).
    let model = AnalyticModel {
        profile: &p,
        scheme: SyncScheme::RingAllReduce,
        framework: Framework::pytorch(),
        schedule: ScheduleKind::PipeDreamAsync,
        calibration: None,
    };
    assert!(model.throughput(&ctrl.partition, &slow) > model.throughput(&before, &slow));

    // The journal must tell the whole story of the applied switch: the
    // confirmed change, the scored candidates, the arbiter's approval and
    // the switch itself, in stage order within one decision point.
    let has = |f: &dyn Fn(&DecisionEvent) -> bool| ctrl.journal.records.iter().any(|r| f(&r.event));
    assert!(has(&|e| matches!(e, DecisionEvent::ChangeDetected { .. })));
    assert!(has(&|e| matches!(
        e,
        DecisionEvent::CandidatesScored { scored, .. } if *scored > 0
    )));
    assert!(has(&|e| matches!(
        e,
        DecisionEvent::ArbiterVerdict { approved: true, .. }
    )));
    assert!(has(&|e| matches!(e, DecisionEvent::SwitchApplied { .. })));
    let d = ctrl
        .journal
        .records
        .iter()
        .find(|r| matches!(r.event, DecisionEvent::SwitchApplied { .. }))
        .map(|r| r.decision)
        .expect("switch recorded");
    let names: Vec<&str> = ctrl
        .journal
        .records
        .iter()
        .filter(|r| r.decision == d)
        .map(|r| r.event.name())
        .collect();
    assert_eq!(names, ["change", "score", "verdict", "switch"]);
}

#[test]
fn dynamic_scenario_baseline_matches_plain_engine() {
    let p = profile();
    let cfg = AutoPipeConfig::default();
    let r = run_dynamic_scenario(
        &p,
        &topo(),
        &ResourceTimeline::empty(),
        initial(&p),
        None,
        &cfg,
        30,
    )
    .expect("scenario");
    assert!(r.mean_throughput > 0.0);
    assert!(r.switches.is_empty());
    assert!(r.journal.is_empty());
    assert_eq!(r.speed_series.len(), 30);
}

#[test]
fn autopipe_beats_static_plan_under_bandwidth_drop() {
    let cfg = AutoPipeConfig {
        check_every: 3,
        detector: ap_cluster::DetectorConfig {
            threshold: 0.15,
            persistence: 1,
        },
        ..AutoPipeConfig::default()
    };
    // Comm-heavy model so partitioning matters.
    let pc = ModelProfile::with_batch(&synthetic_uniform(12, 5e8, 40e6, 10e6), 32);
    let init = {
        let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        pipedream_plan(
            &pc,
            &gpus,
            PipeDreamView {
                bandwidth: ap_cluster::gbps(25.0),
                gpu_flops: GpuKind::P100.peak_flops(),
            },
        )
    };
    let mut tl = ResourceTimeline::empty();
    tl.push(3.0, EventKind::SetAllLinksGbps(5.0));
    let baseline =
        run_dynamic_scenario(&pc, &topo(), &tl, init.clone(), None, &cfg, 60).expect("baseline");
    let mut ctrl = AutoPipeController::new(
        &pc,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let auto =
        run_dynamic_scenario(&pc, &topo(), &tl, init, Some(&mut ctrl), &cfg, 60).expect("auto");
    assert!(
        auto.mean_throughput >= baseline.mean_throughput,
        "AutoPipe {} must be at least the static baseline {}",
        auto.mean_throughput,
        baseline.mean_throughput
    );
    // Journal records carry the run position stamped by the engine.
    if let Some(last) = auto.journal.records.last() {
        assert!(last.iteration > 0);
        assert!(last.time > 0.0);
    }
}

#[test]
fn traced_scenario_merges_decisions_into_chrome_trace() {
    let cfg = AutoPipeConfig {
        check_every: 3,
        detector: ap_cluster::DetectorConfig {
            threshold: 0.15,
            persistence: 1,
        },
        ..AutoPipeConfig::default()
    };
    let pc = ModelProfile::with_batch(&synthetic_uniform(12, 5e8, 40e6, 10e6), 32);
    let init = initial(&pc);
    let mut tl = ResourceTimeline::empty();
    tl.push(3.0, EventKind::SetAllLinksGbps(5.0));
    let mut ctrl = AutoPipeController::new(
        &pc,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.0),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let (scenario, sim) =
        run_dynamic_scenario_traced(&pc, &topo(), &tl, init, Some(&mut ctrl), &cfg, 40)
            .expect("traced scenario");
    assert!(!sim.segments.is_empty(), "timeline must be recorded");
    assert!(!scenario.journal.is_empty(), "journal must be populated");
    let events = scenario.journal.to_trace_events();
    assert_eq!(events.len(), scenario.journal.len());
    let trace = ap_pipesim::to_chrome_trace_with_events(&sim, "fig", "decisions", &events);
    assert!(trace.contains("\"name\":\"decisions\""));
    assert!(trace.contains("\"cat\":\"decision\""));
}

#[test]
fn pretrained_meta_net_correlates_with_analytic_truth() {
    let p = profile();
    let cfg = AutoPipeConfig::default();
    let net = pretrain_meta_net(&p, &topo(), &cfg, MetaNetConfig::default(), 400, 60, 9);
    // Spot-check ranking: balanced two-stage beats absurd split in a
    // mid-bandwidth environment.
    let st = ClusterState::new(topo());
    let model = AnalyticModel {
        profile: &p,
        scheme: cfg.scheme,
        framework: cfg.framework,
        schedule: cfg.schedule,
        calibration: None,
    };
    let good = Partition {
        stages: vec![
            Stage::new(0..6, vec![GpuId(0), GpuId(1)]),
            Stage::new(6..12, vec![GpuId(2), GpuId(3)]),
        ],
        in_flight: 6,
    };
    // Same worker budget as `good` (in-distribution for the sampler)
    // but a badly skewed layer boundary.
    let bad = Partition {
        stages: vec![
            Stage::new(0..1, vec![GpuId(0), GpuId(1)]),
            Stage::new(1..12, vec![GpuId(2), GpuId(3)]),
        ],
        in_flight: 6,
    };
    let enc = FeatureEncoder;
    let mut prof = Profiler::new(&p, 0.0, 4);
    let seq: Vec<Vec<f64>> = (0..8)
        .map(|_| {
            let m = prof.observe(&good.all_workers(), &st);
            enc.encode_dynamic(&m, &good)
        })
        .collect();
    let stat = |part: &Partition| {
        let m = crate::metrics::static_metrics_from_profile(&p, part.n_workers());
        enc.encode_static(&m, part)
    };
    let pg = net.predict_throughput(&seq, &stat(&good));
    let pb = net.predict_throughput(&seq, &stat(&bad));
    assert!(
        pg > pb,
        "meta-net must rank like the analytic model ({} vs {}), truth {} vs {}",
        pg,
        pb,
        model.throughput(&good, &st),
        model.throughput(&bad, &st)
    );
}

/// The hoisted-LSTM parallel scorer must select exactly the same best
/// candidate — bit-identical score, equal partition — as a serial scan
/// through the unhoisted per-candidate path, across seeded scenarios
/// and both scorer arms.
#[test]
fn parallel_scoring_matches_serial_reference() {
    let p = profile();
    for seed in [3u64, 11, 42] {
        let mut rng = ap_rng::Rng::seed_from_u64(seed);
        let mut st = ClusterState::new(topo());
        st.apply(&EventKind::SetAllLinksGbps(rng.gen_range(5.0..60.0)));
        st.apply(&EventKind::SetGpuSharing(
            GpuId(rng.gen_range(0..4usize)),
            rng.gen_range(1..=3u32),
        ));
        let scorers = [
            Scorer::Analytic,
            Scorer::MetaNet(Box::new(MetaNet::new(MetaNetConfig {
                seed,
                ..MetaNetConfig::default()
            }))),
        ];
        let cfg = AutoPipeConfig::default();
        for scorer in scorers {
            let history: VecDeque<Vec<f64>> = (0..8)
                .map(|_| {
                    (0..crate::metrics::DYNAMIC_DIM)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect()
                })
                .collect();
            let ctx = ScoreCtx {
                profile: &p,
                scheme: cfg.scheme,
                framework: cfg.framework,
                schedule: cfg.schedule,
                calibration: cfg.calibration,
                history: &history,
                state: &st,
            };
            let base = initial(&p);
            let candidates: Vec<Partition> =
                all_moves(&base, &p).into_iter().map(|(_, q)| q).collect();
            assert!(candidates.len() > 4, "neighborhood too small to exercise");
            // Serial reference: the per-candidate path (full LSTM pass
            // each time for MetaNet) scanned in input order.
            let serial = candidates
                .iter()
                .map(|q| (scorer.predict(&ctx, q), q.clone()))
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .unwrap();
            let fast = scorer.best(&ctx, candidates).unwrap();
            assert_eq!(
                fast.0.to_bits(),
                serial.0.to_bits(),
                "seed {seed}: scores diverged: {} vs {}",
                fast.0,
                serial.0
            );
            assert_eq!(
                fast.1, serial.1,
                "seed {seed}: selected different candidate"
            );
        }
    }
}

#[test]
fn worker_death_triggers_emergency_evacuation() {
    let p = profile();
    let init = initial(&p);
    let victim = init.stages[0].workers[0];
    let mut ctrl = AutoPipeController::new(
        &p,
        init,
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        AutoPipeConfig::default(),
    )
    .expect("valid initial partition");
    let mut st = ClusterState::new(topo());
    st.apply(&EventKind::WorkerFail(victim));
    match ctrl.observe_and_decide_at(&st, None, 0, 0.0) {
        Decision::Switch { partition, .. } => {
            assert!(
                !partition.all_workers().contains(&victim),
                "evacuation must drop the dead worker: {}",
                partition.summary()
            );
            partition.validate(p.n_layers()).expect("repair is valid");
        }
        Decision::Keep => panic!("an infeasible partition must be repaired"),
    }
    let has = |f: fn(&DecisionEvent) -> bool| ctrl.journal.records.iter().any(|r| f(&r.event));
    assert!(has(|e| matches!(
        e,
        DecisionEvent::InfeasibleDetected { .. }
    )));
    assert!(has(|e| matches!(
        e,
        DecisionEvent::EmergencyRepartition { .. }
    )));
}

#[test]
fn evacuation_dead_end_falls_back_to_data_parallel() {
    // Two single-replica stages: when the last stage's only worker dies,
    // no incremental move strictly reduces the dead-worker count (merging
    // keeps the victim in the union, dropping needs a second replica), so
    // the repair must fall back to pure data parallelism over survivors.
    let p = profile();
    let init = Partition {
        stages: vec![
            Stage::new(0..8, vec![GpuId(0)]),
            Stage::new(8..12, vec![GpuId(1)]),
        ],
        in_flight: 2,
    };
    let mut ctrl = AutoPipeController::new(
        &p,
        init,
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        AutoPipeConfig::default(),
    )
    .expect("valid initial partition");
    let mut st = ClusterState::new(topo());
    st.apply(&EventKind::WorkerFail(GpuId(1)));
    match ctrl.observe_and_decide_at(&st, None, 0, 0.0) {
        Decision::Switch { partition, .. } => {
            assert_eq!(partition.all_workers(), vec![GpuId(0)]);
            assert_eq!(partition.stages.len(), 1, "{}", partition.summary());
            partition.validate(p.n_layers()).expect("fallback is valid");
        }
        Decision::Keep => panic!("the dead-end must trigger the data-parallel fallback"),
    }
}

#[test]
fn recovery_before_repair_reinstates_current_partition() {
    let p = profile();
    let init = initial(&p);
    let first_victim = init.stages[0].workers[0];
    let cfg = AutoPipeConfig {
        retry_base_delay_seconds: 10.0, // wide backoff window
        ..Default::default()
    };
    let mut ctrl = AutoPipeController::new(
        &p,
        init,
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        cfg,
    )
    .expect("valid initial partition");
    let mut st = ClusterState::new(topo());

    // First death: repaired by an emergency switch (consumes attempt 1).
    st.apply(&EventKind::WorkerFail(first_victim));
    let repaired = match ctrl.observe_and_decide_at(&st, None, 0, 0.0) {
        Decision::Switch { partition, .. } => partition,
        Decision::Keep => panic!("first death must be repaired"),
    };
    st.apply(&EventKind::WorkerRecover(first_victim));

    // Second death inside the backoff window: the controller must wait
    // (Keep) and remember the unrepaired episode.
    let second_victim = repaired.all_workers()[0];
    st.apply(&EventKind::WorkerFail(second_victim));
    match ctrl.observe_and_decide_at(&st, None, 5, 0.5) {
        Decision::Keep => {}
        Decision::Switch { .. } => panic!("backoff window must gate the second repair"),
    }

    // The victim recovers before any repair switch was applied: the
    // engine's live epoch still excludes it, so the controller must
    // re-apply the current partition (pause 0) to rebuild a full epoch.
    st.apply(&EventKind::WorkerRecover(second_victim));
    match ctrl.observe_and_decide_at(&st, None, 10, 1.0) {
        Decision::Switch {
            partition,
            pause_seconds,
        } => {
            assert_eq!(
                partition, ctrl.partition,
                "reinstate re-applies, not re-plans"
            );
            assert_eq!(pause_seconds, 0.0);
        }
        Decision::Keep => panic!("recovery with no repair applied must reinstate the epoch"),
    }
    // And the reinstate fires once: the next consult is quiet.
    match ctrl.observe_and_decide_at(&st, None, 15, 1.5) {
        Decision::Keep => {}
        Decision::Switch { .. } => panic!("reinstate must not repeat"),
    }
}
