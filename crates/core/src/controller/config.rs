//! Tuning knobs of the decision pipeline.

use ap_cluster::DetectorConfig;
use ap_pipesim::{Calibration, Framework, ScheduleKind, SyncScheme};

use super::switch::SwitchMode;

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AutoPipeConfig {
    /// Gradient sync scheme.
    pub scheme: SyncScheme,
    /// Framework constants.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Fitted runtime overheads threaded into analytic scoring; `None`
    /// scores with the raw compute/wire model.
    pub calibration: Option<Calibration>,
    /// Decision cadence in iterations.
    pub check_every: usize,
    /// Amortization horizon (iterations) for switching decisions.
    pub horizon_iterations: f64,
    /// Change-detector tuning.
    pub detector: DetectorConfig,
    /// Switch execution mode.
    pub switch_mode: SwitchMode,
    /// Profiler measurement noise (1-sigma, fraction).
    pub profiler_noise: f64,
    /// Incremental moves chained per approved switch (the paper migrates
    /// gradually; chaining a few moves per decision reaches the target
    /// configuration with fewer pipeline disturbances).
    pub moves_per_decision: usize,
    /// Emergency-repair attempts allowed per fault episode before the
    /// controller gives up (see [`super::retry::RetryPolicy`]).
    pub retry_max_attempts: u32,
    /// Base backoff between repair attempts, sim-seconds (doubles per
    /// attempt, jittered).
    pub retry_base_delay_seconds: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AutoPipeConfig {
    fn default() -> Self {
        AutoPipeConfig {
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
            calibration: None,
            check_every: 5,
            horizon_iterations: 100.0,
            detector: DetectorConfig::default(),
            switch_mode: SwitchMode::FineGrained,
            profiler_noise: 0.02,
            moves_per_decision: 4,
            retry_max_attempts: 5,
            retry_base_delay_seconds: 2.0,
            seed: 1,
        }
    }
}
