//! Default [`Verify`] stage: judge applied switches by their measured
//! reward, decay trust on reverts, and enforce a post-revert cooldown.

use super::stages::{PendingSwitch, Verdict, Verify};

/// Measured speed below `expected * REVERT_FRACTION` triggers a revert.
const REVERT_FRACTION: f64 = 0.75;
/// Trust multiplier applied by a revert (negative reward).
const TRUST_DECAY: f64 = 0.6;
/// Trust multiplier applied by a verified switch (positive reward).
const TRUST_RECOVERY: f64 = 1.15;
/// Decision points sat out after a revert.
const REVERT_COOLDOWN: u8 = 2;

/// Verifies the last switch against its realized reward once the pipeline
/// has had time to settle. The expected speed is the pre-switch
/// measurement scaled by the *predicted* ratio of the two partitions
/// under the current state, so a cluster-wide slowdown (which hits either
/// partition) does not trigger a bogus revert.
pub struct RewardVerifier {
    pending: Option<PendingSwitch>,
    trust: f64,
    cooldown: u8,
}

impl RewardVerifier {
    /// A verifier with full trust and nothing pending.
    pub fn new() -> Self {
        RewardVerifier {
            pending: None,
            trust: 1.0,
            cooldown: 0,
        }
    }
}

impl Default for RewardVerifier {
    fn default() -> Self {
        RewardVerifier::new()
    }
}

impl Verify for RewardVerifier {
    fn arm(&mut self, pending: PendingSwitch) {
        self.pending = Some(pending);
    }

    fn check<F: FnOnce() -> f64>(&mut self, measured: Option<f64>, predict_current: F) -> Verdict {
        let Some(PendingSwitch {
            prev,
            prev_speed,
            prev_pred_then,
            wait,
        }) = self.pending.take()
        else {
            return Verdict::Idle;
        };
        if wait > 0 {
            self.pending = Some(PendingSwitch {
                prev,
                prev_speed,
                prev_pred_then,
                wait: wait - 1,
            });
            return Verdict::Waiting;
        }
        let Some(m) = measured else {
            return Verdict::Waiting;
        };
        // Expected outcome = pre-switch measurement scaled by the
        // *predicted* change (new partition under the current state vs the
        // old partition under the state it was measured in) — robust to
        // the environment moving again between the switch and its
        // verification.
        let new_pred_now = predict_current();
        let ratio = (new_pred_now / prev_pred_then.max(1e-9)).clamp(0.1, 10.0);
        let expected_floor = prev_speed * ratio * REVERT_FRACTION;
        if m < expected_floor {
            // Negative reward: trust the scorer less and sit out a couple
            // of windows, but stay armed — the environment may still be
            // far from the reverted plan's optimum.
            self.trust *= TRUST_DECAY;
            self.cooldown = REVERT_COOLDOWN;
            Verdict::Revert {
                prev,
                measured: m,
                expected_floor,
            }
        } else {
            // Positive reward: the prediction held up.
            self.trust = (self.trust * TRUST_RECOVERY).min(1.0);
            Verdict::Verified {
                measured: m,
                expected_floor,
            }
        }
    }

    fn trust(&self) -> f64 {
        self.trust
    }

    fn tick_cooldown(&mut self) -> bool {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            true
        } else {
            false
        }
    }

    fn disarm(&mut self) {
        self.pending = None;
    }
}
