//! Dynamic-scenario replay: a resource timeline against a static plan or
//! a live controller, producing the paper's speed-vs-iteration curves and
//! the controller's decision journal.

use ap_cluster::{ClusterState, ClusterTopology, ResourceTimeline};
use ap_models::ModelProfile;
use ap_pipesim::{Engine, EngineConfig, Partition, SimError, SimResult};

use super::journal::DecisionJournal;
use super::switch::SwitchMode;
use super::{AutoPipeConfig, AutoPipeController, Decision};

/// Outcome of a dynamic scenario replay.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Per-iteration speed samples `(iteration, samples/sec)`.
    pub speed_series: Vec<(u64, f64)>,
    /// Approved switches `(iteration, pause_seconds)`.
    pub switches: Vec<(u64, f64)>,
    /// Overall samples/sec across the run.
    pub mean_throughput: f64,
    /// Total wall-clock seconds simulated.
    pub total_seconds: f64,
    /// The controller's decision journal for this run (empty for the
    /// static baseline).
    pub journal: DecisionJournal,
}

/// Replay `timeline` for `n_iterations` mini-batches.
///
/// With `controller = None` the initial partition stays fixed (the static
/// PipeDream baseline of Figures 9/10); otherwise the controller is
/// consulted every `cfg.check_every` completed iterations and approved
/// switches are applied **live** inside the engine: in-flight mini-batches
/// drain on the old assignment while new ones use the new one
/// (fine-grained switching, §4.4), with only the affected workers stalled
/// — or every worker, for the stop-and-restart ablation.
pub fn run_dynamic_scenario(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    timeline: &ResourceTimeline,
    initial: Partition,
    controller: Option<&mut AutoPipeController<'_>>,
    cfg: &AutoPipeConfig,
    n_iterations: usize,
) -> Result<ScenarioResult, SimError> {
    run_scenario_impl(
        profile,
        topo,
        timeline,
        initial,
        controller,
        cfg,
        n_iterations,
        false,
    )
    .map(|(scenario, _)| scenario)
}

/// Like [`run_dynamic_scenario`], but records the engine's worker
/// timeline and returns the raw [`SimResult`] alongside, so the decision
/// journal can be merged with the compute segments into one chrome trace
/// ([`ap_pipesim::to_chrome_trace_with_events`]).
pub fn run_dynamic_scenario_traced(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    timeline: &ResourceTimeline,
    initial: Partition,
    controller: Option<&mut AutoPipeController<'_>>,
    cfg: &AutoPipeConfig,
    n_iterations: usize,
) -> Result<(ScenarioResult, SimResult), SimError> {
    run_scenario_impl(
        profile,
        topo,
        timeline,
        initial,
        controller,
        cfg,
        n_iterations,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_scenario_impl(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    timeline: &ResourceTimeline,
    initial: Partition,
    controller: Option<&mut AutoPipeController<'_>>,
    cfg: &AutoPipeConfig,
    n_iterations: usize,
    record_timeline: bool,
) -> Result<(ScenarioResult, SimResult), SimError> {
    let engine = Engine::new(
        profile,
        initial,
        ClusterState::new(topo.clone()),
        timeline.clone(),
        EngineConfig {
            scheme: cfg.scheme,
            framework: cfg.framework,
            schedule: cfg.schedule,
            record_timeline,
            calibration: cfg.calibration,
        },
    )?;
    let mut switches: Vec<(u64, f64)> = Vec::new();
    let mut journal = DecisionJournal::new();
    let result = match controller {
        None => engine.run(n_iterations)?,
        Some(ctrl) => {
            let global_stall = cfg.switch_mode == SwitchMode::StopRestart;
            let journal_from = ctrl.journal.len();
            let result = engine.run_controlled(
                n_iterations,
                cfg.check_every,
                |state, done, now, measured| match ctrl
                    .observe_and_decide_at(state, measured, done, now)
                {
                    Decision::Keep => None,
                    Decision::Switch {
                        partition,
                        pause_seconds,
                    } => {
                        switches.push((done, pause_seconds));
                        Some((partition, pause_seconds, global_stall))
                    }
                },
            )?;
            journal = ctrl.journal.since(journal_from);
            result
        }
    };

    // Simultaneous completions can overshoot the request; trim.
    let mut result = result;
    result.iterations.truncate(n_iterations);
    // Fold the engine's fault log (failures, recoveries, rollbacks,
    // restarts) into the journal: one time-sorted audit trail for the run.
    journal.merge_engine_faults(&result.faults);
    // Per-iteration speeds; completions sharing an instant share the rate
    // measured at the next distinct completion time.
    let mut speed_series = Vec::with_capacity(result.iterations.len());
    let mut prev_finish = 0.0_f64;
    let mut pending: Vec<u64> = Vec::new();
    for (idx, rec) in result.iterations.iter().enumerate() {
        pending.push(idx as u64);
        let dt = rec.finish - prev_finish;
        if dt > 1e-12 {
            let speed = pending.len() as f64 * profile.batch as f64 / dt;
            for &i in &pending {
                speed_series.push((i, speed));
            }
            pending.clear();
            prev_finish = rec.finish;
        }
    }
    if !pending.is_empty() {
        let speed = speed_series.last().map(|&(_, s)| s).unwrap_or(0.0);
        for &i in &pending {
            speed_series.push((i, speed));
        }
    }

    let total = result
        .iterations
        .last()
        .map(|r| r.finish)
        .unwrap_or(result.makespan)
        .max(1e-12);
    let scenario = ScenarioResult {
        mean_throughput: result.iterations.len() as f64 * profile.batch as f64 / total,
        speed_series,
        switches,
        total_seconds: total,
        journal,
    };
    Ok((scenario, result))
}
