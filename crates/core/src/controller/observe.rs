//! Default [`Observe`] stage: the noisy profiler plus the encoded
//! observation history the meta-network consumes.

use std::collections::VecDeque;

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;
use ap_pipesim::Partition;

use super::stages::Observe;
use crate::metrics::{FeatureEncoder, ProfilingMetrics};
use crate::profiler::Profiler;

/// Observations kept for the LSTM history window.
const HISTORY_CAP: usize = 16;

/// Profiles the cluster with measurement noise ([`Profiler`]) and folds
/// each observation's dynamic features into a bounded history.
pub struct ProfilerObserver {
    profiler: Profiler,
    encoder: FeatureEncoder,
    history: VecDeque<Vec<f64>>,
}

impl ProfilerObserver {
    /// Build around a model profile; `noise` is the 1-sigma measurement
    /// noise fraction, `seed` the profiler's RNG seed.
    pub fn new(profile: &ModelProfile, noise: f64, seed: u64) -> Self {
        ProfilerObserver {
            profiler: Profiler::new(profile, noise, seed),
            encoder: FeatureEncoder,
            history: VecDeque::new(),
        }
    }

    /// Seed the history directly (tests and offline evaluation).
    pub fn push_history(&mut self, observation: Vec<f64>) {
        self.history.push_back(observation);
        while self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
    }
}

impl Observe for ProfilerObserver {
    fn observe(
        &mut self,
        workers: &[GpuId],
        state: &ClusterState,
        partition: &Partition,
    ) -> ProfilingMetrics {
        let metrics = self.profiler.observe(workers, state);
        let dynamic = self.encoder.encode_dynamic(&metrics, partition);
        self.push_history(dynamic);
        metrics
    }

    fn history(&self) -> &VecDeque<Vec<f64>> {
        &self.history
    }
}
