//! The decision journal: a structured record of everything the controller
//! did and why.
//!
//! Every stage of the decision pipeline appends typed events —
//! changes confirmed, candidates scored with their predicted gains, the
//! arbiter's verdict, the applied switch with its priced pause, and the
//! post-switch verification or revert. The journal is the controller's
//! audit log: deterministic for a fixed seed (it derives `PartialEq`
//! so runs can be compared structurally), exportable as JSON via
//! `ap-bench`, and renderable onto an engine timeline as a chrome-trace
//! decision lane via [`DecisionJournal::to_trace_events`].

use ap_pipesim::TraceEvent;

/// Why a decision point that considered switching chose to keep the
/// current partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Sitting out decision points after a revert.
    Cooldown,
    /// No candidate scored better than the current partition.
    NoImprovement,
    /// The best candidate's gain was below the trust-scaled floor.
    BelowGainFloor,
    /// The arbiter declined the priced switch.
    ArbiterRejected,
}

impl KeepReason {
    /// Short kebab-case label (for traces and JSON export).
    pub fn label(self) -> &'static str {
        match self {
            KeepReason::Cooldown => "cooldown",
            KeepReason::NoImprovement => "no-improvement",
            KeepReason::BelowGainFloor => "below-gain-floor",
            KeepReason::ArbiterRejected => "arbiter-rejected",
        }
    }
}

/// One typed event in the decision journal.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// The detector confirmed resource changes (or the controller is
    /// taking its first/standing-degradation look).
    ChangeDetected {
        /// Human-readable change descriptions from the detector.
        signals: Vec<String>,
        /// Workers running below the degradation threshold.
        degraded_workers: Vec<usize>,
    },
    /// The greedy enumerate/score chain finished.
    CandidatesScored {
        /// Greedy rounds executed.
        rounds: usize,
        /// Total candidates scored across rounds.
        scored: usize,
        /// Predicted throughput of the current partition (samples/sec).
        current_pred: f64,
        /// Predicted throughput of the best candidate found.
        best_pred: f64,
        /// Summary of the best candidate.
        best: String,
    },
    /// The arbiter ruled on a priced switch.
    ArbiterVerdict {
        /// Whether the switch was approved.
        approved: bool,
        /// Predicted speedup ratio (candidate / current).
        predicted_speedup: f64,
        /// Predicted switch cost, seconds.
        switch_cost_seconds: f64,
        /// The amortized switch reward the arbiter weighed.
        reward: f64,
    },
    /// An approved switch was applied.
    SwitchApplied {
        /// Summary of the partition being replaced.
        from: String,
        /// Summary of the new partition.
        to: String,
        /// Layers whose weights migrate.
        moved_layers: usize,
        /// Bytes transferred by the migration.
        transfer_bytes: f64,
        /// Pipeline pause charged at the switch point, seconds.
        pause_seconds: f64,
    },
    /// The last switch's measured reward met expectations.
    Verified {
        /// Measured speed (samples/sec).
        measured: f64,
        /// Minimum speed that would have passed.
        expected_floor: f64,
        /// Scorer trust after the confirmation.
        trust: f64,
    },
    /// The last switch under-delivered and was rolled back.
    Reverted {
        /// Summary of the reinstated partition.
        to: String,
        /// Measured speed (samples/sec) that failed verification.
        measured: f64,
        /// Minimum speed that would have passed.
        expected_floor: f64,
        /// Scorer trust after the decay.
        trust: f64,
    },
    /// A considered switch was not taken.
    Kept {
        /// Why.
        reason: KeepReason,
    },
}

impl DecisionEvent {
    /// Short label for trace slices.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionEvent::ChangeDetected { .. } => "change",
            DecisionEvent::CandidatesScored { .. } => "score",
            DecisionEvent::ArbiterVerdict { .. } => "verdict",
            DecisionEvent::SwitchApplied { .. } => "switch",
            DecisionEvent::Verified { .. } => "verified",
            DecisionEvent::Reverted { .. } => "revert",
            DecisionEvent::Kept { .. } => "keep",
        }
    }
}

/// One journal entry: which decision point, where in the run, what
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Decision-point ordinal (several records can share one).
    pub decision: u64,
    /// Completed training iterations at the decision point.
    pub iteration: u64,
    /// Simulated time of the decision point, seconds.
    pub time: f64,
    /// What happened.
    pub event: DecisionEvent,
}

/// An append-only log of [`DecisionRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionJournal {
    /// Records in the order they were appended.
    pub records: Vec<DecisionRecord>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        DecisionJournal::default()
    }

    /// Append one event.
    pub fn record(&mut self, decision: u64, iteration: u64, time: f64, event: DecisionEvent) {
        self.records.push(DecisionRecord {
            decision,
            iteration,
            time,
            event,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records appended after index `from` (for per-run snapshots when a
    /// controller outlives one scenario).
    pub fn since(&self, from: usize) -> DecisionJournal {
        DecisionJournal {
            records: self.records[from.min(self.records.len())..].to_vec(),
        }
    }

    /// Render the journal as chrome-trace annotation events in engine
    /// time: instant marks for point events, a timed slice for each
    /// applied switch (its pipeline pause).
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        self.records
            .iter()
            .map(|r| {
                let mut ev = TraceEvent::instant(r.event.name(), "decision", r.time)
                    .arg("decision", r.decision.to_string())
                    .arg("iteration", r.iteration.to_string());
                match &r.event {
                    DecisionEvent::ChangeDetected {
                        signals,
                        degraded_workers,
                    } => {
                        ev = ev.arg("signals", signals.join("; "));
                        if !degraded_workers.is_empty() {
                            let ws: Vec<String> =
                                degraded_workers.iter().map(|w| w.to_string()).collect();
                            ev = ev.arg("degraded", ws.join(","));
                        }
                    }
                    DecisionEvent::CandidatesScored {
                        rounds,
                        scored,
                        current_pred,
                        best_pred,
                        best,
                    } => {
                        ev = ev
                            .arg("rounds", rounds.to_string())
                            .arg("scored", scored.to_string())
                            .arg("current_pred", format!("{current_pred:.3}"))
                            .arg("best_pred", format!("{best_pred:.3}"))
                            .arg("best", best.clone());
                    }
                    DecisionEvent::ArbiterVerdict {
                        approved,
                        predicted_speedup,
                        switch_cost_seconds,
                        reward,
                    } => {
                        ev = ev
                            .arg("approved", approved.to_string())
                            .arg("speedup", format!("{predicted_speedup:.4}"))
                            .arg("cost_s", format!("{switch_cost_seconds:.4}"))
                            .arg("reward", format!("{reward:.4}"));
                    }
                    DecisionEvent::SwitchApplied {
                        from,
                        to,
                        moved_layers,
                        transfer_bytes,
                        pause_seconds,
                    } => {
                        ev.dur_seconds = *pause_seconds;
                        ev = ev
                            .arg("from", from.clone())
                            .arg("to", to.clone())
                            .arg("moved_layers", moved_layers.to_string())
                            .arg("transfer_mb", format!("{:.2}", transfer_bytes / 1e6))
                            .arg("pause_s", format!("{pause_seconds:.4}"));
                    }
                    DecisionEvent::Verified {
                        measured,
                        expected_floor,
                        trust,
                    } => {
                        ev = ev
                            .arg("measured", format!("{measured:.3}"))
                            .arg("floor", format!("{expected_floor:.3}"))
                            .arg("trust", format!("{trust:.3}"));
                    }
                    DecisionEvent::Reverted {
                        to,
                        measured,
                        expected_floor,
                        trust,
                    } => {
                        ev = ev
                            .arg("to", to.clone())
                            .arg("measured", format!("{measured:.3}"))
                            .arg("floor", format!("{expected_floor:.3}"))
                            .arg("trust", format!("{trust:.3}"));
                    }
                    DecisionEvent::Kept { reason } => {
                        ev = ev.arg("reason", reason.label().to_string());
                    }
                }
                ev
            })
            .collect()
    }
}
