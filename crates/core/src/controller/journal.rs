//! The decision journal: a structured record of everything the controller
//! did and why.
//!
//! Every stage of the decision pipeline appends typed events —
//! changes confirmed, candidates scored with their predicted gains, the
//! arbiter's verdict, the applied switch with its priced pause, and the
//! post-switch verification or revert. The journal is the controller's
//! audit log: deterministic for a fixed seed (it derives `PartialEq`
//! so runs can be compared structurally), exportable as JSON via
//! `ap-bench`, and renderable onto an engine timeline as a chrome-trace
//! decision lane via [`DecisionJournal::to_trace_events`].

use ap_pipesim::{FaultRecord, TraceEvent};

/// Why a decision point that considered switching chose to keep the
/// current partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Sitting out decision points after a revert.
    Cooldown,
    /// No candidate scored better than the current partition.
    NoImprovement,
    /// The best candidate's gain was below the trust-scaled floor.
    BelowGainFloor,
    /// The arbiter declined the priced switch.
    ArbiterRejected,
    /// A repair is needed but the retry policy's backoff window is open.
    RetryBackoff,
}

impl KeepReason {
    /// Short kebab-case label (for traces and JSON export).
    pub fn label(self) -> &'static str {
        match self {
            KeepReason::Cooldown => "cooldown",
            KeepReason::NoImprovement => "no-improvement",
            KeepReason::BelowGainFloor => "below-gain-floor",
            KeepReason::ArbiterRejected => "arbiter-rejected",
            KeepReason::RetryBackoff => "retry-backoff",
        }
    }
}

/// One typed event in the decision journal.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// The detector confirmed resource changes (or the controller is
    /// taking its first/standing-degradation look).
    ChangeDetected {
        /// Human-readable change descriptions from the detector.
        signals: Vec<String>,
        /// Workers running below the degradation threshold.
        degraded_workers: Vec<usize>,
    },
    /// The greedy enumerate/score chain finished.
    CandidatesScored {
        /// Greedy rounds executed.
        rounds: usize,
        /// Total candidates scored across rounds.
        scored: usize,
        /// Predicted throughput of the current partition (samples/sec).
        current_pred: f64,
        /// Predicted throughput of the best candidate found.
        best_pred: f64,
        /// Summary of the best candidate.
        best: String,
    },
    /// The arbiter ruled on a priced switch.
    ArbiterVerdict {
        /// Whether the switch was approved.
        approved: bool,
        /// Predicted speedup ratio (candidate / current).
        predicted_speedup: f64,
        /// Predicted switch cost, seconds.
        switch_cost_seconds: f64,
        /// The amortized switch reward the arbiter weighed.
        reward: f64,
    },
    /// An approved switch was applied.
    SwitchApplied {
        /// Summary of the partition being replaced.
        from: String,
        /// Summary of the new partition.
        to: String,
        /// Layers whose weights migrate.
        moved_layers: usize,
        /// Bytes transferred by the migration.
        transfer_bytes: f64,
        /// Pipeline pause charged at the switch point, seconds.
        pause_seconds: f64,
    },
    /// The last switch's measured reward met expectations.
    Verified {
        /// Measured speed (samples/sec).
        measured: f64,
        /// Minimum speed that would have passed.
        expected_floor: f64,
        /// Scorer trust after the confirmation.
        trust: f64,
    },
    /// The last switch under-delivered and was rolled back.
    Reverted {
        /// Summary of the reinstated partition.
        to: String,
        /// Measured speed (samples/sec) that failed verification.
        measured: f64,
        /// Minimum speed that would have passed.
        expected_floor: f64,
        /// Scorer trust after the decay.
        trust: f64,
    },
    /// A considered switch was not taken.
    Kept {
        /// Why.
        reason: KeepReason,
    },
    /// The current partition names failed workers: the plan is
    /// *infeasible* (a dead stage replica), not merely degraded, and the
    /// normal gain-vs-cost gate no longer applies.
    InfeasibleDetected {
        /// Failed workers still named by the partition.
        failed_workers: Vec<usize>,
    },
    /// An emergency repartition was applied to evacuate failed workers,
    /// bypassing the arbiter.
    EmergencyRepartition {
        /// Summary of the infeasible partition being replaced.
        from: String,
        /// Summary of the repaired partition.
        to: String,
        /// Workers evacuated by the repair.
        dropped: Vec<usize>,
        /// Which repair attempt this was (1-based).
        attempt: u32,
        /// Pipeline pause charged for the repair switch, seconds.
        pause_seconds: f64,
    },
    /// A repair attempt was consumed; the next one waits out a backoff.
    RetryScheduled {
        /// The attempt just consumed (1-based).
        attempt: u32,
        /// Earliest sim-time the next attempt may start.
        not_before: f64,
    },
    /// The repair attempt budget is spent; the controller stops proposing.
    RetryExhausted {
        /// Attempts consumed.
        attempts: u32,
    },
    /// Engine-observed fault: a worker died (fail-stop).
    WorkerFailed {
        /// The worker.
        worker: usize,
    },
    /// Engine-observed fault: a failed worker came back.
    WorkerRecovered {
        /// The worker.
        worker: usize,
    },
    /// Engine-observed: a death inside the migration window aborted the
    /// switch; completed copies were unwound in reverse stash-version
    /// order and the pre-switch partition reinstated.
    MigrationRolledBack {
        /// The worker whose death aborted the migration.
        worker: usize,
        /// Fraction of the migration window elapsed at the abort.
        progress: f64,
        /// Time spent unwinding, seconds.
        rollback_seconds: f64,
    },
    /// Engine-observed: mini-batches stranded by a dead stage were
    /// restarted from stage 0 (re-done, never lost).
    UnitsRestarted {
        /// How many units restarted.
        count: usize,
    },
    /// Engine-observed: a proposed switch was structurally invalid and
    /// ignored by the engine.
    SwitchRejected,
}

impl DecisionEvent {
    /// Short label for trace slices.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionEvent::ChangeDetected { .. } => "change",
            DecisionEvent::CandidatesScored { .. } => "score",
            DecisionEvent::ArbiterVerdict { .. } => "verdict",
            DecisionEvent::SwitchApplied { .. } => "switch",
            DecisionEvent::Verified { .. } => "verified",
            DecisionEvent::Reverted { .. } => "revert",
            DecisionEvent::Kept { .. } => "keep",
            DecisionEvent::InfeasibleDetected { .. } => "infeasible",
            DecisionEvent::EmergencyRepartition { .. } => "emergency",
            DecisionEvent::RetryScheduled { .. } => "retry",
            DecisionEvent::RetryExhausted { .. } => "retry-exhausted",
            DecisionEvent::WorkerFailed { .. } => "worker-fail",
            DecisionEvent::WorkerRecovered { .. } => "worker-recover",
            DecisionEvent::MigrationRolledBack { .. } => "rollback",
            DecisionEvent::UnitsRestarted { .. } => "restart",
            DecisionEvent::SwitchRejected => "switch-rejected",
        }
    }
}

/// One journal entry: which decision point, where in the run, what
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Decision-point ordinal (several records can share one).
    pub decision: u64,
    /// Completed training iterations at the decision point.
    pub iteration: u64,
    /// Simulated time of the decision point, seconds.
    pub time: f64,
    /// What happened.
    pub event: DecisionEvent,
}

/// An append-only log of [`DecisionRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionJournal {
    /// Records in the order they were appended.
    pub records: Vec<DecisionRecord>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        DecisionJournal::default()
    }

    /// Append one event.
    pub fn record(&mut self, decision: u64, iteration: u64, time: f64, event: DecisionEvent) {
        self.records.push(DecisionRecord {
            decision,
            iteration,
            time,
            event,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records appended after index `from` (for per-run snapshots when a
    /// controller outlives one scenario).
    pub fn since(&self, from: usize) -> DecisionJournal {
        DecisionJournal {
            records: self.records[from.min(self.records.len())..].to_vec(),
        }
    }

    /// Render the journal as chrome-trace annotation events in engine
    /// time: instant marks for point events, a timed slice for each
    /// applied switch (its pipeline pause).
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        self.records
            .iter()
            .map(|r| {
                let mut ev = TraceEvent::instant(r.event.name(), "decision", r.time)
                    .arg("decision", r.decision.to_string())
                    .arg("iteration", r.iteration.to_string());
                match &r.event {
                    DecisionEvent::ChangeDetected {
                        signals,
                        degraded_workers,
                    } => {
                        ev = ev.arg("signals", signals.join("; "));
                        if !degraded_workers.is_empty() {
                            let ws: Vec<String> =
                                degraded_workers.iter().map(|w| w.to_string()).collect();
                            ev = ev.arg("degraded", ws.join(","));
                        }
                    }
                    DecisionEvent::CandidatesScored {
                        rounds,
                        scored,
                        current_pred,
                        best_pred,
                        best,
                    } => {
                        ev = ev
                            .arg("rounds", rounds.to_string())
                            .arg("scored", scored.to_string())
                            .arg("current_pred", format!("{current_pred:.3}"))
                            .arg("best_pred", format!("{best_pred:.3}"))
                            .arg("best", best.clone());
                    }
                    DecisionEvent::ArbiterVerdict {
                        approved,
                        predicted_speedup,
                        switch_cost_seconds,
                        reward,
                    } => {
                        ev = ev
                            .arg("approved", approved.to_string())
                            .arg("speedup", format!("{predicted_speedup:.4}"))
                            .arg("cost_s", format!("{switch_cost_seconds:.4}"))
                            .arg("reward", format!("{reward:.4}"));
                    }
                    DecisionEvent::SwitchApplied {
                        from,
                        to,
                        moved_layers,
                        transfer_bytes,
                        pause_seconds,
                    } => {
                        ev.dur_seconds = *pause_seconds;
                        ev = ev
                            .arg("from", from.clone())
                            .arg("to", to.clone())
                            .arg("moved_layers", moved_layers.to_string())
                            .arg("transfer_mb", format!("{:.2}", transfer_bytes / 1e6))
                            .arg("pause_s", format!("{pause_seconds:.4}"));
                    }
                    DecisionEvent::Verified {
                        measured,
                        expected_floor,
                        trust,
                    } => {
                        ev = ev
                            .arg("measured", format!("{measured:.3}"))
                            .arg("floor", format!("{expected_floor:.3}"))
                            .arg("trust", format!("{trust:.3}"));
                    }
                    DecisionEvent::Reverted {
                        to,
                        measured,
                        expected_floor,
                        trust,
                    } => {
                        ev = ev
                            .arg("to", to.clone())
                            .arg("measured", format!("{measured:.3}"))
                            .arg("floor", format!("{expected_floor:.3}"))
                            .arg("trust", format!("{trust:.3}"));
                    }
                    DecisionEvent::Kept { reason } => {
                        ev = ev.arg("reason", reason.label().to_string());
                    }
                    DecisionEvent::InfeasibleDetected { failed_workers } => {
                        let ws: Vec<String> =
                            failed_workers.iter().map(|w| w.to_string()).collect();
                        ev = ev.arg("failed", ws.join(","));
                    }
                    DecisionEvent::EmergencyRepartition {
                        from,
                        to,
                        dropped,
                        attempt,
                        pause_seconds,
                    } => {
                        ev.dur_seconds = *pause_seconds;
                        let ws: Vec<String> = dropped.iter().map(|w| w.to_string()).collect();
                        ev = ev
                            .arg("from", from.clone())
                            .arg("to", to.clone())
                            .arg("dropped", ws.join(","))
                            .arg("attempt", attempt.to_string())
                            .arg("pause_s", format!("{pause_seconds:.4}"));
                    }
                    DecisionEvent::RetryScheduled {
                        attempt,
                        not_before,
                    } => {
                        ev = ev
                            .arg("attempt", attempt.to_string())
                            .arg("not_before", format!("{not_before:.3}"));
                    }
                    DecisionEvent::RetryExhausted { attempts } => {
                        ev = ev.arg("attempts", attempts.to_string());
                    }
                    DecisionEvent::WorkerFailed { worker }
                    | DecisionEvent::WorkerRecovered { worker } => {
                        ev = ev.arg("worker", worker.to_string());
                    }
                    DecisionEvent::MigrationRolledBack {
                        worker,
                        progress,
                        rollback_seconds,
                    } => {
                        ev.dur_seconds = *rollback_seconds;
                        ev = ev
                            .arg("worker", worker.to_string())
                            .arg("progress", format!("{progress:.4}"))
                            .arg("rollback_s", format!("{rollback_seconds:.4}"));
                    }
                    DecisionEvent::UnitsRestarted { count } => {
                        ev = ev.arg("count", count.to_string());
                    }
                    DecisionEvent::SwitchRejected => {}
                }
                ev
            })
            .collect()
    }

    /// Fold the engine's fault log into the journal, time-sorted, so one
    /// audit trail covers both what the controller decided and what the
    /// fault machinery actually did. Each fault record is attributed to
    /// the decision point it landed inside (the latest record at or
    /// before its time).
    pub fn merge_engine_faults(&mut self, faults: &[FaultRecord]) {
        for f in faults {
            let (time, event) = match f {
                FaultRecord::WorkerFailed { worker, at } => {
                    (*at, DecisionEvent::WorkerFailed { worker: worker.0 })
                }
                FaultRecord::WorkerRecovered { worker, at } => {
                    (*at, DecisionEvent::WorkerRecovered { worker: worker.0 })
                }
                FaultRecord::MigrationRolledBack {
                    worker,
                    at,
                    progress,
                    rollback_seconds,
                } => (
                    *at,
                    DecisionEvent::MigrationRolledBack {
                        worker: worker.0,
                        progress: *progress,
                        rollback_seconds: *rollback_seconds,
                    },
                ),
                FaultRecord::UnitsRestarted { count, at } => {
                    (*at, DecisionEvent::UnitsRestarted { count: *count })
                }
                FaultRecord::SwitchRejected { at } => (*at, DecisionEvent::SwitchRejected),
            };
            let idx = self.records.partition_point(|r| r.time <= time);
            let (decision, iteration) = match idx.checked_sub(1).and_then(|i| self.records.get(i)) {
                Some(prev) => (prev.decision, prev.iteration),
                None => (0, 0),
            };
            self.records.insert(
                idx,
                DecisionRecord {
                    decision,
                    iteration,
                    time,
                    event,
                },
            );
        }
    }
}
