//! Default [`Score`] stage: the learned meta-network or the analytic
//! model.

use ap_pipesim::{AnalyticModel, Partition};

use super::stages::{Score, ScoreCtx};
use crate::meta_net::MetaNet;
use crate::metrics::{static_metrics_from_profile, FeatureEncoder, ProfilingMetrics};

/// What scores candidate partitions.
pub enum Scorer {
    /// The learned meta-network (the paper's design).
    MetaNet(Box<MetaNet>),
    /// Direct analytic evaluation (ablation: perfect model, slower in
    /// spirit — on a real system this is the "tens of minutes" full model
    /// the paper rejects).
    Analytic,
}

fn analytic<'a>(ctx: &ScoreCtx<'a>) -> AnalyticModel<'a> {
    AnalyticModel {
        profile: ctx.profile,
        scheme: ctx.scheme,
        framework: ctx.framework,
        schedule: ctx.schedule,
        calibration: ctx.calibration,
    }
}

impl Score for Scorer {
    /// Score a candidate's throughput (samples/sec).
    fn predict(&self, ctx: &ScoreCtx<'_>, candidate: &Partition) -> f64 {
        match self {
            Scorer::Analytic => analytic(ctx).throughput(candidate, ctx.state),
            Scorer::MetaNet(net) => {
                let seq: Vec<Vec<f64>> = ctx.history.iter().cloned().collect();
                let m = static_metrics_from_profile(ctx.profile, candidate.n_workers());
                // Candidate encodings only need static Table-1 fields.
                let stat = FeatureEncoder.encode_static(&m, candidate);
                net.predict_throughput(&seq, &stat)
            }
        }
    }

    /// Score a whole candidate set and return the best `(speed,
    /// partition)`.
    ///
    /// This is the hot path of a decision round — O(L²) candidates — so it
    /// is built for throughput:
    ///
    /// * **MetaNet**: the dynamic history is identical for every
    ///   candidate, so the LSTM runs *once* ([`MetaNet::encode_history`])
    ///   and each candidate pays only the fully-connected head. Static
    ///   Table-1 metrics depend only on the worker count, so they are
    ///   computed once per distinct count instead of once per candidate.
    /// * Both scorer arms fan the per-candidate work across `ap_par`'s
    ///   order-preserving parallel map; the final `max_by` runs serially
    ///   over results in input order, so the selected candidate is
    ///   identical to a fully serial scan (ties included).
    fn best(&self, ctx: &ScoreCtx<'_>, candidates: Vec<Partition>) -> Option<(f64, Partition)> {
        let scored = match self {
            Scorer::Analytic => {
                let model = analytic(ctx);
                let state = ctx.state;
                ap_par::map(candidates, |p| (model.throughput(&p, state), p))
            }
            Scorer::MetaNet(net) => {
                let seq: Vec<Vec<f64>> = ctx.history.iter().cloned().collect();
                let h = net.encode_history(&seq);
                let mut static_by_workers: Vec<(usize, ProfilingMetrics)> = Vec::new();
                for p in &candidates {
                    let n = p.n_workers();
                    if !static_by_workers.iter().any(|&(k, _)| k == n) {
                        static_by_workers.push((n, static_metrics_from_profile(ctx.profile, n)));
                    }
                }
                ap_par::map(candidates, |p| {
                    let m = &static_by_workers
                        .iter()
                        .find(|&&(k, _)| k == p.n_workers())
                        .expect("metrics precomputed for every worker count")
                        .1;
                    let stat = FeatureEncoder.encode_static(m, &p);
                    (net.predict_throughput_from_encoding(&h, &stat), p)
                })
            }
        };
        scored.into_iter().max_by(|a, b| a.0.total_cmp(&b.0))
    }
}
