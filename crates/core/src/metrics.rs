//! The profiling metrics of Table 1 and their feature encoding.
//!
//! | Symbol | Shape | Meaning |
//! |--------|-------|---------|
//! | `L`    | 1     | total number of layers |
//! | `N`    | 1     | total number of workers |
//! | `O_i`  | L×1   | output-activation bytes of layer i |
//! | `G_i`  | L×1   | input-gradient bytes of layer i |
//! | `P_i`  | L×1   | weight-parameter bytes of layer i |
//! | `B_i`  | N×1   | available bandwidth of worker i |
//! | `FP_ij`| N×L   | forward time of layer j on worker i |
//! | `BP_ij`| N×L   | backward time of layer j on worker i |
//!
//! The meta-network consumes these through [`FeatureEncoder`], which folds
//! the variable-size metrics and a candidate partition into fixed-width
//! vectors (padded/pooled per stage), so one trained network serves every
//! model and cluster size — the "generic knowledge from various
//! environments" §4.2 asks of meta-learning.

use ap_models::ModelProfile;
use ap_pipesim::Partition;

/// Maximum stages the encoder represents; larger partitions pool into the
/// last slot.
pub const MAX_STAGES: usize = 8;

/// Width of the static feature vector (per-stage block + globals).
pub const STATIC_DIM: usize = MAX_STAGES * 5 + 3;

/// Width of one dynamic observation vector.
pub const DYNAMIC_DIM: usize = MAX_STAGES * 2;

/// Bandwidth normalizer: 100 Gbps in bytes/s.
const BW_NORM: f64 = 12.5e9;

/// The Table 1 metric set for one job at one instant.
#[derive(Debug, Clone)]
pub struct ProfilingMetrics {
    /// `L`.
    pub n_layers: usize,
    /// `N`.
    pub n_workers: usize,
    /// `O_i`, bytes per mini-batch.
    pub out_bytes: Vec<f64>,
    /// `G_i`, bytes per mini-batch (same tensor shapes as `O_i`).
    pub grad_bytes: Vec<f64>,
    /// `P_i`, bytes.
    pub param_bytes: Vec<f64>,
    /// `B_i`, bytes/s per worker (order matches `Partition::all_workers`).
    pub bandwidth: Vec<f64>,
    /// `FP_ij`, seconds, `[worker][layer]`.
    pub fp_time: Vec<Vec<f64>>,
    /// `BP_ij`, seconds, `[worker][layer]`.
    pub bp_time: Vec<Vec<f64>>,
}

impl ProfilingMetrics {
    /// Structural sanity check.
    pub fn validate(&self) -> Result<(), String> {
        let (l, n) = (self.n_layers, self.n_workers);
        if self.out_bytes.len() != l || self.grad_bytes.len() != l || self.param_bytes.len() != l {
            return Err("per-layer metric length != L".into());
        }
        if self.bandwidth.len() != n {
            return Err("bandwidth length != N".into());
        }
        if self.fp_time.len() != n || self.bp_time.len() != n {
            return Err("time matrices need N rows".into());
        }
        if self
            .fp_time
            .iter()
            .chain(&self.bp_time)
            .any(|r| r.len() != l)
        {
            return Err("time matrices need L columns".into());
        }
        Ok(())
    }

    /// Total fwd+bwd seconds layer range `lo..hi` costs on worker `w`.
    pub fn range_time_on(&self, w: usize, lo: usize, hi: usize) -> f64 {
        self.fp_time[w][lo..hi].iter().sum::<f64>() + self.bp_time[w][lo..hi].iter().sum::<f64>()
    }

    /// Relative speed of worker `w` in (0, 1]: the fastest worker's whole-
    /// model time over this worker's.
    pub fn relative_speed(&self, w: usize) -> f64 {
        let l = self.n_layers;
        let mine = self.range_time_on(w, 0, l);
        let best = (0..self.n_workers)
            .map(|u| self.range_time_on(u, 0, l))
            .fold(f64::INFINITY, f64::min);
        if mine <= 0.0 {
            1.0
        } else {
            (best / mine).clamp(0.0, 1.0)
        }
    }
}

/// Folds metrics + a candidate partition into the meta-network's inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureEncoder;

impl FeatureEncoder {
    /// Map a stage index onto the fixed grid (overflow pools into the last
    /// slot).
    fn slot(stage: usize) -> usize {
        stage.min(MAX_STAGES - 1)
    }

    /// Static features of `(metrics, partition)`: per-stage work share,
    /// parameter share, cut traffic share, worker share — plus global
    /// scale terms.
    pub fn encode_static(&self, m: &ProfilingMetrics, p: &Partition) -> Vec<f64> {
        debug_assert!(m.validate().is_ok());
        let mut f = vec![0.0; STATIC_DIM];
        // Mean per-layer time across workers as the work proxy.
        let layer_work = |j: usize| -> f64 {
            let n = m.n_workers as f64;
            (0..m.n_workers)
                .map(|w| m.fp_time[w][j] + m.bp_time[w][j])
                .sum::<f64>()
                / n
        };
        let total_work: f64 = (0..m.n_layers).map(layer_work).sum();
        let total_params: f64 = m.param_bytes.iter().sum();
        let total_out: f64 = m.out_bytes.iter().sum();
        let total_workers = p.n_workers() as f64;
        for (s, st) in p.stages.iter().enumerate() {
            let k = Self::slot(s);
            let work: f64 = st.layers.clone().map(layer_work).sum();
            let params: f64 = st.layers.clone().map(|j| m.param_bytes[j]).sum();
            let cut = if st.layers.end < m.n_layers {
                m.out_bytes[st.layers.end - 1]
            } else {
                0.0
            };
            let work_share = work / total_work.max(1e-30);
            let worker_share = st.workers.len() as f64 / total_workers;
            f[k * 5] += work_share;
            f[k * 5 + 1] += params / total_params.max(1e-30);
            f[k * 5 + 2] += cut / total_out.max(1e-30);
            f[k * 5 + 3] += worker_share;
            // Per-worker load: the feature the bottleneck stage maximizes.
            f[k * 5 + 4] += (work_share / worker_share.max(1e-9)).min(4.0) / 4.0;
        }
        let base = MAX_STAGES * 5;
        f[base] = (m.n_layers as f64).ln() / 5.0;
        f[base + 1] = (m.n_workers as f64).ln() / 4.0;
        f[base + 2] = p.in_flight as f64 / total_workers.max(1.0);
        f
    }

    /// One dynamic observation: per-stage mean available bandwidth and
    /// mean relative compute speed.
    pub fn encode_dynamic(&self, m: &ProfilingMetrics, p: &Partition) -> Vec<f64> {
        debug_assert!(m.validate().is_ok());
        let mut f = vec![0.0; DYNAMIC_DIM];
        // Workers are indexed in `all_workers` order.
        let mut wi = 0usize;
        for (s, st) in p.stages.iter().enumerate() {
            let k = Self::slot(s);
            let n = st.workers.len() as f64;
            let mut bw = 0.0;
            let mut speed = 0.0;
            for _ in 0..st.workers.len() {
                bw += m.bandwidth[wi] / BW_NORM;
                speed += m.relative_speed(wi);
                wi += 1;
            }
            f[k * 2] += bw / n;
            f[k * 2 + 1] += speed / n;
        }
        f
    }
}

/// Build the static half of Table 1 directly from a model profile.
///
/// Per-layer FP/BP times are filled at a reference device speed so the
/// encoder's *work-share* features are meaningful even before any runtime
/// measurement (the paper's "ratios are almost constant" observation makes
/// shares device-independent).
pub fn static_metrics_from_profile(profile: &ModelProfile, n_workers: usize) -> ProfilingMetrics {
    const REF_FLOPS: f64 = 9.3e12; // one exclusive P100
    let fp: Vec<f64> = (0..profile.n_layers())
        .map(|j| profile.fp_time(j, REF_FLOPS))
        .collect();
    let bp: Vec<f64> = (0..profile.n_layers())
        .map(|j| profile.bp_time(j, REF_FLOPS))
        .collect();
    ProfilingMetrics {
        n_layers: profile.n_layers(),
        n_workers,
        out_bytes: profile.out_bytes.clone(),
        grad_bytes: profile.grad_bytes.clone(),
        param_bytes: profile.param_bytes.clone(),
        bandwidth: vec![0.0; n_workers],
        fp_time: vec![fp; n_workers],
        bp_time: vec![bp; n_workers],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::GpuId;
    use ap_pipesim::Stage;

    fn metrics() -> ProfilingMetrics {
        let l = 6;
        let n = 3;
        ProfilingMetrics {
            n_layers: l,
            n_workers: n,
            out_bytes: vec![10.0, 20.0, 30.0, 20.0, 10.0, 5.0],
            grad_bytes: vec![10.0, 20.0, 30.0, 20.0, 10.0, 5.0],
            param_bytes: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            bandwidth: vec![12.5e9, 6.25e9, 12.5e9],
            fp_time: vec![vec![0.01; l], vec![0.02; l], vec![0.01; l]],
            bp_time: vec![vec![0.02; l], vec![0.04; l], vec![0.02; l]],
        }
    }

    fn partition() -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..3, vec![GpuId(0), GpuId(1)]),
                Stage::new(3..6, vec![GpuId(2)]),
            ],
            in_flight: 2,
        }
    }

    #[test]
    fn validation_catches_shape_errors() {
        let mut m = metrics();
        assert!(m.validate().is_ok());
        m.bandwidth.pop();
        assert!(m.validate().is_err());
        let mut m2 = metrics();
        m2.fp_time[1].pop();
        assert!(m2.validate().is_err());
    }

    #[test]
    fn static_features_have_fixed_width_and_partition_shares() {
        let enc = FeatureEncoder;
        let f = enc.encode_static(&metrics(), &partition());
        assert_eq!(f.len(), STATIC_DIM);
        // Work shares of the two stages sum to 1.
        let share0 = f[0];
        let share1 = f[5];
        assert!((share0 + share1 - 1.0).abs() < 1e-9);
        // Worker shares: 2/3 and 1/3.
        assert!((f[3] - 2.0 / 3.0).abs() < 1e-9);
        assert!((f[8] - 1.0 / 3.0).abs() < 1e-9);
        // Per-worker load of stage 0: (0.5 work)/(2/3 workers)/4.
        assert!((f[4] - (share0 / (2.0 / 3.0)) / 4.0).abs() < 1e-9);
        // Unused stage slots stay zero.
        assert!(f[10..MAX_STAGES * 5].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dynamic_features_reflect_bandwidth_and_speed() {
        let enc = FeatureEncoder;
        let f = enc.encode_dynamic(&metrics(), &partition());
        assert_eq!(f.len(), DYNAMIC_DIM);
        // Stage 0: workers 0 (100G, fast) and 1 (50G, half speed).
        assert!((f[0] - (1.0 + 0.5) / 2.0).abs() < 1e-9);
        assert!((f[1] - (1.0 + 0.5) / 2.0).abs() < 1e-9);
        // Stage 1: worker 2 (100G, fast).
        assert!((f[2] - 1.0).abs() < 1e-9);
        assert!((f[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_speed_is_one_for_fastest() {
        let m = metrics();
        assert_eq!(m.relative_speed(0), 1.0);
        assert!((m.relative_speed(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deep_partitions_pool_into_last_slot() {
        let l = 20;
        let n = 10;
        let m = ProfilingMetrics {
            n_layers: l,
            n_workers: n,
            out_bytes: vec![1.0; l],
            grad_bytes: vec![1.0; l],
            param_bytes: vec![1.0; l],
            bandwidth: vec![12.5e9; n],
            fp_time: vec![vec![0.01; l]; n],
            bp_time: vec![vec![0.02; l]; n],
        };
        let p = Partition {
            stages: (0..10)
                .map(|s| Stage::new(s * 2..(s + 1) * 2, vec![GpuId(s)]))
                .collect(),
            in_flight: 10,
        };
        let enc = FeatureEncoder;
        let f = enc.encode_static(&m, &p);
        assert_eq!(f.len(), STATIC_DIM);
        // 3 stages pooled into the final slot: its worker share is 3/10.
        assert!((f[(MAX_STAGES - 1) * 5 + 3] - 0.3).abs() < 1e-9);
    }
}
