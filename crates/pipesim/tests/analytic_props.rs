//! Randomized-but-deterministic tests for the analytic steady-state
//! model: physical monotonicity (more bandwidth never hurts; more
//! contention never helps) and internal consistency over seeded random
//! partitions.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, EventKind, GpuId};
use ap_models::{synthetic_skewed, ModelProfile};
use ap_pipesim::{AnalyticModel, Framework, Partition, ScheduleKind, Stage, SyncScheme};
use ap_rng::Rng;

/// Random partition: 12 layers over 4 GPUs, 1-3 stages.
fn random_partition(rng: &mut Rng) -> Partition {
    let a = rng.gen_range(1..12usize);
    let b = rng.gen_range(1..12usize);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let stages = match rng.gen_range(0..3u32) {
        0 => vec![Stage::new(0..12, (0..4).map(GpuId).collect())],
        1 => vec![
            Stage::new(0..lo.max(1), vec![GpuId(0), GpuId(1)]),
            Stage::new(lo.max(1)..12, vec![GpuId(2), GpuId(3)]),
        ],
        _ => {
            let m = lo.clamp(1, 10);
            let h = (hi.max(m + 1)).min(11);
            vec![
                Stage::new(0..m, vec![GpuId(0)]),
                Stage::new(m..h, vec![GpuId(1), GpuId(2)]),
                Stage::new(h..12, vec![GpuId(3)]),
            ]
        }
    };
    let mut p = Partition {
        stages,
        in_flight: 1,
    };
    p.in_flight = p.default_in_flight();
    p
}

fn throughput(p: &Partition, gbps: f64, contended: &[usize], scheme: SyncScheme) -> f64 {
    let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, gbps);
    let mut st = ClusterState::new(topo);
    for &g in contended {
        st.apply(&EventKind::SetGpuSharing(GpuId(g), 2));
    }
    let model = synthetic_skewed(12, 1e9, 8e6, 6e6);
    let profile = ModelProfile::with_batch(&model, 16);
    let m = AnalyticModel {
        profile: &profile,
        scheme,
        framework: Framework::pytorch(),
        schedule: ScheduleKind::PipeDreamAsync,
        calibration: None,
    };
    m.throughput(p, &st)
}

/// Raising every link's bandwidth never reduces predicted throughput.
#[test]
fn more_bandwidth_never_hurts() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xBA4D + case);
        let p = random_partition(&mut rng);
        let g1 = rng.gen_range(2.0..50.0);
        let scale = rng.gen_range(1.0..8.0);
        let lo = throughput(&p, g1, &[], SyncScheme::RingAllReduce);
        let hi = throughput(&p, g1 * scale, &[], SyncScheme::RingAllReduce);
        assert!(
            hi >= lo * (1.0 - 1e-9),
            "case {case}: bandwidth up, tp down: {lo} -> {hi}"
        );
    }
}

/// Adding GPU contention never increases predicted throughput.
#[test]
fn contention_never_helps() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xC047 + case);
        let p = random_partition(&mut rng);
        let victim = rng.gen_range(0..4usize);
        let free = throughput(&p, 25.0, &[], SyncScheme::RingAllReduce);
        let contended = throughput(&p, 25.0, &[victim], SyncScheme::RingAllReduce);
        assert!(
            contended <= free * (1.0 + 1e-9),
            "case {case}: contention helped: {free} -> {contended}"
        );
    }
}

/// Throughput is positive and finite, and iteration time x throughput
/// equals the batch size.
#[test]
fn evaluation_is_consistent() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xE7A1 + case);
        let p = random_partition(&mut rng);
        let g = rng.gen_range(2.0..100.0);
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, g);
        let st = ClusterState::new(topo);
        let model = synthetic_skewed(12, 1e9, 8e6, 6e6);
        let profile = ModelProfile::with_batch(&model, 16);
        for scheme in [SyncScheme::RingAllReduce, SyncScheme::ParameterServer] {
            let m = AnalyticModel {
                profile: &profile,
                scheme,
                framework: Framework::pytorch(),
                schedule: ScheduleKind::PipeDreamAsync,
                calibration: None,
            };
            let e = m.evaluate(&p, &st);
            assert!(
                e.throughput.is_finite() && e.throughput > 0.0,
                "case {case}"
            );
            assert!(
                (e.throughput * e.iteration_time - 16.0).abs() < 1e-6,
                "case {case}"
            );
            assert_eq!(e.stage_times.len(), p.n_stages());
            assert_eq!(e.cut_times.len(), p.n_stages() - 1);
        }
    }
}

/// Under identical states, PS is never faster than Ring for replicated
/// single-stage data parallelism (the PS server NIC is the bottleneck).
#[test]
fn ps_never_beats_ring_for_pure_dp() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x95D9 + case);
        let g = rng.gen_range(2.0..100.0);
        let p = Partition::single_stage(12, (0..4).map(GpuId).collect());
        let ring = throughput(&p, g, &[], SyncScheme::RingAllReduce);
        let ps = throughput(&p, g, &[], SyncScheme::ParameterServer);
        assert!(
            ps <= ring * (1.0 + 1e-9),
            "case {case}: ps {ps} beat ring {ring}"
        );
    }
}
