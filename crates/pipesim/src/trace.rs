//! Chrome-trace export of engine timelines.
//!
//! [`to_chrome_trace`] renders a [`SimResult`]'s per-worker busy segments
//! as a Trace Event Format JSON array that `chrome://tracing`, Perfetto or
//! Speedscope can open — one row per worker, one slice per forward or
//! backward pass, labeled with the mini-batch id. Run the engine with
//! `record_timeline: true` to collect segments.

use crate::engine::{SimResult, WorkKind};

/// Escape a string for inclusion in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render `result` as Trace Event Format JSON (complete events, "X" phase,
/// microsecond timestamps). `process_name` labels the trace's process row.
pub fn to_chrome_trace(result: &SimResult, process_name: &str) -> String {
    let mut out = String::from("[\n");
    // Process metadata record.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        esc(process_name)
    ));
    for (w, busy) in result.busy.iter().enumerate() {
        let _ = busy;
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"args\":{{\"name\":\"worker {w}\"}}}}"
        ));
    }
    for seg in &result.segments {
        let name = match seg.kind {
            WorkKind::Forward => format!("F{}", seg.unit),
            WorkKind::Backward => format!("B{}", seg.unit),
        };
        let cat = match seg.kind {
            WorkKind::Forward => "forward",
            WorkKind::Backward => "backward",
        };
        out.push_str(&format!(
            ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"unit\":{}}}}}",
            seg.worker,
            seg.start * 1e6,
            (seg.end - seg.start) * 1e6,
            seg.unit
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::partition::{Partition, Stage};
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterState, ClusterTopology, GpuId, ResourceTimeline};
    use ap_models::{synthetic_uniform, ModelProfile};

    fn sample_result() -> SimResult {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(4, 2e9, 1e5, 1e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let p = Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        Engine::new(
            &profile,
            p,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig {
                record_timeline: true,
                ..EngineConfig::default()
            },
        )
        .run(5)
    }

    #[test]
    fn trace_is_well_formed_json_with_all_segments() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "autopipe demo");
        // Structural sanity without a JSON parser dependency: balanced
        // brackets, one "X" event per segment, both thread rows present.
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(x_events, r.segments.len());
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"cat\":\"forward\""));
        assert!(json.contains("\"cat\":\"backward\""));
    }

    #[test]
    fn timestamps_are_microseconds_and_non_negative() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "t");
        for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            let ts: f64 = line
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(ts >= 0.0);
        }
    }

    #[test]
    fn names_are_escaped() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "job \"quoted\"");
        assert!(json.contains("job \\\"quoted\\\""));
    }
}
