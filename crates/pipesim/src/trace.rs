//! Chrome-trace export of engine timelines.
//!
//! [`to_chrome_trace`] renders a [`SimResult`]'s per-worker busy segments
//! as a Trace Event Format JSON array that `chrome://tracing`, Perfetto or
//! Speedscope can open — one row per worker, one slice per forward or
//! backward pass, labeled with the mini-batch id. Run the engine with
//! `record_timeline: true` to collect segments.
//!
//! [`to_chrome_trace_with_events`] additionally merges caller-supplied
//! [`TraceEvent`]s (e.g. a controller's decision journal) into the same
//! trace on a dedicated thread row, so compute segments and control-plane
//! decisions line up on one timeline.

use crate::engine::{SimResult, TimelineSegment, WorkKind};

/// Escape a string for inclusion in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A generic annotation event to merge into a chrome trace, expressed in
/// engine time (seconds). Events with zero duration render as instant
/// marks, others as complete ("X") slices.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Short event label shown on the slice.
    pub name: String,
    /// Trace category (used by viewers for filtering/coloring).
    pub cat: String,
    /// Event time, seconds.
    pub ts_seconds: f64,
    /// Event duration, seconds; `0.0` renders an instant mark.
    pub dur_seconds: f64,
    /// Key/value payload rendered into the event's `args` object (values
    /// are emitted as JSON strings).
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// An instant annotation at `ts_seconds`.
    pub fn instant(name: impl Into<String>, cat: impl Into<String>, ts_seconds: f64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ts_seconds,
            dur_seconds: 0.0,
            args: Vec::new(),
        }
    }

    /// Append one `args` entry, builder style.
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    fn render(&self, tid: usize) -> String {
        let mut args = String::new();
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push_str(&format!("\"{}\":\"{}\"", esc(k), esc(v)));
        }
        if self.dur_seconds > 0.0 {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                esc(&self.name),
                esc(&self.cat),
                self.ts_seconds * 1e6,
                self.dur_seconds * 1e6,
            )
        } else {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"args\":{{{args}}}}}",
                esc(&self.name),
                esc(&self.cat),
                self.ts_seconds * 1e6,
            )
        }
    }
}

/// Render `result` as Trace Event Format JSON (complete events, "X" phase,
/// microsecond timestamps). `process_name` labels the trace's process row.
pub fn to_chrome_trace(result: &SimResult, process_name: &str) -> String {
    to_chrome_trace_with_events(result, process_name, "", &[])
}

/// Like [`to_chrome_trace`], but merges `events` into the trace on an
/// extra thread row named `lane_name` (placed after the worker rows).
/// Passing no events degenerates to the plain engine trace.
pub fn to_chrome_trace_with_events(
    result: &SimResult,
    process_name: &str,
    lane_name: &str,
    events: &[TraceEvent],
) -> String {
    segments_to_chrome_trace(
        &result.segments,
        result.busy.len(),
        process_name,
        lane_name,
        events,
    )
}

/// Render raw timeline segments as a chrome trace. This is the shared
/// backend for both simulator timelines ([`to_chrome_trace`]) and
/// *measured* timelines recorded by the execution runtime, which emits the
/// same [`TimelineSegment`] type from real wall-clock stamps.
pub fn segments_to_chrome_trace(
    segments: &[TimelineSegment],
    n_workers: usize,
    process_name: &str,
    lane_name: &str,
    events: &[TraceEvent],
) -> String {
    let mut out = String::from("[\n");
    // Process metadata record.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        esc(process_name)
    ));
    for w in 0..n_workers {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"args\":{{\"name\":\"worker {w}\"}}}}"
        ));
    }
    let lane = n_workers;
    if !events.is_empty() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{}\"}}}}",
            esc(lane_name)
        ));
    }
    for seg in segments {
        let name = match seg.kind {
            WorkKind::Forward => format!("F{}", seg.unit),
            WorkKind::Backward => format!("B{}", seg.unit),
        };
        let cat = match seg.kind {
            WorkKind::Forward => "forward",
            WorkKind::Backward => "backward",
        };
        out.push_str(&format!(
            ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"unit\":{}}}}}",
            seg.worker,
            seg.start * 1e6,
            (seg.end - seg.start) * 1e6,
            seg.unit
        ));
    }
    for ev in events {
        out.push_str(",\n");
        out.push_str(&ev.render(lane));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::partition::{Partition, Stage};
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterState, ClusterTopology, GpuId, ResourceTimeline};
    use ap_models::{synthetic_uniform, ModelProfile};

    fn sample_result() -> SimResult {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(4, 2e9, 1e5, 1e6);
        let profile = ModelProfile::with_batch(&model, 16);
        let p = Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        Engine::new(
            &profile,
            p,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig {
                record_timeline: true,
                ..EngineConfig::default()
            },
        )
        .expect("valid")
        .run(5)
        .expect("run")
    }

    #[test]
    fn trace_is_well_formed_json_with_all_segments() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "autopipe demo");
        // Structural sanity without a JSON parser dependency: balanced
        // brackets, one "X" event per segment, both thread rows present.
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(x_events, r.segments.len());
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"cat\":\"forward\""));
        assert!(json.contains("\"cat\":\"backward\""));
    }

    #[test]
    fn timestamps_are_microseconds_and_non_negative() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "t");
        for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            let ts: f64 = line
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(ts >= 0.0);
        }
    }

    #[test]
    fn names_are_escaped() {
        let r = sample_result();
        let json = to_chrome_trace(&r, "job \"quoted\"");
        assert!(json.contains("job \\\"quoted\\\""));
    }

    #[test]
    fn merged_trace_interleaves_annotation_events() {
        let r = sample_result();
        let events = vec![
            TraceEvent::instant("change", "decision", 0.5).arg("signals", "2"),
            TraceEvent {
                name: "switch".into(),
                cat: "decision".into(),
                ts_seconds: 1.0,
                dur_seconds: 0.25,
                args: vec![("pause_s".into(), "0.25".into())],
            },
        ];
        let json = to_chrome_trace_with_events(&r, "merged", "controller", &events);
        // All engine slices plus the one timed decision slice.
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(x_events, r.segments.len() + 1);
        // The instant event and the decision lane both render.
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"name\":\"controller\""));
        // Decision events live on the row after the last worker.
        let lane = format!("\"tid\":{}", r.busy.len());
        assert!(json.contains(&lane));
        assert!(json.contains("\"signals\":\"2\""));
        // Zero events degenerates to the plain trace.
        assert_eq!(
            to_chrome_trace_with_events(&r, "p", "lane", &[]),
            to_chrome_trace(&r, "p")
        );
    }
}
