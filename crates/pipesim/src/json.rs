//! [`ToJson`] conversions for the simulator's exported types.
//!
//! These live here (not in `ap-bench`) because the `ToJson` trait belongs
//! to `ap-json` and Rust's orphan rules require the impl to sit with the
//! type. Serve and bench both serialize partitions and timelines through
//! these impls.

use ap_json::{Json, ToJson};

use crate::engine::{TimelineSegment, WorkKind};
use crate::partition::{Partition, Stage};

impl ToJson for WorkKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                WorkKind::Forward => "Forward",
                WorkKind::Backward => "Backward",
            }
            .to_string(),
        )
    }
}

impl ToJson for TimelineSegment {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", self.worker.to_json()),
            ("unit", self.unit.to_json()),
            ("kind", self.kind.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
        ])
    }
}

impl ToJson for Stage {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "layers",
                Json::Arr(vec![self.layers.start.to_json(), self.layers.end.to_json()]),
            ),
            (
                "workers",
                Json::Arr(self.workers.iter().map(|w| w.0.to_json()).collect()),
            ),
        ])
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stages", self.stages.to_json()),
            ("in_flight", self.in_flight.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::GpuId;

    #[test]
    fn partition_serializes_stages_and_in_flight() {
        let p = Partition {
            stages: vec![
                Stage::new(0..5, vec![GpuId(0), GpuId(1)]),
                Stage::new(5..12, vec![GpuId(2)]),
            ],
            in_flight: 3,
        };
        let j = p.to_json();
        assert_eq!(j.get("in_flight").and_then(Json::as_usize), Some(3));
        let stages = j.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[0].get("layers").unwrap(),
            &Json::Arr(vec![Json::Num(0.0), Json::Num(5.0)])
        );
        assert_eq!(
            stages[1].get("workers").unwrap(),
            &Json::Arr(vec![Json::Num(2.0)])
        );
    }
}
