//! Device-memory accounting.
//!
//! PipeDream caps the number of in-flight mini-batches because weight
//! stashing "keeps numerous weight copies, one for each active mini-batch"
//! (§4.4) and every in-flight mini-batch also pins its activations; GPipe's
//! whole design is driven by the same budget ("overcomes the ... memory
//! limitation of GPU", §2.1). This module estimates a partition's
//! per-worker memory footprint and caps the NOAM so a plan actually fits
//! the devices it is placed on.

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;

use crate::partition::Partition;
use crate::schedule::ScheduleKind;

/// Per-worker memory breakdown for one partition (bytes).
#[derive(Debug, Clone)]
pub struct MemoryEstimate {
    /// Worker this estimate is for.
    pub worker: GpuId,
    /// One copy of the stage's weights.
    pub weights: f64,
    /// Stashed weight copies beyond the live one.
    pub stashed_weights: f64,
    /// Optimizer state (momentum + variance, Adam-style: 2x weights).
    pub optimizer: f64,
    /// Activations pinned by in-flight mini-batches passing this stage.
    pub activations: f64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.stashed_weights + self.optimizer + self.activations
    }
}

/// Estimate every worker's footprint for `partition` under `schedule`.
///
/// Replicated stages round-robin mini-batches, so each replica pins
/// `ceil(in_flight / m)` mini-batches' worth of activations; stages store
/// the *sum* of their layers' output activations per pinned mini-batch
/// (inputs to recompute are freed for GPipe, halving the pinned set).
pub fn estimate(
    profile: &ModelProfile,
    partition: &Partition,
    schedule: ScheduleKind,
) -> Vec<MemoryEstimate> {
    debug_assert!(partition.validate(profile.n_layers()).is_ok());
    let versions = schedule.weight_versions(partition.in_flight) as f64;
    let recompute_discount = if schedule.recompute_factor() > 0.0 {
        0.5
    } else {
        1.0
    };
    let mut out = Vec::with_capacity(partition.n_workers());
    for st in &partition.stages {
        let weights = profile.range_params(st.layers.start, st.layers.end);
        let acts_per_unit: f64 = st.layers.clone().map(|j| profile.out_bytes[j]).sum::<f64>()
            / schedule.micro_batches() as f64;
        let m = st.workers.len() as f64;
        let pinned = (partition.in_flight as f64 / m).ceil();
        for &w in &st.workers {
            out.push(MemoryEstimate {
                worker: w,
                weights,
                stashed_weights: (versions - 1.0).max(0.0) * weights,
                optimizer: 2.0 * weights,
                activations: pinned * acts_per_unit * recompute_discount,
            });
        }
    }
    out
}

/// The largest `in_flight` (NOAM) that fits every worker's device memory,
/// never below 1. Returns `None` when even a single in-flight mini-batch
/// exceeds some device (the plan is infeasible).
pub fn max_in_flight(
    profile: &ModelProfile,
    partition: &Partition,
    schedule: ScheduleKind,
    state: &ClusterState,
) -> Option<usize> {
    let mut candidate = partition.clone();
    // Walk down from the requested depth; footprints are monotone in
    // in_flight, so the first fit is maximal among <= requested.
    for n in (1..=partition.in_flight).rev() {
        candidate.in_flight = n;
        let fits = estimate(profile, &candidate, schedule)
            .iter()
            .all(|e| e.total() <= state.memory_bytes(e.worker));
        if fits {
            return Some(n);
        }
    }
    None
}

/// Clamp a partition's NOAM to what fits, in place. Returns `false` when
/// infeasible even at depth 1 (the caller should reject the plan).
pub fn cap_in_flight(
    profile: &ModelProfile,
    partition: &mut Partition,
    schedule: ScheduleKind,
    state: &ClusterState,
) -> bool {
    match max_in_flight(profile, partition, schedule, state) {
        Some(n) => {
            partition.in_flight = n;
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Stage;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::ClusterTopology;
    use ap_models::{bert48, synthetic_uniform, vgg16, ModelProfile};

    fn state() -> ClusterState {
        ClusterState::new(ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0))
    }

    fn two_stage(l: usize, in_flight: usize) -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..l / 2, vec![GpuId(0)]),
                Stage::new(l / 2..l, vec![GpuId(1)]),
            ],
            in_flight,
        }
    }

    #[test]
    fn small_models_fit_and_vgg_activations_bite() {
        // A small synthetic model fits at full depth...
        let small = synthetic_uniform(8, 1e9, 1e6, 4e6);
        let sp = ModelProfile::with_batch(&small, 32);
        let p = two_stage(8, 6);
        let st = state();
        assert_eq!(
            max_in_flight(&sp, &p, ScheduleKind::PipeDreamAsync, &st),
            Some(6)
        );
        // ...while VGG16 at batch 64 (an 822 MB conv1 activation per
        // mini-batch) gets its stash depth trimmed on a 16 GB P100.
        let profile = ModelProfile::of(&vgg16());
        let p = two_stage(profile.n_layers(), 6);
        let n = max_in_flight(&profile, &p, ScheduleKind::PipeDreamAsync, &st).unwrap();
        assert!((1..=6).contains(&n));
        assert!(n < 6, "expected activation pressure to trim the stash");
    }

    #[test]
    fn stashing_multiplies_weight_memory() {
        let profile = ModelProfile::of(&vgg16());
        let p = two_stage(profile.n_layers(), 8);
        let async_est = estimate(&profile, &p, ScheduleKind::PipeDreamAsync);
        let sync_est = estimate(&profile, &p, ScheduleKind::Dapple { micro_batches: 8 });
        // 8 stashed versions vs 1.
        assert!(async_est[0].stashed_weights > 5.0 * async_est[0].weights);
        assert_eq!(sync_est[0].stashed_weights, 0.0);
    }

    #[test]
    fn gpipe_recompute_halves_pinned_activations() {
        let profile = ModelProfile::of(&vgg16());
        let p = two_stage(profile.n_layers(), 8);
        let gpipe = estimate(&profile, &p, ScheduleKind::GPipe { micro_batches: 8 });
        let dapple = estimate(&profile, &p, ScheduleKind::Dapple { micro_batches: 8 });
        assert!((gpipe[0].activations - 0.5 * dapple[0].activations).abs() < 1.0);
    }

    #[test]
    fn deep_stashing_of_huge_models_gets_capped() {
        // BERT-48 on 2 GPUs with deep stashing: ~1.2 GB of weights per
        // stage x 20 versions + optimizer blows past 16 GB.
        let profile = ModelProfile::of(&bert48());
        let mut p = two_stage(profile.n_layers(), 20);
        let st = state();
        let capped = max_in_flight(&profile, &p, ScheduleKind::PipeDreamAsync, &st)
            .expect("feasible at low depth");
        assert!(capped < 20, "got {capped}");
        assert!(cap_in_flight(
            &profile,
            &mut p,
            ScheduleKind::PipeDreamAsync,
            &st
        ));
        assert_eq!(p.in_flight, capped);
    }

    #[test]
    fn replication_spreads_activation_pinning() {
        let model = synthetic_uniform(8, 1e9, 8e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let single = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 8,
        };
        let replicated = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0), GpuId(2)]),
                Stage::new(4..8, vec![GpuId(1), GpuId(3)]),
            ],
            in_flight: 8,
        };
        let a = estimate(&profile, &single, ScheduleKind::PipeDreamAsync);
        let b = estimate(&profile, &replicated, ScheduleKind::PipeDreamAsync);
        assert!(b[0].activations < a[0].activations);
    }

    #[test]
    fn infeasible_plan_is_reported() {
        // A fictitious giant: 80 GB of parameters on one 16 GB card.
        let model = synthetic_uniform(4, 1e9, 1e6, 20e9);
        let profile = ModelProfile::with_batch(&model, 8);
        let p = Partition::single_stage(4, vec![GpuId(0)]);
        assert_eq!(
            max_in_flight(&profile, &p, ScheduleKind::PipeDreamAsync, &state()),
            None
        );
    }
}
