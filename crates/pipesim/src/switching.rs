//! State-switching cost models (§4.4).
//!
//! Applying a new work partition reassigns layers between workers. The
//! straw-man pauses training: drain the in-flight mini-batches, move the
//! weights (every stashed version), restart and re-fill the pipeline
//! (Figure 2's startup state all over again). AutoPipe instead migrates
//! layer by layer, "migrating the weight copy of later active mini-batch
//! first", so the pipeline keeps flowing and only the two affected workers
//! can stall — and only when a migration outruns the slack the in-flight
//! mini-batches provide.

use ap_cluster::{ClusterState, GpuId};
use ap_models::ModelProfile;

use crate::partition::Partition;
use crate::schedule::ScheduleKind;
use crate::sync::worker_bandwidth;

/// Fixed software overhead per layer migrated ("the cost of making
/// numerous PCIe calls to send the data", §4.4).
pub const PER_LAYER_CALL_OVERHEAD: f64 = 50e-6;

/// What has to move to go from one partition to another.
#[derive(Debug, Clone)]
pub struct SwitchPlan {
    /// Layers whose owning worker set changes.
    pub moved_layers: Vec<usize>,
    /// Workers whose task assignment changes.
    pub affected_workers: Vec<GpuId>,
    /// Total bytes to migrate: parameters of moved layers times the number
    /// of stashed weight versions.
    pub transfer_bytes: f64,
    /// Stashed weight copies per moved layer under the outgoing schedule
    /// (one per active mini-batch for async schedules, one for flush
    /// schedules).
    pub stashed_versions: usize,
}

/// One step of a fine-grained migration: move stashed weight copy
/// `version` of `layer` to its new owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStep {
    /// The layer being migrated.
    pub layer: usize,
    /// Weight-stash version index, `0..stashed_versions`; higher versions
    /// serve later-injected (more recently active) mini-batches.
    pub version: usize,
}

impl SwitchPlan {
    /// Diff two partitions over the same model.
    pub fn between(
        old: &Partition,
        new: &Partition,
        profile: &ModelProfile,
        schedule: ScheduleKind,
    ) -> SwitchPlan {
        let n_layers = profile.n_layers();
        debug_assert!(old.validate(n_layers).is_ok() && new.validate(n_layers).is_ok());
        let versions = schedule.weight_versions(old.in_flight) as f64;
        let mut moved = Vec::new();
        let mut bytes = 0.0;
        let mut affected = std::collections::BTreeSet::new();
        for layer in 0..n_layers {
            // Invariant: a partition that passes `validate(n_layers)` covers
            // `0..n_layers` with no gaps (PartitionError::{Gap, Coverage}
            // otherwise), so every layer resolves to a stage.
            let so = old.stage_of_layer(layer).expect("old covers model");
            let sn = new.stage_of_layer(layer).expect("new covers model");
            let wo = &old.stages[so].workers;
            let wn = &new.stages[sn].workers;
            if wo != wn {
                moved.push(layer);
                bytes += profile.param_bytes[layer] * versions;
                affected.extend(wo.iter().copied());
                affected.extend(wn.iter().copied());
            }
        }
        SwitchPlan {
            moved_layers: moved,
            affected_workers: affected.into_iter().collect(),
            transfer_bytes: bytes,
            stashed_versions: versions as usize,
        }
    }

    /// True when nothing moves (identical assignments).
    pub fn is_noop(&self) -> bool {
        self.moved_layers.is_empty()
    }

    /// The §4.4 migration order: layer by layer (input side first), and
    /// within each layer "migrating the weight copy of later active
    /// mini-batch first" — the stashed copy serving the most recently
    /// injected mini-batch (highest version) moves before older copies, so
    /// the weights needed soonest on the new owner arrive first and the
    /// in-flight mini-batches can keep draining on the old assignment.
    pub fn migration_order(&self) -> Vec<MigrationStep> {
        let mut steps = Vec::with_capacity(self.moved_layers.len() * self.stashed_versions);
        for &layer in &self.moved_layers {
            for version in (0..self.stashed_versions).rev() {
                steps.push(MigrationStep { layer, version });
            }
        }
        steps
    }

    /// The rollback order when a migration aborts (a source or destination
    /// worker fails) after `completed` steps of
    /// [`SwitchPlan::migration_order`] have executed: the dual of the §4.4
    /// forward order. Touched layers revert in *reverse* migration order
    /// (the most recently started layer first, unwinding the pipeline from
    /// the point of failure back), and within each layer the later active
    /// mini-batch's copy reverts first — exactly as it moved, so the stash
    /// versions the draining mini-batches need soonest are restored first.
    pub fn rollback_order(&self, completed: usize) -> Vec<MigrationStep> {
        let steps = self.migration_order();
        let done = &steps[..completed.min(steps.len())];
        let mut layers: Vec<usize> = Vec::new();
        for s in done {
            if layers.last() != Some(&s.layer) {
                layers.push(s.layer);
            }
        }
        let mut out = Vec::with_capacity(done.len());
        for &layer in layers.iter().rev() {
            // The completed prefix already lists each layer's versions in
            // descending order (later active mini-batch first).
            out.extend(done.iter().filter(|s| s.layer == layer).copied());
        }
        out
    }

    /// Seconds to push the weights over the network and PCIe.
    pub fn raw_transfer_time(&self, state: &ClusterState) -> f64 {
        if self.is_noop() {
            return 0.0;
        }
        let net_bw = self
            .affected_workers
            .iter()
            .map(|&w| worker_bandwidth(w, state))
            .fold(f64::INFINITY, f64::min);
        let pcie = self
            .affected_workers
            .iter()
            .map(|&w| state.topology.gpu(w).kind.pcie_bytes_per_sec())
            .fold(f64::INFINITY, f64::min);
        self.transfer_bytes / net_bw
            + self.transfer_bytes / pcie
            + PER_LAYER_CALL_OVERHEAD * self.moved_layers.len() as f64
    }
}

/// Cost of the straw-man stop-and-restart switch: drain every in-flight
/// mini-batch, transfer while idle, then pay the pipeline fill again.
pub fn stop_restart_cost(
    plan: &SwitchPlan,
    iteration_time: f64,
    partition: &Partition,
    state: &ClusterState,
) -> f64 {
    if plan.is_noop() {
        return 0.0;
    }
    let drain = partition.in_flight as f64 * iteration_time;
    let transfer = plan.raw_transfer_time(state);
    let refill = (partition.n_stages().saturating_sub(1)) as f64 * iteration_time;
    drain + transfer + refill
}

/// Cost of AutoPipe's fine-grained layer-by-layer switch: migration
/// overlaps the pipeline's in-flight slack; only the residual stalls the
/// two affected workers.
pub fn fine_grained_cost(
    plan: &SwitchPlan,
    iteration_time: f64,
    partition: &Partition,
    state: &ClusterState,
) -> f64 {
    if plan.is_noop() {
        return 0.0;
    }
    let transfer = plan.raw_transfer_time(state);
    // Weight stashing keeps (in_flight - 1) mini-batches of work buffered
    // ahead of the affected stages; migration hides behind it.
    let slack = (partition.in_flight.saturating_sub(1)) as f64 * iteration_time;
    let stall = (transfer - slack).max(0.0);
    // Affected workers re-prime their stage once: one stage's share of an
    // iteration, not a full pipeline refill.
    let reprime = iteration_time / partition.n_stages() as f64;
    stall + reprime + PER_LAYER_CALL_OVERHEAD * plan.moved_layers.len() as f64
}

/// Cost of aborting a fine-grained migration `progress` (in `[0, 1]`) of
/// the way through and rolling it back: the copies made so far move back
/// over the same links, the already-touched layers pay their call overhead
/// again, and the affected workers re-prime once.
pub fn abort_rollback_cost(
    plan: &SwitchPlan,
    iteration_time: f64,
    partition: &Partition,
    state: &ClusterState,
    progress: f64,
) -> f64 {
    if plan.is_noop() {
        return 0.0;
    }
    let p = progress.clamp(0.0, 1.0);
    let undo = p * plan.raw_transfer_time(state);
    let touched = (p * plan.moved_layers.len() as f64).ceil();
    let reprime = iteration_time / partition.n_stages() as f64;
    undo + reprime + PER_LAYER_CALL_OVERHEAD * touched
}

/// Price of recovering from a mid-migration failure: the cheaper of
/// rolling the partial migration back ([`abort_rollback_cost`]) and
/// abandoning fine-grained switching for a stop-restart from wherever the
/// migration stopped ([`stop_restart_cost`]). Both outcomes are priced so
/// the controller's retry policy can reason about the worst case.
pub fn abort_recovery_cost(
    plan: &SwitchPlan,
    iteration_time: f64,
    partition: &Partition,
    state: &ClusterState,
    progress: f64,
) -> f64 {
    let rollback = abort_rollback_cost(plan, iteration_time, partition, state, progress);
    let restart = stop_restart_cost(plan, iteration_time, partition, state);
    rollback.min(restart)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Stage;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::ClusterTopology;
    use ap_models::{synthetic_uniform, ModelProfile};

    fn setup() -> (ClusterState, ModelProfile) {
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 25.0);
        let model = synthetic_uniform(8, 1e9, 4e6, 16e6);
        (
            ClusterState::new(topo),
            ModelProfile::with_batch(&model, 32),
        )
    }

    fn part(split: usize) -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..split, vec![GpuId(0)]),
                Stage::new(split..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        }
    }

    #[test]
    fn identical_partitions_are_noop() {
        let (st, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(4), &p, ScheduleKind::PipeDreamAsync);
        assert!(plan.is_noop());
        assert_eq!(stop_restart_cost(&plan, 0.1, &part(4), &st), 0.0);
        assert_eq!(fine_grained_cost(&plan, 0.1, &part(4), &st), 0.0);
    }

    #[test]
    fn boundary_shift_moves_exactly_the_shifted_layers() {
        let (_, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(6), &p, ScheduleKind::PipeDreamAsync);
        assert_eq!(plan.moved_layers, vec![4, 5]);
        assert_eq!(plan.affected_workers, vec![GpuId(0), GpuId(1)]);
        // 2 layers x 16 MB params x 2 stashed versions.
        assert!((plan.transfer_bytes - 2.0 * 16e6 * 2.0).abs() < 1.0);
    }

    #[test]
    fn stashed_versions_multiply_traffic() {
        let (_, p) = setup();
        let a = SwitchPlan::between(&part(4), &part(5), &p, ScheduleKind::PipeDreamAsync);
        let b = SwitchPlan::between(
            &part(4),
            &part(5),
            &p,
            ScheduleKind::Dapple { micro_batches: 4 },
        );
        // Async stashes in_flight=2 versions, sync keeps 1.
        assert!((a.transfer_bytes / b.transfer_bytes - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fine_grained_is_much_cheaper_than_stop_restart() {
        let (st, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(5), &p, ScheduleKind::PipeDreamAsync);
        let iter = 0.2;
        let naive = stop_restart_cost(&plan, iter, &part(4), &st);
        let fine = fine_grained_cost(&plan, iter, &part(4), &st);
        assert!(
            fine < naive / 3.0,
            "fine-grained {fine} should be well below stop-restart {naive}"
        );
        // Stop-restart always pays at least drain + refill.
        assert!(naive >= 3.0 * iter);
    }

    #[test]
    fn large_migrations_eventually_stall_even_fine_grained() {
        let (st, _) = setup();
        let model = synthetic_uniform(8, 1e9, 4e6, 4e9); // 4 GB per layer
        let p = ModelProfile::with_batch(&model, 32);
        let plan = SwitchPlan::between(&part(4), &part(6), &p, ScheduleKind::PipeDreamAsync);
        let fine = fine_grained_cost(&plan, 0.05, &part(4), &st);
        // 16 GB over ~3 GB/s of 25 Gbps: seconds of stall remain.
        assert!(fine > 1.0, "huge weights must stall: {fine}");
    }

    /// §4.4 pinning test: layer-by-layer migration follows the weight
    /// stash — for every moved layer, the copy of the *later* active
    /// mini-batch (the newest stashed version) moves first, and layers go
    /// out in pipeline order.
    #[test]
    fn migration_order_moves_later_minibatch_copy_first() {
        let (_, p) = setup();
        // Boundary shift 4 -> 6 moves layers 4 and 5; PipeDreamAsync with
        // in_flight=2 stashes 2 weight versions per layer.
        let plan = SwitchPlan::between(&part(4), &part(6), &p, ScheduleKind::PipeDreamAsync);
        assert_eq!(plan.stashed_versions, 2);
        let steps = plan.migration_order();
        assert_eq!(
            steps,
            vec![
                MigrationStep {
                    layer: 4,
                    version: 1
                },
                MigrationStep {
                    layer: 4,
                    version: 0
                },
                MigrationStep {
                    layer: 5,
                    version: 1
                },
                MigrationStep {
                    layer: 5,
                    version: 0
                },
            ]
        );
        // Within every layer, versions are strictly descending (later
        // active mini-batch's copy first), whatever the stash depth.
        let deep = Partition {
            in_flight: 5,
            ..part(4)
        };
        let plan = SwitchPlan::between(&deep, &part(6), &p, ScheduleKind::PipeDreamAsync);
        assert_eq!(plan.stashed_versions, 5);
        for pair in plan.migration_order().windows(2) {
            if pair[0].layer == pair[1].layer {
                assert!(pair[0].version > pair[1].version, "{pair:?}");
            }
        }
        // Flush schedules keep a single version: one step per moved layer.
        let flush = SwitchPlan::between(
            &part(4),
            &part(6),
            &p,
            ScheduleKind::Dapple { micro_batches: 4 },
        );
        assert_eq!(flush.stashed_versions, 1);
        assert_eq!(flush.migration_order().len(), flush.moved_layers.len());
        // A no-op plan migrates nothing.
        assert!(
            SwitchPlan::between(&part(4), &part(4), &p, ScheduleKind::PipeDreamAsync)
                .migration_order()
                .is_empty()
        );
    }

    /// Rollback pinning test: the dual of the §4.4 forward order — layers
    /// unwind most-recently-migrated first, and within each layer the
    /// later active mini-batch's copy (highest stash version) reverts
    /// first.
    #[test]
    fn rollback_order_is_the_dual_of_the_forward_order() {
        let (_, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(6), &p, ScheduleKind::PipeDreamAsync);
        // Forward order: [4v1, 4v0, 5v1, 5v0]. Abort after 3 steps: layer
        // 5 (only v1 copied) unwinds first, then layer 4's two copies,
        // later mini-batch's copy first within each layer.
        let rb = plan.rollback_order(3);
        assert_eq!(
            rb,
            vec![
                MigrationStep {
                    layer: 5,
                    version: 1
                },
                MigrationStep {
                    layer: 4,
                    version: 1
                },
                MigrationStep {
                    layer: 4,
                    version: 0
                },
            ]
        );
        // Versions descend within every layer, whatever the abort point.
        for completed in 0..=plan.migration_order().len() {
            let rb = plan.rollback_order(completed);
            assert_eq!(rb.len(), completed);
            for pair in rb.windows(2) {
                if pair[0].layer == pair[1].layer {
                    assert!(pair[0].version > pair[1].version, "{pair:?}");
                }
            }
        }
        // Nothing completed -> nothing to undo; over-reporting saturates.
        assert!(plan.rollback_order(0).is_empty());
        assert_eq!(
            plan.rollback_order(usize::MAX).len(),
            plan.migration_order().len()
        );
    }

    #[test]
    fn abort_costs_grow_with_progress_and_never_exceed_stop_restart() {
        let (st, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(6), &p, ScheduleKind::PipeDreamAsync);
        let iter = 0.2;
        let early = abort_rollback_cost(&plan, iter, &part(4), &st, 0.1);
        let late = abort_rollback_cost(&plan, iter, &part(4), &st, 0.9);
        assert!(late > early, "undoing more copies must cost more");
        let recovery = abort_recovery_cost(&plan, iter, &part(4), &st, 0.9);
        let restart = stop_restart_cost(&plan, iter, &part(4), &st);
        assert!(recovery <= restart + 1e-12);
        assert!(recovery <= late + 1e-12);
        // A no-op plan aborts for free.
        let noop = SwitchPlan::between(&part(4), &part(4), &p, ScheduleKind::PipeDreamAsync);
        assert_eq!(abort_rollback_cost(&noop, iter, &part(4), &st, 0.5), 0.0);
    }

    #[test]
    fn raw_transfer_time_scales_with_bandwidth() {
        let (_, p) = setup();
        let plan = SwitchPlan::between(&part(4), &part(5), &p, ScheduleKind::PipeDreamAsync);
        let slow = ClusterState::new(ClusterTopology::single_switch(4, 1, GpuKind::P100, 10.0));
        let fast = ClusterState::new(ClusterTopology::single_switch(4, 1, GpuKind::P100, 100.0));
        assert!(plan.raw_transfer_time(&slow) > plan.raw_transfer_time(&fast));
    }
}
