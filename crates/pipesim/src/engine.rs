//! Discrete-event simulation of pipelined training.
//!
//! A fluid-flow event engine: compute tasks drain FLOPs at the worker's
//! current effective rate, transfers drain bytes at max-min fair-share
//! rates over the live link capacities. Rates are re-evaluated at every
//! completion and at every resource-timeline event, so mid-transfer
//! bandwidth drops and mid-iteration GPU contention behave like they do on
//! a real cluster.
//!
//! The engine executes:
//!
//! * **asynchronous 1F1B** (PipeDream / PipeDream-2BW): mini-batches are
//!   injected while fewer than `in_flight` are active; each worker prefers
//!   the oldest ready backward task, then the oldest forward (the 1F1B
//!   rule); weight versions bump per backward pass and staleness is
//!   tracked;
//! * **synchronous flush schedules** (GPipe / DAPPLE / Chimera): each
//!   mini-batch becomes `m` micro-batch units, a flush barrier runs the
//!   data-parallel gradient sync, then the next mini-batch starts.
//!
//! Per-worker busy segments are recorded for utilization plots (Figure 2),
//! and per-iteration completion times for the speed-vs-iteration curves
//! (Figures 9 and 10).

use std::collections::{BTreeSet, HashMap};

use ap_cluster::{max_min_fair_rates, ClusterState, EventKind, Flow, GpuId, ResourceTimeline};
use ap_models::ModelProfile;

use crate::calibration::Calibration;
use crate::framework::Framework;
use crate::partition::{Partition, PartitionError};
use crate::schedule::ScheduleKind;
use crate::sync::SyncScheme;

/// Why a simulation run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The run was configured with a structurally invalid partition.
    InvalidPartition(PartitionError),
    /// Nothing is runnable and no future resource event can unblock the
    /// pipeline: the configuration cannot make progress.
    Deadlock {
        /// Simulated time at which progress stopped.
        at: f64,
        /// Mini-batches completed before the deadlock.
        done: u64,
        /// Mini-batches that were requested.
        target: u64,
    },
    /// The event loop exceeded its step budget — the run is degenerate
    /// (e.g. a pathological rate collapse producing infinitesimal steps).
    StepBudgetExhausted {
        /// Steps taken before giving up.
        steps: usize,
    },
    /// A pipeline stage lost every worker to fail-stop failures and no
    /// repartition restored it: the job cannot continue on the current
    /// assignment. Controlled runs get a chance to repartition before this
    /// fires; uncontrolled runs surface it directly.
    WorkerLost {
        /// The stage with zero surviving workers (current partition).
        stage: usize,
        /// Simulated time at which the loss became terminal.
        at: f64,
        /// Mini-batches completed before the loss.
        done: u64,
        /// Mini-batches that were requested.
        target: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidPartition(e) => write!(f, "invalid partition: {e}"),
            SimError::Deadlock { at, done, target } => {
                write!(
                    f,
                    "deadlock at t={at} with {done} / {target} iterations done"
                )
            }
            SimError::StepBudgetExhausted { steps } => {
                write!(f, "engine step budget exhausted after {steps} steps")
            }
            SimError::WorkerLost {
                stage,
                at,
                done,
                target,
            } => {
                write!(
                    f,
                    "stage {stage} lost all workers at t={at} with {done} / {target} iterations done"
                )
            }
        }
    }
}

impl From<PartitionError> for SimError {
    fn from(e: PartitionError) -> Self {
        SimError::InvalidPartition(e)
    }
}

impl std::error::Error for SimError {}

/// Forward or backward work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Forward pass.
    Forward,
    /// Backward pass (includes gradient sync time on replicated stages).
    Backward,
}

/// One busy interval of one worker, for timeline/utilization plots.
#[derive(Debug, Clone)]
pub struct TimelineSegment {
    /// Global worker index (position in `Partition::all_workers`).
    pub worker: usize,
    /// Work unit (mini-batch id for async, micro-batch id for sync).
    pub unit: u64,
    /// Forward or backward.
    pub kind: WorkKind,
    /// Segment start, seconds.
    pub start: f64,
    /// Segment end, seconds.
    pub end: f64,
}

/// A fault-path incident the engine handled during a run. These are the
/// engine-side half of the recovery story: the controller folds them into
/// its decision journal (and the chrome trace) so every fault, rollback
/// and restart is auditable.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRecord {
    /// A worker of this job died fail-stop.
    WorkerFailed {
        /// The dead worker.
        worker: GpuId,
        /// When it died, seconds.
        at: f64,
    },
    /// A previously failed worker came back (cold — it rejoins the
    /// pipeline only when a later repartition assigns it work).
    WorkerRecovered {
        /// The recovered worker.
        worker: GpuId,
        /// When it recovered, seconds.
        at: f64,
    },
    /// A worker involved in an in-progress fine-grained migration died;
    /// the partial migration was rolled back to the pre-switch partition
    /// (completed steps revert in reverse stash-version order — the later
    /// active mini-batch's copy first, the dual of the §4.4 forward
    /// order).
    MigrationRolledBack {
        /// The worker whose death aborted the migration.
        worker: GpuId,
        /// When the rollback happened, seconds.
        at: f64,
        /// Fraction of the migration window that had elapsed in `[0, 1)`.
        progress: f64,
        /// Stall charged to undo the partially copied state.
        rollback_seconds: f64,
    },
    /// In-flight mini-batches stranded by a failure (their pipeline stage
    /// had no surviving replica) were restarted from stage 0 under the
    /// current partition — work is re-done, never silently dropped.
    UnitsRestarted {
        /// How many mini-batches restarted.
        count: usize,
        /// When, seconds.
        at: f64,
    },
    /// The controller proposed a switch the engine could not apply (e.g. a
    /// partition naming a worker outside the job); the switch was ignored
    /// rather than panicking mid-run.
    SwitchRejected {
        /// When, seconds.
        at: f64,
    },
}

/// Completion record of one mini-batch.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Mini-batch index (0-based).
    pub iteration: u64,
    /// Wall-clock completion time, seconds.
    pub finish: f64,
}

/// Aggregated simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Mini-batch completions in order.
    pub iterations: Vec<IterationRecord>,
    /// Samples per mini-batch (the configured batch size).
    pub batch: usize,
    /// Per-worker busy seconds.
    pub busy: Vec<f64>,
    /// Total simulated seconds.
    pub makespan: f64,
    /// Worker busy segments (empty unless timeline recording was on).
    pub segments: Vec<TimelineSegment>,
    /// Mean weight staleness observed at stage 0 (async schedules only).
    pub mean_staleness: f64,
    /// Fault-path incidents handled during the run, in time order.
    pub faults: Vec<FaultRecord>,
}

impl SimResult {
    /// Overall throughput in samples/sec across the whole run.
    pub fn throughput(&self) -> f64 {
        if self.iterations.is_empty() || self.makespan == 0.0 {
            return 0.0;
        }
        self.iterations.len() as f64 * self.batch as f64 / self.makespan
    }

    /// Steady-state throughput, skipping the first `skip` iterations
    /// (pipeline fill).
    ///
    /// Replicated stages complete mini-batches in near-simultaneous
    /// *waves*; naively dividing record count by elapsed time over-counts
    /// partial waves at the window edges. Records are therefore grouped by
    /// distinct completion instants, and the rate counts whole groups
    /// after the first.
    pub fn steady_throughput(&self, skip: usize) -> f64 {
        if self.iterations.len() <= skip + 1 {
            return self.throughput();
        }
        let window = &self.iterations[skip..];
        let mut groups: Vec<(f64, usize)> = Vec::new();
        for rec in window {
            match groups.last_mut() {
                Some((t, c)) if (rec.finish - *t).abs() < 1e-9 => *c += 1,
                _ => groups.push((rec.finish, 1)),
            }
        }
        let (Some(first), Some(last)) = (groups.first(), groups.last()) else {
            return self.throughput();
        };
        if groups.len() < 2 {
            return self.throughput();
        }
        let span = last.0 - first.0;
        let counted: usize = groups[1..].iter().map(|&(_, c)| c).sum();
        counted as f64 * self.batch as f64 / span.max(1e-12)
    }

    /// Per-iteration instantaneous speed: `(iteration, samples/sec)`
    /// smoothed over a window of completions.
    pub fn speed_series(&self, window: usize) -> Vec<(u64, f64)> {
        let w = window.max(1);
        let mut out = Vec::new();
        for i in w..self.iterations.len() {
            let dt = self.iterations[i].finish - self.iterations[i - w].finish;
            if dt > 0.0 {
                out.push((
                    self.iterations[i].iteration,
                    w as f64 * self.batch as f64 / dt,
                ));
            }
        }
        out
    }

    /// Mean utilization of each worker over the makespan.
    pub fn utilization(&self) -> Vec<f64> {
        self.busy
            .iter()
            .map(|&b| {
                if self.makespan > 0.0 {
                    b / self.makespan
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Gradient sync scheme for replicated stages.
    pub scheme: SyncScheme,
    /// Framework constant factors.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Record per-worker busy segments (costs memory).
    pub record_timeline: bool,
    /// Fitted runtime overheads (codec, stash, dispatch) charged as
    /// extra task time; `None` simulates the raw compute/wire model.
    pub calibration: Option<Calibration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
            record_timeline: false,
            calibration: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Task {
    unit: u64,
    stage: usize,
    kind: WorkKind,
}

#[derive(Debug)]
enum Unlock {
    /// A pipeline task becomes ready.
    Task(Task),
    /// Worker `usize` finished pushing its gradient update; its next
    /// backward pass may start.
    SyncDone(usize),
}

#[derive(Debug)]
enum Activity {
    Compute {
        worker: usize,
        task: Task,
        remaining_flops: f64,
        started: f64,
    },
    Transfer {
        flow: Flow,
        remaining_bytes: f64,
        /// What completion unblocks.
        unlocks: Unlock,
    },
    /// Synchronous-schedule flush barrier (gradient sync), fixed duration.
    Flush { remaining_seconds: f64 },
    /// A pure time delay (e.g. a fine-grained migration stall); completion
    /// has no effect beyond advancing the clock so frozen workers re-check.
    Timer { remaining_seconds: f64 },
}

/// One partition regime during a run. Units carry the epoch that was
/// current when they were injected, so in-flight mini-batches drain on the
/// old assignment while new ones use the new — AutoPipe's fine-grained
/// switching semantics (§4.4).
struct Epoch {
    /// First unit id owned by this epoch.
    start_unit: u64,
    partition: Partition,
    stage_workers: Vec<Vec<usize>>, // stage -> global worker indices
    stage_fwd_flops: Vec<f64>,      // per unit
    stage_bwd_flops: Vec<f64>,      // per unit, incl. recompute
}

impl Epoch {
    fn build(
        partition: Partition,
        profile: &ModelProfile,
        micro: u64,
        recompute: f64,
        worker_index: &HashMap<GpuId, usize>,
        start_unit: u64,
    ) -> Self {
        let mut stage_workers = Vec::with_capacity(partition.n_stages());
        for st in &partition.stages {
            stage_workers.push(
                st.workers
                    .iter()
                    // Invariant: `worker_index` is built from the initial
                    // partition and `switch_partition` rejects (does not
                    // apply) any proposal naming a worker outside it, so
                    // every partition that reaches here resolves fully.
                    .map(|g| *worker_index.get(g).expect("worker set must be preserved"))
                    .collect(),
            );
        }
        let mut stage_fwd = Vec::new();
        let mut stage_bwd = Vec::new();
        for st in &partition.stages {
            let f: f64 = profile.eff_flops_fwd[st.layers.clone()].iter().sum();
            let b: f64 = profile.eff_flops_bwd[st.layers.clone()].iter().sum();
            stage_fwd.push(f / micro as f64);
            stage_bwd.push((b + recompute * f) / micro as f64);
        }
        Epoch {
            start_unit,
            partition,
            stage_workers,
            stage_fwd_flops: stage_fwd,
            stage_bwd_flops: stage_bwd,
        }
    }
}

/// An in-progress migration window. While the clock is inside it, a
/// fail-stop death of an affected worker aborts the switch: the completed
/// migration steps are undone in reverse stash-version order and the
/// pre-switch partition is reinstated.
#[derive(Debug, Clone)]
struct ActiveMigration {
    /// The pre-switch partition (the rollback target).
    from: Partition,
    /// First unit injected under the new (to-be-aborted) epoch.
    start_unit: u64,
    /// Window start, seconds.
    started: f64,
    /// Window end (start + migration stall), seconds.
    ends: f64,
    /// Global worker indices whose assignment the switch changes.
    affected: Vec<usize>,
}

/// The simulator.
pub struct Engine<'a> {
    profile: &'a ModelProfile,
    cfg: EngineConfig,
    state: ClusterState,
    resources: ResourceTimeline,
    res_cursor: f64,

    // Static lookups.
    workers: Vec<GpuId>,
    worker_index: HashMap<GpuId, usize>,
    /// Stage owning each global worker index in the initial partition
    /// (exposed for diagnostics).
    pub worker_stage: Vec<usize>,
    /// Partition regimes, oldest first; the last is current.
    epochs: Vec<Epoch>,
    micro: u64,

    // Dynamic state.
    now: f64,
    ready: Vec<BTreeSet<(u8, u64, usize)>>, // per worker: (0=B/1=F, unit, stage)
    activities: Vec<Activity>,
    worker_busy_flag: Vec<bool>,
    /// Worker's previous gradient sync still in flight (its next backward
    /// pass is gated until it lands).
    sync_busy: Vec<bool>,
    /// Workers frozen until a migration stall elapses.
    ready_after: Vec<f64>,
    injected: u64,
    completed_units: u64,
    versions: Vec<u64>,
    fwd_versions: HashMap<(u64, usize), u64>,
    staleness_sum: f64,
    staleness_n: u64,
    busy: Vec<f64>,
    segments: Vec<TimelineSegment>,
    iterations: Vec<IterationRecord>,
    // Sync-schedule bookkeeping.
    sync_iteration: u64,
    sync_pending_b: u64,
    // Fault tolerance.
    /// Per-worker fail-stop flag (index parallel to `workers`).
    dead: Vec<bool>,
    /// In-flight units whose pipeline stage lost every replica; they
    /// restart from stage 0 once a feasible partition is in place.
    stranded: BTreeSet<u64>,
    /// Units re-homed onto a later epoch (restarts); overrides the
    /// injection-time epoch lookup. Epochs are append-only, so stored
    /// indices stay valid.
    epoch_override: HashMap<u64, usize>,
    /// Fault incidents, in time order.
    fault_log: Vec<FaultRecord>,
    /// The migration window currently vulnerable to mid-switch failure.
    active_migration: Option<ActiveMigration>,
    /// A fault was applied since the controller last ran; controlled runs
    /// consult the controller immediately instead of waiting for the
    /// completion cadence.
    fault_consult: bool,
}

impl<'a> Engine<'a> {
    /// Build an engine for one job.
    ///
    /// Fails with a [`PartitionError`] when `partition` is structurally
    /// invalid for `profile` (the caller controls both, so the mismatch is
    /// theirs to handle, not a process abort).
    pub fn new(
        profile: &'a ModelProfile,
        partition: Partition,
        state: ClusterState,
        resources: ResourceTimeline,
        cfg: EngineConfig,
    ) -> Result<Self, PartitionError> {
        partition.validate(profile.n_layers())?;
        let workers = partition.all_workers();
        let worker_index: HashMap<GpuId, usize> =
            workers.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let mut worker_stage = Vec::with_capacity(workers.len());
        for (s, st) in partition.stages.iter().enumerate() {
            for _ in &st.workers {
                worker_stage.push(s);
            }
        }
        let micro = cfg.schedule.micro_batches() as u64;
        let recompute = cfg.schedule.recompute_factor();
        let n_workers = workers.len();
        let n_stages = partition.n_stages();
        let epoch0 = Epoch::build(partition, profile, micro, recompute, &worker_index, 0);
        Ok(Engine {
            profile,
            cfg,
            state,
            resources,
            res_cursor: 0.0,
            workers,
            worker_index,
            worker_stage,
            epochs: vec![epoch0],
            micro,
            now: 0.0,
            ready: vec![BTreeSet::new(); n_workers],
            activities: Vec::new(),
            worker_busy_flag: vec![false; n_workers],
            sync_busy: vec![false; n_workers],
            ready_after: vec![0.0; n_workers],
            injected: 0,
            completed_units: 0,
            versions: vec![0; n_stages],
            fwd_versions: HashMap::new(),
            staleness_sum: 0.0,
            staleness_n: 0,
            busy: vec![0.0; n_workers],
            segments: Vec::new(),
            iterations: Vec::new(),
            sync_iteration: 0,
            sync_pending_b: 0,
            dead: vec![false; n_workers],
            stranded: BTreeSet::new(),
            epoch_override: HashMap::new(),
            fault_log: Vec::new(),
            active_migration: None,
            fault_consult: false,
        })
    }

    fn n_stages(&self) -> usize {
        self.current_epoch().partition.n_stages()
    }

    fn current_epoch(&self) -> &Epoch {
        self.epochs.last().expect("at least the initial epoch")
    }

    /// The partition regime a unit runs under: its injection-time epoch,
    /// unless a fault restarted it onto a later one.
    ///
    /// Invariant: `epochs[0].start_unit == 0` and epochs are append-only,
    /// so the reverse scan always finds a regime and stored override
    /// indices never dangle.
    fn epoch_for(&self, unit: u64) -> &Epoch {
        if let Some(&i) = self.epoch_override.get(&unit) {
            return &self.epochs[i];
        }
        self.epochs
            .iter()
            .rev()
            .find(|e| e.start_unit <= unit)
            .expect("epoch 0 starts at unit 0")
    }

    /// Replica (global worker index) owning `unit` in `stage`, or `None`
    /// when the stage has no surviving replica under the unit's epoch.
    fn try_owner(&self, unit: u64, stage: usize) -> Option<usize> {
        let replicas = &self.epoch_for(unit).stage_workers[stage];
        if replicas.is_empty() {
            return None;
        }
        Some(replicas[(unit % replicas.len() as u64) as usize])
    }

    fn compute_rate(&self, worker: usize) -> f64 {
        self.state.effective_flops(self.workers[worker]) * self.cfg.framework.compute_efficiency
    }

    /// Calibrated extra seconds a task occupies its stage thread beyond
    /// layer compute: codec ops on each boundary, the stash snapshot on
    /// forwards, and the fixed dispatch residual (split evenly between
    /// the forward and backward halves). Byte counts are per unit, so
    /// micro-batched schedules pay per-micro-batch codec costs.
    fn task_extra_seconds(&self, task: Task, epoch: &Epoch) -> f64 {
        let Some(c) = self.cfg.calibration else {
            return 0.0;
        };
        let last = epoch.partition.n_stages() - 1;
        let st = &epoch.partition.stages[task.stage];
        let micro = self.micro as f64;
        let in_bytes =
            (task.stage > 0).then(|| self.profile.cut_bytes(st.layers.start - 1) / micro);
        let out_bytes =
            (task.stage < last).then(|| self.profile.cut_bytes(st.layers.end - 1) / micro);
        match task.kind {
            WorkKind::Forward => {
                let stashes = self.cfg.schedule.is_async()
                    && epoch.partition.in_flight > 1
                    && task.stage < last;
                let stash_bytes = if stashes {
                    epoch.partition.stage_param_bytes(task.stage, self.profile)
                } else {
                    0.0
                };
                c.forward_extra_s(in_bytes, out_bytes, stash_bytes)
            }
            WorkKind::Backward => c.backward_extra_s(in_bytes, out_bytes),
        }
    }

    /// Fraction of its nominal rate each in-flight compute task gets
    /// right now. A calibration with `compute_slots > 0` says every
    /// worker in this simulation is really a thread on one host with
    /// that many cores (the setup the calibration was fitted on); when
    /// more tasks are busy than cores exist, the OS scheduler
    /// processor-shares them fairly. The model is work-conserving — a
    /// core freed by a blocked stage immediately speeds up the others —
    /// so a backlogged host sustains exactly `compute_slots`
    /// stage-seconds of occupancy per wall-second, the same capacity
    /// bound the analytic model's `host_capacity_time` folds in. Without
    /// a calibration (cluster simulations, where workers are genuinely
    /// separate devices) every task runs at full rate.
    fn compute_share(&self) -> f64 {
        let Some(c) = self.cfg.calibration else {
            return 1.0;
        };
        if c.compute_slots == 0 {
            return 1.0;
        }
        let busy = self
            .activities
            .iter()
            .filter(|a| matches!(a, Activity::Compute { .. }))
            .count();
        if busy <= c.compute_slots {
            return 1.0;
        }
        c.compute_slots as f64 / busy as f64
    }

    /// Effective FLOPs a task costs on its owner (sync time folded in for
    /// async backward passes at the owner's current rate).
    fn task_flops(&self, task: Task, worker: usize) -> f64 {
        let epoch = self.epoch_for(task.unit);
        let extra = self.task_extra_seconds(task, epoch) * self.compute_rate(worker);
        match task.kind {
            WorkKind::Forward => {
                let mut f = epoch.stage_fwd_flops[task.stage] + extra;
                // Per-iteration framework overhead charged on entry.
                if task.stage == 0 {
                    f += self.cfg.framework.per_iter_overhead / self.micro as f64
                        * self.compute_rate(worker);
                }
                f
            }
            WorkKind::Backward => {
                // Gradient sync is a real network flow launched at
                // completion (see `launch_sync`), not folded time.
                epoch.stage_bwd_flops[task.stage] + extra
            }
        }
    }

    /// Launch this worker's gradient-sync flow for its stage (async
    /// schedules, replicated stages only). PS pushes+pulls through the
    /// server replica's NIC; a ring pass touches every inter-server hop of
    /// the replica ring. Concurrent syncs contend via max-min fair share.
    fn launch_sync(&mut self, worker: usize, stage: usize, unit: u64) {
        let epoch = self.epoch_for(unit);
        let st = &epoch.partition.stages[stage];
        let m = st.workers.len();
        if !self.cfg.schedule.is_async() || m <= 1 {
            return;
        }
        let bytes = epoch.partition.stage_param_bytes(stage, self.profile);
        let me = self.workers[worker];
        let (links, volume) = match self.cfg.scheme {
            SyncScheme::ParameterServer => {
                // Push + pull between this replica and the PS (replica 0).
                let server = st.workers[0];
                (self.state.topology.path(me, server), 2.0 * bytes)
            }
            SyncScheme::RingAllReduce => {
                // One ring pass: every consecutive hop, deduplicated.
                let mut links = Vec::new();
                for i in 0..m {
                    let hop = self
                        .state
                        .topology
                        .path(st.workers[i], st.workers[(i + 1) % m]);
                    for l in hop {
                        if !links.contains(&l) {
                            links.push(l);
                        }
                    }
                }
                (links, 2.0 * (m as f64 - 1.0) / m as f64 * bytes)
            }
        };
        self.sync_busy[worker] = true;
        self.activities.push(Activity::Transfer {
            flow: Flow::elastic(links),
            remaining_bytes: volume.max(1.0),
            unlocks: Unlock::SyncDone(worker),
        });
    }

    fn mark_ready(&mut self, task: Task) {
        let Some(w) = self.try_owner(task.unit, task.stage) else {
            // The stage has no surviving replica: the unit is stranded and
            // will restart from stage 0 once a feasible partition exists.
            self.strand_unit(task.unit);
            return;
        };
        let pri = if task.kind == WorkKind::Backward {
            0
        } else {
            1
        };
        self.ready[w].insert((pri, task.unit, task.stage));
    }

    /// `true` while every stage of the current partition has a surviving
    /// replica (new work can flow end to end).
    fn current_epoch_feasible(&self) -> bool {
        self.current_epoch()
            .stage_workers
            .iter()
            .all(|r| !r.is_empty())
    }

    /// Inject new units while the schedule admits them.
    fn inject(&mut self) {
        // A stage with zero survivors blocks the pipe; injecting would
        // only strand more units. Wait for a repartition.
        if !self.current_epoch_feasible() {
            return;
        }
        if self.cfg.schedule.is_async() {
            let in_flight = self.current_epoch().partition.in_flight as u64;
            while self.injected - self.completed_units < in_flight {
                let u = self.injected;
                self.injected += 1;
                self.mark_ready(Task {
                    unit: u,
                    stage: 0,
                    kind: WorkKind::Forward,
                });
            }
        } else {
            // Sync: inject a full iteration of micro-batches when idle.
            if self.sync_pending_b == 0
                && !self
                    .activities
                    .iter()
                    .any(|a| matches!(a, Activity::Flush { .. }))
            {
                let base = self.sync_iteration * self.micro;
                for i in 0..self.micro {
                    self.mark_ready(Task {
                        unit: base + i,
                        stage: 0,
                        kind: WorkKind::Forward,
                    });
                }
                self.sync_pending_b = self.micro * self.n_stages() as u64;
                self.injected += self.micro;
            }
        }
    }

    /// Give idle workers their best ready task (1F1B: backward first).
    fn dispatch(&mut self) {
        for w in 0..self.workers.len() {
            if self.dead[w] || self.worker_busy_flag[w] || self.now < self.ready_after[w] - 1e-9 {
                continue;
            }
            // 1F1B order (backward first); GPipe instead drains every
            // forward before any backward ("the micro-batches of the same
            // mini-batch pass all GPUs sequentially", §2.1). A backward
            // pass is additionally gated on the worker's previous gradient
            // sync landing.
            let gpipe = matches!(self.cfg.schedule, ScheduleKind::GPipe { .. });
            let pick = if gpipe {
                self.ready[w]
                    .iter()
                    .max_by_key(|&&(pri, unit, _)| (pri, std::cmp::Reverse(unit)))
                    .copied()
            } else {
                self.ready[w]
                    .iter()
                    .find(|&&(pri, _, _)| pri == 1 || !self.sync_busy[w])
                    .copied()
            };
            let Some((pri, unit, stage)) = pick else {
                continue;
            };
            self.ready[w].remove(&(pri, unit, stage));
            let kind = if pri == 0 {
                WorkKind::Backward
            } else {
                WorkKind::Forward
            };
            let task = Task { unit, stage, kind };
            if kind == WorkKind::Forward && self.cfg.schedule.is_async() {
                self.fwd_versions
                    .insert((unit, stage), self.versions[stage]);
            }
            let flops = self.task_flops(task, w);
            self.worker_busy_flag[w] = true;
            self.activities.push(Activity::Compute {
                worker: w,
                task,
                remaining_flops: flops,
                started: self.now,
            });
        }
    }

    /// Current transfer rates via max-min fair share.
    fn transfer_rates(&self) -> Vec<f64> {
        let flows: Vec<Flow> = self
            .activities
            .iter()
            .filter_map(|a| match a {
                Activity::Transfer { flow, .. } => Some(flow.clone()),
                _ => None,
            })
            .collect();
        let comm_eff = self.cfg.framework.comm_efficiency;
        max_min_fair_rates(
            &flows,
            |l| self.state.available_capacity(l) * comm_eff,
            self.state.topology.local_bytes_per_sec,
        )
    }

    /// Launch the transfer that feeds `unlocks` from `from_worker`.
    fn launch_transfer(&mut self, from_worker: usize, unlocks: Task, bytes: f64) {
        let Some(to_worker) = self.try_owner(unlocks.unit, unlocks.stage) else {
            self.strand_unit(unlocks.unit);
            return;
        };
        let links = self
            .state
            .topology
            .path(self.workers[from_worker], self.workers[to_worker]);
        self.activities.push(Activity::Transfer {
            flow: Flow::elastic(links),
            remaining_bytes: bytes,
            unlocks: Unlock::Task(unlocks),
        });
    }

    fn on_compute_done(&mut self, worker: usize, task: Task, started: f64) {
        self.worker_busy_flag[worker] = false;
        self.busy[worker] += self.now - started;
        if self.cfg.record_timeline {
            self.segments.push(TimelineSegment {
                worker,
                unit: task.unit,
                kind: task.kind,
                start: started,
                end: self.now,
            });
        }
        let last_stage = self.epoch_for(task.unit).partition.n_stages() - 1;
        match task.kind {
            WorkKind::Forward => {
                if task.stage == last_stage {
                    // Turn around immediately: backward on the same worker.
                    self.mark_ready(Task {
                        unit: task.unit,
                        stage: task.stage,
                        kind: WorkKind::Backward,
                    });
                } else {
                    let cut_layer = self.epoch_for(task.unit).partition.stages[task.stage]
                        .layers
                        .end
                        - 1;
                    let bytes = self.profile.cut_bytes(cut_layer) / self.micro as f64;
                    self.launch_transfer(
                        worker,
                        Task {
                            unit: task.unit,
                            stage: task.stage + 1,
                            kind: WorkKind::Forward,
                        },
                        bytes,
                    );
                }
            }
            WorkKind::Backward => {
                if self.cfg.schedule.is_async() {
                    // Per-mini-batch weight update with stashing semantics.
                    let fwd_v = self
                        .fwd_versions
                        .remove(&(task.unit, task.stage))
                        .unwrap_or(self.versions[task.stage]);
                    let staleness = (self.versions[task.stage] - fwd_v) as f64;
                    if task.stage == 0 {
                        self.staleness_sum += staleness;
                        self.staleness_n += 1;
                    }
                    self.versions[task.stage] += 1;
                    self.launch_sync(worker, task.stage, task.unit);
                } else {
                    self.sync_pending_b -= 1;
                }
                if task.stage == 0 {
                    if self.cfg.schedule.is_async() {
                        self.completed_units += 1;
                        self.iterations.push(IterationRecord {
                            iteration: task.unit,
                            finish: self.now,
                        });
                    }
                } else {
                    let cut_layer = self.epoch_for(task.unit).partition.stages[task.stage - 1]
                        .layers
                        .end
                        - 1;
                    let bytes = self.profile.cut_bytes(cut_layer) / self.micro as f64;
                    self.launch_transfer(
                        worker,
                        Task {
                            unit: task.unit,
                            stage: task.stage - 1,
                            kind: WorkKind::Backward,
                        },
                        bytes,
                    );
                }
                // Sync schedules: last backward of the iteration triggers
                // the flush barrier.
                if !self.cfg.schedule.is_async() && self.sync_pending_b == 0 {
                    let flush = (0..self.n_stages())
                        .map(|s| {
                            let st = &self.current_epoch().partition.stages[s];
                            self.cfg.scheme.sync_time(
                                self.current_epoch()
                                    .partition
                                    .stage_param_bytes(s, self.profile),
                                &st.workers,
                                &self.state,
                            ) / self.cfg.framework.comm_efficiency
                        })
                        .fold(0.0_f64, f64::max);
                    self.activities.push(Activity::Flush {
                        remaining_seconds: flush.max(1e-12),
                    });
                }
            }
        }
    }

    /// Advance the simulation until `n_iterations` mini-batches complete.
    ///
    /// Fails with [`SimError::Deadlock`] when the pipeline can no longer
    /// make progress, instead of aborting the process.
    pub fn run(mut self, n_iterations: usize) -> Result<SimResult, SimError> {
        let target = n_iterations as u64;
        let mut steps = 0usize;
        while self.done_count() < target {
            steps += 1;
            self.tick(steps, target)?;
        }
        Ok(self.finish())
    }

    /// Advance the simulation until `n_iterations` mini-batches complete,
    /// consulting `control` every `check_every` completed mini-batches.
    ///
    /// The callback receives the live cluster state, the completion count,
    /// the clock, and the measured speed (samples/sec) over the last
    /// window; returning `Some((partition, stall))` applies the partition
    /// **without stopping the pipeline**: in-flight mini-batches drain on
    /// the old assignment, new ones use the new (AutoPipe's fine-grained
    /// switching, §4.4), and workers whose tasks changed are frozen for
    /// `stall` seconds of migration.
    pub fn run_controlled<F>(
        mut self,
        n_iterations: usize,
        check_every: usize,
        mut control: F,
    ) -> Result<SimResult, SimError>
    where
        F: FnMut(&ClusterState, u64, f64, Option<f64>) -> Option<(Partition, f64, bool)>,
    {
        assert!(
            self.cfg.schedule.is_async(),
            "live switching requires an asynchronous schedule"
        );
        let target = n_iterations as u64;
        let check = check_every.max(1) as u64;
        let mut next_check = check;
        let mut prev_mark: Option<(u64, f64)> = None;
        let mut steps = 0usize;
        while self.done_count() < target {
            steps += 1;
            // A fault (failure or recovery) consults the controller out of
            // band: an emergency repartition cannot wait for the next
            // completion milestone — completions may never come.
            if self.fault_consult {
                self.fault_consult = false;
                if let Some((partition, stall, global_stall)) =
                    control(&self.state, self.done_count(), self.now, None)
                {
                    self.switch_partition(partition, stall, global_stall);
                }
            }
            self.tick(steps, target)?;
            if self.done_count() >= next_check && self.done_count() < target {
                next_check = self.done_count() + check;
                let measured = prev_mark.map(|(units, at)| {
                    (self.done_count() - units) as f64 * self.profile.batch as f64
                        / (self.now - at).max(1e-9)
                });
                prev_mark = Some((self.done_count(), self.now));
                if let Some((partition, stall, global_stall)) =
                    control(&self.state, self.done_count(), self.now, measured)
                {
                    self.switch_partition(partition, stall, global_stall);
                }
            }
        }
        Ok(self.finish())
    }

    /// Apply a new partition live.
    ///
    /// A structurally invalid proposal or one naming a worker outside the
    /// job is rejected (recorded as [`FaultRecord::SwitchRejected`]) rather
    /// than panicking mid-run: fault-path controllers synthesize emergency
    /// partitions, and the engine is the last line of defense.
    fn switch_partition(&mut self, new: Partition, stall: f64, global_stall: bool) {
        debug_assert!(new.validate(self.profile.n_layers()).is_ok());
        if new.validate(self.profile.n_layers()).is_err()
            || new
                .all_workers()
                .iter()
                .any(|g| !self.worker_index.contains_key(g))
        {
            self.fault_log
                .push(FaultRecord::SwitchRejected { at: self.now });
            return;
        }
        let old = self.current_epoch().partition.clone();
        // Stage counts may differ (merge/split moves); in-flight units keep
        // their own epoch's stage indices, so only the per-stage version
        // vector needs to cover the widest epoch.
        if new.n_stages() > self.versions.len() {
            let top = self.versions.iter().copied().max().unwrap_or(0);
            self.versions.resize(new.n_stages(), top);
        }
        // Freeze the workers whose assignment changes for the migration
        // stall (two workers for AutoPipe's incremental moves); a
        // stop-and-restart switch freezes everyone.
        let mut affected: Vec<usize> = Vec::new();
        if global_stall {
            for w in 0..self.workers.len() {
                self.ready_after[w] = self.ready_after[w].max(self.now + stall);
                affected.push(w);
            }
        } else {
            // Freeze every worker whose layer assignment changed.
            for g in &self.workers {
                let assigned = |p: &Partition| {
                    p.stages
                        .iter()
                        .find(|s| s.workers.contains(g))
                        .map(|s| s.layers.clone())
                };
                if assigned(&old) != assigned(&new) {
                    if let Some(&w) = self.worker_index.get(g) {
                        self.ready_after[w] = self.ready_after[w].max(self.now + stall);
                        affected.push(w);
                    }
                }
            }
        }
        let epoch = self.build_epoch(new, self.injected);
        self.epochs.push(epoch);
        if stall > 0.0 {
            // While the migration is in flight, a death of an affected
            // worker aborts and rolls back the switch.
            self.active_migration = Some(ActiveMigration {
                from: old,
                start_unit: self.injected,
                started: self.now,
                ends: self.now + stall,
                affected,
            });
            self.activities.push(Activity::Timer {
                remaining_seconds: stall,
            });
        }
        self.rehome_ready();
        self.try_restart_stranded();
    }

    /// Re-home queued (not yet started) tasks onto the owners their epoch
    /// dictates — queued tasks keep their original epoch, so only
    /// bookkeeping position changes, not semantics.
    fn rehome_ready(&mut self) {
        let queued: Vec<(u8, u64, usize)> =
            self.ready.iter().flat_map(|s| s.iter().copied()).collect();
        for r in &mut self.ready {
            r.clear();
        }
        for (pri, unit, stage) in queued {
            let kind = if pri == 0 {
                WorkKind::Backward
            } else {
                WorkKind::Forward
            };
            self.mark_ready(Task { unit, stage, kind });
        }
    }

    /// Build an epoch for `partition`, shedding currently dead workers
    /// from its replica sets (the partition may still *name* them — e.g. a
    /// rollback target — but no work is ever scheduled on a dead worker).
    fn build_epoch(&self, partition: Partition, start_unit: u64) -> Epoch {
        let mut e = Epoch::build(
            partition,
            self.profile,
            self.micro,
            self.cfg.schedule.recompute_factor(),
            &self.worker_index,
            start_unit,
        );
        for reps in &mut e.stage_workers {
            reps.retain(|&w| !self.dead[w]);
        }
        e
    }

    /// Mark `unit` stranded and purge its in-flight state: queued tasks,
    /// feeding transfers, a running compute, and stashed forward versions.
    /// The unit's id stays live — it restarts from stage 0 later, so no
    /// mini-batch is ever silently dropped.
    fn strand_unit(&mut self, unit: u64) {
        self.stranded.insert(unit);
        for r in &mut self.ready {
            let stale: Vec<(u8, u64, usize)> =
                r.iter().copied().filter(|&(_, u, _)| u == unit).collect();
            for k in stale {
                r.remove(&k);
            }
        }
        let mut i = 0;
        while i < self.activities.len() {
            let drop = match &self.activities[i] {
                Activity::Transfer {
                    unlocks: Unlock::Task(t),
                    ..
                } => t.unit == unit,
                Activity::Compute { task, .. } => task.unit == unit,
                _ => false,
            };
            if drop {
                if let Activity::Compute { worker, .. } = self.activities.swap_remove(i) {
                    self.worker_busy_flag[worker] = false;
                }
            } else {
                i += 1;
            }
        }
        self.fwd_versions.retain(|&(u, _), _| u != unit);
    }

    /// Restart stranded units from stage 0 under the current partition
    /// once it is feasible again. Their partial work is discarded —
    /// re-done, never lost.
    fn try_restart_stranded(&mut self) {
        if self.stranded.is_empty() || !self.current_epoch_feasible() {
            return;
        }
        let units: Vec<u64> = std::mem::take(&mut self.stranded).into_iter().collect();
        let idx = self.epochs.len() - 1;
        let count = units.len();
        for u in units {
            self.epoch_override.insert(u, idx);
            self.mark_ready(Task {
                unit: u,
                stage: 0,
                kind: WorkKind::Forward,
            });
        }
        self.fault_log.push(FaultRecord::UnitsRestarted {
            count,
            at: self.now,
        });
    }

    /// Handle a fail-stop death of `g`: roll back a vulnerable in-flight
    /// migration, shed the worker from every partition regime, abort and
    /// requeue its work, and strand units whose stage lost its last
    /// replica.
    fn fail_worker(&mut self, g: GpuId) {
        let Some(&w) = self.worker_index.get(&g) else {
            return; // not one of this job's workers
        };
        if self.dead[w] {
            return;
        }
        self.dead[w] = true;
        self.fault_log.push(FaultRecord::WorkerFailed {
            worker: g,
            at: self.now,
        });
        self.fault_consult = true;
        // Mid-migration death of an affected worker aborts the switch
        // first, so the shedding below operates on the reinstated
        // pre-switch partition.
        if let Some(m) = self.active_migration.clone() {
            if self.now < m.ends - 1e-9 {
                if m.affected.contains(&w) {
                    self.rollback_migration(&m, g);
                }
            } else {
                self.active_migration = None;
            }
        }
        // Shed the worker from every regime's replica sets.
        for e in &mut self.epochs {
            for reps in &mut e.stage_workers {
                reps.retain(|&r| r != w);
            }
        }
        // Abort its running compute (that work is lost) and requeue the
        // task; queued tasks re-home onto surviving replicas (or strand).
        let mut requeue: Vec<Task> = Vec::new();
        let mut i = 0;
        while i < self.activities.len() {
            let aborts =
                matches!(&self.activities[i], Activity::Compute { worker, .. } if *worker == w);
            if aborts {
                if let Activity::Compute { task, .. } = self.activities.swap_remove(i) {
                    requeue.push(task);
                }
            } else {
                i += 1;
            }
        }
        self.worker_busy_flag[w] = false;
        self.sync_busy[w] = false;
        let queued: Vec<(u8, u64, usize)> = self.ready[w].iter().copied().collect();
        self.ready[w].clear();
        for (pri, unit, stage) in queued {
            let kind = if pri == 0 {
                WorkKind::Backward
            } else {
                WorkKind::Forward
            };
            requeue.push(Task { unit, stage, kind });
        }
        for t in requeue {
            self.mark_ready(t);
        }
    }

    /// A failed worker comes back. It rejoins cold: no epoch references it
    /// until a later switch assigns it layers, so recovery alone never
    /// perturbs the running pipeline.
    fn recover_worker(&mut self, g: GpuId) {
        let Some(&w) = self.worker_index.get(&g) else {
            return;
        };
        if !self.dead[w] {
            return;
        }
        self.dead[w] = false;
        self.fault_log.push(FaultRecord::WorkerRecovered {
            worker: g,
            at: self.now,
        });
        self.fault_consult = true;
    }

    /// Undo a partial fine-grained migration after `victim` died inside
    /// the window. Completed steps revert in reverse stash-version order —
    /// within each moved layer the later active mini-batch's copy reverts
    /// first, the dual of the §4.4 forward order — which costs about as
    /// long as the partial copies took to make. The pre-switch partition
    /// is reinstated for the aborted epoch's units by shadowing it.
    fn rollback_migration(&mut self, m: &ActiveMigration, victim: GpuId) {
        self.active_migration = None;
        let progress = ((self.now - m.started) / (m.ends - m.started).max(1e-12)).clamp(0.0, 1.0);
        let rollback = (self.now - m.started).max(0.0);
        // Shadow the aborted epoch: a fresh regime with the pre-switch
        // partition at the same start unit wins the reverse scan for every
        // unit injected under the aborted one.
        let revert = self.build_epoch(m.from.clone(), m.start_unit);
        self.epochs.push(revert);
        // The aborted switch froze the affected workers until `m.ends`;
        // that freeze is void now — they are busy only for the rollback
        // copies, which take about as long as the partial forward copies
        // did. Override, don't max: the migration this freeze served no
        // longer exists.
        for &w in &m.affected {
            self.ready_after[w] = self.now + rollback;
        }
        if rollback > 0.0 {
            self.activities.push(Activity::Timer {
                remaining_seconds: rollback,
            });
        }
        self.fault_log.push(FaultRecord::MigrationRolledBack {
            worker: victim,
            at: self.now,
            progress,
            rollback_seconds: rollback,
        });
        self.rehome_ready();
    }

    /// One simulation step: inject, dispatch, advance to the next event.
    fn tick(&mut self, steps: usize, target: u64) -> Result<(), SimError> {
        const MAX_STEPS: usize = 50_000_000;
        if steps >= MAX_STEPS {
            return Err(SimError::StepBudgetExhausted { steps });
        }
        self.try_restart_stranded();
        self.inject();
        self.dispatch();
        if self.activities.is_empty() {
            // Nothing runnable: only resource events can advance time.
            match self.resources.next_event_after(self.res_cursor) {
                Some(t) => {
                    self.advance_to(t);
                    return Ok(());
                }
                None => {
                    // Distinguish "a stage has no survivors" (worker loss
                    // nobody repaired) from a structural deadlock.
                    if let Some(stage) = self
                        .current_epoch()
                        .stage_workers
                        .iter()
                        .position(|r| r.is_empty())
                    {
                        return Err(SimError::WorkerLost {
                            stage,
                            at: self.now,
                            done: self.done_count(),
                            target,
                        });
                    }
                    return Err(SimError::Deadlock {
                        at: self.now,
                        done: self.done_count(),
                        target,
                    });
                }
            }
        }
        // Earliest completion among activities at current rates.
        let rates = self.transfer_rates();
        let share = self.compute_share();
        let mut t_done = f64::INFINITY;
        let mut ti = 0usize;
        for a in &self.activities {
            let dt = match a {
                Activity::Compute {
                    worker,
                    remaining_flops,
                    ..
                } => remaining_flops / (self.compute_rate(*worker) * share).max(1e-6),
                Activity::Transfer {
                    remaining_bytes, ..
                } => remaining_bytes / rates[ti].max(1e-3),
                Activity::Flush { remaining_seconds } | Activity::Timer { remaining_seconds } => {
                    *remaining_seconds
                }
            };
            if let Activity::Transfer { .. } = a {
                ti += 1;
            }
            if dt < t_done {
                t_done = dt;
            }
        }
        let mut t_complete = self.now + t_done.max(0.0);
        // At large `now` a nearly-drained activity can need a dt below the
        // f64 resolution of the clock (`now + dt == now`), which would stall
        // time forever. Nudge to the next representable instant so the
        // activity keeps draining and eventually collects.
        if t_complete == self.now && t_done > 0.0 {
            t_complete = f64::from_bits(self.now.to_bits() + 1);
        }
        // A resource event may land first.
        let t_next = match self.resources.next_event_after(self.res_cursor) {
            Some(te) if te < t_complete => te,
            _ => t_complete,
        };
        self.advance_to(t_next);
        Ok(())
    }

    fn finish(&mut self) -> SimResult {
        SimResult {
            iterations: std::mem::take(&mut self.iterations),
            batch: self.profile.batch,
            busy: std::mem::take(&mut self.busy),
            makespan: self.now,
            segments: std::mem::take(&mut self.segments),
            mean_staleness: if self.staleness_n > 0 {
                self.staleness_sum / self.staleness_n as f64
            } else {
                0.0
            },
            faults: std::mem::take(&mut self.fault_log),
        }
    }

    fn done_count(&self) -> u64 {
        if self.cfg.schedule.is_async() {
            self.completed_units
        } else {
            self.sync_iteration
        }
    }

    /// Move time forward to `t`, draining activities and applying any
    /// resource events at exactly `t`.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        debug_assert!(dt >= -1e-9, "time went backwards");
        let rates = self.transfer_rates();
        // The busy set only changes at event boundaries, so one share
        // value is exact for the whole [now, t] interval.
        let share = self.compute_share();
        let mut ti = 0usize;
        for a in &mut self.activities {
            match a {
                Activity::Compute {
                    worker,
                    remaining_flops,
                    ..
                } => {
                    let rate = self.state.effective_flops(self.workers[*worker])
                        * self.cfg.framework.compute_efficiency
                        * share;
                    *remaining_flops -= rate * dt;
                }
                Activity::Transfer {
                    remaining_bytes, ..
                } => {
                    *remaining_bytes -= rates[ti] * dt;
                    ti += 1;
                }
                Activity::Flush { remaining_seconds } | Activity::Timer { remaining_seconds } => {
                    *remaining_seconds -= dt;
                }
            }
        }
        self.now = t;

        // Apply resource events scheduled at or before t.
        let events: Vec<_> = self
            .resources
            .events_between(self.res_cursor, t)
            .iter()
            .map(|e| e.kind.clone())
            .collect();
        for k in &events {
            self.state.apply(k);
            match k {
                EventKind::WorkerFail(g) => self.fail_worker(*g),
                EventKind::WorkerRecover(g) => self.recover_worker(*g),
                _ => {}
            }
        }
        self.res_cursor = self.res_cursor.max(t);
        // A migration window that elapsed without incident is no longer
        // vulnerable to rollback.
        if let Some(m) = &self.active_migration {
            if self.now >= m.ends - 1e-9 {
                self.active_migration = None;
            }
        }

        // Collect completions. Tolerances absorb float drain error: one
        // FLOP / one byte / a nanosecond are all far below model scale.
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.activities.len() {
            let finished = match &self.activities[i] {
                Activity::Compute {
                    remaining_flops, ..
                } => *remaining_flops <= 1.0,
                Activity::Transfer {
                    remaining_bytes, ..
                } => *remaining_bytes <= 1.0,
                Activity::Flush { remaining_seconds } | Activity::Timer { remaining_seconds } => {
                    *remaining_seconds <= 1e-9
                }
            };
            if finished {
                done.push(self.activities.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for a in done {
            match a {
                Activity::Compute {
                    worker,
                    task,
                    started,
                    ..
                } => self.on_compute_done(worker, task, started),
                Activity::Transfer { unlocks, .. } => match unlocks {
                    Unlock::Task(t) => self.mark_ready(t),
                    Unlock::SyncDone(w) => self.sync_busy[w] = false,
                },
                Activity::Timer { .. } => {}
                Activity::Flush { .. } => {
                    for v in &mut self.versions {
                        *v += 1;
                    }
                    self.sync_iteration += 1;
                    self.iterations.push(IterationRecord {
                        iteration: self.sync_iteration - 1,
                        finish: self.now,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Stage;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{gbps, ClusterTopology, EventKind};
    use ap_models::{synthetic_uniform, ModelProfile};

    fn run_simple(
        schedule: ScheduleKind,
        n_iters: usize,
        link_gbps: f64,
        record: bool,
    ) -> SimResult {
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, link_gbps);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
                Stage::new(4..6, vec![GpuId(2)]),
                Stage::new(6..8, vec![GpuId(3)]),
            ],
            in_flight: 4,
        };
        let cfg = EngineConfig {
            schedule,
            record_timeline: record,
            ..EngineConfig::default()
        };
        // Profile is borrowed by the engine; keep it alive in this frame.
        let state = ClusterState::new(topo);
        let eng =
            Engine::new(&profile, partition, state, ResourceTimeline::empty(), cfg).expect("valid");
        eng.run(n_iters).expect("run")
    }

    #[test]
    fn async_completes_requested_iterations_in_order() {
        let r = run_simple(ScheduleKind::PipeDreamAsync, 20, 100.0, false);
        assert_eq!(r.iterations.len(), 20);
        for w in r.iterations.windows(2) {
            assert!(w[1].finish >= w[0].finish);
        }
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn one_compute_slot_removes_the_pipelining_win() {
        // Same 4-stage pipeline, but a calibration says all four
        // "workers" are threads sharing one core. Processor sharing is
        // work-conserving, so throughput collapses to roughly the
        // serialized sum of stage work — within a few percent of the
        // in_flight=1 schedule on the same host — while the uncontended
        // run keeps its ~4x pipelining win.
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let mk = |in_flight| Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
                Stage::new(4..6, vec![GpuId(2)]),
                Stage::new(6..8, vec![GpuId(3)]),
            ],
            in_flight,
        };
        let run = |p: Partition, slots: usize| {
            let calibration = (slots > 0).then(|| {
                let mut c = Calibration::zero();
                c.compute_slots = slots;
                c
            });
            Engine::new(
                &profile,
                p,
                ClusterState::new(topo.clone()),
                ResourceTimeline::empty(),
                EngineConfig {
                    calibration,
                    ..EngineConfig::default()
                },
            )
            .expect("valid")
            .run(30)
            .expect("run")
            .steady_throughput(8)
        };
        let uncontended = run(mk(4), 0);
        let one_core = run(mk(4), 1);
        let sequential = run(mk(1), 1);
        assert!(
            uncontended > 2.5 * one_core,
            "one slot should erase the pipeline win: {one_core} vs {uncontended}"
        );
        let ratio = one_core / sequential;
        assert!(
            (0.9..1.5).contains(&ratio),
            "one-core pipelining should track serialized execution: \
             pipelined {one_core} vs sequential {sequential}"
        );
        // Plenty of slots behaves exactly like no calibration at all.
        let roomy = run(mk(4), 4);
        assert!(
            (roomy / uncontended - 1.0).abs() < 1e-9,
            "{roomy} vs {uncontended}"
        );
    }

    #[test]
    fn pipeline_beats_single_gpu_model_parallelism() {
        // 4-stage pipeline with in_flight=4 must beat in_flight=1 (pure
        // model parallelism) by roughly the stage count.
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let mk = |in_flight| Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
                Stage::new(4..6, vec![GpuId(2)]),
                Stage::new(6..8, vec![GpuId(3)]),
            ],
            in_flight,
        };
        let run = |p: Partition| {
            Engine::new(
                &profile,
                p,
                ClusterState::new(topo.clone()),
                ResourceTimeline::empty(),
                EngineConfig::default(),
            )
            .expect("valid")
            .run(30)
            .expect("run")
            .steady_throughput(8)
        };
        let pipelined = run(mk(4));
        let sequential = run(mk(1));
        assert!(
            pipelined > 3.0 * sequential,
            "pipelining should ~4x: {sequential} -> {pipelined}"
        );
    }

    #[test]
    fn startup_then_steady_utilization() {
        let r = run_simple(ScheduleKind::PipeDreamAsync, 40, 100.0, true);
        let util = r.utilization();
        // Last stage turns around immediately; all workers should be busy
        // most of the time in a balanced pipeline.
        assert!(util.iter().all(|&u| u > 0.5), "{util:?}");
        assert!(!r.segments.is_empty());
        // Segments never overlap per worker.
        for w in 0..4 {
            let mut segs: Vec<_> = r.segments.iter().filter(|s| s.worker == w).collect();
            segs.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in segs.windows(2) {
                assert!(pair[1].start >= pair[0].end - 1e-9);
            }
        }
    }

    #[test]
    fn staleness_bounded_by_in_flight() {
        let r = run_simple(ScheduleKind::PipeDreamAsync, 50, 100.0, false);
        assert!(r.mean_staleness <= 4.0 + 1e-9);
        assert!(r.mean_staleness > 0.0, "deep pipeline must show staleness");
    }

    #[test]
    fn sync_schedule_completes_and_is_slower_than_async() {
        let a = run_simple(ScheduleKind::PipeDreamAsync, 12, 100.0, false);
        let g = run_simple(ScheduleKind::Dapple { micro_batches: 4 }, 12, 100.0, false);
        assert_eq!(g.iterations.len(), 12);
        assert!(g.steady_throughput(2) < a.steady_throughput(2));
        assert_eq!(g.mean_staleness, 0.0);
    }

    #[test]
    fn bandwidth_drop_slows_the_speed_series() {
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, 10.0);
        // Communication-heavy synthetic model.
        let model = synthetic_uniform(8, 5e8, 60e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let mut tl = ResourceTimeline::empty();
        // Halve bandwidth "mid-training" (iterations complete in ~3.3 s
        // pairs, so t=30 lands around iteration 9).
        tl.push(30.0, EventKind::ScaleAllLinks(0.5));
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run(40)
        .expect("run");
        let series = r.speed_series(2);
        let early: Vec<f64> = series
            .iter()
            .filter(|&&(i, _)| i < 8)
            .map(|&(_, s)| s)
            .collect();
        let late: Vec<f64> = series
            .iter()
            .filter(|&&(i, _)| i > 24)
            .map(|&(_, s)| s)
            .collect();
        assert!(!early.is_empty() && !late.is_empty());
        let early = early.iter().sum::<f64>() / early.len() as f64;
        let late = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            late < 0.7 * early,
            "halved bandwidth must slow a comm-bound job: {early} -> {late}"
        );
    }

    #[test]
    fn contention_event_slows_compute_bound_job() {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(4, 4e9, 1e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(
            2.0,
            EventKind::JobArrive {
                id: ap_cluster::dynamics::BgJobId(1),
                gpus: vec![GpuId(0), GpuId(1)],
                net_bytes_per_sec: 0.0,
            },
        );
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run(50)
        .expect("run");
        let series = r.speed_series(3);
        let early = series[1].1;
        let late = series.last().unwrap().1;
        assert!(
            (early / late - 2.0).abs() < 0.5,
            "2-way sharing should ~halve speed: {early} -> {late}"
        );
    }

    #[test]
    fn gpipe_drains_forwards_before_backwards() {
        let a = run_simple(ScheduleKind::GPipe { micro_batches: 4 }, 6, 100.0, true);
        // Within each worker's timeline, the first backward of an
        // iteration never precedes the last forward of that iteration by
        // construction of the phase preference; cheap proxy: GPipe is
        // slower than DAPPLE (recompute + worse overlap).
        let d = run_simple(ScheduleKind::Dapple { micro_batches: 4 }, 6, 100.0, false);
        assert!(a.steady_throughput(1) < d.steady_throughput(1));
    }

    #[test]
    fn live_switch_mid_run_reroutes_new_units() {
        // Start on a lopsided 2-stage plan; switch to the balanced one at
        // the 6th completion; the run finishes and speeds up.
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 1e5, 1e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let lopsided = Partition {
            stages: vec![
                Stage::new(0..1, vec![GpuId(0)]),
                Stage::new(1..8, vec![GpuId(1)]),
            ],
            in_flight: 6,
        };
        let balanced = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 6,
        };
        let mut switched = false;
        let r = Engine::new(
            &profile,
            lopsided,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig::default(),
        )
        .expect("valid")
        .run_controlled(40, 6, |_, _, _, _| {
            if switched {
                None
            } else {
                switched = true;
                Some((balanced.clone(), 0.001, false))
            }
        })
        .expect("run");
        assert!(switched);
        assert!(r.iterations.len() >= 40);
        for w in r.iterations.windows(2) {
            assert!(w[1].finish >= w[0].finish - 1e-9);
        }
        // Tail (post-switch, drained) runs ~2x the lopsided head.
        let head = 5.0 * 32.0 / (r.iterations[5].finish - r.iterations[0].finish);
        let last = r.iterations.len() - 1;
        let tail = 5.0 * 32.0 / (r.iterations[last].finish - r.iterations[last - 5].finish);
        assert!(
            tail > 1.3 * head,
            "live switch should speed the tail: {head:.1} -> {tail:.1}"
        );
    }

    #[test]
    fn replicated_stage_survives_one_replica_failing() {
        // Stage 0 is 2-way replicated; killing one replica mid-run re-homes
        // its work onto the survivor and every mini-batch still completes.
        let topo = ClusterTopology::single_switch(3, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0), GpuId(1)]),
                Stage::new(4..8, vec![GpuId(2)]),
            ],
            in_flight: 3,
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(2.0, EventKind::WorkerFail(GpuId(1)));
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run(30)
        .expect("survives replica loss");
        let mut ids: Vec<u64> = r.iterations.iter().map(|i| i.iteration).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>(), "no mini-batch lost");
        assert!(r
            .faults
            .iter()
            .any(|f| matches!(f, FaultRecord::WorkerFailed { worker, .. } if *worker == GpuId(1))));
    }

    #[test]
    fn sole_worker_loss_is_a_typed_error_not_a_wedge() {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(1.0, EventKind::WorkerFail(GpuId(1)));
        let err = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run(1000)
        .expect_err("an unrepaired stage loss must error");
        assert!(
            matches!(err, SimError::WorkerLost { stage: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn controlled_run_repartitions_around_a_dead_worker() {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let solo = Partition {
            stages: vec![Stage::new(0..8, vec![GpuId(0)])],
            in_flight: 1,
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(1.5, EventKind::WorkerFail(GpuId(1)));
        let mut emergencies = 0;
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run_controlled(30, 5, |state, _, _, _| {
            if state.failed_workers().contains(&GpuId(1)) && emergencies == 0 {
                emergencies += 1;
                Some((solo.clone(), 0.01, false))
            } else {
                None
            }
        })
        .expect("emergency repartition must save the run");
        assert_eq!(emergencies, 1, "fault consult must fire out of band");
        let mut ids: Vec<u64> = r.iterations.iter().map(|i| i.iteration).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>(), "no mini-batch lost");
        // Units stranded at the dead stage were restarted, not dropped.
        assert!(r
            .faults
            .iter()
            .any(|f| matches!(f, FaultRecord::UnitsRestarted { count, .. } if *count > 0)));
    }

    #[test]
    fn mid_migration_failure_rolls_back_and_recovers() {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 1e5, 1e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let lopsided = Partition {
            stages: vec![
                Stage::new(0..1, vec![GpuId(0)]),
                Stage::new(1..8, vec![GpuId(1)]),
            ],
            in_flight: 4,
        };
        let balanced = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 4,
        };
        let solo = Partition {
            stages: vec![Stage::new(0..8, vec![GpuId(0)])],
            in_flight: 1,
        };
        // GpuId(1) dies at t=50, long before the (enormous) migration
        // window closes — the switch must roll back, then the emergency
        // repartition onto GpuId(0) saves the run.
        let mut tl = ResourceTimeline::empty();
        tl.push(50.0, EventKind::WorkerFail(GpuId(1)));
        let mut phase = 0;
        let r = Engine::new(
            &profile,
            lopsided,
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run_controlled(40, 4, |state, _, _, _| {
            if state.failed_workers().contains(&GpuId(1)) {
                if phase < 2 {
                    phase = 2;
                    return Some((solo.clone(), 0.01, false));
                }
                return None;
            }
            if phase == 0 {
                phase = 1;
                // A migration "in flight" for a very long time: both
                // workers' assignments change, so both are vulnerable.
                return Some((balanced.clone(), 1e6, false));
            }
            None
        })
        .expect("rollback + emergency repartition must save the run");
        assert_eq!(phase, 2);
        let rolled: Vec<_> = r
            .faults
            .iter()
            .filter(|f| matches!(f, FaultRecord::MigrationRolledBack { .. }))
            .collect();
        assert_eq!(rolled.len(), 1, "exactly one rollback: {:?}", r.faults);
        if let FaultRecord::MigrationRolledBack {
            worker, progress, ..
        } = rolled[0]
        {
            assert_eq!(*worker, GpuId(1));
            assert!((0.0..1.0).contains(progress));
        }
        let mut ids: Vec<u64> = r.iterations.iter().map(|i| i.iteration).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<u64>>(), "no mini-batch lost");
    }

    #[test]
    fn switch_naming_an_unknown_worker_is_rejected_not_a_panic() {
        let topo = ClusterTopology::single_switch(3, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        // GpuId(2) exists in the cluster but is not part of this job.
        let bogus = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(2)]),
            ],
            in_flight: 2,
        };
        let mut asked = false;
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig::default(),
        )
        .expect("valid")
        .run_controlled(20, 5, |_, _, _, _| {
            if asked {
                None
            } else {
                asked = true;
                Some((bogus.clone(), 0.01, false))
            }
        })
        .expect("rejected switch must not sink the run");
        assert!(r
            .faults
            .iter()
            .any(|f| matches!(f, FaultRecord::SwitchRejected { .. })));
        assert_eq!(r.iterations.len(), 20);
    }

    #[test]
    fn recovered_worker_rejoins_on_the_next_switch() {
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 100.0);
        let model = synthetic_uniform(8, 2e9, 4e6, 8e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let two = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let solo = Partition {
            stages: vec![Stage::new(0..8, vec![GpuId(0)])],
            in_flight: 1,
        };
        let mut tl = ResourceTimeline::empty();
        tl.push(1.0, EventKind::WorkerFail(GpuId(1)));
        tl.push(6.0, EventKind::WorkerRecover(GpuId(1)));
        let mut went_solo = false;
        let mut back = false;
        let r = Engine::new(
            &profile,
            two.clone(),
            ClusterState::new(topo),
            tl,
            EngineConfig::default(),
        )
        .expect("valid")
        .run_controlled(60, 5, |state, _, _, _| {
            if !state.is_available(GpuId(1)) {
                if !went_solo {
                    went_solo = true;
                    return Some((solo.clone(), 0.01, false));
                }
                return None;
            }
            if went_solo && !back {
                back = true;
                return Some((two.clone(), 0.01, false));
            }
            None
        })
        .expect("recovery round trip");
        assert!(back, "controller must see the recovery");
        assert!(r.faults.iter().any(
            |f| matches!(f, FaultRecord::WorkerRecovered { worker, .. } if *worker == GpuId(1))
        ));
        assert_eq!(r.iterations.len(), 60);
    }

    #[test]
    fn gbps_sanity_for_transfer_dominated_pipeline() {
        // One cut of 125 MB at 10 Gbps (=1.25 GB/s) costs ~0.1 s per
        // direction; iteration time must be at least that.
        let topo = ClusterTopology::single_switch(2, 1, GpuKind::P100, 10.0);
        let model = synthetic_uniform(2, 1e6, 125e6 / 32.0, 1e6);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..1, vec![GpuId(0)]),
                Stage::new(1..2, vec![GpuId(1)]),
            ],
            in_flight: 2,
        };
        let r = Engine::new(
            &profile,
            partition,
            ClusterState::new(topo),
            ResourceTimeline::empty(),
            EngineConfig::default(),
        )
        .expect("valid")
        .run(10)
        .expect("run");
        let per_iter = r.makespan / 10.0;
        let floor = 125e6 / (gbps(10.0) * 0.92);
        assert!(
            per_iter >= floor * 0.9,
            "per_iter {per_iter} < floor {floor}"
        );
    }
}
