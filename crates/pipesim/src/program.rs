//! Pricing a schedule IR [`Program`] — the event engine's IR front end.
//!
//! [`ProgramPricer`] walks the per-stage op sequences of an
//! [`ap_ir::Program`] with a deterministic greedy discrete-event loop:
//! each stage executes its ops strictly in program order, ops charge
//! serial stage time (compute, codec, stash snapshots, dispatch
//! overhead), `Send`/`Recv` pairs serialize frames through FIFO links at
//! the cluster's pair bandwidths, and — when a [`Calibration`] caps
//! `compute_slots` below the stage count — every serial op also contends
//! for a host compute slot (work-conserving, earliest-free-slot). This is
//! the same cost vocabulary as [`crate::analytic::AnalyticModel`], but
//! applied to the *actual op order* of any [`ScheduleKind`], so one
//! pricer covers the whole schedule zoo; the closed forms stay as a
//! cross-check (see DESIGN.md §10).
//!
//! The pricer is pure arithmetic over a static program: two calls with
//! the same inputs produce bit-identical results.

use crate::calibration::Calibration;
use crate::framework::Framework;
use crate::partition::Partition;
use crate::sync::pair_bw;
use ap_cluster::ClusterState;
use ap_ir::{IrOp, Payload, Program, UnitId};
use ap_models::ModelProfile;
use std::collections::BTreeMap;

/// What pricing a program produced.
#[derive(Debug, Clone)]
pub struct ProgramEval {
    /// Per-mini-batch completion times at stage 0 (seconds since start,
    /// mini-batch order): the time stage 0 finished its last op of that
    /// mini-batch.
    pub completions: Vec<f64>,
    /// End of the last op anywhere.
    pub makespan: f64,
    /// Samples per mini-batch (the profile's batch size).
    pub batch: usize,
}

impl ProgramEval {
    /// Steady-state throughput in samples/s: drop the first `skip`
    /// completions (pipeline fill) and rate the rest.
    pub fn steady_throughput(&self, skip: usize) -> f64 {
        if self.completions.len() <= skip + 1 {
            return if self.makespan > 0.0 {
                self.completions.len() as f64 * self.batch as f64 / self.makespan
            } else {
                0.0
            };
        }
        let t0 = self.completions[skip];
        let t1 = *self.completions.last().unwrap();
        (self.completions.len() - skip - 1) as f64 * self.batch as f64 / (t1 - t0).max(1e-12)
    }
}

/// Prices IR programs against a profile, partition and cluster state.
pub struct ProgramPricer<'a> {
    /// Layer cost model.
    pub profile: &'a ModelProfile,
    /// Stage → layer-range/worker assignment (must have as many stages as
    /// the program).
    pub partition: &'a Partition,
    /// Cluster state supplying compute rates and pair bandwidths.
    pub state: &'a ClusterState,
    /// Framework constant factors (compute/comm efficiency).
    pub framework: Framework,
    /// Fitted runtime-overhead constants; `None` prices compute + wire
    /// only.
    pub calibration: Option<Calibration>,
}

/// A frame in flight: keyed by (boundary, payload, unit), valued by its
/// arrival time at the receiver.
type InFlight = BTreeMap<(usize, u8, UnitId), f64>;

fn payload_tag(p: Payload) -> u8 {
    match p {
        Payload::Act => 0,
        Payload::Grad => 1,
        Payload::WeightState => 2,
    }
}

impl<'a> ProgramPricer<'a> {
    /// Serial compute seconds of one full-mini-batch forward at stage `s`.
    fn stage_fwd(&self, s: usize) -> f64 {
        let st = &self.partition.stages[s];
        let rate = self.rate(s);
        (st.layers.start..st.layers.end)
            .map(|l| self.profile.fp_time(l, rate))
            .sum()
    }

    fn stage_bwd(&self, s: usize) -> f64 {
        let st = &self.partition.stages[s];
        let rate = self.rate(s);
        (st.layers.start..st.layers.end)
            .map(|l| self.profile.bp_time(l, rate))
            .sum()
    }

    /// Slowest-replica compute rate of stage `s` (replicas round-robin
    /// whole units, so the straggler paces the stage — same convention as
    /// the analytic model).
    fn rate(&self, s: usize) -> f64 {
        self.partition.stages[s]
            .workers
            .iter()
            .map(|&w| self.state.effective_flops(w) * self.framework.compute_efficiency)
            .fold(f64::INFINITY, f64::min)
    }

    /// Wire seconds/byte across boundary `c` (harmonic-mean pair
    /// bandwidth, as in `AnalyticModel::cut_time`).
    fn link_time_per_byte(&self, c: usize) -> f64 {
        let senders = &self.partition.stages[c].workers;
        let receivers = &self.partition.stages[c + 1].workers;
        let mut inv_sum = 0.0;
        let mut n = 0usize;
        for &a in senders {
            for &b in receivers {
                inv_sum += 1.0 / pair_bw(a, b, self.state);
                n += 1;
            }
        }
        inv_sum / n as f64 / self.framework.comm_efficiency
    }

    /// Full-mini-batch frame bytes across boundary `c`.
    fn cut_bytes(&self, c: usize) -> f64 {
        let cut_layer = self.partition.stages[c].layers.end - 1;
        self.profile.cut_bytes(cut_layer)
    }

    /// Price `program`. Deterministic greedy list scheduling: among every
    /// stage's *next* op, repeatedly run the one that can start earliest
    /// (ties break toward the lower stage index). `Recv` is only feasible
    /// once its frame was sent; a program whose `Recv`s can never be fed
    /// is reported as a deadlock (the IR validator rejects these shapes
    /// up front).
    pub fn price(&self, program: &Program) -> Result<ProgramEval, String> {
        if program.n_stages != self.partition.n_stages() {
            return Err(format!(
                "program has {} stages, partition {}",
                program.n_stages,
                self.partition.n_stages()
            ));
        }
        let s_count = program.n_stages;
        let m = program.micro_batches as f64;
        let fwd: Vec<f64> = (0..s_count).map(|s| self.stage_fwd(s) / m).collect();
        let bwd: Vec<f64> = (0..s_count).map(|s| self.stage_bwd(s) / m).collect();
        let link: Vec<f64> = (0..s_count.saturating_sub(1))
            .map(|c| self.link_time_per_byte(c))
            .collect();
        let frame_bytes: Vec<f64> = (0..s_count.saturating_sub(1))
            .map(|c| self.cut_bytes(c) / m)
            .collect();
        let stash_cost: Vec<f64> = (0..s_count)
            .map(|s| match &self.calibration {
                Some(c) => c.stash_byte_s * self.partition.stage_param_bytes(s, self.profile),
                None => 0.0,
            })
            .collect();
        let half_overhead = self
            .calibration
            .as_ref()
            .map_or(0.0, |c| c.stage_overhead_s / 2.0 / m);
        let codec = |bytes: f64| {
            self.calibration
                .as_ref()
                .map_or(0.0, |c| c.codec_op_s(bytes))
        };

        // Host compute slots (work-conserving processor sharing, as in
        // the engine): every serial op occupies one slot.
        let slots = match &self.calibration {
            Some(c) if c.compute_slots > 0 && c.compute_slots < s_count => c.compute_slots,
            _ => s_count,
        };
        let mut slot_free = vec![0.0f64; slots];

        let mut cursor = vec![0usize; s_count];
        let mut stage_free = vec![0.0f64; s_count];
        // Per-boundary, per-direction FIFO link occupancy (0 = fwd).
        let mut link_free = vec![[0.0f64; 2]; s_count.saturating_sub(1)];
        let mut in_flight: InFlight = BTreeMap::new();
        let mut stage0_done: BTreeMap<u64, f64> = BTreeMap::new();
        let mut makespan = 0.0f64;
        let total_ops: usize = program.stages.iter().map(|sp| sp.ops.len()).sum();

        for _ in 0..total_ops {
            // Pick the earliest-feasible next op.
            let mut best: Option<(f64, usize)> = None;
            for s in 0..s_count {
                let Some(op) = program.stages[s].ops.get(cursor[s]) else {
                    continue;
                };
                let ready = match *op {
                    IrOp::Recv { payload, unit } => {
                        let c = match payload {
                            Payload::Act => s.checked_sub(1),
                            Payload::Grad | Payload::WeightState => Some(s),
                        };
                        // Grad/weight-state arrive on the boundary above
                        // us only if we are not the top stage; a
                        // weight-state recv keys on the sender's side.
                        let key = match payload {
                            Payload::Act => c.map(|b| (b, payload_tag(payload), unit)),
                            Payload::Grad => {
                                (s < s_count - 1).then_some((s, payload_tag(payload), unit))
                            }
                            Payload::WeightState => in_flight
                                .keys()
                                .find(|(_, t, u)| *t == payload_tag(payload) && *u == unit)
                                .copied(),
                        };
                        // None: the frame has not been sent yet.
                        key.and_then(|k| in_flight.get(&k).copied())
                            .map(|arrival| stage_free[s].max(arrival))
                    }
                    _ => Some(stage_free[s]),
                };
                if let Some(t) = ready {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, s));
                    }
                }
            }
            let Some((_, s)) = best else {
                return Err("program deadlocked (unfeedable Recv)".into());
            };
            let op = program.stages[s].ops[cursor[s]];
            cursor[s] += 1;

            // Serial stage seconds this op occupies, plus any wire leg.
            let mut start = stage_free[s];
            let mut serial = 0.0f64;
            match op {
                IrOp::Forward { .. } => serial = fwd[s] + half_overhead,
                IrOp::Recompute { .. } => serial = fwd[s],
                IrOp::Backward { .. } => serial = bwd[s] + half_overhead,
                IrOp::FusedFwdLossBwd { .. } => serial = fwd[s] + bwd[s] + 2.0 * half_overhead,
                IrOp::StashPush { .. } => serial = stash_cost[s],
                IrOp::StashPop { .. } | IrOp::ApplyUpdate { .. } => {}
                IrOp::Recv { payload, unit } => {
                    let tag = payload_tag(payload);
                    let key = match payload {
                        Payload::Act => (s - 1, tag, unit),
                        Payload::Grad => (s, tag, unit),
                        Payload::WeightState => in_flight
                            .keys()
                            .find(|(_, t, u)| *t == tag && *u == unit)
                            .copied()
                            .expect("feasibility checked"),
                    };
                    let arrival = in_flight.remove(&key).expect("feasibility checked");
                    start = start.max(arrival);
                    let bytes = match payload {
                        Payload::WeightState => 0.0, // priced by SwitchPlan
                        _ => frame_bytes[key.0],
                    };
                    serial = codec(bytes);
                }
                IrOp::Send { payload, unit } => {
                    let (boundary, dir) = match payload {
                        Payload::Act => (s, 0usize),
                        Payload::Grad => (s - 1, 1),
                        // Migration frames: ride toward whichever neighbor
                        // exists; cost is carried by SwitchPlan, so only
                        // FIFO ordering matters here.
                        Payload::WeightState => (s.min(s_count.saturating_sub(2)), 0),
                    };
                    let bytes = match payload {
                        Payload::WeightState => 0.0,
                        _ => frame_bytes[boundary],
                    };
                    serial = codec(bytes);
                    // Encode, then serialize onto the FIFO link.
                    let sent = {
                        let slot = argmin(&slot_free);
                        let b = start.max(slot_free[slot]);
                        slot_free[slot] = b + serial;
                        b + serial
                    };
                    let wire_start = sent.max(link_free[boundary][dir]);
                    let arrival = wire_start + bytes * link[boundary];
                    link_free[boundary][dir] = arrival;
                    in_flight.insert((boundary, payload_tag(payload), unit), arrival);
                    stage_free[s] = sent;
                    makespan = makespan.max(arrival);
                    if s == 0 {
                        let e = stage0_done.entry(op.mb()).or_insert(0.0);
                        *e = e.max(sent);
                    }
                    continue;
                }
            }
            let end = if serial > 0.0 {
                let slot = argmin(&slot_free);
                let b = start.max(slot_free[slot]);
                slot_free[slot] = b + serial;
                b + serial
            } else {
                start
            };
            stage_free[s] = end;
            makespan = makespan.max(end);
            if s == 0 {
                let e = stage0_done.entry(op.mb()).or_insert(0.0);
                *e = e.max(end);
            }
        }

        Ok(ProgramEval {
            completions: stage0_done.into_values().collect(),
            makespan,
            batch: self.profile.batch,
        })
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticModel;
    use crate::partition::Stage;
    use crate::schedule::ScheduleKind;
    use crate::sync::SyncScheme;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterTopology, GpuId};
    use ap_ir::generate;
    use ap_models::{synthetic_uniform, ModelProfile};

    fn setup() -> (ModelProfile, Partition, ClusterState) {
        let model = synthetic_uniform(6, 2e9, 4e5, 8e5);
        let profile = ModelProfile::with_batch(&model, 32);
        let partition = Partition {
            stages: vec![
                Stage::new(0..2, vec![GpuId(0)]),
                Stage::new(2..4, vec![GpuId(1)]),
                Stage::new(4..6, vec![GpuId(2)]),
            ],
            in_flight: 3,
        };
        let state = ClusterState::new(ClusterTopology::single_switch(3, 1, GpuKind::P100, 10.0));
        (profile, partition, state)
    }

    fn pricer<'a>(
        profile: &'a ModelProfile,
        partition: &'a Partition,
        state: &'a ClusterState,
    ) -> ProgramPricer<'a> {
        ProgramPricer {
            profile,
            partition,
            state,
            framework: Framework::pytorch(),
            calibration: None,
        }
    }

    fn throughput(kind: ScheduleKind) -> f64 {
        let (profile, partition, state) = setup();
        let p = generate(kind, 3, 48, 3);
        pricer(&profile, &partition, &state)
            .price(&p)
            .unwrap()
            .steady_throughput(16)
    }

    #[test]
    fn pipedream_pricing_tracks_the_analytic_closed_form() {
        let (profile, partition, state) = setup();
        let analytic = AnalyticModel {
            profile: &profile,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
            calibration: None,
        }
        .throughput(&partition, &state);
        let priced = throughput(ScheduleKind::PipeDreamAsync);
        let ratio = priced / analytic;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "priced {priced} vs analytic {analytic} (ratio {ratio})"
        );
    }

    #[test]
    fn async_beats_flush_schedules() {
        let pd = throughput(ScheduleKind::PipeDreamAsync);
        let dapple = throughput(ScheduleKind::Dapple { micro_batches: 4 });
        let gpipe = throughput(ScheduleKind::GPipe { micro_batches: 4 });
        assert!(pd > dapple, "PipeDream {pd} <= DAPPLE {dapple}");
        // GPipe pays the recompute tax on top of the same bubble.
        assert!(dapple > gpipe, "DAPPLE {dapple} <= GPipe {gpipe}");
    }

    #[test]
    fn more_micro_batches_shrink_the_priced_bubble() {
        let m2 = throughput(ScheduleKind::GPipe { micro_batches: 2 });
        let m8 = throughput(ScheduleKind::GPipe { micro_batches: 8 });
        assert!(m8 > m2, "m=8 {m8} <= m=2 {m2}");
    }

    #[test]
    fn pricing_is_deterministic() {
        let (profile, partition, state) = setup();
        let program = generate(ScheduleKind::Dapple { micro_batches: 4 }, 3, 24, 3);
        let a = pricer(&profile, &partition, &state)
            .price(&program)
            .unwrap();
        let b = pricer(&profile, &partition, &state)
            .price(&program)
            .unwrap();
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn calibration_slows_the_priced_program_down() {
        let (profile, partition, state) = setup();
        let program = generate(ScheduleKind::PipeDreamAsync, 3, 48, 3);
        let raw = pricer(&profile, &partition, &state)
            .price(&program)
            .unwrap()
            .steady_throughput(16);
        let mut p = pricer(&profile, &partition, &state);
        p.calibration = Some(Calibration {
            per_frame_s: 2e-6,
            per_byte_s: 1e-9,
            stage_overhead_s: 2e-5,
            stash_byte_s: 5e-10,
            compute_slots: 2,
        });
        let calibrated = p.price(&program).unwrap().steady_throughput(16);
        assert!(calibrated < raw, "calibrated {calibrated} >= raw {raw}");
    }

    #[test]
    fn completions_cover_every_mini_batch() {
        let (profile, partition, state) = setup();
        for kind in ScheduleKind::zoo() {
            let program = generate(kind, 3, 12, 3);
            let eval = pricer(&profile, &partition, &state)
                .price(&program)
                .unwrap();
            assert_eq!(eval.completions.len(), 12, "{}", kind.label());
            assert!(
                eval.completions.windows(2).all(|w| w[0] <= w[1]),
                "{} completions must be monotone",
                kind.label()
            );
        }
    }
}
