//! Pipeline schedules — re-exported from the schedule IR crate.
//!
//! [`ScheduleKind`] moved to [`ap_ir`] so that the IR generators, this
//! simulator and the ap-exec runtime all speak the same schedule
//! vocabulary (DESIGN.md §10). Every `ap_pipesim::ScheduleKind` mention
//! keeps compiling: this is the same type.

pub use ap_ir::{ScheduleKind, DEFAULT_MICRO_BATCHES};
