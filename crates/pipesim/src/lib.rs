//! # ap-pipesim — pipeline-parallel training simulator
//!
//! The execution substrate the paper runs on real GPUs, rebuilt as a
//! simulator (see DESIGN.md §2 for the substitution argument). It models
//! pipelined DNN training over a shared cluster ([`ap_cluster`]) for a model
//! profile ([`ap_models::ModelProfile`]):
//!
//! * [`partition`] — stages (contiguous layer ranges with data-parallel
//!   worker sets) and the number of in-flight mini-batches, PipeDream's
//!   "work partition";
//! * [`schedule`] — the pipeline flavours the paper touches: PipeDream's
//!   asynchronous 1F1B, GPipe, DAPPLE, Chimera, PipeDream-2BW;
//! * [`sync`] — data-parallel gradient synchronization (Parameter Server
//!   and Ring All-reduce, the two schemes of Figure 8);
//! * [`framework`] — per-framework constant factors (TensorFlow / MXNet /
//!   PyTorch panels of Figure 8);
//! * [`analytic`] — a fast closed-form steady-state throughput model used
//!   inside planners;
//! * [`program`] — a deterministic pricer for declarative [`ap_ir`]
//!   op-programs, covering the whole schedule zoo with one cost walk;
//! * [`engine`] — a discrete-event simulation with fluid fair-share
//!   networking, 1F1B scheduling, weight versions/staleness, per-iteration
//!   speed traces and worker timelines (Figure 2);
//! * [`switching`] — what a re-partition costs: stop-and-restart vs
//!   AutoPipe's layer-by-layer fine-grained switching (§4.4);
//! * [`convergence`] — a staleness-aware statistical model of top-1
//!   accuracy curves (BSP / TAP / weight-stashing semantics, Figure 11).

pub mod analytic;
pub mod calibration;
pub mod convergence;
pub mod engine;
pub mod framework;
pub mod json;
pub mod memory;
pub mod partition;
pub mod program;
pub mod schedule;
pub mod switching;
pub mod sync;
pub mod trace;

pub use analytic::AnalyticModel;
pub use calibration::Calibration;
pub use convergence::{accuracy_curve, ConvergenceModel, Paradigm};
pub use engine::{
    Engine, EngineConfig, FaultRecord, IterationRecord, SimError, SimResult, TimelineSegment,
    WorkKind,
};
pub use framework::Framework;
pub use memory::{cap_in_flight, estimate as estimate_memory, max_in_flight, MemoryEstimate};
pub use partition::{Partition, PartitionError, Stage};
pub use program::{ProgramEval, ProgramPricer};
pub use schedule::ScheduleKind;
pub use switching::{
    abort_recovery_cost, abort_rollback_cost, fine_grained_cost, stop_restart_cost, MigrationStep,
    SwitchPlan,
};
pub use sync::SyncScheme;
pub use trace::{
    segments_to_chrome_trace, to_chrome_trace, to_chrome_trace_with_events, TraceEvent,
};
