//! Measured runtime overheads the analytic model would otherwise guess.
//!
//! `repro exec-validate` showed measured throughput landing ~50% below
//! the analytic prediction: the real runtime pays codec encode/decode,
//! per-frame channel bookkeeping, weight-stash snapshots and per-op
//! dispatch that per-layer compute calibration cannot see. A
//! [`Calibration`] carries those residual costs as first-class model
//! inputs, fitted from short instrumented runs of the real runtime
//! (`ap-exec`'s `fit_calibration`) rather than guessed constants.
//!
//! All costs are charged to **stage occupancy**, not link time: encode
//! and decode run on the stage's own OS thread, serially with compute,
//! so a busy codec delays the next forward exactly like extra FLOPs
//! would. See DESIGN.md §9 "Calibrated cost model".

use ap_json::{Json, ToJson};

/// Fitted per-host runtime overheads, all in seconds.
///
/// `None` in the model structs means "raw": predict from per-layer
/// compute times and wire bytes alone, as before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Fixed cost of one codec operation (one encode *or* one decode of
    /// one frame), independent of payload size.
    pub per_frame_s: f64,
    /// Per payload-byte cost of one codec operation (serialize or
    /// deserialize one byte of an activation/gradient tensor).
    pub per_byte_s: f64,
    /// Fixed per-stage, per-mini-batch overhead: op dispatch, input/loss
    /// generation, channel locking — everything left over after per-layer
    /// compute is accounted.
    pub stage_overhead_s: f64,
    /// Per parameter-byte cost of the weight-stash snapshot a non-final
    /// stage takes at each forward when `in_flight > 1`.
    pub stash_byte_s: f64,
    /// Compute slots (cores) the execution host gives stage threads;
    /// `0` means uncontended (every stage computes concurrently — the
    /// raw model's assumption). When positive and smaller than the
    /// number of stages, stage threads time-share cores, so the host can
    /// complete at most `compute_slots` stage-seconds of occupancy per
    /// wall-second: `Σ stage occupancy / compute_slots` becomes one more
    /// bottleneck term alongside the slowest stage and the slowest link.
    /// On a one-core host that term is the serialized sum of all stage
    /// work — pipelining hides nothing there, which is exactly what such
    /// a host does.
    pub compute_slots: usize,
}

impl Calibration {
    /// The all-zero calibration: applying it predicts exactly the raw
    /// model.
    pub fn zero() -> Self {
        Calibration {
            per_frame_s: 0.0,
            per_byte_s: 0.0,
            stage_overhead_s: 0.0,
            stash_byte_s: 0.0,
            compute_slots: 0,
        }
    }

    /// Seconds for one codec operation (encode or decode) on a frame
    /// with `bytes` of tensor payload.
    pub fn codec_op_s(&self, bytes: f64) -> f64 {
        self.per_frame_s + bytes * self.per_byte_s
    }

    /// Extra stage-occupancy seconds one *forward* pass pays at a stage:
    /// decode the inbound activation (if any), encode the outbound one
    /// (if any), snapshot the stash, plus half the fixed stage overhead
    /// (the other half is charged on the backward).
    pub fn forward_extra_s(
        &self,
        in_bytes: Option<f64>,
        out_bytes: Option<f64>,
        stash_bytes: f64,
    ) -> f64 {
        self.stage_overhead_s / 2.0
            + in_bytes.map_or(0.0, |b| self.codec_op_s(b))
            + out_bytes.map_or(0.0, |b| self.codec_op_s(b))
            + stash_bytes * self.stash_byte_s
    }

    /// Extra stage-occupancy seconds one *backward* pass pays: decode
    /// the inbound gradient, encode the outbound one, half the fixed
    /// overhead. Gradient frames across a boundary carry the same tensor
    /// shape as the activations, so the byte counts mirror the forward.
    pub fn backward_extra_s(&self, in_bytes: Option<f64>, out_bytes: Option<f64>) -> f64 {
        self.stage_overhead_s / 2.0
            + in_bytes.map_or(0.0, |b| self.codec_op_s(b))
            + out_bytes.map_or(0.0, |b| self.codec_op_s(b))
    }

    /// Total extra stage-occupancy seconds per mini-batch (forward +
    /// backward) — what the closed-form analytic model folds into
    /// `stage_time`.
    pub fn stage_extra_s(
        &self,
        in_bytes: Option<f64>,
        out_bytes: Option<f64>,
        stash_bytes: f64,
    ) -> f64 {
        self.forward_extra_s(in_bytes, out_bytes, stash_bytes)
            + self.backward_extra_s(in_bytes, out_bytes)
    }

    /// Parse from the JSON object written by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("calibration needs numeric field {k:?}"))
        };
        // Absent in pre-contention artifacts: treat as uncontended.
        let slots = match v.get("compute_slots") {
            None => 0,
            Some(s) => s
                .as_usize()
                .ok_or_else(|| "calibration field \"compute_slots\" must be a usize".to_string())?,
        };
        let c = Calibration {
            per_frame_s: num("per_frame_s")?,
            per_byte_s: num("per_byte_s")?,
            stage_overhead_s: num("stage_overhead_s")?,
            stash_byte_s: num("stash_byte_s")?,
            compute_slots: slots,
        };
        for (k, x) in [
            ("per_frame_s", c.per_frame_s),
            ("per_byte_s", c.per_byte_s),
            ("stage_overhead_s", c.stage_overhead_s),
            ("stash_byte_s", c.stash_byte_s),
        ] {
            if !(x.is_finite() && x >= 0.0) {
                return Err(format!("calibration field {k:?} must be finite and >= 0"));
            }
        }
        Ok(c)
    }
}

impl ToJson for Calibration {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("per_frame_s", self.per_frame_s.to_json()),
            ("per_byte_s", self.per_byte_s.to_json()),
            ("stage_overhead_s", self.stage_overhead_s.to_json()),
            ("stash_byte_s", self.stash_byte_s.to_json()),
            ("compute_slots", self.compute_slots.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Calibration {
        Calibration {
            per_frame_s: 2e-6,
            per_byte_s: 1e-10,
            stage_overhead_s: 3e-5,
            stash_byte_s: 5e-11,
            compute_slots: 0,
        }
    }

    #[test]
    fn zero_calibration_adds_nothing() {
        let z = Calibration::zero();
        assert_eq!(z.stage_extra_s(Some(1e6), Some(1e6), 1e7), 0.0);
        assert_eq!(z.forward_extra_s(None, None, 0.0), 0.0);
    }

    #[test]
    fn stage_extra_is_forward_plus_backward() {
        let c = sample();
        let f = c.forward_extra_s(Some(4096.0), Some(8192.0), 1e5);
        let b = c.backward_extra_s(Some(4096.0), Some(8192.0));
        let tot = c.stage_extra_s(Some(4096.0), Some(8192.0), 1e5);
        assert!((tot - (f + b)).abs() < 1e-15);
    }

    #[test]
    fn boundary_frames_cost_fixed_plus_per_byte() {
        let c = sample();
        // A middle stage pays 4 codec ops per mini-batch (act in/out,
        // grad in/out); an edge stage with one boundary pays 2.
        let middle = c.stage_extra_s(Some(1000.0), Some(1000.0), 0.0);
        let edge = c.stage_extra_s(Some(1000.0), None, 0.0);
        let per_op = c.codec_op_s(1000.0);
        assert!((middle - edge - 2.0 * per_op).abs() < 1e-15);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let c = sample();
        let j = ap_json::parse(&c.to_json().pretty()).unwrap();
        assert_eq!(Calibration::from_json(&j).unwrap(), c);
    }

    #[test]
    fn from_json_defaults_missing_compute_slots_to_uncontended() {
        let j = ap_json::parse(
            r#"{"per_frame_s": 1e-6, "per_byte_s": 0.0,
                "stage_overhead_s": 0.0, "stash_byte_s": 0.0}"#,
        )
        .unwrap();
        assert_eq!(Calibration::from_json(&j).unwrap().compute_slots, 0);
    }

    #[test]
    fn from_json_rejects_negative_and_missing() {
        let j = ap_json::parse(
            r#"{"per_frame_s": -1.0, "per_byte_s": 0.0,
                "stage_overhead_s": 0.0, "stash_byte_s": 0.0}"#,
        )
        .unwrap();
        assert!(Calibration::from_json(&j).is_err());
        let j = ap_json::parse(r#"{"per_frame_s": 1.0}"#).unwrap();
        assert!(Calibration::from_json(&j).is_err());
    }
}
