//! Data-parallel gradient synchronization schemes.
//!
//! Replicated stages must synchronize weight gradients each update. The
//! paper evaluates the two common schemes (§5.1): **Parameter Server** and
//! **Ring All-reduce** — and observes that PipeDream's planner *assumes*
//! ring all-reduce, making it inaccurate under PS (§5.2 observation 2).
//! These cost models are the ground truth the simulator charges; PipeDream's
//! planner in `ap-planner` deliberately keeps its (sometimes wrong)
//! all-reduce assumption, exactly like the original system.

use ap_cluster::{ClusterState, GpuId, LinkId};

/// How a replicated stage synchronizes gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncScheme {
    /// Workers push gradients to / pull fresh weights from a parameter
    /// server hosted alongside the first replica.
    ParameterServer,
    /// Bandwidth-optimal ring all-reduce.
    RingAllReduce,
}

impl SyncScheme {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SyncScheme::ParameterServer => "PS",
            SyncScheme::RingAllReduce => "Ring",
        }
    }

    /// Wall-clock seconds to synchronize `bytes` of gradients across
    /// `workers` in `state`. Zero for a single replica.
    pub fn sync_time(self, bytes: f64, workers: &[GpuId], state: &ClusterState) -> f64 {
        let m = workers.len();
        if m <= 1 {
            return 0.0;
        }
        match self {
            SyncScheme::RingAllReduce => {
                // Classic ring: 2(m-1)/m * bytes over the slowest hop.
                let bw = slowest_pairwise_bw(workers, state);
                2.0 * (m as f64 - 1.0) / m as f64 * bytes / bw
            }
            SyncScheme::ParameterServer => {
                // The PS sits with replica 0: it ingests (m-1) pushes and
                // serves (m-1) pulls over its own NIC, which becomes the
                // bottleneck; remote workers move 2*bytes each.
                let server = workers[0];
                let server_link = worker_bandwidth(server, state);
                let server_time = 2.0 * bytes * (m as f64 - 1.0) / server_link;
                let worker_time = workers[1..]
                    .iter()
                    .map(|&w| 2.0 * bytes / pair_bw(server, w, state))
                    .fold(0.0_f64, f64::max);
                server_time.max(worker_time)
            }
        }
    }
}

impl SyncScheme {
    /// Wall-clock seconds for **one replica's update** to synchronize when
    /// all `m` replicas run their own update concurrently (PipeDream's
    /// asynchronous round-robin: every mini-batch triggers its own sync,
    /// so `m` syncs share the links at steady state).
    ///
    /// * PS: the server NIC carries `m-1` concurrent push+pull pairs —
    ///   which is exactly what [`SyncScheme::sync_time`] already charges.
    /// * Ring: `m` concurrent ring passes each get `1/m` of every hop, so
    ///   one pass takes `m` times the exclusive ring time.
    pub fn async_update_time(self, bytes: f64, workers: &[GpuId], state: &ClusterState) -> f64 {
        let m = workers.len();
        if m <= 1 {
            return 0.0;
        }
        match self {
            SyncScheme::ParameterServer => self.sync_time(bytes, workers, state),
            SyncScheme::RingAllReduce => m as f64 * self.sync_time(bytes, workers, state),
        }
    }
}

/// Available bandwidth of a worker's NIC (min of up/down, local fabric if
/// everything stays on one box).
pub fn worker_bandwidth(w: GpuId, state: &ClusterState) -> f64 {
    let s = state.topology.server_of(w);
    state
        .available_capacity(LinkId::Up(s))
        .min(state.available_capacity(LinkId::Down(s)))
}

/// Available bandwidth of the path between two workers.
pub fn pair_bw(a: GpuId, b: GpuId, state: &ClusterState) -> f64 {
    if state.topology.same_server(a, b) {
        state.topology.local_bytes_per_sec
    } else {
        let sa = state.topology.server_of(a);
        let sb = state.topology.server_of(b);
        state
            .available_capacity(LinkId::Up(sa))
            .min(state.available_capacity(LinkId::Down(sb)))
    }
}

/// The slowest pairwise hop around a ring of workers.
fn slowest_pairwise_bw(workers: &[GpuId], state: &ClusterState) -> f64 {
    let m = workers.len();
    (0..m)
        .map(|i| pair_bw(workers[i], workers[(i + 1) % m], state))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_cluster::gbps;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::ClusterTopology;

    fn state(link_gbps: f64) -> ClusterState {
        ClusterState::new(ClusterTopology::single_switch(
            4,
            1,
            GpuKind::P100,
            link_gbps,
        ))
    }

    fn w(ids: &[usize]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn single_replica_costs_nothing() {
        let st = state(10.0);
        for s in [SyncScheme::ParameterServer, SyncScheme::RingAllReduce] {
            assert_eq!(s.sync_time(1e9, &w(&[0]), &st), 0.0);
        }
    }

    #[test]
    fn ring_matches_closed_form() {
        let st = state(10.0);
        let bytes = 1e9;
        let t = SyncScheme::RingAllReduce.sync_time(bytes, &w(&[0, 1, 2, 3]), &st);
        let want = 2.0 * 3.0 / 4.0 * bytes / gbps(10.0);
        assert!((t - want).abs() / want < 1e-9);
    }

    #[test]
    fn ps_is_slower_than_ring_for_many_workers() {
        // PS serializes through one NIC, ring parallelizes: with 4 equal
        // workers PS must be strictly worse.
        let st = state(25.0);
        let ps = SyncScheme::ParameterServer.sync_time(1e9, &w(&[0, 1, 2, 3]), &st);
        let ring = SyncScheme::RingAllReduce.sync_time(1e9, &w(&[0, 1, 2, 3]), &st);
        assert!(ps > ring, "ps {ps} vs ring {ring}");
    }

    #[test]
    fn ps_two_workers_is_push_plus_pull() {
        let st = state(10.0);
        let bytes = 5e8;
        let t = SyncScheme::ParameterServer.sync_time(bytes, &w(&[0, 1]), &st);
        let want = 2.0 * bytes / gbps(10.0);
        assert!((t - want).abs() / want < 1e-9);
    }

    #[test]
    fn colocated_replicas_use_local_fabric() {
        let topo = ClusterTopology::single_switch(1, 2, GpuKind::P100, 10.0);
        let st = ClusterState::new(topo);
        let t = SyncScheme::RingAllReduce.sync_time(1e9, &w(&[0, 1]), &st);
        // Local PCIe at 12 GB/s, so 2*(1/2)*1e9/12e9.
        let want = 1e9 / 12.0e9;
        assert!((t - want).abs() / want < 1e-9);
    }

    #[test]
    fn sync_scales_with_bytes_and_inverse_bandwidth() {
        let st10 = state(10.0);
        let st40 = state(40.0);
        let g = SyncScheme::RingAllReduce;
        let a = g.sync_time(1e9, &w(&[0, 1]), &st10);
        let b = g.sync_time(2e9, &w(&[0, 1]), &st10);
        let c = g.sync_time(1e9, &w(&[0, 1]), &st40);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert!((a / c - 4.0).abs() < 1e-9);
    }
}
