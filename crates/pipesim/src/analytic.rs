//! Closed-form steady-state throughput model.
//!
//! Planners need thousands of partition evaluations per decision; the
//! discrete-event engine is too slow for that inner loop. This model
//! computes the steady-state iteration time of a partition under the
//! *actual* cluster state — heterogeneous per-worker bandwidth and compute,
//! PS or Ring sync, framework constants, per-schedule bubbles — in O(L + N).
//!
//! The event engine cross-validates it: on uniform pipelines the two agree
//! within a few percent (see `tests/engine_vs_analytic.rs`).

use ap_cluster::ClusterState;
use ap_models::ModelProfile;

use crate::calibration::Calibration;
use crate::framework::Framework;
use crate::partition::Partition;
use crate::schedule::ScheduleKind;
use crate::sync::{pair_bw, SyncScheme};

/// Everything fixed about the workload except the partition and cluster
/// state.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticModel<'a> {
    /// Static model profile (Table 1 constants).
    pub profile: &'a ModelProfile,
    /// Gradient synchronization scheme for replicated stages.
    pub scheme: SyncScheme,
    /// Framework constant factors.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Fitted runtime overheads (codec, stash, dispatch); `None` predicts
    /// the raw compute/wire model.
    pub calibration: Option<Calibration>,
}

/// The result of evaluating one partition.
#[derive(Debug, Clone)]
pub struct Eval {
    /// Steady-state seconds per mini-batch.
    pub iteration_time: f64,
    /// Samples (images) per second.
    pub throughput: f64,
    /// Per-stage occupancy time (compute + sync) per mini-batch.
    pub stage_times: Vec<f64>,
    /// Per-cut communication time per mini-batch.
    pub cut_times: Vec<f64>,
    /// Index of the bottleneck stage (or cut, offset by stage count;
    /// `stages + cuts` means the host's aggregate compute capacity).
    pub bottleneck: usize,
}

impl<'a> AnalyticModel<'a> {
    /// Time stage `s` spends per mini-batch: compute spread over its
    /// replicas plus (for replicated stages) gradient synchronization.
    pub fn stage_time(&self, partition: &Partition, s: usize, state: &ClusterState) -> f64 {
        let st = &partition.stages[s];
        let (lo, hi) = (st.layers.start, st.layers.end);
        // Replicated stages round-robin whole mini-batches (PipeDream's
        // scheme), so a straggling replica throttles the stage: the
        // sustained rate is m x the slowest replica, not the pooled sum.
        let m = st.workers.len() as f64;
        let occ = self.stage_occupancy(partition, s, state);
        let sync_bytes = self.profile.range_params(lo, hi);
        if self.schedule.is_async() {
            // Each replica's update cadence is paced by whichever is
            // slower: computing its own mini-batch or pushing its update
            // through the contended fabric (the next backward is gated on
            // the previous sync). The stage produces one mini-batch per
            // `cadence / m`.
            let sync_one = self
                .scheme
                .async_update_time(sync_bytes, &st.workers, state)
                / self.framework.comm_efficiency;
            occ.max(sync_one) / m
        } else {
            // Flush schedules synchronize the full stage once per
            // mini-batch at the barrier.
            let t_sync = self.scheme.sync_time(sync_bytes, &st.workers, state)
                / self.framework.comm_efficiency;
            occ / m + t_sync
        }
    }

    /// Per-mini-batch *CPU occupancy* of one replica of stage `s`:
    /// compute at the slowest replica's rate plus calibrated runtime
    /// overheads (codec ops on each boundary — one act + one grad frame
    /// per mini-batch, each encoded once and decoded once — the
    /// weight-stash snapshot, and the fixed dispatch/loss residual), all
    /// of which occupy the stage thread serially with compute. Excludes
    /// wire and sync time: those wait, they don't burn a core. Exactly
    /// one replica pays this per mini-batch, so it doubles as the stage's
    /// per-mini-batch contribution to host CPU demand.
    fn stage_occupancy(&self, partition: &Partition, s: usize, state: &ClusterState) -> f64 {
        let st = &partition.stages[s];
        let (lo, hi) = (st.layers.start, st.layers.end);
        let mut work = self.profile.range_work(lo, hi);
        // GPipe-style recomputation re-runs the forward (1/3 of fwd+bwd).
        work *= 1.0 + self.schedule.recompute_factor() / 3.0;
        let min_rate = st
            .workers
            .iter()
            .map(|&w| state.effective_flops(w) * self.framework.compute_efficiency)
            .fold(f64::INFINITY, f64::min);
        let extra = match self.calibration {
            Some(c) => {
                let last = partition.n_stages() - 1;
                let in_bytes = (s > 0).then(|| self.profile.cut_bytes(lo - 1));
                let out_bytes = (s < last).then(|| self.profile.cut_bytes(hi - 1));
                let stashes = self.schedule.is_async() && partition.in_flight > 1 && s < last;
                let stash_bytes = if stashes {
                    partition.stage_param_bytes(s, self.profile)
                } else {
                    0.0
                };
                c.stage_extra_s(in_bytes, out_bytes, stash_bytes)
            }
            None => 0.0,
        };
        work / min_rate + extra
    }

    /// Seconds per mini-batch the execution host's cores need to push
    /// every stage's work through `compute_slots` slots, or `None` when
    /// the calibration is absent or uncontended. With fewer cores than
    /// stages, pipelining cannot hide compute behind compute: the host
    /// can finish at most `slots` stage-seconds per wall-second, so the
    /// aggregate `Σ occupancy / slots` is a hard throughput floor — on a
    /// one-core host it is exactly the serialized sum of stage work.
    fn host_capacity_time(&self, partition: &Partition, state: &ClusterState) -> Option<f64> {
        let c = self.calibration?;
        if c.compute_slots == 0 || partition.n_stages() <= c.compute_slots {
            return None;
        }
        let total: f64 = (0..partition.n_stages())
            .map(|s| self.stage_occupancy(partition, s, state))
            .sum();
        Some(total / c.compute_slots as f64)
    }

    /// Activation/gradient transfer time across cut `c` (between stages
    /// `c` and `c+1`) per mini-batch. Forward activations and backward
    /// gradients ride opposite directions of full-duplex links, so the cut
    /// costs one activation tensor's worth of time.
    pub fn cut_time(&self, partition: &Partition, c: usize, state: &ClusterState) -> f64 {
        let cut_layer = partition.stages[c].layers.end - 1;
        let bytes = self.profile.cut_bytes(cut_layer);
        let senders = &partition.stages[c].workers;
        let receivers = &partition.stages[c + 1].workers;
        // Transfers pair replicas round-robin, so the mean *time* per
        // mini-batch is the average of per-pair times — i.e. the harmonic
        // mean of the pairwise bandwidths. (An arithmetic mean would let
        // one fast colocated pair hide many slow cross-server pairs.)
        let mut inv_sum = 0.0;
        let mut n = 0usize;
        for &a in senders {
            for &b in receivers {
                inv_sum += 1.0 / pair_bw(a, b, state);
                n += 1;
            }
        }
        let mean_time_per_byte = inv_sum / n as f64;
        bytes * mean_time_per_byte / self.framework.comm_efficiency
    }

    /// Evaluate a partition in the given cluster state.
    pub fn evaluate(&self, partition: &Partition, state: &ClusterState) -> Eval {
        debug_assert!(partition.validate(self.profile.n_layers()).is_ok());
        let s_count = partition.n_stages();
        let micro = self.schedule.micro_batches() as f64;

        // Per-mini-batch stage and cut times (micro-batching divides the
        // per-unit time but not the total).
        let stage_times: Vec<f64> = (0..s_count)
            .map(|s| self.stage_time(partition, s, state))
            .collect();
        let cut_times: Vec<f64> = (0..s_count.saturating_sub(1))
            .map(|c| self.cut_time(partition, c, state))
            .collect();

        let (mut bottleneck, mut unit) = (0usize, 0.0f64);
        for (i, &t) in stage_times.iter().enumerate() {
            if t > unit {
                unit = t;
                bottleneck = i;
            }
        }
        for (i, &t) in cut_times.iter().enumerate() {
            if t > unit {
                unit = t;
                bottleneck = s_count + i;
            }
        }
        // A host with fewer compute slots than stages adds one more
        // bottleneck: its aggregate capacity across all stage threads.
        if let Some(cap) = self.host_capacity_time(partition, state) {
            if cap > unit {
                unit = cap;
                bottleneck = s_count + cut_times.len();
            }
        }

        // Async: one mini-batch completes per bottleneck unit.
        // Sync-flush: m micro-batches at 1/m unit each, inflated by the
        // bubble fraction.
        let bubble = self.schedule.bubble_fraction(s_count);
        let iteration_time = if self.schedule.is_async() {
            unit + self.framework.per_iter_overhead
        } else {
            // Per-micro unit = unit / m; m units of useful work stretched
            // by fill/drain.
            let useful = micro * (unit / micro);
            useful / (1.0 - bubble) + self.framework.per_iter_overhead
        };
        let throughput = self.profile.batch as f64 / iteration_time;
        Eval {
            iteration_time,
            throughput,
            stage_times,
            cut_times,
            bottleneck,
        }
    }

    /// Throughput shortcut.
    pub fn throughput(&self, partition: &Partition, state: &ClusterState) -> f64 {
        self.evaluate(partition, state).throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Stage;
    use ap_cluster::gpu::GpuKind;
    use ap_cluster::{ClusterTopology, GpuId};
    use ap_models::{synthetic_uniform, ModelProfile};

    fn setup(link_gbps: f64) -> (ClusterState, ModelProfile) {
        let topo = ClusterTopology::single_switch(4, 1, GpuKind::P100, link_gbps);
        let model = synthetic_uniform(8, 1e9, 8e6, 4e6);
        let profile = ModelProfile::with_batch(&model, 32);
        (ClusterState::new(topo), profile)
    }

    fn model<'a>(profile: &'a ModelProfile, schedule: ScheduleKind) -> AnalyticModel<'a> {
        AnalyticModel {
            profile,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule,
            calibration: None,
        }
    }

    fn two_stage() -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0)]),
                Stage::new(4..8, vec![GpuId(1)]),
            ],
            in_flight: 2,
        }
    }

    #[test]
    fn balanced_pipeline_bottleneck_is_half_the_work() {
        let (st, p) = setup(100.0);
        let m = model(&p, ScheduleKind::PipeDreamAsync);
        let e = m.evaluate(&two_stage(), &st);
        // Each stage has half the model's work on one P100.
        let want = p.total_work() / 2.0 / GpuKind::P100.peak_flops();
        assert!((e.stage_times[0] - want).abs() / want < 1e-9);
        assert!((e.stage_times[1] - want).abs() / want < 1e-9);
        assert!(e.bottleneck < 2);
    }

    #[test]
    fn throughput_is_batch_over_iteration_time() {
        let (st, p) = setup(25.0);
        let m = model(&p, ScheduleKind::PipeDreamAsync);
        let e = m.evaluate(&two_stage(), &st);
        assert!((e.throughput - 32.0 / e.iteration_time).abs() < 1e-9);
    }

    #[test]
    fn low_bandwidth_makes_the_cut_the_bottleneck() {
        let (_, p) = setup(100.0);
        let slow = ClusterState::new(ClusterTopology::single_switch(
            4,
            1,
            GpuKind::P100,
            0.05, // 50 Mbps: activations dominate
        ));
        let m = model(&p, ScheduleKind::PipeDreamAsync);
        let e = m.evaluate(&two_stage(), &slow);
        assert_eq!(e.bottleneck, 2, "bottleneck should be the cut");
        assert!(e.cut_times[0] > e.stage_times[0]);
    }

    #[test]
    fn replication_speeds_up_the_bottleneck_stage() {
        let (st, p) = setup(100.0);
        let m = model(&p, ScheduleKind::PipeDreamAsync);
        let single = m.throughput(&two_stage(), &st);
        let replicated = Partition {
            stages: vec![
                Stage::new(0..4, vec![GpuId(0), GpuId(2)]),
                Stage::new(4..8, vec![GpuId(1), GpuId(3)]),
            ],
            in_flight: 2,
        };
        let double = m.throughput(&replicated, &st);
        assert!(
            double > 1.5 * single,
            "2x replicas should nearly double throughput: {single} -> {double}"
        );
    }

    #[test]
    fn sync_flush_schedules_pay_a_bubble() {
        let (st, p) = setup(100.0);
        let part = two_stage();
        let async_tp = model(&p, ScheduleKind::PipeDreamAsync).throughput(&part, &st);
        let dapple_tp = model(&p, ScheduleKind::Dapple { micro_batches: 4 }).throughput(&part, &st);
        assert!(dapple_tp < async_tp);
        // More micro-batches shrink the gap.
        let dapple16 = model(&p, ScheduleKind::Dapple { micro_batches: 16 }).throughput(&part, &st);
        assert!(dapple16 > dapple_tp);
    }

    #[test]
    fn gpipe_recompute_costs_extra() {
        let (st, p) = setup(100.0);
        let part = two_stage();
        let gpipe = model(&p, ScheduleKind::GPipe { micro_batches: 8 }).throughput(&part, &st);
        let dapple = model(&p, ScheduleKind::Dapple { micro_batches: 8 }).throughput(&part, &st);
        assert!(gpipe < dapple, "recompute must cost: {gpipe} vs {dapple}");
    }

    #[test]
    fn chimera_beats_dapple_at_equal_micro_batches() {
        let (st, p) = setup(100.0);
        let part = two_stage();
        let dapple = model(&p, ScheduleKind::Dapple { micro_batches: 4 }).throughput(&part, &st);
        let chimera = model(&p, ScheduleKind::Chimera { micro_batches: 4 }).throughput(&part, &st);
        assert!(chimera > dapple);
    }

    #[test]
    fn calibration_lowers_predictions_and_zero_is_identity() {
        let (st, p) = setup(100.0);
        let mut m = model(&p, ScheduleKind::PipeDreamAsync);
        let part = two_stage();
        let raw = m.throughput(&part, &st);
        m.calibration = Some(Calibration::zero());
        assert_eq!(m.throughput(&part, &st), raw, "zero calibration is raw");
        m.calibration = Some(Calibration {
            per_frame_s: 1e-4,
            per_byte_s: 1e-9,
            stage_overhead_s: 1e-3,
            stash_byte_s: 1e-9,
            compute_slots: 0,
        });
        let cal = m.throughput(&part, &st);
        assert!(
            cal < raw,
            "calibrated must price in overheads: {cal} vs {raw}"
        );
    }

    #[test]
    fn one_compute_slot_serializes_the_stages() {
        let (st, p) = setup(100.0);
        let mut m = model(&p, ScheduleKind::PipeDreamAsync);
        m.calibration = Some(Calibration::zero());
        let part = two_stage();
        let uncontended = m.evaluate(&part, &st);
        // One slot: both stage threads share a single core, so the
        // iteration unit is the *sum* of stage occupancies, not the max.
        let mut c = Calibration::zero();
        c.compute_slots = 1;
        m.calibration = Some(c);
        let serialized = m.evaluate(&part, &st);
        let sum: f64 = uncontended.stage_times.iter().sum();
        let unit = serialized.iteration_time - m.framework.per_iter_overhead;
        assert!((unit - sum).abs() < 1e-12, "{unit} vs {sum}");
        assert_eq!(
            serialized.bottleneck,
            part.n_stages() + 1,
            "bottleneck index past stages and cuts means host capacity"
        );
        // Slots >= stages: capacity can't bind, prediction is unchanged.
        c.compute_slots = 2;
        m.calibration = Some(c);
        let fits = m.evaluate(&part, &st);
        assert_eq!(fits.iteration_time, uncontended.iteration_time);
    }

    #[test]
    fn contention_halves_compute_bound_throughput() {
        let (mut st, p) = setup(100.0);
        let m = model(&p, ScheduleKind::PipeDreamAsync);
        let part = two_stage();
        let before = m.throughput(&part, &st);
        for g in 0..2 {
            st.topology.gpu_mut(GpuId(g)).colocated_jobs = 2;
        }
        let after = m.throughput(&part, &st);
        assert!((before / after - 2.0).abs() < 0.2, "{before} vs {after}");
    }
}
