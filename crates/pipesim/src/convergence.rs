//! Statistical convergence model (Figure 11).
//!
//! The paper compares top-1 accuracy over wall-clock time for AutoPipe,
//! PipeDream, BSP (bulk-synchronous) and TAP (totally asynchronous). The
//! mechanisms that separate them are (a) raw throughput and (b) gradient
//! staleness semantics:
//!
//! * **BSP** — no staleness, lowest throughput (a barrier every step);
//! * **PipeDream / AutoPipe** — weight stashing keeps every mini-batch
//!   internally consistent, staleness is bounded by the in-flight count, so
//!   they reach the *same* plateau as BSP (the paper: "AutoPipe can achieve
//!   the same top-1 accuracy as PipeDream and BSP");
//! * **TAP** — unbounded, inconsistent updates degrade the achievable
//!   plateau (the paper measures AutoPipe 1.42x / 1.35x above TAP on
//!   ResNet50 / VGG16).
//!
//! Accuracy follows a saturating-exponential learning curve in *effective*
//! samples, where staleness discounts per-sample progress. This reproduces
//! the ordering and plateau behaviour without running SGD for 80 hours.

/// Synchronization paradigm of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Bulk-synchronous parallel: barrier every mini-batch.
    Bsp,
    /// Totally asynchronous parallel: no consistency control.
    Tap,
    /// PipeDream: async pipeline with weight stashing.
    PipeDream,
    /// AutoPipe-enhanced PipeDream (same semantics, higher throughput).
    AutoPipe,
}

impl Paradigm {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Paradigm::Bsp => "BSP",
            Paradigm::Tap => "TAP",
            Paradigm::PipeDream => "PipeDream",
            Paradigm::AutoPipe => "AutoPipe",
        }
    }

    /// Plateau multiplier on the model's best accuracy.
    fn plateau_factor(self) -> f64 {
        match self {
            // Stashing/barriers preserve the full plateau.
            Paradigm::Bsp | Paradigm::PipeDream | Paradigm::AutoPipe => 1.0,
            // Unbounded staleness costs ~1.4x of final accuracy.
            Paradigm::Tap => 1.0 / 1.40,
        }
    }

    /// Per-sample progress discount given mean staleness `s`.
    fn progress_factor(self, staleness: f64) -> f64 {
        match self {
            Paradigm::Bsp => 1.0,
            // Stashed-but-stale gradients slow progress mildly.
            Paradigm::PipeDream | Paradigm::AutoPipe => 1.0 / (1.0 + 0.08 * staleness),
            // Inconsistent updates waste a large fraction of samples.
            Paradigm::Tap => 1.0 / (1.0 + 0.30 * staleness),
        }
    }
}

/// Learning-curve constants for one model/dataset pair.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceModel {
    /// Best reachable top-1 accuracy in percent (synchronous training).
    pub max_accuracy: f64,
    /// Samples at which the curve reaches ~63% of the plateau.
    pub tau_samples: f64,
}

impl ConvergenceModel {
    /// ResNet50 on ImageNet-format data: ~76% top-1. The time constant is
    /// calibrated so that at the paper's testbed throughput (~100 img/s)
    /// the curve saturates within the ~30 hours of Figure 11a.
    pub fn resnet50() -> Self {
        ConvergenceModel {
            max_accuracy: 76.0,
            tau_samples: 3.0 * 1.28e6,
        }
    }

    /// VGG16: ~71.5% top-1, saturating within the ~80 hours of Figure 11b
    /// at VGG16's lower training throughput.
    pub fn vgg16() -> Self {
        ConvergenceModel {
            max_accuracy: 71.5,
            tau_samples: 5.0 * 1.28e6,
        }
    }

    /// Accuracy (percent) after `t` seconds at `throughput` samples/sec
    /// with the paradigm's staleness semantics.
    pub fn accuracy_at(&self, paradigm: Paradigm, throughput: f64, staleness: f64, t: f64) -> f64 {
        let eff = throughput * t * paradigm.progress_factor(staleness);
        let plateau = self.max_accuracy * paradigm.plateau_factor();
        plateau * (1.0 - (-eff / self.tau_samples).exp())
    }

    /// Seconds until `target` percent accuracy, or `None` if unreachable.
    pub fn time_to_accuracy(
        &self,
        paradigm: Paradigm,
        throughput: f64,
        staleness: f64,
        target: f64,
    ) -> Option<f64> {
        let plateau = self.max_accuracy * paradigm.plateau_factor();
        if target >= plateau || throughput <= 0.0 {
            return None;
        }
        let eff_needed = -self.tau_samples * (1.0 - target / plateau).ln();
        Some(eff_needed / (throughput * paradigm.progress_factor(staleness)))
    }
}

/// Sampled accuracy-vs-time curve: `(hours, accuracy_percent)`.
pub fn accuracy_curve(
    model: &ConvergenceModel,
    paradigm: Paradigm,
    throughput: f64,
    staleness: f64,
    horizon_hours: f64,
    points: usize,
) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two curve points");
    (0..points)
        .map(|i| {
            let h = horizon_hours * i as f64 / (points - 1) as f64;
            (
                h,
                model.accuracy_at(paradigm, throughput, staleness, h * 3600.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stash_paradigms_share_bsp_plateau_and_tap_does_not() {
        let m = ConvergenceModel::resnet50();
        let long = 1e9;
        let bsp = m.accuracy_at(Paradigm::Bsp, 100.0, 0.0, long);
        let pd = m.accuracy_at(Paradigm::PipeDream, 100.0, 3.0, long);
        let ap = m.accuracy_at(Paradigm::AutoPipe, 150.0, 3.0, long);
        let tap = m.accuracy_at(Paradigm::Tap, 200.0, 10.0, long);
        assert!((bsp - pd).abs() < 0.1);
        assert!((bsp - ap).abs() < 0.1);
        // Paper: ~1.42x over TAP at convergence.
        let ratio = ap / tap;
        assert!((1.3..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_throughput_converges_faster() {
        let m = ConvergenceModel::resnet50();
        let slow = m
            .time_to_accuracy(Paradigm::PipeDream, 50.0, 3.0, 70.0)
            .unwrap();
        let fast = m
            .time_to_accuracy(Paradigm::AutoPipe, 90.0, 3.0, 70.0)
            .unwrap();
        assert!(fast < slow);
        assert!(((slow / fast) - 90.0 / 50.0).abs() < 1e-6);
    }

    #[test]
    fn tap_never_reaches_the_full_plateau() {
        let m = ConvergenceModel::vgg16();
        assert!(m
            .time_to_accuracy(Paradigm::Tap, 1000.0, 5.0, 70.0)
            .is_none());
        assert!(m.time_to_accuracy(Paradigm::Bsp, 10.0, 0.0, 70.0).is_some());
    }

    #[test]
    fn accuracy_is_monotone_in_time() {
        let m = ConvergenceModel::resnet50();
        let curve = accuracy_curve(&m, Paradigm::AutoPipe, 120.0, 3.0, 30.0, 50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve[0].1, 0.0);
        assert!(curve.last().unwrap().1 > 70.0);
    }

    #[test]
    fn staleness_slows_progress() {
        let m = ConvergenceModel::resnet50();
        let fresh = m.accuracy_at(Paradigm::PipeDream, 100.0, 0.0, 3600.0 * 5.0);
        let stale = m.accuracy_at(Paradigm::PipeDream, 100.0, 8.0, 3600.0 * 5.0);
        assert!(fresh > stale);
    }
}
