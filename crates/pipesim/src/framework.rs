//! ML-framework constant factors.
//!
//! Figure 8 repeats the static experiment under TensorFlow, MXNet and
//! PyTorch. Framework choice does not change *who wins*, only constant
//! factors: per-iteration launch/dispatch overhead and how close the
//! communication stack gets to line rate. We encode published
//! rule-of-thumb differences; see DESIGN.md §2.

/// Constant factors of an ML framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Framework {
    /// Name for reports.
    pub name: &'static str,
    /// Fixed per-iteration overhead in seconds (kernel launches, graph
    /// dispatch, Python driver).
    pub per_iter_overhead: f64,
    /// Fraction of nominal link bandwidth the comm stack achieves.
    pub comm_efficiency: f64,
    /// Fraction of device compute the kernels achieve relative to the
    /// baseline (PyTorch = 1.0).
    pub compute_efficiency: f64,
}

impl Framework {
    /// PyTorch (the paper integrates AutoPipe into PyTorch).
    pub fn pytorch() -> Self {
        Framework {
            name: "pytorch",
            per_iter_overhead: 0.004,
            comm_efficiency: 0.92,
            compute_efficiency: 1.0,
        }
    }

    /// TensorFlow.
    pub fn tensorflow() -> Self {
        Framework {
            name: "tensorflow",
            per_iter_overhead: 0.006,
            comm_efficiency: 0.88,
            compute_efficiency: 0.97,
        }
    }

    /// MXNet.
    pub fn mxnet() -> Self {
        Framework {
            name: "mxnet",
            per_iter_overhead: 0.005,
            comm_efficiency: 0.90,
            compute_efficiency: 0.98,
        }
    }

    /// All three, for sweeps.
    pub fn all() -> [Framework; 3] {
        [Self::tensorflow(), Self::mxnet(), Self::pytorch()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_are_fractions() {
        for f in Framework::all() {
            assert!(f.comm_efficiency > 0.0 && f.comm_efficiency <= 1.0);
            assert!(f.compute_efficiency > 0.0 && f.compute_efficiency <= 1.0);
            assert!(f.per_iter_overhead >= 0.0);
        }
    }

    #[test]
    fn pytorch_is_the_compute_baseline() {
        assert_eq!(Framework::pytorch().compute_efficiency, 1.0);
    }
}
