//! Work partitions: the object AutoPipe optimizes.
//!
//! A [`Partition`] is PipeDream's plan output (§2.1): "1) a partitioning of
//! layers with the form of stages; 2) number of workers for each stage;
//! 3) optimal number of on-the-fly mini-batches to fill the pipeline."

use std::fmt;
use std::ops::Range;

use ap_cluster::GpuId;
use ap_models::ModelProfile;

/// Why a [`Partition`] failed structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The partition has no stages at all.
    NoStages,
    /// `in_flight` is zero.
    ZeroInFlight,
    /// Stage `stage` starts at `start` instead of the expected layer.
    Gap {
        /// Offending stage index.
        stage: usize,
        /// Layer the stage starts at.
        start: usize,
        /// Layer it should have started at.
        expected: usize,
    },
    /// Stage `stage` covers an empty layer range.
    EmptyStage {
        /// Offending stage index.
        stage: usize,
    },
    /// Stage `stage` has no workers.
    NoWorkers {
        /// Offending stage index.
        stage: usize,
    },
    /// The stages cover `covered` layers but the model has `n_layers`.
    Coverage {
        /// Layers covered by the stages (`0..covered`).
        covered: usize,
        /// Layers the model actually has.
        n_layers: usize,
    },
    /// A worker appears in more than one stage.
    DuplicateWorker {
        /// The doubly-assigned worker.
        worker: GpuId,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoStages => write!(f, "partition has no stages"),
            PartitionError::ZeroInFlight => write!(f, "in_flight must be at least 1"),
            PartitionError::Gap {
                stage,
                start,
                expected,
            } => write!(
                f,
                "stage {stage} starts at layer {start} but expected {expected}"
            ),
            PartitionError::EmptyStage { stage } => write!(f, "stage {stage} covers no layers"),
            PartitionError::NoWorkers { stage } => write!(f, "stage {stage} has no workers"),
            PartitionError::Coverage { covered, n_layers } => write!(
                f,
                "stages cover layers 0..{covered} but the model has {n_layers}"
            ),
            PartitionError::DuplicateWorker { worker } => {
                write!(f, "worker {worker:?} assigned to multiple stages")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// One pipeline stage: a contiguous layer range replicated over workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Half-open range of model layers this stage computes.
    pub layers: Range<usize>,
    /// Data-parallel replicas executing this stage.
    pub workers: Vec<GpuId>,
}

impl Stage {
    /// Convenience constructor.
    pub fn new(layers: Range<usize>, workers: Vec<GpuId>) -> Self {
        Stage { layers, workers }
    }

    /// Number of replicas.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }
}

/// A complete work partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Pipeline stages, input side first.
    pub stages: Vec<Stage>,
    /// Number of mini-batches kept in flight (PipeDream's NOAM).
    pub in_flight: usize,
}

impl Partition {
    /// A single-stage "partition" (pure data parallelism over `workers`).
    pub fn single_stage(n_layers: usize, workers: Vec<GpuId>) -> Self {
        let mut p = Partition {
            stages: vec![Stage::new(0..n_layers, workers)],
            in_flight: 1,
        };
        p.in_flight = p.default_in_flight();
        p
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of workers.
    pub fn n_workers(&self) -> usize {
        self.stages.iter().map(Stage::n_workers).sum()
    }

    /// All workers in stage order.
    pub fn all_workers(&self) -> Vec<GpuId> {
        self.stages.iter().flat_map(|s| s.workers.clone()).collect()
    }

    /// Which stage computes `layer`.
    pub fn stage_of_layer(&self, layer: usize) -> Option<usize> {
        self.stages.iter().position(|s| s.layers.contains(&layer))
    }

    /// Which stage a worker belongs to.
    pub fn stage_of_worker(&self, w: GpuId) -> Option<usize> {
        self.stages.iter().position(|s| s.workers.contains(&w))
    }

    /// Default NOAM: enough in-flight mini-batches to keep the pipeline
    /// full.
    ///
    /// PipeDream's rule is `ceil(N / m1)` mini-batches *per input-stage
    /// replica*; our engine counts total in-flight units, so that becomes
    /// `ceil(N / m1) * m1`. On top, activation/gradient transfers act like
    /// extra pipeline stages when communication is slow, so we keep
    /// `2 * stages` additional units in flight. (PipeDream caps NOAM for
    /// weight-stash memory; device memory is not modeled here, but an
    /// over-deep pipeline still costs real fill time and staleness, so the
    /// overlap term is additive, not per-replica.)
    pub fn default_in_flight(&self) -> usize {
        let first = self
            .stages
            .first()
            .map(Stage::n_workers)
            .unwrap_or(1)
            .max(1);
        let round_robin = self.n_workers().div_ceil(first) * first;
        round_robin.max(2 * self.n_stages() + first).max(1)
    }

    /// Check structural validity against a model with `n_layers` layers:
    /// contiguous full coverage, nonempty stages, globally distinct
    /// workers, positive in-flight count.
    pub fn validate(&self, n_layers: usize) -> Result<(), PartitionError> {
        if self.stages.is_empty() {
            return Err(PartitionError::NoStages);
        }
        if self.in_flight == 0 {
            return Err(PartitionError::ZeroInFlight);
        }
        let mut expect = 0usize;
        for (i, s) in self.stages.iter().enumerate() {
            if s.layers.start != expect {
                return Err(PartitionError::Gap {
                    stage: i,
                    start: s.layers.start,
                    expected: expect,
                });
            }
            if s.layers.is_empty() {
                return Err(PartitionError::EmptyStage { stage: i });
            }
            if s.workers.is_empty() {
                return Err(PartitionError::NoWorkers { stage: i });
            }
            expect = s.layers.end;
        }
        if expect != n_layers {
            return Err(PartitionError::Coverage {
                covered: expect,
                n_layers,
            });
        }
        let mut seen = std::collections::HashSet::new();
        for s in &self.stages {
            for w in &s.workers {
                if !seen.insert(*w) {
                    return Err(PartitionError::DuplicateWorker { worker: *w });
                }
            }
        }
        Ok(())
    }

    /// The layer indices whose output crosses a stage boundary (cut
    /// points), i.e. the last layer of every stage but the final one.
    pub fn cut_layers(&self) -> Vec<usize> {
        self.stages[..self.n_stages() - 1]
            .iter()
            .map(|s| s.layers.end - 1)
            .collect()
    }

    /// Parameter bytes held by stage `s` under `profile`.
    pub fn stage_param_bytes(&self, s: usize, profile: &ModelProfile) -> f64 {
        let st = &self.stages[s];
        profile.range_params(st.layers.start, st.layers.end)
    }

    /// A compact description like `[0..5 x2 | 5..21 x1]`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("{}..{} x{}", s.layers.start, s.layers.end, s.n_workers()))
            .collect();
        format!("[{}] inflight={}", parts.join(" | "), self.in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(ids: &[usize]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    fn two_stage() -> Partition {
        Partition {
            stages: vec![
                Stage::new(0..5, gpus(&[0, 1])),
                Stage::new(5..12, gpus(&[2])),
            ],
            in_flight: 3,
        }
    }

    #[test]
    fn valid_partition_passes() {
        assert!(two_stage().validate(12).is_ok());
    }

    #[test]
    fn gap_in_coverage_rejected() {
        let mut p = two_stage();
        p.stages[1].layers = 6..12;
        let err = p.validate(12).unwrap_err();
        assert_eq!(
            err,
            PartitionError::Gap {
                stage: 1,
                start: 6,
                expected: 5
            }
        );
        assert!(err.to_string().contains("expected 5"));
    }

    #[test]
    fn incomplete_coverage_rejected() {
        let err = two_stage().validate(13).unwrap_err();
        assert_eq!(
            err,
            PartitionError::Coverage {
                covered: 12,
                n_layers: 13
            }
        );
        assert!(err.to_string().contains("has 13"));
    }

    #[test]
    fn duplicate_worker_rejected() {
        let mut p = two_stage();
        p.stages[1].workers = gpus(&[1]);
        let err = p.validate(12).unwrap_err();
        assert_eq!(err, PartitionError::DuplicateWorker { worker: GpuId(1) });
        assert!(err.to_string().contains("multiple stages"));
    }

    #[test]
    fn zero_in_flight_rejected() {
        let mut p = two_stage();
        p.in_flight = 0;
        assert_eq!(p.validate(12), Err(PartitionError::ZeroInFlight));
    }

    #[test]
    fn lookups() {
        let p = two_stage();
        assert_eq!(p.stage_of_layer(4), Some(0));
        assert_eq!(p.stage_of_layer(5), Some(1));
        assert_eq!(p.stage_of_layer(12), None);
        assert_eq!(p.stage_of_worker(GpuId(2)), Some(1));
        assert_eq!(p.stage_of_worker(GpuId(9)), None);
        assert_eq!(p.cut_layers(), vec![4]);
        assert_eq!(p.n_workers(), 3);
    }

    #[test]
    fn default_in_flight_covers_replicas_and_overlap() {
        let p = two_stage();
        // 3 workers, 2 input replicas: round-robin needs ceil(3/2)*2 = 4,
        // overlap floor is 2*2 + 2 = 6.
        assert_eq!(p.default_in_flight(), 6);
        let q = Partition {
            stages: vec![
                Stage::new(0..4, gpus(&[0])),
                Stage::new(4..8, gpus(&[1])),
                Stage::new(8..12, gpus(&[2, 3])),
            ],
            in_flight: 1,
        };
        // Round-robin: ceil(4/1)*1 = 4; overlap floor: 2*3 + 1 = 7.
        assert_eq!(q.default_in_flight(), 7);
        // Pure data parallelism: every replica needs its own mini-batch.
        let dp = Partition::single_stage(4, gpus(&[0, 1, 2, 3]));
        assert!(dp.default_in_flight() >= 4);
    }

    #[test]
    fn summary_is_readable() {
        assert_eq!(two_stage().summary(), "[0..5 x2 | 5..12 x1] inflight=3");
    }
}
