//! Bounded byte-buffer channel with optional bandwidth throttling.
//!
//! One channel models one directed link between two pipeline stages. It
//! carries encoded frames (opaque byte buffers) FIFO, enforces a byte
//! capacity (a sender blocks while the queue is full — real backpressure),
//! and optionally throttles delivery to a configured bytes-per-second
//! rate: each frame becomes *visible to the receiver* only after its
//! serialized length has "crossed the link", with frames sharing the link
//! sequentially. The sender is never blocked by the throttle itself (a
//! NIC queues and DMAs in the background; compute/communication overlap is
//! the point of pipelining) — only by capacity.
//!
//! Byte and frame counters accumulate on the sender side, so a run's
//! transfer volume is measured from what actually entered the wire.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters for one channel, read after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames sent.
    pub frames: u64,
    /// Total encoded bytes sent.
    pub bytes: u64,
}

struct Queue {
    frames: VecDeque<(Vec<u8>, Instant)>,
    used: usize,
    link_free: Option<Instant>,
    closed: bool,
}

/// Most buffers a channel's free list retains; enough for the deepest
/// in-flight window the runtime uses, small enough to bound idle memory.
const POOL_CAP: usize = 8;

/// A bounded, optionally throttled, byte-buffer channel.
pub struct ByteChannel {
    q: Mutex<Queue>,
    can_send: Condvar,
    can_recv: Condvar,
    capacity: usize,
    bytes_per_sec: Option<f64>,
    frames: AtomicU64,
    bytes: AtomicU64,
    pool: Mutex<Vec<Vec<u8>>>,
}

impl ByteChannel {
    /// A channel holding at most `capacity` queued bytes, delivering at
    /// `bytes_per_sec` if given (unthrottled otherwise).
    pub fn new(capacity: usize, bytes_per_sec: Option<f64>) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        if let Some(b) = bytes_per_sec {
            assert!(b > 0.0, "bandwidth must be positive");
        }
        ByteChannel {
            q: Mutex::new(Queue {
                frames: VecDeque::new(),
                used: 0,
                link_free: None,
                closed: false,
            }),
            can_send: Condvar::new(),
            can_recv: Condvar::new(),
            capacity,
            bytes_per_sec,
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Take a scratch buffer from the channel's free list (empty but with
    /// warmed capacity once the pipeline is in steady state), or a fresh
    /// one if the list is dry. Pair with [`ByteChannel::recycle`]: the
    /// receiver returns buffers after decoding, so steady-state 1F1B
    /// sends stop allocating per frame. Purely an allocation cache — wire
    /// bytes and counters are unaffected.
    pub fn take_buffer(&self) -> Vec<u8> {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a spent buffer to the free list for a future
    /// [`ByteChannel::take_buffer`]. Keeps at most a handful; extras are
    /// dropped.
    pub fn recycle(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Enqueue an encoded frame. Blocks while the queue is over capacity
    /// (a frame larger than the whole capacity is admitted alone, so no
    /// frame size can deadlock the pipeline). Returns `Err` if the
    /// channel was closed.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), String> {
        let len = frame.len();
        let mut q = self.q.lock().unwrap();
        while !q.closed && q.used > 0 && q.used + len > self.capacity {
            q = self.can_send.wait(q).unwrap();
        }
        if q.closed {
            return Err("send on closed channel".to_string());
        }
        let now = Instant::now();
        let ready = match self.bytes_per_sec {
            None => now,
            Some(bw) => {
                let start = match q.link_free {
                    Some(f) if f > now => f,
                    _ => now,
                };
                let ready = start + Duration::from_secs_f64(len as f64 / bw);
                q.link_free = Some(ready);
                ready
            }
        };
        q.used += len;
        q.frames.push_back((frame, ready));
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.can_recv.notify_one();
        Ok(())
    }

    /// Dequeue the next frame, blocking until one is available *and* its
    /// transfer time has elapsed. Returns `None` once the channel is
    /// closed and drained.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some((_, ready)) = q.frames.front() {
                let now = Instant::now();
                if *ready <= now {
                    let (frame, _) = q.frames.pop_front().unwrap();
                    q.used -= frame.len();
                    self.can_send.notify_one();
                    return Some(frame);
                }
                let wait = *ready - now;
                let (guard, _) = self.can_recv.wait_timeout(q, wait).unwrap();
                q = guard;
            } else if q.closed {
                return None;
            } else {
                q = self.can_recv.wait(q).unwrap();
            }
        }
    }

    /// Close the channel: senders fail, receivers drain then get `None`.
    pub fn close(&self) {
        let mut q = self.q.lock().unwrap();
        q.closed = true;
        self.can_send.notify_all();
        self.can_recv.notify_all();
    }

    /// Sender-side counters.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_counters() {
        let c = ByteChannel::new(1024, None);
        c.send(vec![1, 2, 3]).unwrap();
        c.send(vec![4]).unwrap();
        assert_eq!(c.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.recv().unwrap(), vec![4]);
        assert_eq!(
            c.stats(),
            ChannelStats {
                frames: 2,
                bytes: 4
            }
        );
    }

    #[test]
    fn capacity_blocks_sender_until_receiver_drains() {
        let c = Arc::new(ByteChannel::new(8, None));
        c.send(vec![0; 8]).unwrap();
        let c2 = Arc::clone(&c);
        let sender = thread::spawn(move || {
            // Blocks until the receiver drains the first frame.
            c2.send(vec![1; 8]).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "sender should be backpressured");
        assert_eq!(c.recv().unwrap().len(), 8);
        sender.join().unwrap();
        assert_eq!(c.recv().unwrap(), vec![1; 8]);
    }

    #[test]
    fn oversized_frame_is_admitted_alone() {
        let c = ByteChannel::new(4, None);
        c.send(vec![0; 64]).unwrap(); // larger than capacity, queue empty
        assert_eq!(c.recv().unwrap().len(), 64);
    }

    #[test]
    fn throttle_delays_delivery_by_transfer_time() {
        // 10 KB at 100 KB/s = 100 ms on the wire.
        let c = ByteChannel::new(1 << 20, Some(100_000.0));
        let t0 = Instant::now();
        c.send(vec![0; 10_000]).unwrap();
        let sent_at = t0.elapsed();
        assert!(sent_at < Duration::from_millis(50), "send must not block");
        let _ = c.recv().unwrap();
        let got_at = t0.elapsed();
        assert!(
            got_at >= Duration::from_millis(95),
            "frame arrived after {got_at:?}, expected ~100ms"
        );
    }

    #[test]
    fn link_is_serial_under_throttle() {
        // Two 5 KB frames share the link: second arrives ~100ms in.
        let c = ByteChannel::new(1 << 20, Some(100_000.0));
        let t0 = Instant::now();
        c.send(vec![0; 5_000]).unwrap();
        c.send(vec![0; 5_000]).unwrap();
        let _ = c.recv().unwrap();
        let _ = c.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(95));
    }

    #[test]
    fn recycled_buffers_are_reused_with_capacity_intact() {
        let c = ByteChannel::new(1024, None);
        assert!(c.take_buffer().is_empty(), "fresh buffer must be empty");
        let mut b = Vec::with_capacity(256);
        b.extend_from_slice(&[7; 100]);
        c.recycle(b);
        let got = c.take_buffer();
        assert!(got.is_empty(), "recycled buffer must come back cleared");
        assert!(got.capacity() >= 256, "recycled capacity was lost");
        // The list is bounded: flooding it must not grow without limit.
        for _ in 0..64 {
            c.recycle(Vec::with_capacity(64));
        }
        assert!(c.pool.lock().unwrap().len() <= POOL_CAP);
    }

    #[test]
    fn pooled_send_path_leaves_wire_bytes_and_counters_unchanged() {
        // The same payload sequence through the pooled path (take_buffer /
        // send / recv / recycle) and the plain path must hit the wire
        // identically: same frame count, same byte count, same contents.
        let payloads: Vec<Vec<u8>> = (1u8..=5).map(|i| vec![i; i as usize * 17]).collect();

        let plain = ByteChannel::new(1 << 16, None);
        for p in &payloads {
            plain.send(p.clone()).unwrap();
        }
        let plain_recv: Vec<Vec<u8>> = payloads.iter().map(|_| plain.recv().unwrap()).collect();

        let pooled = ByteChannel::new(1 << 16, None);
        let mut pooled_recv = Vec::new();
        for p in &payloads {
            let mut buf = pooled.take_buffer();
            buf.extend_from_slice(p);
            pooled.send(buf).unwrap();
            let got = pooled.recv().unwrap();
            pooled_recv.push(got.clone());
            pooled.recycle(got);
        }

        assert_eq!(plain_recv, pooled_recv);
        assert_eq!(plain.stats(), pooled.stats());
        assert_eq!(
            pooled.stats(),
            ChannelStats {
                frames: payloads.len() as u64,
                bytes: payloads.iter().map(|p| p.len() as u64).sum(),
            }
        );
    }

    #[test]
    fn close_wakes_receiver_with_none() {
        let c = Arc::new(ByteChannel::new(16, None));
        let c2 = Arc::clone(&c);
        let rx = thread::spawn(move || c2.recv());
        thread::sleep(Duration::from_millis(10));
        c.close();
        assert!(rx.join().unwrap().is_none());
        assert!(c.send(vec![1]).is_err());
    }
}
