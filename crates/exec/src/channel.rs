//! Bounded byte-buffer channel with optional bandwidth throttling.
//!
//! One channel models one directed link between two pipeline stages. It
//! carries encoded frames (opaque byte buffers) FIFO, enforces a byte
//! capacity (a sender blocks while the queue is full — real backpressure),
//! and optionally throttles delivery to a configured bytes-per-second
//! rate: each frame becomes *visible to the receiver* only after its
//! serialized length has "crossed the link", with frames sharing the link
//! sequentially. The sender is never blocked by the throttle itself (a
//! NIC queues and DMAs in the background; compute/communication overlap is
//! the point of pipelining) — only by capacity.
//!
//! Byte and frame counters accumulate on the sender side, so a run's
//! transfer volume is measured from what actually entered the wire.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters for one channel, read after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames sent.
    pub frames: u64,
    /// Total encoded bytes sent.
    pub bytes: u64,
}

struct Queue {
    frames: VecDeque<(Vec<u8>, Instant)>,
    used: usize,
    link_free: Option<Instant>,
    closed: bool,
}

/// A bounded, optionally throttled, byte-buffer channel.
pub struct ByteChannel {
    q: Mutex<Queue>,
    can_send: Condvar,
    can_recv: Condvar,
    capacity: usize,
    bytes_per_sec: Option<f64>,
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl ByteChannel {
    /// A channel holding at most `capacity` queued bytes, delivering at
    /// `bytes_per_sec` if given (unthrottled otherwise).
    pub fn new(capacity: usize, bytes_per_sec: Option<f64>) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        if let Some(b) = bytes_per_sec {
            assert!(b > 0.0, "bandwidth must be positive");
        }
        ByteChannel {
            q: Mutex::new(Queue {
                frames: VecDeque::new(),
                used: 0,
                link_free: None,
                closed: false,
            }),
            can_send: Condvar::new(),
            can_recv: Condvar::new(),
            capacity,
            bytes_per_sec,
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Enqueue an encoded frame. Blocks while the queue is over capacity
    /// (a frame larger than the whole capacity is admitted alone, so no
    /// frame size can deadlock the pipeline). Returns `Err` if the
    /// channel was closed.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), String> {
        let len = frame.len();
        let mut q = self.q.lock().unwrap();
        while !q.closed && q.used > 0 && q.used + len > self.capacity {
            q = self.can_send.wait(q).unwrap();
        }
        if q.closed {
            return Err("send on closed channel".to_string());
        }
        let now = Instant::now();
        let ready = match self.bytes_per_sec {
            None => now,
            Some(bw) => {
                let start = match q.link_free {
                    Some(f) if f > now => f,
                    _ => now,
                };
                let ready = start + Duration::from_secs_f64(len as f64 / bw);
                q.link_free = Some(ready);
                ready
            }
        };
        q.used += len;
        q.frames.push_back((frame, ready));
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.can_recv.notify_one();
        Ok(())
    }

    /// Dequeue the next frame, blocking until one is available *and* its
    /// transfer time has elapsed. Returns `None` once the channel is
    /// closed and drained.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some((_, ready)) = q.frames.front() {
                let now = Instant::now();
                if *ready <= now {
                    let (frame, _) = q.frames.pop_front().unwrap();
                    q.used -= frame.len();
                    self.can_send.notify_one();
                    return Some(frame);
                }
                let wait = *ready - now;
                let (guard, _) = self.can_recv.wait_timeout(q, wait).unwrap();
                q = guard;
            } else if q.closed {
                return None;
            } else {
                q = self.can_recv.wait(q).unwrap();
            }
        }
    }

    /// Close the channel: senders fail, receivers drain then get `None`.
    pub fn close(&self) {
        let mut q = self.q.lock().unwrap();
        q.closed = true;
        self.can_send.notify_all();
        self.can_recv.notify_all();
    }

    /// Sender-side counters.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_counters() {
        let c = ByteChannel::new(1024, None);
        c.send(vec![1, 2, 3]).unwrap();
        c.send(vec![4]).unwrap();
        assert_eq!(c.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.recv().unwrap(), vec![4]);
        assert_eq!(
            c.stats(),
            ChannelStats {
                frames: 2,
                bytes: 4
            }
        );
    }

    #[test]
    fn capacity_blocks_sender_until_receiver_drains() {
        let c = Arc::new(ByteChannel::new(8, None));
        c.send(vec![0; 8]).unwrap();
        let c2 = Arc::clone(&c);
        let sender = thread::spawn(move || {
            // Blocks until the receiver drains the first frame.
            c2.send(vec![1; 8]).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "sender should be backpressured");
        assert_eq!(c.recv().unwrap().len(), 8);
        sender.join().unwrap();
        assert_eq!(c.recv().unwrap(), vec![1; 8]);
    }

    #[test]
    fn oversized_frame_is_admitted_alone() {
        let c = ByteChannel::new(4, None);
        c.send(vec![0; 64]).unwrap(); // larger than capacity, queue empty
        assert_eq!(c.recv().unwrap().len(), 64);
    }

    #[test]
    fn throttle_delays_delivery_by_transfer_time() {
        // 10 KB at 100 KB/s = 100 ms on the wire.
        let c = ByteChannel::new(1 << 20, Some(100_000.0));
        let t0 = Instant::now();
        c.send(vec![0; 10_000]).unwrap();
        let sent_at = t0.elapsed();
        assert!(sent_at < Duration::from_millis(50), "send must not block");
        let _ = c.recv().unwrap();
        let got_at = t0.elapsed();
        assert!(
            got_at >= Duration::from_millis(95),
            "frame arrived after {got_at:?}, expected ~100ms"
        );
    }

    #[test]
    fn link_is_serial_under_throttle() {
        // Two 5 KB frames share the link: second arrives ~100ms in.
        let c = ByteChannel::new(1 << 20, Some(100_000.0));
        let t0 = Instant::now();
        c.send(vec![0; 5_000]).unwrap();
        c.send(vec![0; 5_000]).unwrap();
        let _ = c.recv().unwrap();
        let _ = c.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(95));
    }

    #[test]
    fn close_wakes_receiver_with_none() {
        let c = Arc::new(ByteChannel::new(16, None));
        let c2 = Arc::clone(&c);
        let rx = thread::spawn(move || c2.recv());
        thread::sleep(Duration::from_millis(10));
        c.close();
        assert!(rx.join().unwrap().is_none());
        assert!(c.send(vec![1]).is_err());
    }
}
