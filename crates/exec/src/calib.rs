//! Fitting a [`Calibration`] from short instrumented runs on this host.
//!
//! The analytic model's residual error against the real runtime comes
//! from costs the FLOP model cannot see: serializing frames, snapshotting
//! weights for the stash, and fixed per-mini-batch bookkeeping. Each
//! constant here is *measured directly* from the mechanism that causes it
//! — a two-point timing of the actual codec, a timing of the actual
//! master clone, and the residual of a real single-stage run — never
//! fitted against the throughput numbers it is later asked to predict.

use crate::codec::{decode_view, encode_into, Frame, FrameView};
use crate::runtime::{run_pipeline, ExecError, ExecSpec};
use ap_nn::{Matrix, Mlp};
use ap_pipesim::Calibration;
use std::time::Instant;

/// Mini-batches in the single-stage probe run that isolates the fixed
/// per-stage overhead.
const PROBE_TOTAL: u64 = 64;

/// Seconds for one encode+decode round trip of an Act frame with the
/// given payload shape, averaged over `reps`.
fn codec_pair_seconds(rows: usize, cols: usize, reps: usize) -> f64 {
    let frame = Frame::Act {
        mb: 1,
        data: Matrix::xavier(rows, cols, 0xC0DE),
    };
    let mut buf = Vec::new();
    let mut sink = 0u64;
    // One warm-up pair sizes the buffer so the loop measures steady state.
    encode_into(&frame, &mut buf);
    let t = Instant::now();
    for _ in 0..reps {
        encode_into(&frame, &mut buf);
        if let FrameView::Act { data, .. } = decode_view(&buf).expect("self-encoded frame") {
            sink ^= data.to_matrix().data()[0].to_bits();
        }
    }
    let dt = t.elapsed().as_secs_f64() / reps as f64;
    std::hint::black_box(sink);
    dt
}

/// Fit the codec constants with a two-point linear fit: one codec op
/// (encode *or* decode — half a round trip) costs
/// `per_frame_s + payload_bytes * per_byte_s`.
fn fit_codec(batch: usize) -> (f64, f64) {
    let rows = batch.max(1);
    let (c1, c2) = (32usize, 2048usize);
    let b1 = (rows * c1 * 8) as f64;
    let b2 = (rows * c2 * 8) as f64;
    let t1 = codec_pair_seconds(rows, c1, 512) / 2.0;
    let t2 = codec_pair_seconds(rows, c2, 64) / 2.0;
    let per_byte = ((t2 - t1) / (b2 - b1)).max(0.0);
    let per_frame = (t1 - per_byte * b1).max(0.0);
    (per_frame, per_byte)
}

/// Fit the stash constant: seconds per parameter byte of one master
/// snapshot, measured by cloning the actual model.
fn fit_stash(spec: &ExecSpec) -> f64 {
    let net = Mlp::new(&spec.sizes, spec.act, spec.seed);
    let param_bytes: f64 = (0..net.n_layers())
        .map(|i| {
            let l = net.layer(i);
            ((l.w.value.data().len() + l.b.value.data().len()) * 8) as f64
        })
        .sum();
    let reps = 64;
    let clone = net.clone(); // warm-up
    std::hint::black_box(&clone);
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(net.clone());
    }
    let per_clone = t.elapsed().as_secs_f64() / reps as f64;
    (per_clone / param_bytes.max(1.0)).max(0.0)
}

/// Fit the fixed per-stage overhead: run the workload single-stage with
/// `in_flight = 1` — no channels, no codec, and (since such a schedule
/// runs directly on the master) no stash — and charge whatever wall time
/// the per-layer timers cannot account for to one stage, per mini-batch.
fn fit_stage_overhead(spec: &ExecSpec) -> Result<f64, ExecError> {
    let probe = ExecSpec {
        cuts: Vec::new(),
        in_flight: 1,
        total: PROBE_TOTAL,
        bytes_per_sec: None,
        switch: None,
        record_timeline: false,
        ..spec.clone()
    };
    let res = run_pipeline(&probe)?;
    let layer_seconds: f64 = res
        .times
        .fwd_sum
        .iter()
        .chain(res.times.bwd_sum.iter())
        .sum();
    Ok(((res.wall_seconds - layer_seconds) / PROBE_TOTAL as f64).max(0.0))
}

/// Fit a full [`Calibration`] for a workload on this host. Costs a few
/// tens of milliseconds; the result is meant to be persisted (JSON via
/// `Calibration::to_json`) and reused by the planner and simulator.
pub fn fit_calibration(spec: &ExecSpec) -> Result<Calibration, ExecError> {
    let (per_frame_s, per_byte_s) = fit_codec(spec.batch);
    let stash_byte_s = fit_stash(spec);
    let stage_overhead_s = fit_stage_overhead(spec)?;
    Ok(Calibration {
        per_frame_s,
        per_byte_s,
        stage_overhead_s,
        stash_byte_s,
        // Stage threads time-share whatever cores this host exposes.
        compute_slots: std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_nn::ActKind;

    fn tiny_spec() -> ExecSpec {
        ExecSpec {
            sizes: vec![16, 32, 32, 8],
            act: ActKind::Tanh,
            seed: 7,
            batch: 8,
            lr: 0.05,
            cuts: vec![2],
            schedule: ap_ir::ScheduleKind::PipeDreamAsync,
            in_flight: 2,
            total: 8,
            bytes_per_sec: None,
            distinct_batches: 4,
            switch: None,
            record_timeline: false,
        }
    }

    #[test]
    fn fitted_constants_are_finite_and_nonnegative() {
        let c = fit_calibration(&tiny_spec()).unwrap();
        for (name, v) in [
            ("per_frame_s", c.per_frame_s),
            ("per_byte_s", c.per_byte_s),
            ("stage_overhead_s", c.stage_overhead_s),
            ("stash_byte_s", c.stash_byte_s),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
        }
        // Cloning and byte-shuffling cost *something* real.
        assert!(c.stash_byte_s > 0.0, "stash fit collapsed to zero");
        assert!(
            c.per_byte_s > 0.0 || c.per_frame_s > 0.0,
            "codec fit collapsed to zero"
        );
    }

    #[test]
    fn fitted_calibration_survives_json_round_trip() {
        let c = fit_calibration(&tiny_spec()).unwrap();
        let back = Calibration::from_json(&ap_json::ToJson::to_json(&c)).unwrap();
        assert_eq!(c, back);
    }
}
