//! Wire format for inter-stage frames.
//!
//! Everything a stage sends — activations, gradients, and the three
//! migration frame kinds — is serialized to a flat little-endian byte
//! buffer before it enters a channel and decoded on the far side. The
//! runtime's transfer-byte numbers are the lengths of these buffers, so
//! they are *measured off the wire*, not modeled. f64 payloads travel as
//! raw IEEE-754 bit patterns: a round trip is bit-exact, which the
//! runtime's determinism guarantees rely on.

use ap_nn::{ActKind, Matrix};

/// One layer's weights on the wire: weight matrix, bias row, and the
/// activation applied after the layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerBlob {
    /// Weight matrix (`d_in x d_out`).
    pub w: Matrix,
    /// Bias row (`1 x d_out`).
    pub b: Matrix,
    /// Activation kind after this layer.
    pub act: ActKind,
}

/// A frame traveling between two pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Forward activation of mini-batch `mb` entering the receiver's
    /// lowest layer.
    Act {
        /// Mini-batch id.
        mb: u64,
        /// Activation tensor (`batch x width`).
        data: Matrix,
    },
    /// Backward gradient of mini-batch `mb` w.r.t. the input of the
    /// sender's lowest layer.
    Grad {
        /// Mini-batch id.
        mb: u64,
        /// Gradient tensor (`batch x width`).
        data: Matrix,
    },
    /// The latest (master) copy of a migrating layer block. Sent first in
    /// a live switch so the new owner can forward new mini-batches
    /// immediately. `pending` lists the in-flight mini-batch ids whose
    /// updates for this block will follow as [`Frame::Delta`]s, in order.
    Master {
        /// Global index of the first migrated layer.
        first_layer: u32,
        /// The migrated layers, bottom-up.
        layers: Vec<LayerBlob>,
        /// Sorted in-flight mini-batch ids still owing updates.
        pending: Vec<u64>,
    },
    /// One stashed weight version of the migrating block, plus the input
    /// activation that version's forward consumed (so the receiver can
    /// rebuild backward state by recomputation). Sent newest-first —
    /// "migrating the weight copy of later active mini-batch first".
    Stash {
        /// Mini-batch id the version belongs to.
        mb: u64,
        /// Global index of the first migrated layer.
        first_layer: u32,
        /// The stashed layer copies, bottom-up.
        layers: Vec<LayerBlob>,
        /// Cached input of the first migrated layer for this mini-batch.
        input: Matrix,
    },
    /// Parameter update for the migrated block computed at the *old*
    /// owner for an in-flight mini-batch; applied by the new owner in
    /// mini-batch order.
    Delta {
        /// Mini-batch id the update belongs to.
        mb: u64,
        /// Global index of the first migrated layer.
        first_layer: u32,
        /// Per-layer (dW, db) pairs, bottom-up.
        grads: Vec<(Matrix, Matrix)>,
    },
}

impl Frame {
    /// Short label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Act { .. } => "act",
            Frame::Grad { .. } => "grad",
            Frame::Master { .. } => "master",
            Frame::Stash { .. } => "stash",
            Frame::Delta { .. } => "delta",
        }
    }
}

const TAG_ACT: u8 = 0;
const TAG_GRAD: u8 = 1;
const TAG_MASTER: u8 = 2;
const TAG_STASH: u8 = 3;
const TAG_DELTA: u8 = 4;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `vals` as little-endian IEEE-754 bit patterns.
fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // On a little-endian host the in-memory representation *is* the
        // wire representation, so the whole payload is one memcpy. Sound:
        // any f64 slice is valid to reinterpret as bytes.
        let bytes = unsafe {
            std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals))
        };
        out.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        out.reserve(vals.len() * 8);
        for &v in vals {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Decode a little-endian f64 payload (`raw.len()` divisible by 8).
fn f64s_from_le(raw: &[u8]) -> Vec<f64> {
    debug_assert_eq!(raw.len() % 8, 0);
    let n = raw.len() / 8;
    #[cfg(target_endian = "little")]
    {
        let mut out = Vec::<f64>::with_capacity(n);
        // Sound: the destination has capacity for `raw.len()` bytes, the
        // source is plain bytes, and every bit pattern is a valid f64.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr().cast::<u8>(), raw.len());
            out.set_len(n);
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        raw.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    put_f64s(out, m.data());
}

fn act_tag(k: ActKind) -> u8 {
    match k {
        ActKind::Relu => 0,
        ActKind::Tanh => 1,
        ActKind::Sigmoid => 2,
        ActKind::Identity => 3,
    }
}

fn put_layers(out: &mut Vec<u8>, layers: &[LayerBlob]) {
    put_u32(out, layers.len() as u32);
    for l in layers {
        out.push(act_tag(l.act));
        put_matrix(out, &l.w);
        put_matrix(out, &l.b);
    }
}

/// Serialize a frame to wire bytes.
pub fn encode(f: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(f, &mut out);
    out
}

/// Serialize a frame into a caller-provided buffer, reusing its
/// capacity. The buffer is cleared first; after the call it holds
/// exactly the wire bytes [`encode`] would have produced. Steady-state
/// 1F1B sends use this with recycled channel buffers so no per-frame
/// allocation happens once capacities have warmed up.
pub fn encode_into(f: &Frame, out: &mut Vec<u8>) {
    out.clear();
    match f {
        Frame::Act { mb, data } => {
            out.push(TAG_ACT);
            put_u64(out, *mb);
            put_matrix(out, data);
        }
        Frame::Grad { mb, data } => {
            out.push(TAG_GRAD);
            put_u64(out, *mb);
            put_matrix(out, data);
        }
        Frame::Master {
            first_layer,
            layers,
            pending,
        } => {
            out.push(TAG_MASTER);
            put_u32(out, *first_layer);
            put_layers(out, layers);
            put_u32(out, pending.len() as u32);
            for &p in pending {
                put_u64(out, p);
            }
        }
        Frame::Stash {
            mb,
            first_layer,
            layers,
            input,
        } => {
            out.push(TAG_STASH);
            put_u64(out, *mb);
            put_u32(out, *first_layer);
            put_layers(out, layers);
            put_matrix(out, input);
        }
        Frame::Delta {
            mb,
            first_layer,
            grads,
        } => {
            out.push(TAG_DELTA);
            put_u64(out, *mb);
            put_u32(out, *first_layer);
            put_u32(out, grads.len() as u32);
            for (dw, db) in grads {
                put_matrix(out, dw);
                put_matrix(out, db);
            }
        }
    }
}

/// A matrix parsed off the wire but not yet materialized: shape plus a
/// borrowed view of the raw payload bytes inside the receive buffer.
/// [`MatrixView::to_matrix`] materializes it with a single allocation
/// and one bulk little-endian conversion (a memcpy on LE hosts), instead
/// of the per-element chunking the eager decoder used to do.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    raw: &'a [u8],
}

impl MatrixView<'_> {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Materialize into an owned matrix, bit-exactly.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, f64s_from_le(self.raw))
    }
}

/// A decoded frame whose hot-path payloads still borrow the receive
/// buffer. `Act` and `Grad` — the only per-mini-batch frames — carry
/// [`MatrixView`]s so the receiver decides when (and into what) to
/// materialize; the rare migration control frames (`Master`, `Stash`,
/// `Delta`, sent only during a live switch) are decoded eagerly.
#[derive(Debug)]
pub enum FrameView<'a> {
    /// Borrowed view of an activation frame.
    Act {
        /// Mini-batch id.
        mb: u64,
        /// Borrowed activation payload.
        data: MatrixView<'a>,
    },
    /// Borrowed view of a gradient frame.
    Grad {
        /// Mini-batch id.
        mb: u64,
        /// Borrowed gradient payload.
        data: MatrixView<'a>,
    },
    /// An eagerly-decoded migration control frame.
    Control(Frame),
}

impl FrameView<'_> {
    /// Short label for diagnostics, matching [`Frame::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            FrameView::Act { .. } => "act",
            FrameView::Grad { .. } => "grad",
            FrameView::Control(f) => f.kind(),
        }
    }

    /// Materialize into an owned [`Frame`]; bit-identical to [`decode`].
    pub fn to_frame(self) -> Frame {
        match self {
            FrameView::Act { mb, data } => Frame::Act {
                mb,
                data: data.to_matrix(),
            },
            FrameView::Grad { mb, data } => Frame::Grad {
                mb,
                data: data.to_matrix(),
            },
            FrameView::Control(f) => f,
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn matrix_view(&mut self) -> Result<MatrixView<'a>, String> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| "matrix size overflow".to_string())?;
        let raw = self.take(n * 8)?;
        Ok(MatrixView { rows, cols, raw })
    }

    fn matrix(&mut self) -> Result<Matrix, String> {
        Ok(self.matrix_view()?.to_matrix())
    }

    fn act(&mut self) -> Result<ActKind, String> {
        match self.u8()? {
            0 => Ok(ActKind::Relu),
            1 => Ok(ActKind::Tanh),
            2 => Ok(ActKind::Sigmoid),
            3 => Ok(ActKind::Identity),
            t => Err(format!("unknown activation tag {t}")),
        }
    }

    fn layers(&mut self) -> Result<Vec<LayerBlob>, String> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let act = self.act()?;
            let w = self.matrix()?;
            let b = self.matrix()?;
            out.push(LayerBlob { w, b, act });
        }
        Ok(out)
    }
}

/// Decode wire bytes into a borrowed [`FrameView`]: the hot-path frame
/// kinds (`Act`, `Grad`) keep their payload as a view over `buf`, so the
/// caller can recycle the buffer after materializing — or skip
/// materializing entirely when only the header matters.
pub fn decode_view(buf: &[u8]) -> Result<FrameView<'_>, String> {
    let mut r = Reader { buf, pos: 0 };
    let view = match r.u8()? {
        TAG_ACT => FrameView::Act {
            mb: r.u64()?,
            data: r.matrix_view()?,
        },
        TAG_GRAD => FrameView::Grad {
            mb: r.u64()?,
            data: r.matrix_view()?,
        },
        _ => return decode(buf).map(FrameView::Control),
    };
    if r.pos != buf.len() {
        return Err(format!(
            "trailing garbage: {} bytes after frame",
            buf.len() - r.pos
        ));
    }
    Ok(view)
}

/// Decode wire bytes back into a frame.
pub fn decode(buf: &[u8]) -> Result<Frame, String> {
    let mut r = Reader { buf, pos: 0 };
    let frame = match r.u8()? {
        TAG_ACT => Frame::Act {
            mb: r.u64()?,
            data: r.matrix()?,
        },
        TAG_GRAD => Frame::Grad {
            mb: r.u64()?,
            data: r.matrix()?,
        },
        TAG_MASTER => {
            let first_layer = r.u32()?;
            let layers = r.layers()?;
            let n = r.u32()? as usize;
            let mut pending = Vec::with_capacity(n);
            for _ in 0..n {
                pending.push(r.u64()?);
            }
            Frame::Master {
                first_layer,
                layers,
                pending,
            }
        }
        TAG_STASH => Frame::Stash {
            mb: r.u64()?,
            first_layer: r.u32()?,
            layers: r.layers()?,
            input: r.matrix()?,
        },
        TAG_DELTA => {
            let mb = r.u64()?;
            let first_layer = r.u32()?;
            let n = r.u32()? as usize;
            let mut grads = Vec::with_capacity(n);
            for _ in 0..n {
                let dw = r.matrix()?;
                let db = r.matrix()?;
                grads.push((dw, db));
            }
            Frame::Delta {
                mb,
                first_layer,
                grads,
            }
        }
        t => return Err(format!("unknown frame tag {t}")),
    };
    if r.pos != buf.len() {
        return Err(format!(
            "trailing garbage: {} bytes after frame",
            buf.len() - r.pos
        ));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::xavier(rows, cols, seed)
    }

    #[test]
    fn every_frame_kind_round_trips_bit_exactly() {
        let frames = vec![
            Frame::Act {
                mb: 7,
                data: m(4, 3, 1),
            },
            Frame::Grad {
                mb: u64::MAX,
                data: m(1, 1, 2),
            },
            Frame::Master {
                first_layer: 3,
                layers: vec![
                    LayerBlob {
                        w: m(3, 2, 3),
                        b: m(1, 2, 4),
                        act: ActKind::Tanh,
                    },
                    LayerBlob {
                        w: m(2, 5, 5),
                        b: m(1, 5, 6),
                        act: ActKind::Identity,
                    },
                ],
                pending: vec![11, 12, 13],
            },
            Frame::Stash {
                mb: 12,
                first_layer: 0,
                layers: vec![LayerBlob {
                    w: m(2, 2, 7),
                    b: m(1, 2, 8),
                    act: ActKind::Relu,
                }],
                input: m(4, 2, 9),
            },
            Frame::Delta {
                mb: 9,
                first_layer: 1,
                grads: vec![(m(3, 3, 10), m(1, 3, 11))],
            },
        ];
        for f in frames {
            let bytes = encode(&f);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{}: {e}", f.kind()));
            assert_eq!(back, f, "{} frame drifted through the codec", f.kind());
        }
    }

    #[test]
    fn special_f64_values_survive() {
        let data = vec![0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e-308, -1.5];
        let f = Frame::Act {
            mb: 0,
            data: Matrix::from_vec(2, 3, data.clone()),
        };
        if let Frame::Act { data: d, .. } = decode(&encode(&f)).unwrap() {
            for (a, b) in d.data().iter().zip(&data) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        } else {
            panic!("wrong frame kind");
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err());
        let mut good = encode(&Frame::Act {
            mb: 1,
            data: m(2, 2, 1),
        });
        good.truncate(good.len() - 3);
        assert!(decode(&good).is_err());
        let mut trailing = encode(&Frame::Grad {
            mb: 1,
            data: m(2, 2, 1),
        });
        trailing.push(0);
        assert!(decode(&trailing).is_err());
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Act {
                mb: 7,
                data: m(4, 3, 21),
            },
            Frame::Grad {
                mb: 8,
                data: m(3, 4, 22),
            },
            Frame::Master {
                first_layer: 2,
                layers: vec![LayerBlob {
                    w: m(3, 2, 23),
                    b: m(1, 2, 24),
                    act: ActKind::Sigmoid,
                }],
                pending: vec![5, 6],
            },
            Frame::Stash {
                mb: 5,
                first_layer: 2,
                layers: vec![LayerBlob {
                    w: m(3, 2, 25),
                    b: m(1, 2, 26),
                    act: ActKind::Relu,
                }],
                input: m(4, 3, 27),
            },
            Frame::Delta {
                mb: 6,
                first_layer: 2,
                grads: vec![(m(3, 2, 28), m(1, 2, 29))],
            },
        ]
    }

    #[test]
    fn decode_view_round_trips_every_frame_kind() {
        for f in sample_frames() {
            let bytes = encode(&f);
            let view = decode_view(&bytes).unwrap_or_else(|e| panic!("{}: {e}", f.kind()));
            assert_eq!(view.kind(), f.kind());
            // Hot-path kinds must take the borrowed path, not Control.
            match (&view, &f) {
                (FrameView::Act { data, .. }, Frame::Act { data: d, .. })
                | (FrameView::Grad { data, .. }, Frame::Grad { data: d, .. }) => {
                    assert_eq!((data.rows(), data.cols()), (d.rows(), d.cols()));
                }
                (FrameView::Control(_), Frame::Master { .. })
                | (FrameView::Control(_), Frame::Stash { .. })
                | (FrameView::Control(_), Frame::Delta { .. }) => {}
                other => panic!("unexpected view/frame pairing: {other:?}"),
            }
            assert_eq!(view.to_frame(), f, "{} view drifted", f.kind());
        }
    }

    #[test]
    fn decode_view_rejects_corrupt_input_like_decode() {
        assert!(decode_view(&[]).is_err());
        assert!(decode_view(&[99]).is_err());
        let mut bytes = encode(&Frame::Act {
            mb: 1,
            data: m(2, 2, 1),
        });
        bytes.push(0);
        assert!(decode_view(&bytes).is_err(), "trailing garbage accepted");
        bytes.truncate(bytes.len() - 4);
        assert!(decode_view(&bytes).is_err(), "truncated frame accepted");
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        // Warm the buffer on the largest frame first.
        let largest = frames
            .iter()
            .max_by_key(|f| encode(f).len())
            .unwrap()
            .clone();
        encode_into(&largest, &mut buf);
        let warmed = buf.capacity();
        for f in &frames {
            encode_into(f, &mut buf);
            assert_eq!(buf, encode(f), "{}: encode_into drifted", f.kind());
            assert_eq!(buf.capacity(), warmed, "{}: buffer reallocated", f.kind());
        }
    }

    #[test]
    fn act_frame_payload_size_is_predictable() {
        // tag + mb + rows + cols + 8 bytes per element: the experiment
        // layer's byte accounting depends on this exact layout.
        let f = Frame::Act {
            mb: 3,
            data: m(4, 5, 2),
        };
        assert_eq!(encode(&f).len(), 1 + 8 + 4 + 4 + 4 * 5 * 8);
    }
}
