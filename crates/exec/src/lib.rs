//! ap-exec — a real pipeline-parallel execution runtime.
//!
//! Everything else in this workspace *models* pipeline training; this
//! crate *does* it. A partitioned [`ap_nn::Mlp`] runs as genuine pipeline
//! stages on OS threads connected by bounded byte-buffer channels:
//! activations and gradients are serialized to wire bytes (transfer sizes
//! are measured, not modeled), stages follow a PipeDream-style 1F1B
//! schedule with per-mini-batch weight stashing, and a per-stage profiler
//! feeds the same Table-1 metrics type (`autopipe::ProfilingMetrics`) the
//! planner consumes from the simulator.
//!
//! The headline feature is live fine-grained state switching (§4.4 of the
//! AutoPipe paper): a boundary layer block migrates between two adjacent
//! stages *while the pipeline keeps admitting mini-batches*. Weight copies
//! move in stash-version order — the master (latest) copy first so new
//! mini-batches forward immediately at the new owner, then stashed
//! versions newest-first — and in-flight mini-batches drain through their
//! original owner, with parameter updates forwarded as ordered deltas so
//! the master at the new owner sees every update exactly once, in
//! mini-batch order. A drain-free invariant (≥ 1 mini-batch in flight at
//! every migration tick) is sampled at runtime.
//!
//! Design constraints that keep the runtime byte-deterministic across
//! thread interleavings (the repo's determinism convention):
//! - one worker per stage, so each stage's update order is its own
//!   program order;
//! - static 1F1B op schedules (each stage blocks on the exact frame its
//!   next op needs, instead of racing on arrival order);
//! - stateless SGD (no optimizer state to migrate or reorder).

pub mod calib;
pub mod channel;
pub mod codec;
pub mod profiler;
pub mod runtime;
pub mod schedule;

pub use ap_ir::ScheduleKind;
pub use calib::fit_calibration;
pub use channel::{ByteChannel, ChannelStats};
pub use codec::{
    decode, decode_view, encode, encode_into, Frame, FrameView, LayerBlob, MatrixView,
};
pub use profiler::{calibrate_layer_times, metrics_from_times, LayerTimes};
pub use runtime::{
    run_pipeline, training_batch, ExecError, ExecResult, ExecSpec, MigrationReport, SwitchSpec,
};
pub use schedule::{stage_ops, Op};
