//! Per-stage measurement → Table-1 metrics.
//!
//! Each stage thread times every per-layer forward and backward it
//! executes with `Instant`. After a run (or a standalone calibration
//! pass) the accumulated sums become an `autopipe::ProfilingMetrics` —
//! the exact Table-1 shape the planner, meta-network and simulator
//! already consume — via [`metrics_from_times`]. From there,
//! `autopipe::profile_from_metrics` turns measurements into a
//! `ModelProfile`, closing the loop: measured reality in, planner
//! predictions out.

use ap_nn::{ActKind, Matrix, Mlp};
use autopipe::ProfilingMetrics;
use std::time::Instant;

/// Accumulated per-layer timing sums for one run.
#[derive(Debug, Clone)]
pub struct LayerTimes {
    /// Sum of forward durations per global layer, seconds.
    pub fwd_sum: Vec<f64>,
    /// Forward sample count per global layer.
    pub fwd_n: Vec<u64>,
    /// Sum of backward durations per global layer, seconds.
    pub bwd_sum: Vec<f64>,
    /// Backward sample count per global layer.
    pub bwd_n: Vec<u64>,
}

impl LayerTimes {
    /// Zeroed accumulator over `n_layers` global layers.
    pub fn new(n_layers: usize) -> Self {
        LayerTimes {
            fwd_sum: vec![0.0; n_layers],
            fwd_n: vec![0; n_layers],
            bwd_sum: vec![0.0; n_layers],
            bwd_n: vec![0; n_layers],
        }
    }

    /// Record one forward of global layer `j`.
    pub fn fwd(&mut self, j: usize, seconds: f64) {
        self.fwd_sum[j] += seconds;
        self.fwd_n[j] += 1;
    }

    /// Record one backward of global layer `j`.
    pub fn bwd(&mut self, j: usize, seconds: f64) {
        self.bwd_sum[j] += seconds;
        self.bwd_n[j] += 1;
    }

    /// Merge another accumulator (e.g. a different stage's) into this one.
    pub fn merge(&mut self, other: &LayerTimes) {
        for j in 0..self.fwd_sum.len() {
            self.fwd_sum[j] += other.fwd_sum[j];
            self.fwd_n[j] += other.fwd_n[j];
            self.bwd_sum[j] += other.bwd_sum[j];
            self.bwd_n[j] += other.bwd_n[j];
        }
    }

    /// Mean forward time of layer `j` (0 if never measured).
    pub fn mean_fwd(&self, j: usize) -> f64 {
        if self.fwd_n[j] == 0 {
            0.0
        } else {
            self.fwd_sum[j] / self.fwd_n[j] as f64
        }
    }

    /// Mean backward time of layer `j` (0 if never measured).
    pub fn mean_bwd(&self, j: usize) -> f64 {
        if self.bwd_n[j] == 0 {
            0.0
        } else {
            self.bwd_sum[j] / self.bwd_n[j] as f64
        }
    }
}

/// Serialized activation payload bytes leaving layer `j` for one full
/// mini-batch (`batch x sizes[j+1]` f64s) — matches the Act frame payload
/// the codec actually puts on the wire, headers excluded.
pub fn act_payload_bytes(sizes: &[usize], batch: usize, j: usize) -> f64 {
    (batch * sizes[j + 1] * 8) as f64
}

/// Parameter payload bytes of layer `j` (weights + bias, 8 bytes each).
pub fn param_payload_bytes(sizes: &[usize], j: usize) -> f64 {
    ((sizes[j] * sizes[j + 1] + sizes[j + 1]) * 8) as f64
}

/// Assemble Table-1 metrics from measured (or synthetic) per-layer times.
///
/// `fwd`/`bwd` are per-layer times in seconds; every worker row carries
/// the same column (stages run on identical host cores, and the paper's
/// profiler likewise reconstructs the full matrix from per-layer ratios).
/// `bandwidth` is the per-worker available link bandwidth in bytes/s.
pub fn metrics_from_times(
    sizes: &[usize],
    batch: usize,
    n_workers: usize,
    fwd: &[f64],
    bwd: &[f64],
    bandwidth: f64,
) -> ProfilingMetrics {
    let n_layers = sizes.len() - 1;
    assert_eq!(fwd.len(), n_layers, "one forward time per layer");
    assert_eq!(bwd.len(), n_layers, "one backward time per layer");
    ProfilingMetrics {
        n_layers,
        n_workers,
        out_bytes: (0..n_layers)
            .map(|j| act_payload_bytes(sizes, batch, j))
            .collect(),
        grad_bytes: (0..n_layers)
            .map(|j| act_payload_bytes(sizes, batch, j))
            .collect(),
        param_bytes: (0..n_layers)
            .map(|j| param_payload_bytes(sizes, j))
            .collect(),
        bandwidth: vec![bandwidth; n_workers],
        fp_time: vec![fwd.to_vec(); n_workers],
        bp_time: vec![bwd.to_vec(); n_workers],
    }
}

/// Pre-run calibration: time each layer's forward and backward on this
/// host, median over `iters` rounds (after one warmup), at the given
/// batch size. This is the "profiling before training" pass whose output
/// seeds the simulator prediction that `repro exec-validate` compares
/// against measured reality.
pub fn calibrate_layer_times(
    sizes: &[usize],
    act: ActKind,
    seed: u64,
    batch: usize,
    iters: usize,
) -> (Vec<f64>, Vec<f64>) {
    assert!(iters >= 1, "need at least one calibration round");
    let n = sizes.len() - 1;
    let mut net = Mlp::new(sizes, act, seed);
    let x = Matrix::xavier(batch, sizes[0], seed.wrapping_add(101));
    let mut fwd_samples = vec![Vec::with_capacity(iters); n];
    let mut bwd_samples = vec![Vec::with_capacity(iters); n];
    for round in 0..=iters {
        let mut h = x.clone();
        let mut fwd_round = Vec::with_capacity(n);
        for j in 0..n {
            let t = Instant::now();
            h = net.forward_range(j..j + 1, &h);
            fwd_round.push(t.elapsed().as_secs_f64());
        }
        let mut g = h; // any tensor of the right shape works as dL/dy
        let mut bwd_round = vec![0.0; n];
        for j in (0..n).rev() {
            let t = Instant::now();
            g = net.backward_range(j..j + 1, &g);
            bwd_round[j] = t.elapsed().as_secs_f64();
        }
        if round > 0 {
            // Round 0 is warmup (cold caches, first-touch allocation).
            for j in 0..n {
                fwd_samples[j].push(fwd_round[j]);
                bwd_samples[j].push(bwd_round[j]);
            }
        }
        net.zero_grad();
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (
        fwd_samples.into_iter().map(median).collect(),
        bwd_samples.into_iter().map(median).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_shape_and_byte_columns() {
        let sizes = [4usize, 8, 2];
        let m = metrics_from_times(&sizes, 16, 2, &[1e-3, 2e-3], &[2e-3, 4e-3], 1e9);
        assert!(m.validate().is_ok());
        assert_eq!(m.n_layers, 2);
        assert_eq!(m.out_bytes[0], (16 * 8 * 8) as f64);
        assert_eq!(m.out_bytes[1], (16 * 2 * 8) as f64);
        assert_eq!(m.param_bytes[0], ((4 * 8 + 8) * 8) as f64);
        assert_eq!(m.fp_time[0], m.fp_time[1], "homogeneous worker rows");
    }

    #[test]
    fn calibration_returns_positive_times() {
        let (f, b) = calibrate_layer_times(&[8, 16, 4], ActKind::Tanh, 3, 8, 3);
        assert_eq!(f.len(), 2);
        assert_eq!(b.len(), 2);
        for t in f.iter().chain(&b) {
            assert!(*t >= 0.0 && t.is_finite());
        }
    }

    #[test]
    fn layer_times_merge_and_average() {
        let mut a = LayerTimes::new(2);
        a.fwd(0, 1.0);
        a.fwd(0, 3.0);
        a.bwd(1, 4.0);
        let mut b = LayerTimes::new(2);
        b.fwd(0, 2.0);
        b.bwd(1, 0.0);
        a.merge(&b);
        assert!((a.mean_fwd(0) - 2.0).abs() < 1e-12);
        assert!((a.mean_bwd(1) - 2.0).abs() < 1e-12);
        assert_eq!(a.mean_fwd(1), 0.0, "unmeasured layers report zero");
    }
}
