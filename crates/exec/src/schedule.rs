//! Static 1F1B op schedules.
//!
//! PipeDream's steady state runs one forward and one backward per stage
//! per round. We precompute each stage's exact op sequence — warmup
//! forwards, strict B/F alternation, drain backwards — and each stage
//! then *blocks on the precise frame its next op needs*. This is how real
//! PipeDream runs (the schedule is static), and it is also what makes the
//! runtime's numerics independent of thread timing: execution order per
//! stage is fixed, channels are FIFO, so every weight update sequence is
//! deterministic.
//!
//! The last stage is special: it fuses forward, loss, and backward into
//! one op per mini-batch (there is nothing to wait for between them).

/// One scheduled operation at a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Forward mini-batch `mb` (at the last stage: forward + loss +
    /// backward, fused).
    Forward(u64),
    /// Backward mini-batch `mb`.
    Backward(u64),
}

/// The 1F1B op sequence for `stage` of `n_stages`, training `total`
/// mini-batches with at most `in_flight` admitted concurrently.
///
/// Warmup depth shrinks with stage index (`in_flight - stage`, floored at
/// one), so stage 0 fills the pipeline to the in-flight cap and deeper
/// stages start alternating sooner. The last stage always alternates
/// immediately (fused ops), so it emits only `Forward` entries.
pub fn stage_ops(stage: usize, n_stages: usize, total: u64, in_flight: usize) -> Vec<Op> {
    assert!(n_stages > 0 && stage < n_stages, "bad stage index");
    assert!(in_flight >= 1, "need at least one in-flight mini-batch");
    if stage == n_stages - 1 {
        return (0..total).map(Op::Forward).collect();
    }
    let warmup = (in_flight.saturating_sub(stage)).max(1) as u64;
    let w = warmup.min(total);
    let mut ops = Vec::with_capacity(2 * total as usize);
    for v in 0..w {
        ops.push(Op::Forward(v));
    }
    let mut b = 0;
    let mut f = w;
    while f < total {
        ops.push(Op::Backward(b));
        ops.push(Op::Forward(f));
        b += 1;
        f += 1;
    }
    for v in b..total {
        ops.push(Op::Backward(v));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(ops: &[Op], total: u64) -> (Vec<u64>, Vec<u64>) {
        let mut fwd = vec![0u64; total as usize];
        let mut bwd = vec![0u64; total as usize];
        for op in ops {
            match op {
                Op::Forward(v) => fwd[*v as usize] += 1,
                Op::Backward(v) => bwd[*v as usize] += 1,
            }
        }
        (fwd, bwd)
    }

    #[test]
    fn every_mini_batch_forwarded_and_backwarded_once() {
        for stage in 0..3 {
            let ops = stage_ops(stage, 4, 10, 4);
            let (fwd, bwd) = counts(&ops, 10);
            assert!(fwd.iter().all(|&c| c == 1), "stage {stage} forwards");
            assert!(bwd.iter().all(|&c| c == 1), "stage {stage} backwards");
        }
        // Last stage: fused, Forward entries only.
        let ops = stage_ops(3, 4, 10, 4);
        assert_eq!(ops.len(), 10);
        assert!(ops.iter().all(|o| matches!(o, Op::Forward(_))));
    }

    #[test]
    fn forward_precedes_backward_per_mini_batch() {
        let ops = stage_ops(0, 3, 8, 3);
        for v in 0..8u64 {
            let fi = ops.iter().position(|o| *o == Op::Forward(v)).unwrap();
            let bi = ops.iter().position(|o| *o == Op::Backward(v)).unwrap();
            assert!(fi < bi, "mb {v}: backward scheduled before forward");
        }
    }

    #[test]
    fn warmup_depth_matches_in_flight_cap() {
        let ops = stage_ops(0, 2, 10, 4);
        // First 4 ops are forwards (fill), then strict B/F alternation.
        assert_eq!(
            &ops[..6],
            &[
                Op::Forward(0),
                Op::Forward(1),
                Op::Forward(2),
                Op::Forward(3),
                Op::Backward(0),
                Op::Forward(4),
            ]
        );
    }

    #[test]
    fn in_flight_never_exceeds_cap_at_stage_zero() {
        for cap in 1..=5usize {
            let ops = stage_ops(0, 3, 12, cap);
            let mut in_flight = 0i64;
            let mut max = 0i64;
            for op in &ops {
                match op {
                    Op::Forward(_) => in_flight += 1,
                    Op::Backward(_) => in_flight -= 1,
                }
                max = max.max(in_flight);
            }
            assert!(max <= cap as i64, "cap {cap}: peak {max}");
            assert_eq!(in_flight, 0, "pipeline must fully drain");
        }
    }

    #[test]
    fn cap_one_degenerates_to_sequential() {
        let ops = stage_ops(0, 2, 3, 1);
        assert_eq!(
            ops,
            vec![
                Op::Forward(0),
                Op::Backward(0),
                Op::Forward(1),
                Op::Backward(1),
                Op::Forward(2),
                Op::Backward(2),
            ]
        );
    }

    #[test]
    fn tiny_totals_do_not_panic() {
        assert_eq!(stage_ops(0, 2, 0, 4), vec![]);
        let ops = stage_ops(0, 2, 1, 4);
        assert_eq!(ops, vec![Op::Forward(0), Op::Backward(0)]);
    }
}
