//! The pipeline runtime: stage threads replaying a schedule-IR program
//! against real tensors, with weight stashing and live fine-grained state
//! switching.
//!
//! ## One IR, two engines
//!
//! The runtime no longer owns its schedule logic: it asks [`ap_ir`] for
//! the declarative op-program of the requested [`ScheduleKind`]
//! (PipeDream async 1F1B, GPipe with recompute, DAPPLE, Chimera,
//! PipeDream-2BW) and replays each stage's op sequence literally —
//! `Recv`/`Send` become frames on the byte channels, `StashPush` becomes
//! a master clone, `Forward`/`Backward`/`FusedFwdLossBwd`/`Recompute`
//! become real matrix math, `ApplyUpdate` becomes SGD on the master
//! weights. The pipesim pricer walks the *same* program charging time
//! (DESIGN.md §10), so simulation and execution cannot drift apart on
//! what a schedule does.
//!
//! ## Threading model
//!
//! Each pipeline stage is one OS thread owning a contiguous slice of the
//! model. Adjacent stages are connected by two bounded byte channels (one
//! per direction); every activation, gradient and migration payload is
//! serialized through the codec, so the byte counters measure what really
//! crossed the wire. A stage executes its static op program, blocking on
//! exactly the frame each `Recv` needs — making all weight-update
//! sequences, and therefore losses and final weights, independent of
//! thread timing.
//!
//! ## Weight stashing
//!
//! A `StashPush` for unit `u` clones the stage's master weights; the
//! clone (which also accumulates the layer input caches during `u`'s
//! forward) backs `u`'s backward — PipeDream weight-stashing semantics.
//! Units whose program carries no `StashPush` run directly on the master
//! (the IR generator only omits the push when no other unit's update can
//! land inside the forward→backward window, so the master *is* the
//! stash). Deferred-apply schedules (GPipe/DAPPLE/Chimera/2BW) accumulate
//! unit gradients into the master's gradient buffers and fold them in at
//! `ApplyUpdate` with the per-unit learning rate `lr / units`.
//!
//! ## Live migration (§4.4)
//!
//! A [`SwitchSpec`] moves the boundary between two adjacent stages at a
//! planned cutover mini-batch `X` while the pipeline keeps admitting
//! work. In the IR this is a *splice* ([`ap_ir::generate_spliced`]): a
//! `Send WeightState` before `X`'s forward group at the old owner — the
//! master copy first (the *latest* version, letting the new owner forward
//! `X` immediately), then every stashed version newest-first ("the weight
//! copy of later active mini-batch first") — over the regular data
//! channel, so the traffic genuinely contends with activations.
//! In-flight mini-batches back-propagate through the old owner's retained
//! stash copies; their updates to the moved block travel as
//! [`Frame::Delta`]s and are applied by the new owner strictly in
//! mini-batch order via a sequencer. Nothing ever waits for the pipeline
//! to empty: a drain-free invariant (in-flight ≥ 1) is sampled at every
//! migration tick.

use crate::channel::{ByteChannel, ChannelStats};
use crate::codec::{decode_view, encode_into, Frame, FrameView, LayerBlob};
use crate::profiler::{metrics_from_times, LayerTimes};
use ap_ir::{generate, generate_spliced, IrOp, Payload, SpliceSpec, UnitId};
use ap_nn::mlp::MlpWeights;
use ap_nn::{mse_loss, ActKind, Linear, Matrix, Mlp};
use ap_pipesim::{ScheduleKind, TimelineSegment, WorkKind};
use ap_rng::Rng;
use autopipe::ProfilingMetrics;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runtime error (stage failures carry the stage index in the message).
pub type ExecError = String;

/// A planned live reconfiguration: at mini-batch `at_mb`, the stage
/// boundaries become `new_cuts`. Exactly one boundary may shift (a
/// contiguous layer block moving between two adjacent stages).
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// First mini-batch routed under the new partition.
    pub at_mb: u64,
    /// New interior stage boundaries.
    pub new_cuts: Vec<usize>,
}

/// Full description of one pipeline run.
#[derive(Debug, Clone)]
pub struct ExecSpec {
    /// MLP widths, `[in, h1, ..., out]` — layer `j` maps width `j` to
    /// `j+1`.
    pub sizes: Vec<usize>,
    /// Hidden activation.
    pub act: ActKind,
    /// Weight-init and data seed.
    pub seed: u64,
    /// Rows per mini-batch.
    pub batch: usize,
    /// SGD learning rate (stateless SGD; no optimizer state to migrate).
    pub lr: f64,
    /// Interior stage boundaries (ascending layer indices); empty = one
    /// stage.
    pub cuts: Vec<usize>,
    /// Pipeline schedule to replay. Sync kinds split each mini-batch into
    /// `schedule.micro_batches()` row slices; `batch` must divide evenly.
    pub schedule: ScheduleKind,
    /// Mini-batches admitted concurrently (1F1B depth; also the number of
    /// stashed weight versions for async schedules).
    pub in_flight: usize,
    /// Mini-batches to train.
    pub total: u64,
    /// Channel bandwidth throttle, bytes/second (`None` = host memory
    /// speed).
    pub bytes_per_sec: Option<f64>,
    /// The training set cycles through this many distinct mini-batches.
    pub distinct_batches: u64,
    /// Optional live reconfiguration (PipeDream async only).
    pub switch: Option<SwitchSpec>,
    /// Record per-op wall-clock segments (chrome-trace export).
    pub record_timeline: bool,
}

impl ExecSpec {
    /// Layer count.
    pub fn n_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Stage count.
    pub fn n_stages(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Stage boundaries including 0 and `n_layers`.
    fn starts(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.cuts.len() + 2);
        s.push(0);
        s.extend_from_slice(&self.cuts);
        s.push(self.n_layers());
        s
    }

    fn validate(&self) -> Result<(), ExecError> {
        if self.sizes.len() < 2 {
            return Err("need at least one layer".into());
        }
        if self.batch == 0 || self.total == 0 || self.distinct_batches == 0 {
            return Err("batch, total and distinct_batches must be positive".into());
        }
        if self.in_flight == 0 {
            return Err("in_flight must be at least 1".into());
        }
        let m = self.schedule.micro_batches();
        if self.batch % m != 0 {
            return Err(format!(
                "batch {} must divide evenly into {m} micro-batches",
                self.batch
            ));
        }
        let starts = self.starts();
        for w in starts.windows(2) {
            if w[0] >= w[1] {
                return Err(format!(
                    "cuts must be strictly ascending in (0, {})",
                    self.n_layers()
                ));
            }
        }
        if let Some(sw) = &self.switch {
            if self.schedule != ScheduleKind::PipeDreamAsync {
                return Err(format!(
                    "live switching requires the pipedream_async schedule (got {})",
                    self.schedule.id()
                ));
            }
            plan_move(self, sw)?;
        }
        Ok(())
    }
}

/// Resolved migration plan derived from a [`SwitchSpec`].
#[derive(Debug, Clone)]
struct MovePlan {
    /// Old owner stage.
    a: usize,
    /// New owner stage.
    b: usize,
    /// Global layer indices migrating.
    moved: Range<usize>,
    /// True if the block moves to the *downstream* neighbor (migration
    /// frames ride the forward channel), false for upstream (backward
    /// channel).
    downstream: bool,
    /// Cutover mini-batch.
    at_mb: u64,
}

fn plan_move(spec: &ExecSpec, sw: &SwitchSpec) -> Result<MovePlan, ExecError> {
    if sw.new_cuts.len() != spec.cuts.len() {
        return Err("switch must keep the stage count".into());
    }
    if sw.at_mb == 0 || sw.at_mb >= spec.total {
        return Err(format!(
            "cutover mini-batch must be in 1..{} (got {})",
            spec.total, sw.at_mb
        ));
    }
    let diffs: Vec<usize> = (0..spec.cuts.len())
        .filter(|&i| spec.cuts[i] != sw.new_cuts[i])
        .collect();
    if diffs.len() != 1 {
        return Err("switch must move exactly one stage boundary".into());
    }
    let i = diffs[0];
    let (old_cut, new_cut) = (spec.cuts[i], sw.new_cuts[i]);
    let lo_bound = if i == 0 { 0 } else { spec.cuts[i - 1] };
    let hi_bound = if i + 1 == spec.cuts.len() {
        spec.n_layers()
    } else {
        spec.cuts[i + 1]
    };
    if new_cut <= lo_bound || new_cut >= hi_bound {
        return Err("switch would empty a stage".into());
    }
    if spec.in_flight < 2 {
        return Err("a live switch needs in_flight >= 2 to stay drain-free".into());
    }
    Ok(if new_cut < old_cut {
        // Boundary moves down: top layers of stage i go to stage i+1.
        MovePlan {
            a: i,
            b: i + 1,
            moved: new_cut..old_cut,
            downstream: true,
            at_mb: sw.at_mb,
        }
    } else {
        // Boundary moves up: bottom layers of stage i+1 go to stage i.
        MovePlan {
            a: i + 1,
            b: i,
            moved: old_cut..new_cut,
            downstream: false,
            at_mb: sw.at_mb,
        }
    })
}

/// Shared migration bookkeeping (sender and receiver threads both write).
#[derive(Debug, Default)]
struct MigrationShared {
    /// In-flight count sampled at every migration tick (frame send or
    /// install).
    samples: Vec<u64>,
    /// Stash versions in send order (must be descending — §4.4).
    versions_sent: Vec<u64>,
    /// Stash versions in install order at the receiver.
    installed: Vec<u64>,
    /// Weight-copy payload bytes (master + stashes; excludes headers,
    /// activations and deltas) — comparable to `SwitchPlan::transfer_bytes`.
    param_bytes: u64,
    /// Every migration frame's full wire size (master + stash + delta).
    wire_bytes: u64,
    /// Seconds since run start when the master copy was sent.
    t_first: Option<f64>,
    /// Seconds since run start when the last version was installed.
    t_last: Option<f64>,
    /// Stash installs expected at the receiver.
    expected: Option<usize>,
}

/// What a live switch did, measured.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Cutover mini-batch.
    pub cutover_mb: u64,
    /// Old owner stage, new owner stage.
    pub from_stage: usize,
    /// New owner stage.
    pub to_stage: usize,
    /// Global layers moved.
    pub moved_layers: Range<usize>,
    /// Weight copies transferred (1 master + stashed versions).
    pub versions_moved: usize,
    /// Weight-copy payload bytes (measure against the simulator's
    /// `SwitchPlan::transfer_bytes` prediction).
    pub param_bytes: u64,
    /// Total migration bytes on the wire (headers, stashed inputs and
    /// deltas included).
    pub wire_bytes: u64,
    /// Stash versions in send order.
    pub versions_sent: Vec<u64>,
    /// In-flight samples, one per migration tick.
    pub in_flight_samples: Vec<u64>,
    /// Wall-clock seconds from master send to last install.
    pub switch_seconds: f64,
}

impl MigrationReport {
    /// The §4.4 drain-free invariant: at least one mini-batch was in
    /// flight at every migration tick.
    pub fn drain_free(&self) -> bool {
        !self.in_flight_samples.is_empty() && self.in_flight_samples.iter().all(|&s| s >= 1)
    }

    /// Smallest in-flight sample seen during the switch.
    pub fn min_in_flight(&self) -> u64 {
        self.in_flight_samples.iter().copied().min().unwrap_or(0)
    }

    /// Versions were sent newest-first (later active mini-batch first).
    pub fn newest_first(&self) -> bool {
        self.versions_sent.windows(2).all(|w| w[0] > w[1])
    }
}

/// Everything a finished run measured.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Stage count the run started with.
    pub n_stages: usize,
    /// Mini-batches fully trained.
    pub completed: u64,
    /// Per-mini-batch training loss, in mini-batch order (mean over
    /// micro-batches for sync schedules).
    pub losses: Vec<f64>,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_seconds: f64,
    /// Per-mini-batch completion times (seconds since start), in
    /// completion order at stage 0.
    pub completion_times: Vec<f64>,
    /// Forward-channel counters, one per stage boundary.
    pub fwd_channels: Vec<ChannelStats>,
    /// Backward-channel counters, one per stage boundary.
    pub bwd_channels: Vec<ChannelStats>,
    /// Measured Table-1 metrics (per-layer times averaged over the run).
    pub metrics: ProfilingMetrics,
    /// Raw per-layer timing sums.
    pub times: LayerTimes,
    /// Wall-clock timeline segments (empty unless requested).
    pub segments: Vec<TimelineSegment>,
    /// Final master weights per stage as `(first_global_layer, weights)`,
    /// in stage order.
    pub final_weights: Vec<(usize, MlpWeights)>,
    /// Measured peak resident bytes per stage: master + stashed + popped
    /// weight clones (parameters, gradient buffers and layer input
    /// caches) plus every staged activation/gradient matrix, sampled
    /// after each schedule op. Deterministic — the op order and the FIFO
    /// channel discipline pin what is resident when — so it is directly
    /// comparable to `ap-mem`'s modeled peak.
    pub peak_stage_bytes: Vec<u64>,
    /// Migration measurements, if a switch ran.
    pub migration: Option<MigrationReport>,
}

impl ExecResult {
    /// Mini-batches per second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall_seconds.max(1e-12)
    }

    /// Steady-state throughput: drop the first `skip` completions (pipeline
    /// fill) and measure the rest against the remaining wall time.
    pub fn steady_throughput(&self, skip: usize) -> f64 {
        if self.completion_times.len() <= skip + 1 {
            return self.throughput();
        }
        let t0 = self.completion_times[skip];
        let t1 = *self.completion_times.last().unwrap();
        (self.completion_times.len() - skip - 1) as f64 / (t1 - t0).max(1e-12)
    }

    /// Total bytes that crossed all inter-stage channels.
    pub fn total_wire_bytes(&self) -> u64 {
        self.fwd_channels
            .iter()
            .chain(&self.bwd_channels)
            .map(|c| c.bytes)
            .sum()
    }
}

const DATA_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const TARGET_SALT: u64 = 0x517c_c1b7_2722_0a95;

fn gen_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn gen_input(spec: &ExecSpec, mb: u64) -> Matrix {
    gen_matrix(
        spec.seed ^ DATA_SALT.wrapping_mul(1 + mb % spec.distinct_batches),
        spec.batch,
        spec.sizes[0],
    )
}

fn gen_target(spec: &ExecSpec, mb: u64) -> Matrix {
    gen_matrix(
        spec.seed ^ TARGET_SALT.wrapping_mul(1 + mb % spec.distinct_batches),
        spec.batch,
        *spec.sizes.last().unwrap(),
    )
}

/// The exact (input, target) pair stage 0 / the last stage synthesize for
/// mini-batch `mb` — public so a sequential reference run can train on
/// bit-identical data.
pub fn training_batch(spec: &ExecSpec, mb: u64) -> (Matrix, Matrix) {
    (gen_input(spec, mb), gen_target(spec, mb))
}

/// Applies moved-block updates strictly in mini-batch order: deltas from
/// the old owner for in-flight mini-batches, then the new owner's own
/// gradients, interleave into one totally ordered sequence.
#[derive(Debug)]
struct Sequencer {
    next: u64,
    pending: BTreeMap<u64, Vec<(usize, Matrix, Matrix)>>,
}

/// One stashed weight version: the cloned sub-network plus the global
/// index of its first layer (ownership ranges change across a switch).
struct StashEntry {
    lo: usize,
    net: Mlp,
}

enum Role {
    None,
    Sender,
    Receiver,
}

struct StageOut {
    lo: usize,
    weights: MlpWeights,
    times: LayerTimes,
    segments: Vec<TimelineSegment>,
    losses: Vec<(u64, f64)>,
    completions: Vec<f64>,
    peak_bytes: u64,
}

/// Resident bytes of one matrix (payload only; the struct header is
/// noise at tensor sizes).
fn matrix_bytes(m: &Matrix) -> u64 {
    (m.data().len() * 8) as u64
}

/// Resident bytes of a network clone: weight and bias values, gradient
/// buffers, and whatever layer input caches the last forward left warm.
fn mlp_bytes(net: &Mlp) -> u64 {
    (0..net.n_layers())
        .map(|i| {
            let l = net.layer(i);
            let mut b = matrix_bytes(&l.w.value)
                + matrix_bytes(&l.w.grad)
                + matrix_bytes(&l.b.value)
                + matrix_bytes(&l.b.grad);
            if let Some(c) = net.layer_input(i) {
                b += matrix_bytes(c);
            }
            b
        })
        .sum()
}

struct Stage<'a> {
    s: usize,
    last: bool,
    spec: &'a ExecSpec,
    /// The schedule being replayed (cached off the spec).
    kind: ScheduleKind,
    /// Micro-batches per mini-batch (1 for async schedules).
    m: usize,
    lo: usize,
    master: Mlp,
    stash: BTreeMap<UnitId, StashEntry>,
    migrated_stash: BTreeMap<u64, Mlp>,
    fwd_in: Option<&'a ByteChannel>,
    fwd_out: Option<&'a ByteChannel>,
    bwd_in: Option<&'a ByteChannel>,
    bwd_out: Option<&'a ByteChannel>,
    act_buf: VecDeque<(u64, Matrix)>,
    grad_buf: VecDeque<(u64, Matrix)>,
    /// Received activations waiting for their `Forward`/`Fused` op.
    pending_act: BTreeMap<UnitId, Matrix>,
    /// Forward outputs waiting for their `Send Act` op.
    staged_out: BTreeMap<UnitId, Matrix>,
    /// Received gradients waiting for their `Backward` op.
    grad_in: BTreeMap<UnitId, Matrix>,
    /// Backward input-gradients waiting for their `Send Grad` op.
    grad_out: BTreeMap<UnitId, Matrix>,
    /// GPipe loss stage: recomputed outputs waiting for their backward.
    recomputed: BTreeMap<UnitId, Matrix>,
    /// Stash entries between `StashPop`/`Fused` and their `ApplyUpdate`
    /// (PipeDream) or `Recompute`/`Backward` (sync kinds).
    cur: BTreeMap<UnitId, StashEntry>,
    /// Per-mini-batch micro-loss accumulator (sync kinds report the mean).
    loss_acc: BTreeMap<u64, (f64, u32)>,
    plan: Option<&'a MovePlan>,
    role: Role,
    migrated: bool,
    seq: Option<Sequencer>,
    /// Receiver only: in-flight mini-batches whose moved-layer delta has
    /// not arrived yet.
    outstanding: BTreeSet<u64>,
    mig: &'a Mutex<MigrationShared>,
    in_flight: &'a AtomicU64,
    t0: Instant,
    times: LayerTimes,
    segments: Vec<TimelineSegment>,
    losses: Vec<(u64, f64)>,
    completions: Vec<f64>,
    /// High-water resident bytes, sampled after every op.
    peak_bytes: u64,
}

impl<'a> Stage<'a> {
    fn owns(&self, global_layer: usize) -> bool {
        global_layer >= self.lo && global_layer < self.lo + self.master.n_layers()
    }

    fn is_received_moved(&self, global_layer: usize) -> bool {
        matches!(self.role, Role::Receiver)
            && self.migrated
            && self.plan.is_some_and(|p| p.moved.contains(&global_layer))
    }

    fn err(&self, msg: impl Into<String>) -> ExecError {
        format!("stage {}: {}", self.s, msg.into())
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn send_on(&self, chan: Option<&ByteChannel>, frame: &Frame) -> Result<usize, ExecError> {
        let chan =
            chan.ok_or_else(|| self.err(format!("no channel for {} frame", frame.kind())))?;
        // Encode into a recycled channel buffer: in steady state the
        // receiver keeps returning warmed buffers, so a send allocates
        // nothing. Wire bytes are identical to a fresh `encode`.
        let mut bytes = chan.take_buffer();
        encode_into(frame, &mut bytes);
        let len = bytes.len();
        chan.send(bytes).map_err(|e| self.err(e))?;
        Ok(len)
    }

    /// The channel migration frames ride for this stage's role.
    fn migration_channel(&self) -> Option<&'a ByteChannel> {
        let p = self.plan?;
        match self.role {
            Role::Sender => {
                if p.downstream {
                    self.fwd_out
                } else {
                    self.bwd_out
                }
            }
            Role::Receiver => {
                if p.downstream {
                    self.fwd_in
                } else {
                    self.bwd_in
                }
            }
            Role::None => None,
        }
    }

    fn apply_update(&mut self, global_layer: usize, dw: &Matrix, db: &Matrix) {
        let li = global_layer - self.lo;
        let lr = self.spec.lr;
        let l = self.master.layer_mut(li);
        l.w.value.axpy(-lr, dw);
        l.b.value.axpy(-lr, db);
    }

    fn seq_insert(
        &mut self,
        mb: u64,
        updates: Vec<(usize, Matrix, Matrix)>,
    ) -> Result<(), ExecError> {
        if self.seq.is_none() {
            return Err(self.err("moved-layer update before master install"));
        }
        self.seq.as_mut().unwrap().pending.insert(mb, updates);
        // Drain everything now in order.
        loop {
            let next = self.seq.as_ref().unwrap().next;
            let Some(batch) = self.seq.as_mut().unwrap().pending.remove(&next) else {
                break;
            };
            for (gl, dw, db) in batch {
                self.apply_update(gl, &dw, &db);
            }
            self.seq.as_mut().unwrap().next += 1;
        }
        Ok(())
    }

    fn handle_ctrl(&mut self, frame: Frame) -> Result<(), ExecError> {
        match frame {
            Frame::Master {
                first_layer,
                layers,
                pending,
            } => {
                if !matches!(self.role, Role::Receiver) {
                    return Err(self.err("unexpected master frame"));
                }
                let plan = self.plan.unwrap();
                let moved: Vec<Linear> = layers
                    .iter()
                    .map(|b| Linear::from_weights(b.w.clone(), b.b.clone()))
                    .collect();
                let kinds: Vec<ActKind> = layers.iter().map(|b| b.act).collect();
                let n = self.master.n_layers();
                let (mut new_layers, mut new_kinds) = (Vec::new(), Vec::new());
                if (first_layer as usize) < self.lo {
                    // Downstream move: block attaches below us.
                    new_layers.extend(moved);
                    new_kinds.extend(kinds);
                    for i in 0..n {
                        new_layers.push(self.master.layer(i).cold_clone());
                        new_kinds.push(self.master.act_kind(i));
                    }
                    self.lo = first_layer as usize;
                } else {
                    // Upstream move: block attaches on top.
                    for i in 0..n {
                        new_layers.push(self.master.layer(i).cold_clone());
                        new_kinds.push(self.master.act_kind(i));
                    }
                    new_layers.extend(moved);
                    new_kinds.extend(kinds);
                }
                self.master = Mlp::from_parts(new_layers, &new_kinds);
                self.seq = Some(Sequencer {
                    next: pending.first().copied().unwrap_or(plan.at_mb),
                    pending: BTreeMap::new(),
                });
                self.outstanding = pending.iter().copied().collect();
                self.migrated = true;
                let mut m = self.mig.lock().unwrap();
                m.samples.push(self.in_flight.load(Ordering::SeqCst));
                m.expected = Some(pending.len());
                if pending.is_empty() {
                    m.t_last = Some(self.now());
                }
                Ok(())
            }
            Frame::Stash {
                mb,
                first_layer: _,
                layers,
                input,
            } => {
                if !matches!(self.role, Role::Receiver) {
                    return Err(self.err("unexpected stash frame"));
                }
                let ls: Vec<Linear> = layers
                    .iter()
                    .map(|b| Linear::from_weights(b.w.clone(), b.b.clone()))
                    .collect();
                let kinds: Vec<ActKind> = layers.iter().map(|b| b.act).collect();
                let mut net = Mlp::from_parts(ls, &kinds);
                // Rebuild the version's backward state by recomputing its
                // forward from the shipped input activation.
                let _ = net.forward(&input);
                self.migrated_stash.insert(mb, net);
                let mut m = self.mig.lock().unwrap();
                m.installed.push(mb);
                m.samples.push(self.in_flight.load(Ordering::SeqCst));
                if Some(m.installed.len()) == m.expected {
                    m.t_last = Some(self.now());
                }
                Ok(())
            }
            Frame::Delta {
                mb,
                first_layer,
                grads,
            } => {
                // This in-flight mini-batch retired at the old owner; its
                // migrated stash copy is obsolete.
                self.migrated_stash.remove(&mb);
                self.outstanding.remove(&mb);
                let updates: Vec<(usize, Matrix, Matrix)> = grads
                    .into_iter()
                    .enumerate()
                    .map(|(i, (dw, db))| (first_layer as usize + i, dw, db))
                    .collect();
                self.seq_insert(mb, updates)
            }
            other => Err(self.err(format!("unexpected {} frame", other.kind()))),
        }
    }

    fn next_act(&mut self, mb: u64) -> Result<Matrix, ExecError> {
        if let Some(pos) = self.act_buf.iter().position(|(v, _)| *v == mb) {
            return Ok(self.act_buf.remove(pos).unwrap().1);
        }
        loop {
            let chan = self.fwd_in.ok_or_else(|| self.err("no forward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("forward channel closed"))?;
            let got = match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Act { mb: v, data } if v == mb => Some(data.to_matrix()),
                FrameView::Act { mb: v, data } => {
                    self.act_buf.push_back((v, data.to_matrix()));
                    None
                }
                FrameView::Grad { .. } => return Err(self.err("unexpected grad frame")),
                FrameView::Control(ctrl) => {
                    self.handle_ctrl(ctrl)?;
                    None
                }
            };
            chan.recycle(bytes);
            if let Some(data) = got {
                return Ok(data);
            }
        }
    }

    fn next_grad(&mut self, mb: u64) -> Result<Matrix, ExecError> {
        if let Some(pos) = self.grad_buf.iter().position(|(v, _)| *v == mb) {
            return Ok(self.grad_buf.remove(pos).unwrap().1);
        }
        loop {
            let chan = self.bwd_in.ok_or_else(|| self.err("no backward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("backward channel closed"))?;
            let got = match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Grad { mb: v, data } if v == mb => Some(data.to_matrix()),
                FrameView::Grad { mb: v, data } => {
                    self.grad_buf.push_back((v, data.to_matrix()));
                    None
                }
                FrameView::Act { .. } => return Err(self.err("unexpected act frame")),
                FrameView::Control(ctrl) => {
                    self.handle_ctrl(ctrl)?;
                    None
                }
            };
            chan.recycle(bytes);
            if let Some(data) = got {
                return Ok(data);
            }
        }
    }

    /// Upstream-move receiver: block on the backward channel until the
    /// master copy arrives (buffering any gradients popped on the way).
    fn wait_master(&mut self) -> Result<(), ExecError> {
        while !self.migrated {
            let chan = self.bwd_in.ok_or_else(|| self.err("no backward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("backward channel closed"))?;
            match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Grad { mb, data } => self.grad_buf.push_back((mb, data.to_matrix())),
                FrameView::Act { .. } => return Err(self.err("unexpected act frame")),
                FrameView::Control(ctrl) => self.handle_ctrl(ctrl)?,
            }
            chan.recycle(bytes);
        }
        Ok(())
    }

    fn record_segment(&mut self, unit: u64, kind: WorkKind, start: f64) {
        if self.spec.record_timeline {
            self.segments.push(TimelineSegment {
                worker: self.s,
                unit,
                kind,
                start,
                end: self.now(),
            });
        }
    }

    /// Rows of `full` belonging to micro-batch `micro` (the whole matrix
    /// when the schedule doesn't micro-batch).
    fn micro_rows(&self, full: Matrix, micro: u32) -> Matrix {
        if self.m == 1 {
            return full;
        }
        let rows = full.rows() / self.m;
        let cols = full.cols();
        let lo = micro as usize * rows * cols;
        Matrix::from_vec(rows, cols, full.data()[lo..lo + rows * cols].to_vec())
    }

    /// The input activation for a unit: synthesized at stage 0 (admitting
    /// the mini-batch on its first micro), received otherwise.
    fn take_input(&mut self, unit: UnitId) -> Result<Matrix, ExecError> {
        if self.s == 0 {
            if unit.micro == 0 {
                self.in_flight.fetch_add(1, Ordering::SeqCst);
            }
            Ok(self.micro_rows(gen_input(self.spec, unit.mb), unit.micro))
        } else {
            self.pending_act
                .remove(&unit)
                .ok_or_else(|| self.err(format!("no received activation for {unit:?}")))
        }
    }

    /// Record one mini-batch loss: directly for async schedules, as the
    /// mean over micro-batches once all of them reported for sync ones.
    fn push_loss(&mut self, mb: u64, loss: f64) {
        if self.m == 1 {
            self.losses.push((mb, loss));
            return;
        }
        let e = self.loss_acc.entry(mb).or_insert((0.0, 0));
        e.0 += loss;
        e.1 += 1;
        if e.1 as usize == self.m {
            let (sum, _) = self.loss_acc.remove(&mb).unwrap();
            self.losses.push((mb, sum / self.m as f64));
        }
    }

    fn op_recv(&mut self, payload: Payload, unit: UnitId) -> Result<(), ExecError> {
        match payload {
            Payload::Act => {
                let x = self.next_act(unit.wire(self.m))?;
                self.pending_act.insert(unit, x);
            }
            Payload::Grad => {
                let g = self.next_grad(unit.wire(self.m))?;
                self.grad_in.insert(unit, g);
            }
            Payload::WeightState => self.wait_master()?,
        }
        Ok(())
    }

    fn op_send(&mut self, payload: Payload, unit: UnitId) -> Result<(), ExecError> {
        match payload {
            Payload::Act => {
                let data = self
                    .staged_out
                    .remove(&unit)
                    .ok_or_else(|| self.err(format!("no staged activation for {unit:?}")))?;
                let mb = unit.wire(self.m);
                self.send_on(self.fwd_out, &Frame::Act { mb, data })?;
            }
            Payload::Grad => {
                let data = self
                    .grad_out
                    .remove(&unit)
                    .ok_or_else(|| self.err(format!("no staged gradient for {unit:?}")))?;
                let mb = unit.wire(self.m);
                self.send_on(self.bwd_out, &Frame::Grad { mb, data })?;
            }
            Payload::WeightState => self.send_migration()?,
        }
        Ok(())
    }

    /// Snapshot the master for a unit. The clone's gradient buffers are
    /// zeroed: deferred-apply schedules accumulate unit gradients in the
    /// *master's* buffers between applies, and a stash must start clean
    /// (for PipeDream the buffers are already zero, so this is a bitwise
    /// no-op).
    fn op_stash_push(&mut self, unit: UnitId) {
        let mut net = self.master.clone();
        net.zero_grad();
        self.stash.insert(unit, StashEntry { lo: self.lo, net });
    }

    fn op_stash_pop(&mut self, unit: UnitId) -> Result<(), ExecError> {
        let entry = self
            .stash
            .remove(&unit)
            .ok_or_else(|| self.err(format!("no stashed version for {unit:?}")))?;
        self.cur.insert(unit, entry);
        Ok(())
    }

    /// Timed forward through a network, layer by layer.
    fn timed_forward(times: &mut LayerTimes, net: &mut Mlp, lo: usize, x: Matrix) -> Matrix {
        let mut h = x;
        for i in 0..net.n_layers() {
            let t = Instant::now();
            h = net.forward_range_owned(i..i + 1, h);
            times.fwd(lo + i, t.elapsed().as_secs_f64());
        }
        h
    }

    /// Timed backward through a network, layer by layer (reverse order).
    fn timed_backward(times: &mut LayerTimes, net: &mut Mlp, lo: usize, g0: Matrix) -> Matrix {
        let mut g = g0;
        for i in (0..net.n_layers()).rev() {
            let t = Instant::now();
            g = net.backward_range(i..i + 1, &g);
            times.bwd(lo + i, t.elapsed().as_secs_f64());
        }
        g
    }

    fn op_forward(&mut self, unit: UnitId) -> Result<(), ExecError> {
        let x = self.take_input(unit)?;
        let start = self.now();
        let h = if let Some(mut entry) = self.stash.remove(&unit) {
            let h = Self::timed_forward(&mut self.times, &mut entry.net, entry.lo, x);
            self.stash.insert(unit, entry);
            h
        } else {
            // No snapshot scheduled: the master *is* the stash (the IR
            // generator guarantees no update lands before this unit's
            // backward).
            Self::timed_forward(&mut self.times, &mut self.master, self.lo, x)
        };
        self.record_segment(unit.wire(self.m), WorkKind::Forward, start);
        if self.last {
            // GPipe's loss stage runs a plain (unfused) forward phase: the
            // output is discarded — activation discard is the point — and
            // the loss comes from the recompute in the backward phase.
            drop(h);
        } else {
            self.staged_out.insert(unit, h);
        }
        Ok(())
    }

    /// The last-stage fusion: forward, loss and backward as one atomic
    /// op. On the stashed path (only under a migration splice) the entry
    /// is kept for the `ApplyUpdate` that routes its gradients.
    fn op_fused(&mut self, unit: UnitId) -> Result<(), ExecError> {
        let x = self.take_input(unit)?;
        let w = unit.wire(self.m);
        let start = self.now();
        if let Some(mut entry) = self.stash.remove(&unit) {
            let h = Self::timed_forward(&mut self.times, &mut entry.net, entry.lo, x);
            self.record_segment(w, WorkKind::Forward, start);
            let target = self.micro_rows(gen_target(self.spec, unit.mb), unit.micro);
            let (loss, g0) = mse_loss(&h, &target);
            self.push_loss(unit.mb, loss);
            let start = self.now();
            let g = Self::timed_backward(&mut self.times, &mut entry.net, entry.lo, g0);
            self.record_segment(w, WorkKind::Backward, start);
            self.cur.insert(unit, entry);
            if self.s > 0 {
                self.grad_out.insert(unit, g);
            }
        } else {
            let h = Self::timed_forward(&mut self.times, &mut self.master, self.lo, x);
            self.record_segment(w, WorkKind::Forward, start);
            let target = self.micro_rows(gen_target(self.spec, unit.mb), unit.micro);
            let (loss, g0) = mse_loss(&h, &target);
            self.push_loss(unit.mb, loss);
            let start = self.now();
            let g = Self::timed_backward(&mut self.times, &mut self.master, self.lo, g0);
            self.record_segment(w, WorkKind::Backward, start);
            // Gradients stay accumulated in the master's buffers for the
            // ApplyUpdate that follows (possibly after more fused units).
            if self.s > 0 {
                self.grad_out.insert(unit, g);
            }
        }
        Ok(())
    }

    /// GPipe's recompute: re-run the unit's forward on its stash entry
    /// from the cached input, paying real compute time and rebuilding the
    /// backward state the flush discarded.
    fn op_recompute(&mut self, unit: UnitId) -> Result<(), ExecError> {
        let mut entry = self
            .cur
            .remove(&unit)
            .ok_or_else(|| self.err(format!("recompute without a popped stash for {unit:?}")))?;
        let input = entry
            .net
            .layer_input(0)
            .cloned()
            .ok_or_else(|| self.err(format!("no cached input to recompute {unit:?}")))?;
        let start = self.now();
        let h = Self::timed_forward(&mut self.times, &mut entry.net, entry.lo, input);
        self.record_segment(unit.wire(self.m), WorkKind::Forward, start);
        if self.last {
            self.recomputed.insert(unit, h);
        }
        self.cur.insert(unit, entry);
        Ok(())
    }

    fn op_backward(&mut self, unit: UnitId) -> Result<(), ExecError> {
        let g_in = match self.grad_in.remove(&unit) {
            Some(g) => g,
            None if self.last => {
                // GPipe's loss stage: the backward phase recomputed the
                // output, so the loss gradient originates here.
                let h = self
                    .recomputed
                    .remove(&unit)
                    .ok_or_else(|| self.err(format!("no recomputed output for {unit:?}")))?;
                let target = self.micro_rows(gen_target(self.spec, unit.mb), unit.micro);
                let (loss, g) = mse_loss(&h, &target);
                self.push_loss(unit.mb, loss);
                g
            }
            None => return Err(self.err(format!("no received gradient for {unit:?}"))),
        };
        let w = unit.wire(self.m);
        let start = self.now();
        if let Some(mut entry) = self.cur.remove(&unit) {
            let g = Self::timed_backward(&mut self.times, &mut entry.net, entry.lo, g_in);
            self.record_segment(w, WorkKind::Backward, start);
            if self.kind == ScheduleKind::PipeDreamAsync {
                // Held for the ApplyUpdate that routes its gradients
                // (sequencer / local apply / migration delta).
                self.cur.insert(unit, entry);
            } else {
                self.fold_grads(&entry)?;
            }
            if self.s > 0 {
                self.grad_out.insert(unit, g);
            }
        } else {
            // Direct path: backward on the master; its accumulated
            // gradients are consumed by the ApplyUpdate that follows.
            let g = Self::timed_backward(&mut self.times, &mut self.master, self.lo, g_in);
            self.record_segment(w, WorkKind::Backward, start);
            if self.s > 0 {
                self.grad_out.insert(unit, g);
            }
        }
        Ok(())
    }

    /// Deferred-apply schedules: fold a stash copy's unit gradients into
    /// the master's gradient buffers (summed across units until the
    /// `ApplyUpdate`).
    fn fold_grads(&mut self, entry: &StashEntry) -> Result<(), ExecError> {
        if entry.net.n_layers() != self.master.n_layers() {
            return Err(self.err("stash shape drifted from master"));
        }
        for i in 0..self.master.n_layers() {
            let el = entry.net.layer(i);
            let l = self.master.layer_mut(i);
            l.w.grad.add_assign(&el.w.grad);
            l.b.grad.add_assign(&el.b.grad);
        }
        Ok(())
    }

    fn op_apply(&mut self, mb: u64, units: u32) -> Result<(), ExecError> {
        if let Some(entry) = self.cur.remove(&UnitId::new(mb, 0)) {
            // PipeDream: one stashed mini-batch applies immediately, with
            // migration-aware routing.
            return self.route_and_apply(mb, entry);
        }
        // Everything else: unit gradients were accumulated into the
        // master's own buffers — by direct/fused backprop or by
        // `fold_grads` — and fold in with the per-unit learning rate.
        let lr = if units <= 1 {
            self.spec.lr
        } else {
            self.spec.lr / units as f64
        };
        for i in 0..self.master.n_layers() {
            let l = self.master.layer_mut(i);
            l.w.value.axpy(-lr, &l.w.grad);
            l.b.value.axpy(-lr, &l.b.grad);
            l.w.zero_grad();
            l.b.zero_grad();
        }
        Ok(())
    }

    /// Route a stashed mini-batch's updates: own layers apply locally
    /// (moved-block layers at the receiver go through the sequencer);
    /// layers migrated away ship back to the new owner as one ordered
    /// delta.
    fn route_and_apply(&mut self, mb: u64, entry: StashEntry) -> Result<(), ExecError> {
        let net = entry.net;
        let mut delta: Vec<(Matrix, Matrix)> = Vec::new();
        let mut delta_first = 0usize;
        let mut seq_updates: Vec<(usize, Matrix, Matrix)> = Vec::new();
        for i in 0..net.n_layers() {
            let gl = entry.lo + i;
            let l = net.layer(i);
            if self.is_received_moved(gl) {
                seq_updates.push((gl, l.w.grad.clone(), l.b.grad.clone()));
            } else if self.owns(gl) {
                // `net` is a local stash copy, so its gradients can be
                // borrowed straight into the update — no clones.
                self.apply_update(gl, &l.w.grad, &l.b.grad);
            } else {
                if delta.is_empty() {
                    delta_first = gl;
                }
                delta.push((l.w.grad.clone(), l.b.grad.clone()));
            }
        }
        if !seq_updates.is_empty() {
            self.seq_insert(mb, seq_updates)?;
        }
        if !delta.is_empty() {
            if !(matches!(self.role, Role::Sender) && self.migrated) {
                return Err(self.err(format!("stray un-owned layers in mb {mb} backward")));
            }
            let frame = Frame::Delta {
                mb,
                first_layer: delta_first as u32,
                grads: delta,
            };
            let len = self.send_on(self.migration_channel(), &frame)?;
            self.mig.lock().unwrap().wire_bytes += len as u64;
        }
        Ok(())
    }

    fn blob(l: &Linear, act: ActKind) -> LayerBlob {
        LayerBlob {
            w: l.w.value.clone(),
            b: l.b.value.clone(),
            act,
        }
    }

    fn payload_bytes(blobs: &[LayerBlob]) -> u64 {
        blobs
            .iter()
            .map(|b| ((b.w.data().len() + b.b.data().len()) * 8) as u64)
            .sum()
    }

    fn send_migration(&mut self) -> Result<(), ExecError> {
        let plan = self.plan.ok_or_else(|| self.err("no migration plan"))?;
        let k = plan.moved.len();
        let m = self.master.n_layers();
        let local: Range<usize> = if plan.downstream { m - k..m } else { 0..k };
        let blobs: Vec<LayerBlob> = local
            .clone()
            .map(|i| Self::blob(self.master.layer(i), self.master.act_kind(i)))
            .collect();
        let pending: Vec<u64> = self.stash.keys().map(|u| u.wire(self.m)).collect();
        {
            let mut mg = self.mig.lock().unwrap();
            mg.t_first = Some(self.now());
            mg.samples.push(self.in_flight.load(Ordering::SeqCst));
            mg.param_bytes += Self::payload_bytes(&blobs);
        }
        let master_frame = Frame::Master {
            first_layer: plan.moved.start as u32,
            layers: blobs,
            pending,
        };
        let len = self.send_on(self.migration_channel(), &master_frame)?;
        self.mig.lock().unwrap().wire_bytes += len as u64;
        // Stashed versions, newest first (§4.4: the copy of the later
        // active mini-batch migrates first).
        let versions: Vec<UnitId> = self.stash.keys().rev().copied().collect();
        for u in versions {
            let entry = &self.stash[&u];
            let ml = plan.moved.start - entry.lo;
            let input = entry
                .net
                .layer_input(ml)
                .ok_or_else(|| self.err(format!("mb {}: no cached input for migration", u.mb)))?
                .clone();
            let blobs: Vec<LayerBlob> = (ml..ml + k)
                .map(|i| Self::blob(entry.net.layer(i), entry.net.act_kind(i)))
                .collect();
            let frame = Frame::Stash {
                mb: u.wire(self.m),
                first_layer: plan.moved.start as u32,
                layers: blobs.clone(),
                input,
            };
            let len = self.send_on(self.migration_channel(), &frame)?;
            let mut mg = self.mig.lock().unwrap();
            mg.samples.push(self.in_flight.load(Ordering::SeqCst));
            mg.versions_sent.push(u.wire(self.m));
            mg.param_bytes += Self::payload_bytes(&blobs);
            mg.wire_bytes += len as u64;
        }
        // Shrink to the retained block. Stash entries are retained in
        // full: in-flight mini-batches back-propagate here, and their
        // moved-block updates leave as deltas.
        let keep: Range<usize> = if plan.downstream { 0..m - k } else { k..m };
        self.master = self.master.slice(keep);
        if !plan.downstream {
            self.lo += k;
        }
        self.migrated = true;
        Ok(())
    }

    /// Everything this stage currently holds, in bytes: the master and
    /// every stashed/popped/migrated weight clone (including their layer
    /// input caches) plus all staged and buffered matrices.
    fn resident_bytes(&self) -> u64 {
        mlp_bytes(&self.master)
            + self.stash.values().map(|e| mlp_bytes(&e.net)).sum::<u64>()
            + self.cur.values().map(|e| mlp_bytes(&e.net)).sum::<u64>()
            + self.migrated_stash.values().map(mlp_bytes).sum::<u64>()
            + self
                .act_buf
                .iter()
                .map(|(_, m)| matrix_bytes(m))
                .sum::<u64>()
            + self
                .grad_buf
                .iter()
                .map(|(_, m)| matrix_bytes(m))
                .sum::<u64>()
            + self.pending_act.values().map(matrix_bytes).sum::<u64>()
            + self.staged_out.values().map(matrix_bytes).sum::<u64>()
            + self.grad_in.values().map(matrix_bytes).sum::<u64>()
            + self.grad_out.values().map(matrix_bytes).sum::<u64>()
            + self.recomputed.values().map(matrix_bytes).sum::<u64>()
    }

    fn run(&mut self, ops: &[IrOp]) -> Result<(), ExecError> {
        // Stage 0 retires a mini-batch — decrements the in-flight counter
        // and records its completion time — after the last op carrying it
        // (its ApplyUpdate for most schedules; its final backward for
        // 2BW mini-batches inside a generation).
        let mut retire: BTreeMap<u64, usize> = BTreeMap::new();
        if self.s == 0 {
            for (i, op) in ops.iter().enumerate() {
                retire.insert(op.mb(), i);
            }
        }
        self.peak_bytes = self.resident_bytes();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                IrOp::Recv { payload, unit } => self.op_recv(payload, unit)?,
                IrOp::Send { payload, unit } => self.op_send(payload, unit)?,
                IrOp::StashPush { unit, .. } => self.op_stash_push(unit),
                IrOp::StashPop { unit } => self.op_stash_pop(unit)?,
                IrOp::Forward { unit } => self.op_forward(unit)?,
                IrOp::FusedFwdLossBwd { unit } => self.op_fused(unit)?,
                IrOp::Recompute { unit } => self.op_recompute(unit)?,
                IrOp::Backward { unit } => self.op_backward(unit)?,
                IrOp::ApplyUpdate { mb, units } => self.op_apply(mb, units)?,
            }
            self.peak_bytes = self.peak_bytes.max(self.resident_bytes());
            if self.s == 0 && retire.get(&op.mb()) == Some(&i) {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.completions.push(self.now());
            }
        }
        // A late cutover can leave moved-layer deltas in flight after the
        // receiver's last scheduled op; drain them so no update is lost.
        while !self.outstanding.is_empty() {
            let chan = self
                .migration_channel()
                .ok_or_else(|| self.err("deltas outstanding but no migration channel"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("channel closed with deltas outstanding"))?;
            match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Act { mb, data } => self.act_buf.push_back((mb, data.to_matrix())),
                FrameView::Grad { mb, data } => self.grad_buf.push_back((mb, data.to_matrix())),
                FrameView::Control(ctrl) => self.handle_ctrl(ctrl)?,
            }
            chan.recycle(bytes);
        }
        Ok(())
    }
}

/// Run a full pipeline training session. Blocks until every stage thread
/// has drained its schedule; returns the merged measurements.
pub fn run_pipeline(spec: &ExecSpec) -> Result<ExecResult, ExecError> {
    spec.validate()?;
    let plan = match &spec.switch {
        Some(sw) => Some(plan_move(spec, sw)?),
        None => None,
    };
    let n_stages = spec.n_stages();
    let starts = spec.starts();
    let full = Mlp::new(&spec.sizes, spec.act, spec.seed);

    // The one program both engines agree on: replayed here, priced by
    // pipesim's ProgramPricer.
    let program = match &plan {
        Some(p) => generate_spliced(
            spec.schedule,
            n_stages,
            spec.total,
            spec.in_flight,
            &SpliceSpec {
                sender: p.a,
                receiver: p.b,
                at_mb: p.at_mb,
                receiver_waits: !p.downstream,
            },
        )?,
        None => generate(spec.schedule, n_stages, spec.total, spec.in_flight),
    };
    program
        .validate()
        .map_err(|e| format!("ill-formed schedule program: {e}"))?;

    // Channel capacity: a few in-flight activations per link; anything
    // larger (migration frames) is admitted alone by the channel.
    let max_width = *spec.sizes.iter().max().unwrap();
    let frame_bytes = 32 + spec.batch * max_width * 8;
    let capacity = frame_bytes * (spec.in_flight.max(program.micro_batches) + 2);
    let fwd: Vec<ByteChannel> = (0..n_stages.saturating_sub(1))
        .map(|_| ByteChannel::new(capacity, spec.bytes_per_sec))
        .collect();
    let bwd: Vec<ByteChannel> = (0..n_stages.saturating_sub(1))
        .map(|_| ByteChannel::new(capacity, spec.bytes_per_sec))
        .collect();

    let in_flight = AtomicU64::new(0);
    let mig = Mutex::new(MigrationShared::default());
    let t0 = Instant::now();

    let program_ref = &program;
    let outcomes: Vec<Result<StageOut, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_stages);
        for s in 0..n_stages {
            let master = full.slice(starts[s]..starts[s + 1]);
            let role = match &plan {
                Some(p) if p.a == s => Role::Sender,
                Some(p) if p.b == s => Role::Receiver,
                _ => Role::None,
            };
            let (fwd_ref, bwd_ref) = (&fwd, &bwd);
            let (in_flight_ref, mig_ref, plan_ref) = (&in_flight, &mig, plan.as_ref());
            let lo = starts[s];
            handles.push(scope.spawn(move || {
                let mut stage = Stage {
                    s,
                    last: s == n_stages - 1,
                    spec,
                    kind: spec.schedule,
                    m: program_ref.micro_batches,
                    lo,
                    master,
                    stash: BTreeMap::new(),
                    migrated_stash: BTreeMap::new(),
                    fwd_in: if s > 0 { Some(&fwd_ref[s - 1]) } else { None },
                    fwd_out: if s + 1 < n_stages {
                        Some(&fwd_ref[s])
                    } else {
                        None
                    },
                    bwd_in: if s + 1 < n_stages {
                        Some(&bwd_ref[s])
                    } else {
                        None
                    },
                    bwd_out: if s > 0 { Some(&bwd_ref[s - 1]) } else { None },
                    act_buf: VecDeque::new(),
                    grad_buf: VecDeque::new(),
                    pending_act: BTreeMap::new(),
                    staged_out: BTreeMap::new(),
                    grad_in: BTreeMap::new(),
                    grad_out: BTreeMap::new(),
                    recomputed: BTreeMap::new(),
                    cur: BTreeMap::new(),
                    loss_acc: BTreeMap::new(),
                    plan: plan_ref,
                    role,
                    migrated: false,
                    seq: None,
                    outstanding: BTreeSet::new(),
                    mig: mig_ref,
                    in_flight: in_flight_ref,
                    t0,
                    times: LayerTimes::new(spec.n_layers()),
                    segments: Vec::new(),
                    losses: Vec::new(),
                    completions: Vec::new(),
                    peak_bytes: 0,
                };
                let run = stage.run(&program_ref.stages[s].ops);
                // Unblock neighbors if this stage failed mid-schedule.
                if run.is_err() {
                    for c in fwd_ref.iter().chain(bwd_ref.iter()) {
                        c.close();
                    }
                }
                run.map(|()| StageOut {
                    lo: stage.lo,
                    weights: stage.master.weights(),
                    times: stage.times,
                    segments: stage.segments,
                    losses: stage.losses,
                    completions: stage.completions,
                    peak_bytes: stage.peak_bytes,
                })
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err("stage thread panicked".to_string()),
            })
            .collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut outs = Vec::with_capacity(n_stages);
    for o in outcomes {
        outs.push(o?);
    }

    let mut times = LayerTimes::new(spec.n_layers());
    let mut segments = Vec::new();
    for o in &outs {
        times.merge(&o.times);
        segments.extend(o.segments.iter().cloned());
    }
    segments.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.worker.cmp(&b.worker))
    });
    let mut losses: Vec<(u64, f64)> = outs.last().unwrap().losses.clone();
    losses.sort_by_key(|(mb, _)| *mb);
    let completions = outs[0].completions.clone();

    let fwd_times: Vec<f64> = (0..spec.n_layers()).map(|j| times.mean_fwd(j)).collect();
    let bwd_times: Vec<f64> = (0..spec.n_layers()).map(|j| times.mean_bwd(j)).collect();
    let metrics = metrics_from_times(
        &spec.sizes,
        spec.batch,
        n_stages,
        &fwd_times,
        &bwd_times,
        spec.bytes_per_sec.unwrap_or(1e12),
    );

    let migration = plan.map(|p| {
        let m = mig.into_inner().unwrap();
        MigrationReport {
            cutover_mb: p.at_mb,
            from_stage: p.a,
            to_stage: p.b,
            moved_layers: p.moved.clone(),
            versions_moved: 1 + m.versions_sent.len(),
            param_bytes: m.param_bytes,
            wire_bytes: m.wire_bytes,
            versions_sent: m.versions_sent,
            in_flight_samples: m.samples,
            switch_seconds: match (m.t_first, m.t_last) {
                (Some(a), Some(b)) => (b - a).max(0.0),
                _ => 0.0,
            },
        }
    });

    Ok(ExecResult {
        n_stages,
        completed: losses.len() as u64,
        losses: losses.into_iter().map(|(_, l)| l).collect(),
        wall_seconds,
        completion_times: completions,
        fwd_channels: fwd.iter().map(|c| c.stats()).collect(),
        bwd_channels: bwd.iter().map(|c| c.stats()).collect(),
        metrics,
        times,
        segments,
        final_weights: outs.iter().map(|o| (o.lo, o.weights.clone())).collect(),
        peak_stage_bytes: outs.iter().map(|o| o.peak_bytes).collect(),
        migration,
    })
}
