//! The pipeline runtime: stage threads, 1F1B execution, weight stashing,
//! and live fine-grained state switching.
//!
//! ## Threading model
//!
//! Each pipeline stage is one OS thread owning a contiguous slice of the
//! model. Adjacent stages are connected by two bounded byte channels (one
//! per direction); every activation, gradient and migration payload is
//! serialized through the codec, so the byte counters measure what really
//! crossed the wire. A stage executes its precomputed 1F1B op list,
//! blocking on exactly the frame each op needs — making all weight-update
//! sequences, and therefore losses and final weights, independent of
//! thread timing.
//!
//! ## Weight stashing
//!
//! A forward of mini-batch `v` clones the stage's master weights; the
//! clone (which also holds the layer input caches) is stashed keyed by
//! `v`. The backward of `v` runs against its own stashed copy — PipeDream
//! weight-stashing semantics — and the resulting gradients are applied to
//! the master with stateless SGD (`w -= lr * g`), in mini-batch order.
//!
//! ## Live migration (§4.4)
//!
//! A [`SwitchSpec`] moves the boundary between two adjacent stages at a
//! planned cutover mini-batch `X` while the pipeline keeps admitting
//! work. The old owner sends, over the regular data channel (so the
//! traffic genuinely contends with activations): first the master copy —
//! the *latest* version, letting the new owner forward mini-batch `X`
//! immediately — then every stashed version newest-first ("the weight
//! copy of later active mini-batch first"). In-flight mini-batches
//! (`v < X`) back-propagate through the old owner's retained stash
//! copies; their updates to the moved block travel as [`Frame::Delta`]s
//! and are applied by the new owner strictly in mini-batch order via a
//! sequencer, so the moved master sees exactly the update sequence it
//! would have seen without the switch. Nothing ever waits for the
//! pipeline to empty: a drain-free invariant (in-flight ≥ 1) is sampled
//! at every migration tick.

use crate::channel::{ByteChannel, ChannelStats};
use crate::codec::{decode_view, encode_into, Frame, FrameView, LayerBlob};
use crate::profiler::{metrics_from_times, LayerTimes};
use crate::schedule::{stage_ops, Op};
use ap_nn::mlp::MlpWeights;
use ap_nn::{mse_loss, ActKind, Linear, Matrix, Mlp};
use ap_pipesim::{TimelineSegment, WorkKind};
use ap_rng::Rng;
use autopipe::ProfilingMetrics;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runtime error (stage failures carry the stage index in the message).
pub type ExecError = String;

/// A planned live reconfiguration: at mini-batch `at_mb`, the stage
/// boundaries become `new_cuts`. Exactly one boundary may shift (a
/// contiguous layer block moving between two adjacent stages).
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// First mini-batch routed under the new partition.
    pub at_mb: u64,
    /// New interior stage boundaries.
    pub new_cuts: Vec<usize>,
}

/// Full description of one pipeline run.
#[derive(Debug, Clone)]
pub struct ExecSpec {
    /// MLP widths, `[in, h1, ..., out]` — layer `j` maps width `j` to
    /// `j+1`.
    pub sizes: Vec<usize>,
    /// Hidden activation.
    pub act: ActKind,
    /// Weight-init and data seed.
    pub seed: u64,
    /// Rows per mini-batch.
    pub batch: usize,
    /// SGD learning rate (stateless SGD; no optimizer state to migrate).
    pub lr: f64,
    /// Interior stage boundaries (ascending layer indices); empty = one
    /// stage.
    pub cuts: Vec<usize>,
    /// Mini-batches admitted concurrently (1F1B depth; also the number of
    /// stashed weight versions).
    pub in_flight: usize,
    /// Mini-batches to train.
    pub total: u64,
    /// Channel bandwidth throttle, bytes/second (`None` = host memory
    /// speed).
    pub bytes_per_sec: Option<f64>,
    /// The training set cycles through this many distinct mini-batches.
    pub distinct_batches: u64,
    /// Optional live reconfiguration.
    pub switch: Option<SwitchSpec>,
    /// Record per-op wall-clock segments (chrome-trace export).
    pub record_timeline: bool,
}

impl ExecSpec {
    /// Layer count.
    pub fn n_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Stage count.
    pub fn n_stages(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Stage boundaries including 0 and `n_layers`.
    fn starts(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.cuts.len() + 2);
        s.push(0);
        s.extend_from_slice(&self.cuts);
        s.push(self.n_layers());
        s
    }

    fn validate(&self) -> Result<(), ExecError> {
        if self.sizes.len() < 2 {
            return Err("need at least one layer".into());
        }
        if self.batch == 0 || self.total == 0 || self.distinct_batches == 0 {
            return Err("batch, total and distinct_batches must be positive".into());
        }
        if self.in_flight == 0 {
            return Err("in_flight must be at least 1".into());
        }
        let starts = self.starts();
        for w in starts.windows(2) {
            if w[0] >= w[1] {
                return Err(format!(
                    "cuts must be strictly ascending in (0, {})",
                    self.n_layers()
                ));
            }
        }
        if let Some(sw) = &self.switch {
            plan_move(self, sw)?;
        }
        Ok(())
    }
}

/// Resolved migration plan derived from a [`SwitchSpec`].
#[derive(Debug, Clone)]
struct MovePlan {
    /// Old owner stage.
    a: usize,
    /// New owner stage.
    b: usize,
    /// Global layer indices migrating.
    moved: Range<usize>,
    /// True if the block moves to the *downstream* neighbor (migration
    /// frames ride the forward channel), false for upstream (backward
    /// channel).
    downstream: bool,
    /// Cutover mini-batch.
    at_mb: u64,
}

fn plan_move(spec: &ExecSpec, sw: &SwitchSpec) -> Result<MovePlan, ExecError> {
    if sw.new_cuts.len() != spec.cuts.len() {
        return Err("switch must keep the stage count".into());
    }
    if sw.at_mb == 0 || sw.at_mb >= spec.total {
        return Err(format!(
            "cutover mini-batch must be in 1..{} (got {})",
            spec.total, sw.at_mb
        ));
    }
    let diffs: Vec<usize> = (0..spec.cuts.len())
        .filter(|&i| spec.cuts[i] != sw.new_cuts[i])
        .collect();
    if diffs.len() != 1 {
        return Err("switch must move exactly one stage boundary".into());
    }
    let i = diffs[0];
    let (old_cut, new_cut) = (spec.cuts[i], sw.new_cuts[i]);
    let lo_bound = if i == 0 { 0 } else { spec.cuts[i - 1] };
    let hi_bound = if i + 1 == spec.cuts.len() {
        spec.n_layers()
    } else {
        spec.cuts[i + 1]
    };
    if new_cut <= lo_bound || new_cut >= hi_bound {
        return Err("switch would empty a stage".into());
    }
    if spec.in_flight < 2 {
        return Err("a live switch needs in_flight >= 2 to stay drain-free".into());
    }
    Ok(if new_cut < old_cut {
        // Boundary moves down: top layers of stage i go to stage i+1.
        MovePlan {
            a: i,
            b: i + 1,
            moved: new_cut..old_cut,
            downstream: true,
            at_mb: sw.at_mb,
        }
    } else {
        // Boundary moves up: bottom layers of stage i+1 go to stage i.
        MovePlan {
            a: i + 1,
            b: i,
            moved: old_cut..new_cut,
            downstream: false,
            at_mb: sw.at_mb,
        }
    })
}

/// Shared migration bookkeeping (sender and receiver threads both write).
#[derive(Debug, Default)]
struct MigrationShared {
    /// In-flight count sampled at every migration tick (frame send or
    /// install).
    samples: Vec<u64>,
    /// Stash versions in send order (must be descending — §4.4).
    versions_sent: Vec<u64>,
    /// Stash versions in install order at the receiver.
    installed: Vec<u64>,
    /// Weight-copy payload bytes (master + stashes; excludes headers,
    /// activations and deltas) — comparable to `SwitchPlan::transfer_bytes`.
    param_bytes: u64,
    /// Every migration frame's full wire size (master + stash + delta).
    wire_bytes: u64,
    /// Seconds since run start when the master copy was sent.
    t_first: Option<f64>,
    /// Seconds since run start when the last version was installed.
    t_last: Option<f64>,
    /// Stash installs expected at the receiver.
    expected: Option<usize>,
}

/// What a live switch did, measured.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Cutover mini-batch.
    pub cutover_mb: u64,
    /// Old owner stage, new owner stage.
    pub from_stage: usize,
    /// New owner stage.
    pub to_stage: usize,
    /// Global layers moved.
    pub moved_layers: Range<usize>,
    /// Weight copies transferred (1 master + stashed versions).
    pub versions_moved: usize,
    /// Weight-copy payload bytes (measure against the simulator's
    /// `SwitchPlan::transfer_bytes` prediction).
    pub param_bytes: u64,
    /// Total migration bytes on the wire (headers, stashed inputs and
    /// deltas included).
    pub wire_bytes: u64,
    /// Stash versions in send order.
    pub versions_sent: Vec<u64>,
    /// In-flight samples, one per migration tick.
    pub in_flight_samples: Vec<u64>,
    /// Wall-clock seconds from master send to last install.
    pub switch_seconds: f64,
}

impl MigrationReport {
    /// The §4.4 drain-free invariant: at least one mini-batch was in
    /// flight at every migration tick.
    pub fn drain_free(&self) -> bool {
        !self.in_flight_samples.is_empty() && self.in_flight_samples.iter().all(|&s| s >= 1)
    }

    /// Smallest in-flight sample seen during the switch.
    pub fn min_in_flight(&self) -> u64 {
        self.in_flight_samples.iter().copied().min().unwrap_or(0)
    }

    /// Versions were sent newest-first (later active mini-batch first).
    pub fn newest_first(&self) -> bool {
        self.versions_sent.windows(2).all(|w| w[0] > w[1])
    }
}

/// Everything a finished run measured.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Stage count the run started with.
    pub n_stages: usize,
    /// Mini-batches fully trained.
    pub completed: u64,
    /// Per-mini-batch training loss, in mini-batch order.
    pub losses: Vec<f64>,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_seconds: f64,
    /// Per-mini-batch completion times (seconds since start), in
    /// completion order at stage 0.
    pub completion_times: Vec<f64>,
    /// Forward-channel counters, one per stage boundary.
    pub fwd_channels: Vec<ChannelStats>,
    /// Backward-channel counters, one per stage boundary.
    pub bwd_channels: Vec<ChannelStats>,
    /// Measured Table-1 metrics (per-layer times averaged over the run).
    pub metrics: ProfilingMetrics,
    /// Raw per-layer timing sums.
    pub times: LayerTimes,
    /// Wall-clock timeline segments (empty unless requested).
    pub segments: Vec<TimelineSegment>,
    /// Final master weights per stage as `(first_global_layer, weights)`,
    /// in stage order.
    pub final_weights: Vec<(usize, MlpWeights)>,
    /// Migration measurements, if a switch ran.
    pub migration: Option<MigrationReport>,
}

impl ExecResult {
    /// Mini-batches per second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall_seconds.max(1e-12)
    }

    /// Steady-state throughput: drop the first `skip` completions (pipeline
    /// fill) and measure the rest against the remaining wall time.
    pub fn steady_throughput(&self, skip: usize) -> f64 {
        if self.completion_times.len() <= skip + 1 {
            return self.throughput();
        }
        let t0 = self.completion_times[skip];
        let t1 = *self.completion_times.last().unwrap();
        (self.completion_times.len() - skip - 1) as f64 / (t1 - t0).max(1e-12)
    }

    /// Total bytes that crossed all inter-stage channels.
    pub fn total_wire_bytes(&self) -> u64 {
        self.fwd_channels
            .iter()
            .chain(&self.bwd_channels)
            .map(|c| c.bytes)
            .sum()
    }
}

const DATA_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const TARGET_SALT: u64 = 0x517c_c1b7_2722_0a95;

fn gen_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn gen_input(spec: &ExecSpec, mb: u64) -> Matrix {
    gen_matrix(
        spec.seed ^ DATA_SALT.wrapping_mul(1 + mb % spec.distinct_batches),
        spec.batch,
        spec.sizes[0],
    )
}

fn gen_target(spec: &ExecSpec, mb: u64) -> Matrix {
    gen_matrix(
        spec.seed ^ TARGET_SALT.wrapping_mul(1 + mb % spec.distinct_batches),
        spec.batch,
        *spec.sizes.last().unwrap(),
    )
}

/// The exact (input, target) pair stage 0 / the last stage synthesize for
/// mini-batch `mb` — public so a sequential reference run can train on
/// bit-identical data.
pub fn training_batch(spec: &ExecSpec, mb: u64) -> (Matrix, Matrix) {
    (gen_input(spec, mb), gen_target(spec, mb))
}

/// Applies moved-block updates strictly in mini-batch order: deltas from
/// the old owner for in-flight mini-batches, then the new owner's own
/// gradients, interleave into one totally ordered sequence.
#[derive(Debug)]
struct Sequencer {
    next: u64,
    pending: BTreeMap<u64, Vec<(usize, Matrix, Matrix)>>,
}

/// One stashed weight version: the cloned sub-network plus the global
/// index of its first layer (ownership ranges change across a switch).
struct StashEntry {
    lo: usize,
    net: Mlp,
}

/// A stage's op after migration markers are spliced in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtOp {
    Forward(u64),
    Backward(u64),
    /// Old owner: capture + send master and stashed versions.
    SendMigration,
    /// New owner (upstream move only): block on the backward channel
    /// until the master copy is installed.
    WaitMaster,
}

enum Role {
    None,
    Sender,
    Receiver,
}

struct StageOut {
    lo: usize,
    weights: MlpWeights,
    times: LayerTimes,
    segments: Vec<TimelineSegment>,
    losses: Vec<(u64, f64)>,
    completions: Vec<f64>,
}

struct Stage<'a> {
    s: usize,
    last: bool,
    spec: &'a ExecSpec,
    lo: usize,
    master: Mlp,
    stash: BTreeMap<u64, StashEntry>,
    migrated_stash: BTreeMap<u64, Mlp>,
    fwd_in: Option<&'a ByteChannel>,
    fwd_out: Option<&'a ByteChannel>,
    bwd_in: Option<&'a ByteChannel>,
    bwd_out: Option<&'a ByteChannel>,
    act_buf: VecDeque<(u64, Matrix)>,
    grad_buf: VecDeque<(u64, Matrix)>,
    plan: Option<&'a MovePlan>,
    role: Role,
    migrated: bool,
    /// Mini-batches allowed to run directly on the master weights — no
    /// stash clone. Computed statically from the op schedule: `v` is in
    /// here iff no *other* mini-batch's backward (i.e. no weight update)
    /// sits between `Forward(v)` and `Backward(v)`, so the master at
    /// backward time is bit-identical to a stash taken at forward time.
    /// Empty whenever a migration plan exists (stashes are the migration
    /// payload) — so `in_flight = 1` runs and fused last-stage ops never
    /// pay the per-mini-batch master clone.
    direct: BTreeSet<u64>,
    seq: Option<Sequencer>,
    /// Receiver only: in-flight mini-batches whose moved-layer delta has
    /// not arrived yet.
    outstanding: BTreeSet<u64>,
    mig: &'a Mutex<MigrationShared>,
    in_flight: &'a AtomicU64,
    t0: Instant,
    times: LayerTimes,
    segments: Vec<TimelineSegment>,
    losses: Vec<(u64, f64)>,
    completions: Vec<f64>,
}

impl<'a> Stage<'a> {
    fn owns(&self, global_layer: usize) -> bool {
        global_layer >= self.lo && global_layer < self.lo + self.master.n_layers()
    }

    fn is_received_moved(&self, global_layer: usize) -> bool {
        matches!(self.role, Role::Receiver)
            && self.migrated
            && self.plan.is_some_and(|p| p.moved.contains(&global_layer))
    }

    fn err(&self, msg: impl Into<String>) -> ExecError {
        format!("stage {}: {}", self.s, msg.into())
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn send_on(&self, chan: Option<&ByteChannel>, frame: &Frame) -> Result<usize, ExecError> {
        let chan =
            chan.ok_or_else(|| self.err(format!("no channel for {} frame", frame.kind())))?;
        // Encode into a recycled channel buffer: in steady state the
        // receiver keeps returning warmed buffers, so a send allocates
        // nothing. Wire bytes are identical to a fresh `encode`.
        let mut bytes = chan.take_buffer();
        encode_into(frame, &mut bytes);
        let len = bytes.len();
        chan.send(bytes).map_err(|e| self.err(e))?;
        Ok(len)
    }

    /// The channel migration frames ride for this stage's role.
    fn migration_channel(&self) -> Option<&'a ByteChannel> {
        let p = self.plan?;
        match self.role {
            Role::Sender => {
                if p.downstream {
                    self.fwd_out
                } else {
                    self.bwd_out
                }
            }
            Role::Receiver => {
                if p.downstream {
                    self.fwd_in
                } else {
                    self.bwd_in
                }
            }
            Role::None => None,
        }
    }

    fn apply_update(&mut self, global_layer: usize, dw: &Matrix, db: &Matrix) {
        let li = global_layer - self.lo;
        let lr = self.spec.lr;
        let l = self.master.layer_mut(li);
        l.w.value.axpy(-lr, dw);
        l.b.value.axpy(-lr, db);
    }

    fn seq_insert(
        &mut self,
        mb: u64,
        updates: Vec<(usize, Matrix, Matrix)>,
    ) -> Result<(), ExecError> {
        if self.seq.is_none() {
            return Err(self.err("moved-layer update before master install"));
        }
        self.seq.as_mut().unwrap().pending.insert(mb, updates);
        // Drain everything now in order.
        loop {
            let next = self.seq.as_ref().unwrap().next;
            let Some(batch) = self.seq.as_mut().unwrap().pending.remove(&next) else {
                break;
            };
            for (gl, dw, db) in batch {
                self.apply_update(gl, &dw, &db);
            }
            self.seq.as_mut().unwrap().next += 1;
        }
        Ok(())
    }

    fn handle_ctrl(&mut self, frame: Frame) -> Result<(), ExecError> {
        match frame {
            Frame::Master {
                first_layer,
                layers,
                pending,
            } => {
                if !matches!(self.role, Role::Receiver) {
                    return Err(self.err("unexpected master frame"));
                }
                let plan = self.plan.unwrap();
                let moved: Vec<Linear> = layers
                    .iter()
                    .map(|b| Linear::from_weights(b.w.clone(), b.b.clone()))
                    .collect();
                let kinds: Vec<ActKind> = layers.iter().map(|b| b.act).collect();
                let n = self.master.n_layers();
                let (mut new_layers, mut new_kinds) = (Vec::new(), Vec::new());
                if (first_layer as usize) < self.lo {
                    // Downstream move: block attaches below us.
                    new_layers.extend(moved);
                    new_kinds.extend(kinds);
                    for i in 0..n {
                        new_layers.push(self.master.layer(i).cold_clone());
                        new_kinds.push(self.master.act_kind(i));
                    }
                    self.lo = first_layer as usize;
                } else {
                    // Upstream move: block attaches on top.
                    for i in 0..n {
                        new_layers.push(self.master.layer(i).cold_clone());
                        new_kinds.push(self.master.act_kind(i));
                    }
                    new_layers.extend(moved);
                    new_kinds.extend(kinds);
                }
                self.master = Mlp::from_parts(new_layers, &new_kinds);
                self.seq = Some(Sequencer {
                    next: pending.first().copied().unwrap_or(plan.at_mb),
                    pending: BTreeMap::new(),
                });
                self.outstanding = pending.iter().copied().collect();
                self.migrated = true;
                let mut m = self.mig.lock().unwrap();
                m.samples.push(self.in_flight.load(Ordering::SeqCst));
                m.expected = Some(pending.len());
                if pending.is_empty() {
                    m.t_last = Some(self.now());
                }
                Ok(())
            }
            Frame::Stash {
                mb,
                first_layer: _,
                layers,
                input,
            } => {
                if !matches!(self.role, Role::Receiver) {
                    return Err(self.err("unexpected stash frame"));
                }
                let ls: Vec<Linear> = layers
                    .iter()
                    .map(|b| Linear::from_weights(b.w.clone(), b.b.clone()))
                    .collect();
                let kinds: Vec<ActKind> = layers.iter().map(|b| b.act).collect();
                let mut net = Mlp::from_parts(ls, &kinds);
                // Rebuild the version's backward state by recomputing its
                // forward from the shipped input activation.
                let _ = net.forward(&input);
                self.migrated_stash.insert(mb, net);
                let mut m = self.mig.lock().unwrap();
                m.installed.push(mb);
                m.samples.push(self.in_flight.load(Ordering::SeqCst));
                if Some(m.installed.len()) == m.expected {
                    m.t_last = Some(self.now());
                }
                Ok(())
            }
            Frame::Delta {
                mb,
                first_layer,
                grads,
            } => {
                // This in-flight mini-batch retired at the old owner; its
                // migrated stash copy is obsolete.
                self.migrated_stash.remove(&mb);
                self.outstanding.remove(&mb);
                let updates: Vec<(usize, Matrix, Matrix)> = grads
                    .into_iter()
                    .enumerate()
                    .map(|(i, (dw, db))| (first_layer as usize + i, dw, db))
                    .collect();
                self.seq_insert(mb, updates)
            }
            other => Err(self.err(format!("unexpected {} frame", other.kind()))),
        }
    }

    fn next_act(&mut self, mb: u64) -> Result<Matrix, ExecError> {
        if let Some(pos) = self.act_buf.iter().position(|(v, _)| *v == mb) {
            return Ok(self.act_buf.remove(pos).unwrap().1);
        }
        loop {
            let chan = self.fwd_in.ok_or_else(|| self.err("no forward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("forward channel closed"))?;
            let got = match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Act { mb: v, data } if v == mb => Some(data.to_matrix()),
                FrameView::Act { mb: v, data } => {
                    self.act_buf.push_back((v, data.to_matrix()));
                    None
                }
                FrameView::Grad { .. } => return Err(self.err("unexpected grad frame")),
                FrameView::Control(ctrl) => {
                    self.handle_ctrl(ctrl)?;
                    None
                }
            };
            chan.recycle(bytes);
            if let Some(data) = got {
                return Ok(data);
            }
        }
    }

    fn next_grad(&mut self, mb: u64) -> Result<Matrix, ExecError> {
        if let Some(pos) = self.grad_buf.iter().position(|(v, _)| *v == mb) {
            return Ok(self.grad_buf.remove(pos).unwrap().1);
        }
        loop {
            let chan = self.bwd_in.ok_or_else(|| self.err("no backward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("backward channel closed"))?;
            let got = match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Grad { mb: v, data } if v == mb => Some(data.to_matrix()),
                FrameView::Grad { mb: v, data } => {
                    self.grad_buf.push_back((v, data.to_matrix()));
                    None
                }
                FrameView::Act { .. } => return Err(self.err("unexpected act frame")),
                FrameView::Control(ctrl) => {
                    self.handle_ctrl(ctrl)?;
                    None
                }
            };
            chan.recycle(bytes);
            if let Some(data) = got {
                return Ok(data);
            }
        }
    }

    /// Upstream-move receiver: block on the backward channel until the
    /// master copy arrives (buffering any gradients popped on the way).
    fn wait_master(&mut self) -> Result<(), ExecError> {
        while !self.migrated {
            let chan = self.bwd_in.ok_or_else(|| self.err("no backward input"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("backward channel closed"))?;
            match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Grad { mb, data } => self.grad_buf.push_back((mb, data.to_matrix())),
                FrameView::Act { .. } => return Err(self.err("unexpected act frame")),
                FrameView::Control(ctrl) => self.handle_ctrl(ctrl)?,
            }
            chan.recycle(bytes);
        }
        Ok(())
    }

    fn record_segment(&mut self, mb: u64, kind: WorkKind, start: f64) {
        if self.spec.record_timeline {
            self.segments.push(TimelineSegment {
                worker: self.s,
                unit: mb,
                kind,
                start,
                end: self.now(),
            });
        }
    }

    fn forward(&mut self, mb: u64) -> Result<(), ExecError> {
        let x = if self.s == 0 {
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            gen_input(self.spec, mb)
        } else {
            self.next_act(mb)?
        };
        let start = self.now();
        let mut h = x;
        if self.direct.contains(&mb) {
            // No weight update can land before this mini-batch's backward,
            // so the master *is* the stash: run on it in place. The owned
            // forward moves `h` into the layer cache instead of cloning.
            for i in 0..self.master.n_layers() {
                let t = Instant::now();
                h = self.master.forward_range_owned(i..i + 1, h);
                self.times.fwd(self.lo + i, t.elapsed().as_secs_f64());
            }
        } else {
            let mut entry = StashEntry {
                lo: self.lo,
                net: self.master.clone(),
            };
            for i in 0..entry.net.n_layers() {
                let t = Instant::now();
                h = entry.net.forward_range_owned(i..i + 1, h);
                self.times.fwd(entry.lo + i, t.elapsed().as_secs_f64());
            }
            self.stash.insert(mb, entry);
        }
        self.record_segment(mb, WorkKind::Forward, start);
        if self.last {
            let target = gen_target(self.spec, mb);
            let (loss, g) = mse_loss(&h, &target);
            self.losses.push((mb, loss));
            self.backward(mb, Some(g))
        } else {
            self.send_on(self.fwd_out, &Frame::Act { mb, data: h })?;
            Ok(())
        }
    }

    /// Backward for a mini-batch that ran its forward directly on the
    /// master: back-propagate in place, apply the accumulated gradients,
    /// then zero them so the master's accumulators stay clean for any
    /// later stash clone. Bit-identical to the stashed path because the
    /// master cannot have changed since this mini-batch's forward.
    fn backward_direct(&mut self, mb: u64, g_in: Matrix) -> Result<(), ExecError> {
        let start = self.now();
        let mut g = g_in;
        let n = self.master.n_layers();
        for i in (0..n).rev() {
            let t = Instant::now();
            g = self.master.backward_range(i..i + 1, &g);
            self.times.bwd(self.lo + i, t.elapsed().as_secs_f64());
        }
        self.record_segment(mb, WorkKind::Backward, start);
        let lr = self.spec.lr;
        for i in 0..n {
            let l = self.master.layer_mut(i);
            l.w.value.axpy(-lr, &l.w.grad);
            l.b.value.axpy(-lr, &l.b.grad);
            l.w.zero_grad();
            l.b.zero_grad();
        }
        if self.s == 0 {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.completions.push(self.now());
        } else {
            self.send_on(self.bwd_out, &Frame::Grad { mb, data: g })?;
        }
        Ok(())
    }

    fn backward(&mut self, mb: u64, fused_grad: Option<Matrix>) -> Result<(), ExecError> {
        let g_in = match fused_grad {
            Some(g) => g,
            None => self.next_grad(mb)?,
        };
        if self.direct.contains(&mb) {
            return self.backward_direct(mb, g_in);
        }
        let entry = self
            .stash
            .remove(&mb)
            .ok_or_else(|| self.err(format!("no stashed version for mb {mb}")))?;
        let start = self.now();
        let mut net = entry.net;
        let mut g = g_in;
        for i in (0..net.n_layers()).rev() {
            let t = Instant::now();
            g = net.backward_range(i..i + 1, &g);
            self.times.bwd(entry.lo + i, t.elapsed().as_secs_f64());
        }
        self.record_segment(mb, WorkKind::Backward, start);
        // Route the updates: own layers apply locally (moved-block layers
        // at the receiver go through the sequencer); layers migrated away
        // ship back to the new owner as one ordered delta.
        let mut delta: Vec<(Matrix, Matrix)> = Vec::new();
        let mut delta_first = 0usize;
        let mut seq_updates: Vec<(usize, Matrix, Matrix)> = Vec::new();
        for i in 0..net.n_layers() {
            let gl = entry.lo + i;
            let l = net.layer(i);
            if self.is_received_moved(gl) {
                seq_updates.push((gl, l.w.grad.clone(), l.b.grad.clone()));
            } else if self.owns(gl) {
                // `net` is a local stash copy, so its gradients can be
                // borrowed straight into the update — no clones.
                self.apply_update(gl, &l.w.grad, &l.b.grad);
            } else {
                if delta.is_empty() {
                    delta_first = gl;
                }
                delta.push((l.w.grad.clone(), l.b.grad.clone()));
            }
        }
        if !seq_updates.is_empty() {
            self.seq_insert(mb, seq_updates)?;
        }
        if !delta.is_empty() {
            if !(matches!(self.role, Role::Sender) && self.migrated) {
                return Err(self.err(format!("stray un-owned layers in mb {mb} backward")));
            }
            let frame = Frame::Delta {
                mb,
                first_layer: delta_first as u32,
                grads: delta,
            };
            let len = self.send_on(self.migration_channel(), &frame)?;
            self.mig.lock().unwrap().wire_bytes += len as u64;
        }
        if self.s == 0 {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.completions.push(self.now());
        } else {
            self.send_on(self.bwd_out, &Frame::Grad { mb, data: g })?;
        }
        Ok(())
    }

    fn blob(l: &Linear, act: ActKind) -> LayerBlob {
        LayerBlob {
            w: l.w.value.clone(),
            b: l.b.value.clone(),
            act,
        }
    }

    fn payload_bytes(blobs: &[LayerBlob]) -> u64 {
        blobs
            .iter()
            .map(|b| ((b.w.data().len() + b.b.data().len()) * 8) as u64)
            .sum()
    }

    fn send_migration(&mut self) -> Result<(), ExecError> {
        let plan = self.plan.ok_or_else(|| self.err("no migration plan"))?;
        let k = plan.moved.len();
        let m = self.master.n_layers();
        let local: Range<usize> = if plan.downstream { m - k..m } else { 0..k };
        let blobs: Vec<LayerBlob> = local
            .clone()
            .map(|i| Self::blob(self.master.layer(i), self.master.act_kind(i)))
            .collect();
        let pending: Vec<u64> = self.stash.keys().copied().collect();
        {
            let mut mg = self.mig.lock().unwrap();
            mg.t_first = Some(self.now());
            mg.samples.push(self.in_flight.load(Ordering::SeqCst));
            mg.param_bytes += Self::payload_bytes(&blobs);
        }
        let master_frame = Frame::Master {
            first_layer: plan.moved.start as u32,
            layers: blobs,
            pending,
        };
        let len = self.send_on(self.migration_channel(), &master_frame)?;
        self.mig.lock().unwrap().wire_bytes += len as u64;
        // Stashed versions, newest first (§4.4: the copy of the later
        // active mini-batch migrates first).
        let versions: Vec<u64> = self.stash.keys().rev().copied().collect();
        for v in versions {
            let entry = &self.stash[&v];
            let ml = plan.moved.start - entry.lo;
            let input = entry
                .net
                .layer_input(ml)
                .ok_or_else(|| self.err(format!("mb {v}: no cached input for migration")))?
                .clone();
            let blobs: Vec<LayerBlob> = (ml..ml + k)
                .map(|i| Self::blob(entry.net.layer(i), entry.net.act_kind(i)))
                .collect();
            let frame = Frame::Stash {
                mb: v,
                first_layer: plan.moved.start as u32,
                layers: blobs.clone(),
                input,
            };
            let len = self.send_on(self.migration_channel(), &frame)?;
            let mut mg = self.mig.lock().unwrap();
            mg.samples.push(self.in_flight.load(Ordering::SeqCst));
            mg.versions_sent.push(v);
            mg.param_bytes += Self::payload_bytes(&blobs);
            mg.wire_bytes += len as u64;
        }
        // Shrink to the retained block. Stash entries are retained in
        // full: in-flight mini-batches back-propagate here, and their
        // moved-block updates leave as deltas.
        let keep: Range<usize> = if plan.downstream { 0..m - k } else { k..m };
        self.master = self.master.slice(keep);
        if !plan.downstream {
            self.lo += k;
        }
        self.migrated = true;
        Ok(())
    }

    fn run(&mut self, ops: &[RtOp]) -> Result<(), ExecError> {
        for op in ops {
            match *op {
                RtOp::Forward(v) => self.forward(v)?,
                RtOp::Backward(v) => self.backward(v, None)?,
                RtOp::SendMigration => self.send_migration()?,
                RtOp::WaitMaster => self.wait_master()?,
            }
        }
        // A late cutover can leave moved-layer deltas in flight after the
        // receiver's last scheduled op; drain them so no update is lost.
        while !self.outstanding.is_empty() {
            let chan = self
                .migration_channel()
                .ok_or_else(|| self.err("deltas outstanding but no migration channel"))?;
            let bytes = chan
                .recv()
                .ok_or_else(|| self.err("channel closed with deltas outstanding"))?;
            match decode_view(&bytes).map_err(|e| self.err(e))? {
                FrameView::Act { mb, data } => self.act_buf.push_back((mb, data.to_matrix())),
                FrameView::Grad { mb, data } => self.grad_buf.push_back((mb, data.to_matrix())),
                FrameView::Control(ctrl) => self.handle_ctrl(ctrl)?,
            }
            chan.recycle(bytes);
        }
        Ok(())
    }
}

/// Mini-batches that may run without a stash clone on this stage: those
/// whose forward→backward window contains no other mini-batch's backward
/// (the only op that updates weights), so the master at backward time is
/// bit-identical to a stash taken at forward time. Covers every op on the
/// fused last stage and every op when `in_flight = 1`; windows of two
/// direct mini-batches can never overlap (the earlier one's backward
/// would sit inside the later one's window), so their master-held layer
/// caches can't clobber each other. With a migration plan the stash *is*
/// the §4.4 payload, so nothing runs direct.
fn direct_mbs(ops: &[RtOp], plan: Option<&MovePlan>) -> BTreeSet<u64> {
    let mut direct = BTreeSet::new();
    if plan.is_some() {
        return direct;
    }
    for (i, op) in ops.iter().enumerate() {
        if let RtOp::Forward(v) = *op {
            let clean = ops[i + 1..]
                .iter()
                .take_while(|o| !matches!(o, RtOp::Backward(u) if *u == v))
                .all(|o| !matches!(o, RtOp::Backward(_)));
            if clean {
                direct.insert(v);
            }
        }
    }
    direct
}

fn rt_ops(spec: &ExecSpec, plan: Option<&MovePlan>, stage: usize) -> Vec<RtOp> {
    let base = stage_ops(stage, spec.n_stages(), spec.total, spec.in_flight);
    let mut ops: Vec<RtOp> = base
        .iter()
        .map(|o| match o {
            Op::Forward(v) => RtOp::Forward(*v),
            Op::Backward(v) => RtOp::Backward(*v),
        })
        .collect();
    if let Some(p) = plan {
        let marker = if stage == p.a {
            Some(RtOp::SendMigration)
        } else if stage == p.b && !p.downstream {
            Some(RtOp::WaitMaster)
        } else {
            None
        };
        if let Some(marker) = marker {
            let pos = ops
                .iter()
                .position(|o| *o == RtOp::Forward(p.at_mb))
                .expect("cutover mini-batch not in schedule");
            ops.insert(pos, marker);
        }
    }
    ops
}

/// Run a full pipeline training session. Blocks until every stage thread
/// has drained its schedule; returns the merged measurements.
pub fn run_pipeline(spec: &ExecSpec) -> Result<ExecResult, ExecError> {
    spec.validate()?;
    let plan = match &spec.switch {
        Some(sw) => Some(plan_move(spec, sw)?),
        None => None,
    };
    let n_stages = spec.n_stages();
    let starts = spec.starts();
    let full = Mlp::new(&spec.sizes, spec.act, spec.seed);

    // Channel capacity: a few in-flight activations per link; anything
    // larger (migration frames) is admitted alone by the channel.
    let max_width = *spec.sizes.iter().max().unwrap();
    let frame_bytes = 32 + spec.batch * max_width * 8;
    let capacity = frame_bytes * (spec.in_flight + 2);
    let fwd: Vec<ByteChannel> = (0..n_stages.saturating_sub(1))
        .map(|_| ByteChannel::new(capacity, spec.bytes_per_sec))
        .collect();
    let bwd: Vec<ByteChannel> = (0..n_stages.saturating_sub(1))
        .map(|_| ByteChannel::new(capacity, spec.bytes_per_sec))
        .collect();

    let in_flight = AtomicU64::new(0);
    let mig = Mutex::new(MigrationShared::default());
    let t0 = Instant::now();

    let outcomes: Vec<Result<StageOut, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_stages);
        for s in 0..n_stages {
            let master = full.slice(starts[s]..starts[s + 1]);
            let ops = rt_ops(spec, plan.as_ref(), s);
            let direct = direct_mbs(&ops, plan.as_ref());
            let role = match &plan {
                Some(p) if p.a == s => Role::Sender,
                Some(p) if p.b == s => Role::Receiver,
                _ => Role::None,
            };
            let (fwd_ref, bwd_ref) = (&fwd, &bwd);
            let (in_flight_ref, mig_ref, plan_ref) = (&in_flight, &mig, plan.as_ref());
            let lo = starts[s];
            handles.push(scope.spawn(move || {
                let mut stage = Stage {
                    s,
                    last: s == n_stages - 1,
                    spec,
                    lo,
                    master,
                    stash: BTreeMap::new(),
                    migrated_stash: BTreeMap::new(),
                    fwd_in: if s > 0 { Some(&fwd_ref[s - 1]) } else { None },
                    fwd_out: if s + 1 < n_stages {
                        Some(&fwd_ref[s])
                    } else {
                        None
                    },
                    bwd_in: if s + 1 < n_stages {
                        Some(&bwd_ref[s])
                    } else {
                        None
                    },
                    bwd_out: if s > 0 { Some(&bwd_ref[s - 1]) } else { None },
                    act_buf: VecDeque::new(),
                    grad_buf: VecDeque::new(),
                    plan: plan_ref,
                    role,
                    migrated: false,
                    direct,
                    seq: None,
                    outstanding: BTreeSet::new(),
                    mig: mig_ref,
                    in_flight: in_flight_ref,
                    t0,
                    times: LayerTimes::new(spec.n_layers()),
                    segments: Vec::new(),
                    losses: Vec::new(),
                    completions: Vec::new(),
                };
                let run = stage.run(&ops);
                // Unblock neighbors if this stage failed mid-schedule.
                if run.is_err() {
                    for c in fwd_ref.iter().chain(bwd_ref.iter()) {
                        c.close();
                    }
                }
                run.map(|()| StageOut {
                    lo: stage.lo,
                    weights: stage.master.weights(),
                    times: stage.times,
                    segments: stage.segments,
                    losses: stage.losses,
                    completions: stage.completions,
                })
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err("stage thread panicked".to_string()),
            })
            .collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut outs = Vec::with_capacity(n_stages);
    for o in outcomes {
        outs.push(o?);
    }

    let mut times = LayerTimes::new(spec.n_layers());
    let mut segments = Vec::new();
    for o in &outs {
        times.merge(&o.times);
        segments.extend(o.segments.iter().cloned());
    }
    segments.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.worker.cmp(&b.worker))
    });
    let mut losses: Vec<(u64, f64)> = outs.last().unwrap().losses.clone();
    losses.sort_by_key(|(mb, _)| *mb);
    let completions = outs[0].completions.clone();

    let fwd_times: Vec<f64> = (0..spec.n_layers()).map(|j| times.mean_fwd(j)).collect();
    let bwd_times: Vec<f64> = (0..spec.n_layers()).map(|j| times.mean_bwd(j)).collect();
    let metrics = metrics_from_times(
        &spec.sizes,
        spec.batch,
        n_stages,
        &fwd_times,
        &bwd_times,
        spec.bytes_per_sec.unwrap_or(1e12),
    );

    let migration = plan.map(|p| {
        let m = mig.into_inner().unwrap();
        MigrationReport {
            cutover_mb: p.at_mb,
            from_stage: p.a,
            to_stage: p.b,
            moved_layers: p.moved.clone(),
            versions_moved: 1 + m.versions_sent.len(),
            param_bytes: m.param_bytes,
            wire_bytes: m.wire_bytes,
            versions_sent: m.versions_sent,
            in_flight_samples: m.samples,
            switch_seconds: match (m.t_first, m.t_last) {
                (Some(a), Some(b)) => (b - a).max(0.0),
                _ => 0.0,
            },
        }
    });

    Ok(ExecResult {
        n_stages,
        completed: losses.len() as u64,
        losses: losses.into_iter().map(|(_, l)| l).collect(),
        wall_seconds,
        completion_times: completions,
        fwd_channels: fwd.iter().map(|c| c.stats()).collect(),
        bwd_channels: bwd.iter().map(|c| c.stats()).collect(),
        metrics,
        times,
        segments,
        final_weights: outs.iter().map(|o| (o.lo, o.weights.clone())).collect(),
        migration,
    })
}
