//! End-to-end tests of the pipeline runtime: sequential equivalence,
//! determinism, and live §4.4 migration.

use ap_exec::runtime::{run_pipeline, training_batch, ExecResult, ExecSpec, SwitchSpec};
use ap_exec::ScheduleKind;
use ap_nn::{mse_loss, ActKind, Mlp};

fn base_spec() -> ExecSpec {
    ExecSpec {
        sizes: vec![6, 8, 8, 8, 6, 4],
        act: ActKind::Tanh,
        seed: 42,
        batch: 4,
        lr: 0.01,
        cuts: vec![2, 4],
        schedule: ScheduleKind::PipeDreamAsync,
        in_flight: 3,
        total: 12,
        bytes_per_sec: None,
        distinct_batches: 4,
        switch: None,
        record_timeline: false,
    }
}

/// Plain single-process SGD on the same data: forward, loss, backward,
/// apply `w -= lr * g`, repeat. With `in_flight = 1` the pipeline has no
/// staleness, so it must reproduce this bit-for-bit.
fn sequential_reference(spec: &ExecSpec) -> (Vec<f64>, Mlp) {
    let mut net = Mlp::new(&spec.sizes, spec.act, spec.seed);
    let mut losses = Vec::new();
    for mb in 0..spec.total {
        let (x, y) = training_batch(spec, mb);
        let out = net.forward(&x);
        let (loss, g) = mse_loss(&out, &y);
        losses.push(loss);
        net.backward(&g);
        for i in 0..net.n_layers() {
            let (dw, db) = {
                let l = net.layer(i);
                (l.w.grad.clone(), l.b.grad.clone())
            };
            let l = net.layer_mut(i);
            l.w.value.axpy(-spec.lr, &dw);
            l.b.value.axpy(-spec.lr, &db);
        }
        net.zero_grad();
    }
    (losses, net)
}

fn stitched_weights(r: &ExecResult) -> Vec<(ap_nn::Matrix, ap_nn::Matrix)> {
    let mut per_stage: Vec<_> = r.final_weights.clone();
    per_stage.sort_by_key(|(lo, _)| *lo);
    per_stage.into_iter().flat_map(|(_, w)| w.layers).collect()
}

#[test]
fn in_flight_one_pipeline_matches_sequential_sgd_bit_exactly() {
    let spec = ExecSpec {
        in_flight: 1,
        ..base_spec()
    };
    let r = run_pipeline(&spec).expect("pipeline run");
    let (ref_losses, ref_net) = sequential_reference(&spec);
    assert_eq!(r.completed, spec.total);
    assert_eq!(r.losses, ref_losses, "losses must match bit-for-bit");
    let got = stitched_weights(&r);
    assert_eq!(got.len(), ref_net.n_layers());
    for (i, (w, b)) in got.iter().enumerate() {
        assert_eq!(*w, ref_net.layer(i).w.value, "layer {i} weights");
        assert_eq!(*b, ref_net.layer(i).b.value, "layer {i} bias");
    }
}

#[test]
fn numerics_are_independent_of_bandwidth_throttle() {
    // Static schedules mean thread timing (here: a heavy throttle that
    // reshuffles real arrival times) cannot change any weight update.
    let fast = run_pipeline(&base_spec()).expect("unthrottled run");
    let slow = run_pipeline(&ExecSpec {
        bytes_per_sec: Some(2e6),
        ..base_spec()
    })
    .expect("throttled run");
    assert_eq!(fast.losses, slow.losses, "losses must be bit-identical");
    let (fw, sw) = (stitched_weights(&fast), stitched_weights(&slow));
    assert_eq!(fw, sw, "final weights must be bit-identical");
    assert!(slow.wall_seconds > fast.wall_seconds, "throttle must bite");
}

#[test]
fn three_stage_training_reduces_loss_and_measures_wire_traffic() {
    let spec = ExecSpec {
        total: 24,
        record_timeline: true,
        ..base_spec()
    };
    let r = run_pipeline(&spec).expect("run");
    assert_eq!(r.n_stages, 3);
    assert_eq!(r.completed, 24);
    let early: f64 = r.losses[..4].iter().sum();
    let late: f64 = r.losses[20..].iter().sum();
    assert!(late < early, "training must reduce loss: {early} -> {late}");
    // Two boundaries, one Act and one Grad per mini-batch each.
    assert_eq!(r.fwd_channels.len(), 2);
    for c in &r.fwd_channels {
        assert_eq!(c.frames, 24);
        assert!(c.bytes > 0);
    }
    for c in &r.bwd_channels {
        assert_eq!(c.frames, 24);
    }
    assert!(r.metrics.validate().is_ok());
    // Fused last stage emits no separate Backward segments, the others do.
    assert!(!r.segments.is_empty());
    assert_eq!(r.completion_times.len(), 24);
    assert!(r.steady_throughput(4) > 0.0);
}

fn migration_spec(at_mb: u64, new_cuts: Vec<usize>) -> ExecSpec {
    ExecSpec {
        total: 16,
        switch: Some(SwitchSpec { at_mb, new_cuts }),
        ..base_spec()
    }
}

#[test]
fn downstream_migration_is_drain_free_and_newest_first() {
    // Boundary 2 -> 1: layer 1 moves from stage 0 to stage 1.
    let spec = migration_spec(6, vec![1, 4]);
    let r = run_pipeline(&spec).expect("migrated run");
    assert_eq!(r.completed, spec.total);
    let m = r.migration.as_ref().expect("migration report");
    assert_eq!(m.cutover_mb, 6);
    assert_eq!((m.from_stage, m.to_stage), (0, 1));
    assert_eq!(m.moved_layers, 1..2);
    assert!(
        m.drain_free(),
        "pipeline drained during switch: samples {:?}",
        m.in_flight_samples
    );
    assert!(m.min_in_flight() >= 1);
    assert!(
        m.newest_first(),
        "stash versions must move newest-first: {:?}",
        m.versions_sent
    );
    // Master + one copy per in-flight version, all of layer 1
    // (8x8 weights + 8 bias, 8 bytes each).
    let layer_param_bytes = ((8 * 8 + 8) * 8) as u64;
    assert_eq!(m.versions_moved, 1 + m.versions_sent.len());
    assert_eq!(m.param_bytes, layer_param_bytes * m.versions_moved as u64);
    assert!(
        m.wire_bytes > m.param_bytes,
        "headers/inputs/deltas ride too"
    );

    // Mini-batches completed before the cutover saw no migrated weights:
    // their losses must be bit-identical to a run without the switch.
    let plain = run_pipeline(&ExecSpec {
        switch: None,
        ..spec.clone()
    })
    .expect("plain run");
    assert_eq!(r.losses[..6], plain.losses[..6], "pre-cutover losses");
}

#[test]
fn upstream_migration_also_stays_drain_free() {
    // Boundary 4 -> 5 is invalid (last stage would empty); use 2 -> 3:
    // layer 2 moves from stage 1 back to stage 0.
    let spec = migration_spec(5, vec![3, 4]);
    let r = run_pipeline(&spec).expect("migrated run");
    assert_eq!(r.completed, spec.total);
    let m = r.migration.as_ref().expect("migration report");
    assert_eq!((m.from_stage, m.to_stage), (1, 0));
    assert_eq!(m.moved_layers, 2..3);
    assert!(m.drain_free(), "samples {:?}", m.in_flight_samples);
    assert!(m.newest_first());
    let plain = run_pipeline(&ExecSpec {
        switch: None,
        ..spec.clone()
    })
    .expect("plain run");
    assert_eq!(r.losses[..5], plain.losses[..5], "pre-cutover losses");
}

#[test]
fn migrated_run_is_deterministic_across_reruns_and_throttles() {
    let spec = migration_spec(6, vec![1, 4]);
    let a = run_pipeline(&spec).expect("run a");
    let b = run_pipeline(&ExecSpec {
        bytes_per_sec: Some(5e6),
        ..spec.clone()
    })
    .expect("run b");
    assert_eq!(a.losses, b.losses);
    assert_eq!(stitched_weights(&a), stitched_weights(&b));
    let (ma, mb) = (a.migration.unwrap(), b.migration.unwrap());
    assert_eq!(ma.versions_sent, mb.versions_sent);
    assert_eq!(ma.param_bytes, mb.param_bytes);
    assert_eq!(ma.wire_bytes, mb.wire_bytes);
}

#[test]
fn invalid_specs_are_rejected() {
    let err = |spec: &ExecSpec| run_pipeline(spec).unwrap_err();
    assert!(err(&ExecSpec {
        cuts: vec![4, 2],
        ..base_spec()
    })
    .contains("ascending"));
    assert!(err(&ExecSpec {
        switch: Some(SwitchSpec {
            at_mb: 0,
            new_cuts: vec![1, 4]
        }),
        ..base_spec()
    })
    .contains("cutover"));
    assert!(err(&ExecSpec {
        switch: Some(SwitchSpec {
            at_mb: 4,
            new_cuts: vec![1, 3]
        }),
        ..base_spec()
    })
    .contains("exactly one"));
    assert!(err(&ExecSpec {
        in_flight: 1,
        switch: Some(SwitchSpec {
            at_mb: 4,
            new_cuts: vec![1, 4]
        }),
        ..base_spec()
    })
    .contains("drain-free"));
}
