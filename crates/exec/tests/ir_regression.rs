//! The IR generator must reproduce the runtime's legacy 1F1B schedule,
//! and the runtime must train correctly under every schedule in the zoo.

use ap_exec::runtime::{run_pipeline, ExecResult, ExecSpec};
use ap_exec::schedule::{stage_ops, Op};
use ap_exec::ScheduleKind;
use ap_ir::{generate, IrOp};
use ap_nn::ActKind;

/// Bit pattern of a stage's weights, for exact comparisons.
fn weight_bits(w: &ap_nn::mlp::MlpWeights) -> Vec<u64> {
    w.layers
        .iter()
        .flat_map(|(wm, bm)| wm.data().iter().chain(bm.data()).map(|v| v.to_bits()))
        .collect()
}

/// Project a stage's IR program down to the legacy compute-op alphabet:
/// `Forward`/`FusedFwdLossBwd` → `Op::Forward`, `Backward` → `Op::Backward`,
/// everything else (transport, stash bookkeeping, applies) dropped.
fn fold(ops: &[IrOp]) -> Vec<Op> {
    ops.iter()
        .filter_map(|op| match op {
            IrOp::Forward { unit } | IrOp::FusedFwdLossBwd { unit } => Some(Op::Forward(unit.mb)),
            IrOp::Backward { unit } => Some(Op::Backward(unit.mb)),
            _ => None,
        })
        .collect()
}

#[test]
fn pipedream_ir_reproduces_the_legacy_stage_ops_exactly() {
    for n_stages in 1..=5usize {
        for in_flight in 1..=5usize {
            for total in [1u64, 2, 5, 9, 16] {
                let program = generate(ScheduleKind::PipeDreamAsync, n_stages, total, in_flight);
                for s in 0..n_stages {
                    let legacy = stage_ops(s, n_stages, total, in_flight);
                    let from_ir = fold(&program.stages[s].ops);
                    assert_eq!(
                        from_ir, legacy,
                        "stage {s}/{n_stages}, total {total}, in_flight {in_flight}"
                    );
                }
            }
        }
    }
}

fn zoo_spec(kind: ScheduleKind) -> ExecSpec {
    ExecSpec {
        sizes: vec![6, 8, 8, 8, 6, 4],
        act: ActKind::Tanh,
        seed: 42,
        batch: 8,
        lr: 0.01,
        cuts: vec![2, 4],
        schedule: kind,
        in_flight: 3,
        total: 12,
        bytes_per_sec: None,
        distinct_batches: 4,
        switch: None,
        record_timeline: false,
    }
}

fn assert_trains(kind: ScheduleKind, r: &ExecResult) {
    assert_eq!(r.completed, 12, "{}: completion count", kind.id());
    assert_eq!(r.losses.len(), 12, "{}: loss count", kind.id());
    assert!(
        r.losses.iter().all(|l| l.is_finite()),
        "{}: non-finite loss",
        kind.id()
    );
    // The data cycles through 4 distinct batches; by the third lap the
    // loss on each must have dropped from its first visit.
    for b in 0..4 {
        assert!(
            r.losses[b + 8] < r.losses[b],
            "{}: batch {b} did not improve ({} -> {})",
            kind.id(),
            r.losses[b],
            r.losses[b + 8]
        );
    }
}

#[test]
fn every_schedule_in_the_zoo_trains_and_is_deterministic() {
    for kind in ScheduleKind::zoo() {
        let spec = zoo_spec(kind);
        let a = run_pipeline(&spec).unwrap();
        assert_trains(kind, &a);
        let b = run_pipeline(&spec).unwrap();
        assert_eq!(
            a.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            b.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "{}: losses not bit-deterministic across reruns",
            kind.id()
        );
        for (wa, wb) in a.final_weights.iter().zip(&b.final_weights) {
            assert_eq!(wa.0, wb.0, "{}: stage layout drifted", kind.id());
            assert_eq!(
                weight_bits(&wa.1),
                weight_bits(&wb.1),
                "{}: final weights not bit-deterministic",
                kind.id()
            );
        }
    }
}

#[test]
fn sync_schedules_match_their_full_batch_reference() {
    // GPipe / DAPPLE / Chimera apply the mean micro-gradient once per
    // mini-batch: with in_flight = 1 that is plain full-batch SGD, except
    // micro-batched MSE backprop scales each row-slice's gradient by
    // m / batch — equivalent to SGD at lr·m on the mean. Verify the three
    // flush schedules agree bit-exactly with *each other* (same updates,
    // different overlap), which pins the semantics without re-deriving
    // the reference here.
    let run = |kind| {
        let spec = ExecSpec {
            in_flight: 1,
            ..zoo_spec(kind)
        };
        run_pipeline(&spec).unwrap()
    };
    let gpipe = run(ScheduleKind::parse("gpipe").unwrap());
    let dapple = run(ScheduleKind::parse("dapple").unwrap());
    let chimera = run(ScheduleKind::parse("chimera").unwrap());
    for other in [&dapple, &chimera] {
        assert_eq!(
            gpipe.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            other.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "flush schedules disagree on losses"
        );
        for (wa, wb) in gpipe.final_weights.iter().zip(&other.final_weights) {
            assert_eq!(
                weight_bits(&wa.1),
                weight_bits(&wb.1),
                "flush schedules disagree on final weights"
            );
        }
    }
}

#[test]
fn gpipe_moves_more_frames_for_the_same_work() {
    // 4 micro-batches per mini-batch ⇒ 4× the activation/gradient frames
    // of the async schedule on each boundary.
    let pd = run_pipeline(&zoo_spec(ScheduleKind::PipeDreamAsync)).unwrap();
    let gp = run_pipeline(&zoo_spec(ScheduleKind::parse("gpipe").unwrap())).unwrap();
    for (c_pd, c_gp) in pd.fwd_channels.iter().zip(&gp.fwd_channels) {
        assert_eq!(c_gp.frames, 4 * c_pd.frames, "forward frame ratio");
    }
}
