//! Event-engine speed: simulated iterations per wall-clock second for the
//! paper's models on the 10-GPU testbed (the kernel every experiment sits
//! on).

use ap_bench::{exclusive_state, paper_pipedream_plan, ExperimentEnv};
use ap_cluster::ResourceTimeline;
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_pipesim::Engine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_30_iterations");
    group.sample_size(20);
    for model in [resnet50(), vgg16(), alexnet()] {
        let profile = ModelProfile::of(&model);
        let env = ExperimentEnv::default_at(25.0);
        let plan = paper_pipedream_plan(&profile, 25.0, 10);
        let state = exclusive_state(25.0);
        group.bench_function(model.name.clone(), |b| {
            b.iter(|| {
                let engine = Engine::new(
                    &profile,
                    plan.clone(),
                    state.clone(),
                    ResourceTimeline::empty(),
                    env.engine_cfg(),
                );
                black_box(engine.run(30).throughput())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
