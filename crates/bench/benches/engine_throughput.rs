//! Event-engine speed: simulated iterations per wall-clock second for the
//! paper's models on the 10-GPU testbed (the kernel every experiment sits
//! on).

use ap_bench::{exclusive_state, paper_pipedream_plan, timing, ExperimentEnv};
use ap_cluster::ResourceTimeline;
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_pipesim::Engine;
use std::hint::black_box;

fn main() {
    println!("engine_30_iterations");
    for model in [resnet50(), vgg16(), alexnet()] {
        let profile = ModelProfile::of(&model);
        let env = ExperimentEnv::default_at(25.0);
        let plan = paper_pipedream_plan(&profile, 25.0, 10);
        let state = exclusive_state(25.0);
        timing::run(&model.name, 20, || {
            let engine = Engine::new(
                &profile,
                plan.clone(),
                state.clone(),
                ResourceTimeline::empty(),
                env.engine_cfg(),
            )
            .expect("valid partition");
            black_box(engine.run(30).expect("engine run").throughput());
        });
    }
}
