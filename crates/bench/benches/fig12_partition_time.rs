//! Figure 12: computation time of worker-partition modeling.
//!
//! Benchmarks the three deciders on the paper's models: PipeDream's DP,
//! the meta-network scoring one full incremental neighborhood, and a
//! single RL-arbiter pass. The paper reports meta-net + RL well below the
//! DP and everything under a second.

use ap_bench::timing;
use ap_cluster::{gbps, GpuId};
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_planner::{pipedream_plan, two_worker_moves, PipeDreamView};
use autopipe::arbiter::{Arbiter, ArbiterInput};
use autopipe::metrics::{static_metrics_from_profile, FeatureEncoder, DYNAMIC_DIM};
use autopipe::{MetaNet, MetaNetConfig};
use std::hint::black_box;

fn main() {
    println!("fig12_partition_time");
    let runs = 20;
    let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
    let view = PipeDreamView {
        bandwidth: gbps(25.0),
        gpu_flops: 9.3e12,
    };
    let net = MetaNet::new(MetaNetConfig::default());
    let arbiter = Arbiter::new(3);
    let encoder = FeatureEncoder;

    for model in [alexnet(), resnet50(), vgg16()] {
        let profile = ModelProfile::of(&model);
        timing::run(&format!("pipedream_dp/{}", model.name), runs, || {
            black_box(pipedream_plan(black_box(&profile), &gpus, view));
        });

        let plan = pipedream_plan(&profile, &gpus, view);
        let dyn_seq: Vec<Vec<f64>> = (0..net.config().seq_len)
            .map(|_| vec![0.5; DYNAMIC_DIM])
            .collect();
        timing::run(
            &format!("meta_net_neighborhood/{}", model.name),
            runs,
            || {
                // The production path: one LSTM pass, FC head per candidate.
                let h = net.encode_history(&dyn_seq);
                let mut best = f64::NEG_INFINITY;
                for (_, cand) in two_worker_moves(&plan, profile.n_layers()) {
                    let m = static_metrics_from_profile(&profile, cand.n_workers());
                    let stat = encoder.encode_static(&m, &cand);
                    best = best.max(net.predict_from_encoding(&h, &stat));
                }
                black_box(best);
            },
        );

        timing::run(&format!("rl_decision/{}", model.name), runs, || {
            black_box(arbiter.decide(black_box(&ArbiterInput {
                current_speed: 100.0,
                candidate_speed: 120.0,
                switch_cost: 1.0,
                iteration_time: 0.5,
                horizon_iterations: 100.0,
                mean_bandwidth_norm: 0.25,
            })));
        });
    }
}
