//! Figure 12: computation time of worker-partition modeling.
//!
//! Benchmarks the three deciders on the paper's models: PipeDream's DP,
//! the meta-network scoring one full incremental neighborhood, and a
//! single RL-arbiter pass. The paper reports meta-net + RL well below the
//! DP and everything under a second.

use ap_cluster::{gbps, GpuId};
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_planner::{pipedream_plan, two_worker_moves, PipeDreamView};
use autopipe::arbiter::{Arbiter, ArbiterInput};
use autopipe::metrics::{static_metrics_from_profile, FeatureEncoder, DYNAMIC_DIM};
use autopipe::{MetaNet, MetaNetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_partition_time");
    group.sample_size(20);
    let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
    let view = PipeDreamView {
        bandwidth: gbps(25.0),
        gpu_flops: 9.3e12,
    };
    let net = MetaNet::new(MetaNetConfig::default());
    let arbiter = Arbiter::new(3);
    let encoder = FeatureEncoder;

    for model in [alexnet(), resnet50(), vgg16()] {
        let profile = ModelProfile::of(&model);
        group.bench_function(format!("pipedream_dp/{}", model.name), |b| {
            b.iter(|| pipedream_plan(black_box(&profile), &gpus, view))
        });

        let plan = pipedream_plan(&profile, &gpus, view);
        let dyn_seq: Vec<Vec<f64>> = (0..net.config().seq_len)
            .map(|_| vec![0.5; DYNAMIC_DIM])
            .collect();
        group.bench_function(format!("meta_net_neighborhood/{}", model.name), |b| {
            b.iter(|| {
                let mut best = f64::NEG_INFINITY;
                for (_, cand) in two_worker_moves(&plan, profile.n_layers()) {
                    let m = static_metrics_from_profile(&profile, cand.n_workers());
                    let stat = encoder.encode_static(&m, &cand);
                    best = best.max(net.predict(&dyn_seq, &stat));
                }
                black_box(best)
            })
        });

        group.bench_function(format!("rl_decision/{}", model.name), |b| {
            b.iter(|| {
                arbiter.decide(black_box(&ArbiterInput {
                    current_speed: 100.0,
                    candidate_speed: 120.0,
                    switch_cost: 1.0,
                    iteration_time: 0.5,
                    horizon_iterations: 100.0,
                    mean_bandwidth_norm: 0.25,
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
