//! Meta-network inference and training-step speed (the controller calls
//! `predict` once per candidate per decision).

use autopipe::meta_net::{MetaNet, MetaNetConfig, TrainingSample};
use autopipe::metrics::{DYNAMIC_DIM, STATIC_DIM};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_meta_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_net");
    let net = MetaNet::new(MetaNetConfig::default());
    let seq: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 * i as f64; DYNAMIC_DIM]).collect();
    let stat = vec![0.3; STATIC_DIM];
    group.bench_function("predict", |b| {
        b.iter(|| black_box(net.predict(black_box(&seq), black_box(&stat))))
    });

    group.sample_size(10);
    let samples: Vec<TrainingSample> = (0..32)
        .map(|i| TrainingSample {
            dynamic_seq: seq.clone(),
            static_feat: stat.clone(),
            log_throughput: 4.0 + 0.01 * i as f64,
        })
        .collect();
    group.bench_function("train_epoch_32", |b| {
        b.iter(|| {
            let mut n = MetaNet::new(MetaNetConfig::default());
            black_box(n.train(&samples, 1, 1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_meta_net);
criterion_main!(benches);
