//! Meta-network inference and training-step speed (the controller calls
//! the FC head once per candidate per decision, the LSTM once per
//! decision).

use ap_bench::timing;
use autopipe::meta_net::{MetaNet, MetaNetConfig, TrainingSample};
use autopipe::metrics::{DYNAMIC_DIM, STATIC_DIM};
use std::hint::black_box;

fn main() {
    println!("meta_net");
    let net = MetaNet::new(MetaNetConfig::default());
    let seq: Vec<Vec<f64>> = (0..8).map(|i| vec![0.1 * i as f64; DYNAMIC_DIM]).collect();
    let stat = vec![0.3; STATIC_DIM];
    timing::run("predict", 50, || {
        black_box(net.predict(black_box(&seq), black_box(&stat)));
    });
    let h = net.encode_history(&seq);
    timing::run("predict_from_encoding", 50, || {
        black_box(net.predict_from_encoding(black_box(&h), black_box(&stat)));
    });

    let samples: Vec<TrainingSample> = (0..32)
        .map(|i| TrainingSample {
            dynamic_seq: seq.clone(),
            static_feat: stat.clone(),
            log_throughput: 4.0 + 0.01 * i as f64,
        })
        .collect();
    timing::run("train_epoch_32", 10, || {
        let mut n = MetaNet::new(MetaNetConfig::default());
        black_box(n.train(&samples, 1, 1));
    });
}
