//! Figures 3–6 (one cell): cost of a motivation measurement — stale plan
//! vs re-planned oracle under a localized bandwidth halving.

use ap_bench::experiments::motivation::{measure_cell, Scenario};
use ap_bench::{timing, ExperimentEnv};
use ap_models::{resnet50, vgg16, ModelProfile};
use std::hint::black_box;

fn main() {
    println!("fig3_bandwidth_drop_cell");
    for model in [vgg16(), resnet50()] {
        let profile = ModelProfile::of(&model);
        timing::run(&format!("halved_25g/{}", model.name), 10, || {
            black_box(measure_cell(
                &profile,
                &ExperimentEnv::default_at(25.0),
                Scenario::BandwidthHalved,
                12,
            ));
        });
    }
}
