//! Figures 3–6 (one cell): cost of a motivation measurement — stale plan
//! vs re-planned oracle under a localized bandwidth halving.

use ap_bench::experiments::motivation::{measure_cell, Scenario};
use ap_bench::ExperimentEnv;
use ap_models::{resnet50, vgg16, ModelProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_bandwidth_drop_cell");
    group.sample_size(10);
    for model in [vgg16(), resnet50()] {
        let profile = ModelProfile::of(&model);
        group.bench_function(format!("halved_25g/{}", model.name), |b| {
            b.iter(|| {
                black_box(measure_cell(
                    &profile,
                    &ExperimentEnv::default_at(25.0),
                    Scenario::BandwidthHalved,
                    12,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
