//! Figure 8 (one cell per panel): end-to-end cost of producing the static
//! comparison — plan + engine measurement for baseline / PipeDream /
//! AutoPipe on the shared testbed.

use ap_bench::experiments::static_alloc::measure_cell;
use ap_bench::timing;
use ap_models::{alexnet, resnet50, vgg16};
use ap_pipesim::{Framework, SyncScheme};
use std::hint::black_box;

fn main() {
    println!("fig8_static_cell");
    for model in [resnet50(), vgg16(), alexnet()] {
        timing::run(&format!("ps_tensorflow_25g/{}", model.name), 10, || {
            black_box(measure_cell(
                &model,
                Framework::tensorflow(),
                SyncScheme::ParameterServer,
                25.0,
                12,
            ));
        });
    }
}
