//! Figure 8 (one cell per panel): end-to-end cost of producing the static
//! comparison — plan + engine measurement for baseline / PipeDream /
//! AutoPipe on the shared testbed.

use ap_bench::experiments::static_alloc::measure_cell;
use ap_models::{alexnet, resnet50, vgg16};
use ap_pipesim::{Framework, SyncScheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_static_cell");
    group.sample_size(10);
    for model in [resnet50(), vgg16(), alexnet()] {
        group.bench_function(format!("ps_tensorflow_25g/{}", model.name), |b| {
            b.iter(|| {
                black_box(measure_cell(
                    &model,
                    Framework::tensorflow(),
                    SyncScheme::ParameterServer,
                    25.0,
                    12,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
