//! JSON emission for the `repro` series output.
//!
//! The value tree, serializer and parser live in the shared [`ap_json`]
//! crate (serve, bench and the journal export all use the same
//! implementation); this module re-exports them and adds the [`ToJson`]
//! impls for the experiment row types that are local to the harness.
//! Impls for simulator and journal types live with their types
//! (`ap_pipesim::json`, `autopipe::json`).

pub use ap_json::{parse, Json, JsonError, JsonErrorKind, ToJson};

/// Merge `(key, value)` into the JSON object stored at `path`, creating
/// the file if absent and replacing the key if present, then write the
/// merged document back. Several benchmark binaries share one output
/// file this way (`BENCH_hotpath.json`), each owning its own top-level
/// key. An unreadable or non-object existing file is replaced.
pub fn merge_file_key(path: &std::path::Path, key: &str, value: Json) -> std::io::Result<()> {
    let mut fields: Vec<(String, Json)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| parse(&s).ok())
        .and_then(|j| j.as_obj().map(<[_]>::to_vec))
        .unwrap_or_default();
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => fields.push((key.to_string(), value)),
    }
    std::fs::write(path, Json::Obj(fields).pretty())
}

impl ToJson for crate::experiments::pipeline_fill::PipelineFill {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("segments", self.segments.to_json()),
            ("startup_utilization", self.startup_utilization.to_json()),
            ("steady_utilization", self.steady_utilization.to_json()),
            ("makespan", self.makespan.to_json()),
            ("n_workers", self.n_workers.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::motivation::MotivationRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("actual", self.actual.to_json()),
            ("optimal", self.optimal.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::static_alloc::Fig8Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("framework", self.framework.to_json()),
            ("scheme", self.scheme.to_json()),
            ("model", self.model.to_json()),
            ("gbps", self.gbps.to_json()),
            ("baseline", self.baseline.to_json()),
            ("pipedream", self.pipedream.to_json()),
            ("autopipe", self.autopipe.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::dynamic::DynamicResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("autopipe", self.autopipe.to_json()),
            ("pipedream", self.pipedream.to_json()),
            ("switches", self.switches.to_json()),
            ("mean", self.mean.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::chaos::OutageWindow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", self.worker.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
            ("autopipe_units", self.autopipe_units.to_json()),
            ("baseline_units", self.baseline_units.to_json()),
            ("scored", self.scored.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::chaos::ChaosResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("n_iterations", self.n_iterations.to_json()),
            ("horizon", self.horizon.to_json()),
            ("outages", self.outages.to_json()),
            ("link_flaps", self.link_flaps.to_json()),
            ("autopipe", self.autopipe.to_json()),
            ("baseline", self.baseline.to_json()),
            ("mean", self.mean.to_json()),
            ("total_seconds", self.total_seconds.to_json()),
            ("emergency_switches", self.emergency_switches.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
            ("restarts", self.restarts.to_json()),
            ("survived_all_outages", self.survived_all_outages.to_json()),
            ("baseline_stalled", self.baseline_stalled.to_json()),
            ("journal", self.journal.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::cluster_bench::FullReplanSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("event_index", self.event_index.to_json()),
            ("resident", self.resident.to_json()),
            ("full_latency_s", self.full_latency_s.to_json()),
            ("full_moved", self.full_moved.to_json()),
            ("live_aggregate", self.live_aggregate.to_json()),
            ("live_fairness_floor", self.live_fairness_floor.to_json()),
            ("live_value", self.live_value.to_json()),
            ("full_value", self.full_value.to_json()),
            ("quality_delta", self.quality_delta.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::cluster_bench::ScaleRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("n_jobs", self.n_jobs.to_json()),
            ("servers", self.servers.to_json()),
            ("gpus", self.gpus.to_json()),
            ("events", self.events.to_json()),
            ("peak_resident", self.peak_resident.to_json()),
            ("placed", self.placed.to_json()),
            ("queued", self.queued.to_json()),
            ("rejected", self.rejected.to_json()),
            ("completed", self.completed.to_json()),
            ("evacuated", self.evacuated.to_json()),
            ("replans_considered", self.replans_considered.to_json()),
            ("plans_moved", self.plans_moved.to_json()),
            ("mean_neighborhood", self.mean_neighborhood.to_json()),
            ("event_latency_mean_s", self.event_latency_mean_s.to_json()),
            ("event_latency_p99_s", self.event_latency_p99_s.to_json()),
            ("event_latency_max_s", self.event_latency_max_s.to_json()),
            ("full_latency_mean_s", self.full_latency_mean_s.to_json()),
            ("full_replan_speedup", self.full_replan_speedup.to_json()),
            ("peak_aggregate", self.peak_aggregate.to_json()),
            ("fairness_floor", self.fairness_floor.to_json()),
            ("worst_quality_delta", self.worst_quality_delta.to_json()),
            (
                "quality_within_epsilon",
                self.quality_within_epsilon.to_json(),
            ),
            ("samples", self.samples.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::cluster_bench::ClusterBenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("seed", self.seed.to_json()),
            ("equivalence_epsilon", self.equivalence_epsilon.to_json()),
            ("required_speedup", self.required_speedup.to_json()),
            ("scales", self.scales.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::exec_validate::PartitionRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("schedule", self.schedule.to_json()),
            ("cuts", self.cuts.to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("link_gbps", self.link_gbps.to_json()),
            ("predicted", self.predicted.to_json()),
            ("predicted_calibrated", self.predicted_calibrated.to_json()),
            ("measured", self.measured.to_json()),
            ("rel_error", self.rel_error.to_json()),
            ("rel_error_calibrated", self.rel_error_calibrated.to_json()),
            ("wire_bytes", self.wire_bytes.to_json()),
            ("frames", self.frames.to_json()),
            ("first_loss", self.first_loss.to_json()),
            ("last_loss", self.last_loss.to_json()),
            ("loss_decreased", self.loss_decreased.to_json()),
            ("modeled_peak_bytes", self.modeled_peak_bytes.to_json()),
            ("measured_peak_bytes", self.measured_peak_bytes.to_json()),
            ("mem_rel_error", self.mem_rel_error.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::mem_bench::StageMemRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stage", self.stage.to_json()),
            ("required_gb", self.required_gb.to_json()),
            ("capacity_gb", self.capacity_gb.to_json()),
            ("fits", self.fits.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::mem_bench::MemBenchCell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cluster", self.cluster.to_json()),
            ("capacity_gb", self.capacity_gb.to_json()),
            ("feasible", self.feasible.to_json()),
            ("chosen", self.chosen.to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("switched", self.switched.to_json()),
            ("predicted", self.predicted.to_json()),
            ("requested_deficit_gb", self.requested_deficit_gb.to_json()),
            ("stages", self.stages.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::mem_bench::MemBenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("model", self.model.to_json()),
            ("batch", self.batch.to_json()),
            ("n_stages", self.n_stages.to_json()),
            ("requested", self.requested.to_json()),
            ("requested_in_flight", self.requested_in_flight.to_json()),
            ("cells", self.cells.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::exec_validate::MigrationSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("from_cuts", self.from_cuts.to_json()),
            ("to_cuts", self.to_cuts.to_json()),
            ("cutover_mb", self.cutover_mb.to_json()),
            ("moved_layers", self.moved_layers.to_json()),
            ("versions_moved", self.versions_moved.to_json()),
            ("versions_sent", self.versions_sent.to_json()),
            ("predicted_bytes", self.predicted_bytes.to_json()),
            ("measured_param_bytes", self.measured_param_bytes.to_json()),
            ("wire_bytes", self.wire_bytes.to_json()),
            ("drain_free", self.drain_free.to_json()),
            ("min_in_flight", self.min_in_flight.to_json()),
            (
                "pre_cutover_losses_match",
                self.pre_cutover_losses_match.to_json(),
            ),
            ("switch_seconds", self.switch_seconds.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::exec_validate::ExecValidateResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("sizes", self.sizes.to_json()),
            ("batch", self.batch.to_json()),
            ("total", self.total.to_json()),
            ("rows", self.rows.to_json()),
            ("calibration", self.calibration.to_json()),
            (
                "calibrated_ranking_matches_measured",
                self.calibrated_ranking_matches_measured().to_json(),
            ),
            ("migration", self.migration.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::convergence::ConvergenceRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("paradigm", self.paradigm.to_json()),
            ("throughput", self.throughput.to_json()),
            ("staleness", self.staleness.to_json()),
            ("final_accuracy", self.final_accuracy.to_json()),
            ("hours_to_target", self.hours_to_target.to_json()),
            ("curve", self.curve.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::overhead::OverheadRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("dp_seconds", self.dp_seconds.to_json()),
            ("meta_net_seconds", self.meta_net_seconds.to_json()),
            ("rl_seconds", self.rl_seconds.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::enhanced::EnhancedRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schedule", self.schedule.to_json()),
            ("vanilla", self.vanilla.to_json()),
            ("enhanced", self.enhanced.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::multi_job::MultiJobRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenancy", self.tenancy.to_json()),
            ("per_job", self.per_job.to_json()),
            ("total", self.total.to_json()),
            ("changes", self.changes.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::ablations::AblationRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("variant", self.variant.to_json()),
            ("value", self.value.to_json()),
            ("switches", self.switches.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::ServeBenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("workers", self.workers.to_json()),
            ("queue_capacity", self.queue_capacity.to_json()),
            ("cache_capacity", self.cache_capacity.to_json()),
            ("checks", self.checks.to_json()),
            ("plan", self.plan.to_json()),
            ("latency", self.latency.to_json()),
            ("throughput", self.throughput.to_json()),
            ("overload", self.overload.to_json()),
            ("degraded", self.degraded.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::CheckRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("status", self.status.to_json()),
            ("ok", self.ok.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::PlanSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("partition", self.partition.to_json()),
            ("predicted_throughput", self.predicted_throughput.to_json()),
            ("cold_seconds", self.cold_seconds.to_json()),
            ("cached_seconds", self.cached_seconds.to_json()),
            ("cache_speedup", self.cache_speedup.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::LatencyRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("endpoint", self.endpoint.to_json()),
            ("requests", self.requests.to_json()),
            ("p50_ms", self.p50_ms.to_json()),
            ("p95_ms", self.p95_ms.to_json()),
            ("p99_ms", self.p99_ms.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::ThroughputRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("connections", self.connections.to_json()),
            ("requests", self.requests.to_json()),
            ("req_per_sec", self.req_per_sec.to_json()),
            ("p50_ms", self.p50_ms.to_json()),
            ("p95_ms", self.p95_ms.to_json()),
            ("p99_ms", self.p99_ms.to_json()),
            ("cache_hit_rate", self.cache_hit_rate.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::OverloadSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("offered_connections", self.offered_connections.to_json()),
            ("queue_capacity", self.queue_capacity.to_json()),
            ("shed_503", self.shed_503.to_json()),
            ("served_200", self.served_200.to_json()),
            ("got_retry_after", self.got_retry_after.to_json()),
            ("peak_queue_depth", self.peak_queue_depth.to_json()),
            ("depth_within_bound", self.depth_within_bound.to_json()),
            ("recovered_after_hint", self.recovered_after_hint.to_json()),
            ("all_shed_recovered", self.all_shed_recovered.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::serve_bench::DegradedSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("induced_failures", self.induced_failures.to_json()),
            ("degraded_deadline", self.degraded_deadline.to_json()),
            (
                "degraded_breaker_open",
                self.degraded_breaker_open.to_json(),
            ),
            ("breaker_opened", self.breaker_opened.to_json()),
            ("breaker_recovered", self.breaker_recovered.to_json()),
            ("degraded_p99_ms", self.degraded_p99_ms.to_json()),
            ("bulkhead_shed", self.bulkhead_shed.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_types_serialize_with_stable_keys() {
        let row = crate::experiments::ablations::AblationRow {
            variant: "x".into(),
            value: 1.0,
            switches: 2,
        };
        let s = row.to_json().pretty();
        assert!(s.contains("\"variant\": \"x\""));
        assert!(s.contains("\"value\": 1"));
        assert!(s.contains("\"switches\": 2"));
    }

    #[test]
    fn merge_file_key_creates_replaces_and_preserves_other_keys() {
        let path = std::env::temp_dir().join(format!("ap_bench_merge_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        merge_file_key(&path, "a", Json::Num(1.0)).unwrap();
        merge_file_key(&path, "b", Json::Num(2.0)).unwrap();
        merge_file_key(&path, "a", Json::Num(3.0)).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.as_obj().unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
