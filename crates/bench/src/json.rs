//! Minimal JSON emission for the `repro` series output.
//!
//! The harness only ever *writes* JSON (one file per figure, consumed by
//! plotting scripts), so this module provides exactly that: a [`Json`]
//! value tree, a [`ToJson`] conversion trait implemented for the
//! experiment row types, and a pretty printer matching the layout the
//! previous serde_json output used (2-space indent). No parsing, no
//! derive machinery, no external dependencies.

use ap_pipesim::{TimelineSegment, WorkKind};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite floats print as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-print with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_tojson_int!(usize, u64, u32, i64, i32);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for WorkKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                WorkKind::Forward => "Forward",
                WorkKind::Backward => "Backward",
            }
            .to_string(),
        )
    }
}

impl ToJson for TimelineSegment {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", self.worker.to_json()),
            ("unit", self.unit.to_json()),
            ("kind", self.kind.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::pipeline_fill::PipelineFill {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("segments", self.segments.to_json()),
            ("startup_utilization", self.startup_utilization.to_json()),
            ("steady_utilization", self.steady_utilization.to_json()),
            ("makespan", self.makespan.to_json()),
            ("n_workers", self.n_workers.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::motivation::MotivationRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("actual", self.actual.to_json()),
            ("optimal", self.optimal.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::static_alloc::Fig8Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("framework", self.framework.to_json()),
            ("scheme", self.scheme.to_json()),
            ("model", self.model.to_json()),
            ("gbps", self.gbps.to_json()),
            ("baseline", self.baseline.to_json()),
            ("pipedream", self.pipedream.to_json()),
            ("autopipe", self.autopipe.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::dynamic::DynamicResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("autopipe", self.autopipe.to_json()),
            ("pipedream", self.pipedream.to_json()),
            ("switches", self.switches.to_json()),
            ("mean", self.mean.to_json()),
        ])
    }
}

impl ToJson for autopipe::DecisionEvent {
    fn to_json(&self) -> Json {
        use autopipe::DecisionEvent as E;
        let mut fields = vec![("event", self.name().to_json())];
        match self {
            E::ChangeDetected {
                signals,
                degraded_workers,
            } => {
                fields.push(("signals", signals.to_json()));
                fields.push(("degraded_workers", degraded_workers.to_json()));
            }
            E::CandidatesScored {
                rounds,
                scored,
                current_pred,
                best_pred,
                best,
            } => {
                fields.push(("rounds", rounds.to_json()));
                fields.push(("scored", scored.to_json()));
                fields.push(("current_pred", current_pred.to_json()));
                fields.push(("best_pred", best_pred.to_json()));
                fields.push(("best", best.to_json()));
            }
            E::ArbiterVerdict {
                approved,
                predicted_speedup,
                switch_cost_seconds,
                reward,
            } => {
                fields.push(("approved", approved.to_json()));
                fields.push(("predicted_speedup", predicted_speedup.to_json()));
                fields.push(("switch_cost_seconds", switch_cost_seconds.to_json()));
                fields.push(("reward", reward.to_json()));
            }
            E::SwitchApplied {
                from,
                to,
                moved_layers,
                transfer_bytes,
                pause_seconds,
            } => {
                fields.push(("from", from.to_json()));
                fields.push(("to", to.to_json()));
                fields.push(("moved_layers", moved_layers.to_json()));
                fields.push(("transfer_bytes", transfer_bytes.to_json()));
                fields.push(("pause_seconds", pause_seconds.to_json()));
            }
            E::Verified {
                measured,
                expected_floor,
                trust,
            } => {
                fields.push(("measured", measured.to_json()));
                fields.push(("expected_floor", expected_floor.to_json()));
                fields.push(("trust", trust.to_json()));
            }
            E::Reverted {
                to,
                measured,
                expected_floor,
                trust,
            } => {
                fields.push(("to", to.to_json()));
                fields.push(("measured", measured.to_json()));
                fields.push(("expected_floor", expected_floor.to_json()));
                fields.push(("trust", trust.to_json()));
            }
            E::Kept { reason } => fields.push(("reason", reason.label().to_json())),
            E::InfeasibleDetected { failed_workers } => {
                fields.push(("failed_workers", failed_workers.to_json()));
            }
            E::EmergencyRepartition {
                from,
                to,
                dropped,
                attempt,
                pause_seconds,
            } => {
                fields.push(("from", from.to_json()));
                fields.push(("to", to.to_json()));
                fields.push(("dropped", dropped.to_json()));
                fields.push(("attempt", attempt.to_json()));
                fields.push(("pause_seconds", pause_seconds.to_json()));
            }
            E::RetryScheduled {
                attempt,
                not_before,
            } => {
                fields.push(("attempt", attempt.to_json()));
                fields.push(("not_before", not_before.to_json()));
            }
            E::RetryExhausted { attempts } => fields.push(("attempts", attempts.to_json())),
            E::WorkerFailed { worker } | E::WorkerRecovered { worker } => {
                fields.push(("worker", worker.to_json()));
            }
            E::MigrationRolledBack {
                worker,
                progress,
                rollback_seconds,
            } => {
                fields.push(("worker", worker.to_json()));
                fields.push(("progress", progress.to_json()));
                fields.push(("rollback_seconds", rollback_seconds.to_json()));
            }
            E::UnitsRestarted { count } => fields.push(("count", count.to_json())),
            E::SwitchRejected => {}
        }
        Json::obj(fields)
    }
}

impl ToJson for autopipe::DecisionRecord {
    fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.event.to_json() else {
            unreachable!("DecisionEvent serializes to an object");
        };
        let mut all = vec![
            ("decision".to_string(), self.decision.to_json()),
            ("iteration".to_string(), self.iteration.to_json()),
            ("time".to_string(), self.time.to_json()),
        ];
        all.append(&mut fields);
        Json::Obj(all)
    }
}

impl ToJson for autopipe::DecisionJournal {
    fn to_json(&self) -> Json {
        self.records.to_json()
    }
}

impl ToJson for crate::experiments::chaos::OutageWindow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", self.worker.to_json()),
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
            ("autopipe_units", self.autopipe_units.to_json()),
            ("baseline_units", self.baseline_units.to_json()),
            ("scored", self.scored.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::chaos::ChaosResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("n_iterations", self.n_iterations.to_json()),
            ("horizon", self.horizon.to_json()),
            ("outages", self.outages.to_json()),
            ("link_flaps", self.link_flaps.to_json()),
            ("autopipe", self.autopipe.to_json()),
            ("baseline", self.baseline.to_json()),
            ("mean", self.mean.to_json()),
            ("total_seconds", self.total_seconds.to_json()),
            ("emergency_switches", self.emergency_switches.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
            ("restarts", self.restarts.to_json()),
            ("survived_all_outages", self.survived_all_outages.to_json()),
            ("baseline_stalled", self.baseline_stalled.to_json()),
            ("journal", self.journal.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::convergence::ConvergenceRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("paradigm", self.paradigm.to_json()),
            ("throughput", self.throughput.to_json()),
            ("staleness", self.staleness.to_json()),
            ("final_accuracy", self.final_accuracy.to_json()),
            ("hours_to_target", self.hours_to_target.to_json()),
            ("curve", self.curve.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::overhead::OverheadRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("model", self.model.to_json()),
            ("dp_seconds", self.dp_seconds.to_json()),
            ("meta_net_seconds", self.meta_net_seconds.to_json()),
            ("rl_seconds", self.rl_seconds.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::enhanced::EnhancedRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schedule", self.schedule.to_json()),
            ("vanilla", self.vanilla.to_json()),
            ("enhanced", self.enhanced.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::multi_job::MultiJobRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tenancy", self.tenancy.to_json()),
            ("per_job", self.per_job.to_json()),
            ("total", self.total.to_json()),
            ("changes", self.changes.to_json()),
        ])
    }
}

impl ToJson for crate::experiments::ablations::AblationRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("variant", self.variant.to_json()),
            ("value", self.value.to_json()),
            ("switches", self.switches.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).pretty(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let v = Json::obj(vec![
            ("name", "fig9".to_json()),
            ("rows", vec![(0u64, 1.5f64), (1, 2.0)].to_json()),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert_eq!(
            s,
            "{\n  \"name\": \"fig9\",\n  \"rows\": [\n    [\n      0,\n      1.5\n    ],\n    [\n      1,\n      2\n    ]\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn options_and_floats_round_trip_textually() {
        assert_eq!(None::<f64>.to_json().pretty(), "null");
        assert_eq!(Some(2.5).to_json().pretty(), "2.5");
        // Shortest round-trip formatting keeps full precision.
        let x = 0.1f64 + 0.2;
        assert_eq!(x.to_json().pretty().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn row_types_serialize_with_stable_keys() {
        let row = crate::experiments::ablations::AblationRow {
            variant: "x".into(),
            value: 1.0,
            switches: 2,
        };
        let s = row.to_json().pretty();
        assert!(s.contains("\"variant\": \"x\""));
        assert!(s.contains("\"value\": 1"));
        assert!(s.contains("\"switches\": 2"));
    }
}
