//! Shared experiment scaffolding: the paper's testbed, job mixes, and
//! plan/measure helpers.

use ap_cluster::dynamics::BgJobId;
use ap_cluster::gpu::GpuKind;
use ap_cluster::{gbps, ClusterState, ClusterTopology, EventKind, GpuId, ResourceTimeline};
use ap_models::{alexnet, bert48, resnet50, vgg16, ModelDesc, ModelProfile};
use ap_pipesim::{
    AnalyticModel, Engine, EngineConfig, Framework, Partition, ScheduleKind, SyncScheme,
};
use ap_planner::{pipedream_plan, PipeDreamView};
use autopipe::controller::hill_climb;

/// Everything that parameterizes one experimental cell.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentEnv {
    /// NIC line rate in Gbps.
    pub link_gbps: f64,
    /// Gradient sync scheme.
    pub scheme: SyncScheme,
    /// ML framework constants.
    pub framework: Framework,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
}

impl ExperimentEnv {
    /// The paper's default: Ring + PyTorch + async PipeDream.
    pub fn default_at(link_gbps: f64) -> Self {
        ExperimentEnv {
            link_gbps,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
        }
    }

    /// The analytic model for a profile under this env.
    pub fn model<'a>(&self, profile: &'a ModelProfile) -> AnalyticModel<'a> {
        AnalyticModel {
            profile,
            scheme: self.scheme,
            framework: self.framework,
            schedule: self.schedule,
            calibration: None,
        }
    }

    /// Engine configuration for this env.
    pub fn engine_cfg(&self) -> EngineConfig {
        EngineConfig {
            scheme: self.scheme,
            framework: self.framework,
            schedule: self.schedule,
            record_timeline: false,
            calibration: None,
        }
    }
}

/// The three image models of §5.1 with the paper's batch sizes.
pub fn image_models() -> Vec<ModelDesc> {
    vec![vgg16(), resnet50(), alexnet()]
}

/// The four evaluation models (adds BERT for the communication-heavy end).
pub fn all_models() -> Vec<ModelDesc> {
    vec![vgg16(), resnet50(), alexnet(), bert48()]
}

/// The exclusive testbed: 5 servers x 2 P100 at `link_gbps`, single job.
pub fn exclusive_state(link_gbps: f64) -> ClusterState {
    ClusterState::new(ClusterTopology::paper_testbed(link_gbps))
}

/// "To emulate the scenarios of shared GPU cluster, we run three identical
/// jobs in every experiment" (§5.2). Gang scheduling and locality
/// constraints fragment placements (the paper cites (ref. 7) on exactly this),
/// so the two competitor jobs land on *overlapping subsets*: GPUs 0–5 and
/// 4–9. The observed job therefore sees heterogeneous contention (3-way on
/// GPUs 4–5, 2-way elsewhere) plus the competitors' traffic on their
/// servers' links — the environment PipeDream's uniform-speed,
/// uniform-bandwidth model cannot describe.
pub fn shared_three_job_state(link_gbps: f64) -> ClusterState {
    let mut st = exclusive_state(link_gbps);
    let n = st.topology.n_gpus();
    let job_a: Vec<GpuId> = (0..(n * 6 / 10)).map(GpuId).collect();
    let job_b: Vec<GpuId> = ((n * 4 / 10)..n).map(GpuId).collect();
    for (id, gpus) in [(1000u64, job_a), (1001, job_b)] {
        st.apply(&EventKind::JobArrive {
            id: BgJobId(id),
            gpus,
            net_bytes_per_sec: gbps(link_gbps) / 3.0,
        });
    }
    st
}

/// PipeDream's one-shot plan: computed from the *nominal* line rate and an
/// *exclusive* P100 — exactly the stale view the paper criticizes.
pub fn paper_pipedream_plan(profile: &ModelProfile, link_gbps: f64, n_gpus: usize) -> Partition {
    let gpus: Vec<GpuId> = (0..n_gpus).map(GpuId).collect();
    pipedream_plan(
        profile,
        &gpus,
        PipeDreamView {
            bandwidth: gbps(link_gbps),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    )
}

/// AutoPipe's adapted plan: start from PipeDream's, refine with two-worker
/// moves against the true cluster state, and **verify** candidates by
/// measurement — AutoPipe's meta-network predicts *actual* training speed
/// and its arbiter only keeps switches that pay off, so the accepted plan
/// never loses to the starting one.
pub fn paper_autopipe_plan(
    profile: &ModelProfile,
    env: &ExperimentEnv,
    state: &ClusterState,
) -> Partition {
    let start = paper_pipedream_plan(profile, env.link_gbps, state.topology.n_gpus());
    let refined = hill_climb(&env.model(profile), start.clone(), state, 40);
    let mut best = start.clone();
    let mut best_tp = engine_throughput(profile, &start, state, env, 10);
    for cand in [refined] {
        if cand == best {
            continue;
        }
        let tp = engine_throughput(profile, &cand, state, env, 10);
        if tp > best_tp {
            best_tp = tp;
            best = cand;
        }
    }
    best
}

/// The vanilla-framework baseline: pure data parallelism over every GPU.
pub fn baseline_plan(profile: &ModelProfile, n_gpus: usize) -> Partition {
    let gpus: Vec<GpuId> = (0..n_gpus).map(GpuId).collect();
    Partition::single_stage(profile.n_layers(), gpus)
}

/// Measure a plan's steady-state throughput and mean stage-0 weight
/// staleness on the event engine.
pub fn engine_measure(
    profile: &ModelProfile,
    partition: &Partition,
    state: &ClusterState,
    env: &ExperimentEnv,
    iterations: usize,
) -> (f64, f64) {
    let engine = Engine::new(
        profile,
        partition.clone(),
        state.clone(),
        ResourceTimeline::empty(),
        env.engine_cfg(),
    )
    .expect("valid partition");
    // Steady state only exists once the pipeline has filled: run well past
    // the in-flight depth and skip the fill.
    let n = iterations.max(3 * partition.in_flight).max(12);
    let skip = n / 3;
    let r = engine.run(n).expect("engine run");
    (r.steady_throughput(skip), r.mean_staleness)
}

/// Measure a plan's steady-state throughput on the event engine.
pub fn engine_throughput(
    profile: &ModelProfile,
    partition: &Partition,
    state: &ClusterState,
    env: &ExperimentEnv,
    iterations: usize,
) -> f64 {
    engine_measure(profile, partition, state, env, iterations).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_state_has_heterogeneous_contention() {
        let st = shared_three_job_state(25.0);
        // Overlap region is 3-way shared, the rest 2-way.
        assert_eq!(st.topology.gpu(GpuId(4)).colocated_jobs, 3);
        assert_eq!(st.topology.gpu(GpuId(5)).colocated_jobs, 3);
        assert_eq!(st.topology.gpu(GpuId(0)).colocated_jobs, 2);
        assert_eq!(st.topology.gpu(GpuId(9)).colocated_jobs, 2);
        let avail = st.available_capacity(ap_cluster::LinkId::Up(ap_cluster::ServerId(0)));
        assert!(avail < gbps(25.0));
    }

    #[test]
    fn autopipe_plan_never_slower_than_pipedream_plan_analytically() {
        for m in image_models() {
            let profile = ModelProfile::of(&m);
            let env = ExperimentEnv::default_at(25.0);
            let st = shared_three_job_state(25.0);
            let pd = paper_pipedream_plan(&profile, 25.0, 10);
            let ap = paper_autopipe_plan(&profile, &env, &st);
            let model = env.model(&profile);
            assert!(
                model.throughput(&ap, &st) >= model.throughput(&pd, &st) - 1e-9,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn engine_throughput_is_positive_for_all_models() {
        for m in image_models() {
            let profile = ModelProfile::of(&m);
            let env = ExperimentEnv::default_at(40.0);
            let st = exclusive_state(40.0);
            let plan = paper_pipedream_plan(&profile, 40.0, 10);
            let tp = engine_throughput(&profile, &plan, &st, &env, 16);
            assert!(tp > 0.0, "{}: {tp}", m.name);
        }
    }
}
