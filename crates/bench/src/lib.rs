//! # ap-bench — the reproduction harness
//!
//! One module per paper figure (see DESIGN.md §4 for the experiment
//! index); the `repro` binary prints each figure's rows, and the
//! `Instant`-based benches under `benches/` time the computational kernels
//! (Figure 12's partition-modeling cost, engine and meta-net speed).

pub mod experiments;
pub mod json;
pub mod setup;
pub mod timing;

pub use setup::{
    engine_measure, engine_throughput, exclusive_state, image_models, paper_autopipe_plan,
    paper_pipedream_plan, shared_three_job_state, ExperimentEnv,
};
