//! Frame codec hot-path wall-clock: per-element reference vs the bulk
//! zero-copy production path.
//!
//! Every activation and gradient crossing a stage boundary pays one
//! encode and one decode, so the codec is on the steady-state 1F1B
//! critical path. This binary measures the before/after of the codec
//! rework on Act frames (the shape Grad shares):
//!
//! * `scalar` — the seed behavior, reproduced here as the reference: a
//!   fresh `Vec` per encode with one `to_le_bytes` push per element, and
//!   a decode that reads each f64 through a bounds-checked cursor.
//! * `bulk` — the shipped path: `encode_into` a recycled buffer (one
//!   memcpy of the payload on little-endian hosts) and `decode_view`,
//!   which borrows the payload from the receive buffer and converts it
//!   with a single bulk copy in `MatrixView::to_matrix`.
//!
//! Both paths must produce identical wire bytes and identical decoded
//! matrices; this binary asserts that before timing. Results merge into
//! the `"codec"` key of `BENCH_hotpath.json` in the current directory
//! (or the path given as the first argument).

use ap_bench::json::{merge_file_key, Json};
use ap_bench::timing;
use ap_exec::{decode_view, encode, encode_into, Frame, FrameView};
use ap_nn::Matrix;
use std::hint::black_box;
use std::path::PathBuf;

const RUNS: usize = 9;
const TAG_ACT: u8 = 0;

/// Reference encode: the seed's per-element path — fresh allocation,
/// one 8-byte push per f64. Byte-compatible with [`encode`] for Act.
fn encode_scalar(mb: u64, data: &Matrix) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(TAG_ACT);
    out.extend_from_slice(&mb.to_le_bytes());
    out.extend_from_slice(&(data.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(data.cols() as u32).to_le_bytes());
    for &v in data.data() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Reference decode: a bounds-checked cursor reading one f64 at a time,
/// as the seed's `Reader::matrix` did.
fn decode_scalar(buf: &[u8]) -> (u64, Matrix) {
    assert_eq!(buf[0], TAG_ACT);
    let mut at = 1usize;
    let mut take = |n: usize| {
        let s = &buf[at..at + n];
        at += n;
        s
    };
    let mb = u64::from_le_bytes(take(8).try_into().unwrap());
    let rows = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let cols = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(f64::from_bits(u64::from_le_bytes(
            take(8).try_into().unwrap(),
        )));
    }
    assert_eq!(at, buf.len(), "trailing garbage");
    (mb, Matrix::from_vec(rows, cols, data))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));

    // Payload shapes spanning the runtime's boundary traffic: a small
    // cut (batch 32 x 32 features), a wide cut, and a master-sized blob.
    let shapes: [(usize, usize); 3] = [(32, 32), (32, 512), (32, 4096)];

    println!("codec: scalar per-element vs bulk zero-copy");
    let mut rows_json = Vec::new();
    for (r, c) in shapes {
        let data = Matrix::xavier(r, c, 17);
        let frame = Frame::Act { mb: 42, data };
        let payload_bytes = r * c * 8;

        // Equivalence gates: identical wire bytes, identical round trip.
        let reference_bytes = match &frame {
            Frame::Act { mb, data } => encode_scalar(*mb, data),
            _ => unreachable!(),
        };
        assert_eq!(reference_bytes, encode(&frame), "wire bytes diverged");
        let (mb_ref, m_ref) = decode_scalar(&reference_bytes);
        match decode_view(&reference_bytes).unwrap() {
            FrameView::Act { mb, data } => {
                assert_eq!(mb, mb_ref);
                assert_eq!(data.to_matrix(), m_ref, "decoded matrix diverged");
            }
            _ => panic!("expected Act view"),
        }

        let scalar = timing::bench(&format!("scalar/{r}x{c}"), RUNS, || {
            for _ in 0..64 {
                let (mb, data) = match &frame {
                    Frame::Act { mb, data } => (*mb, data),
                    _ => unreachable!(),
                };
                let bytes = encode_scalar(mb, data);
                black_box(decode_scalar(&bytes));
            }
        });
        println!("{}", scalar.report());

        let mut buf = Vec::new();
        let bulk = timing::bench(&format!("bulk/{r}x{c}"), RUNS, || {
            for _ in 0..64 {
                encode_into(&frame, &mut buf);
                match decode_view(&buf).unwrap() {
                    FrameView::Act { data, .. } => {
                        black_box(data.to_matrix());
                    }
                    _ => unreachable!(),
                }
            }
        });
        println!("{}", bulk.report());
        let speedup = scalar.median / bulk.median;
        println!("   speedup {speedup:.2}x\n");

        rows_json.push(Json::obj(vec![
            ("rows", Json::Num(r as f64)),
            ("cols", Json::Num(c as f64)),
            ("payload_bytes", Json::Num(payload_bytes as f64)),
            ("runs", Json::Num(RUNS as f64)),
            ("round_trips_per_run", Json::Num(64.0)),
            ("scalar_median_s", Json::Num(scalar.median)),
            ("bulk_median_s", Json::Num(bulk.median)),
            ("speedup", Json::Num(speedup)),
            ("wire_identical", Json::Bool(true)),
        ]));
    }

    let doc = Json::obj(vec![("shapes", Json::Arr(rows_json))]);
    merge_file_key(&out_path, "codec", doc).expect("write BENCH_hotpath.json");
    println!("merged key \"codec\" into {}", out_path.display());
}
