//! `autopipe-plan` — plan a pipeline-parallel job from the command line.
//!
//! ```text
//! autopipe-plan <model> [--gpus N] [--gbps G] [--scheme ps|ring]
//!               [--shared-jobs K] [--trace FILE.json]
//! ```
//!
//! Models: `vgg16`, `resnet50`, `resnet101`, `resnet152`, `alexnet`,
//! `bert48`, `gpt2_small`, `gpt2_medium`.
//!
//! Prints PipeDream's one-shot plan and AutoPipe's environment-aware
//! refinement with predicted and simulated throughput, per-worker memory
//! estimates, and (with `--trace`) a Chrome-trace timeline of the refined
//! plan's first iterations.

use std::env;
use std::fs;
use std::process::exit;

use ap_bench::{engine_throughput, ExperimentEnv};
use ap_cluster::dynamics::BgJobId;
use ap_cluster::gpu::GpuKind;
use ap_cluster::{gbps, ClusterState, ClusterTopology, EventKind, GpuId, ResourceTimeline};
use ap_models::ModelProfile;
use ap_pipesim::{estimate_memory, to_chrome_trace, Engine, EngineConfig, SyncScheme};
use ap_planner::{pipedream_plan, PipeDreamView};
use autopipe::controller::hill_climb;

fn usage() -> ! {
    eprintln!(
        "usage: autopipe-plan <model> [--gpus N] [--gbps G] [--scheme ps|ring] \
         [--shared-jobs K] [--trace FILE.json]"
    );
    exit(2);
}

fn model_by_name(name: &str) -> Option<ap_models::ModelDesc> {
    Some(match name {
        "vgg16" => ap_models::vgg16(),
        "resnet50" => ap_models::resnet50(),
        "resnet101" => ap_models::resnet101(),
        "resnet152" => ap_models::resnet152(),
        "alexnet" => ap_models::alexnet(),
        "bert48" => ap_models::bert48(),
        "gpt2_small" => ap_models::gpt2_small(),
        "gpt2_medium" => ap_models::gpt2_medium(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(model_name) = args.first() else {
        usage()
    };
    let Some(model) = model_by_name(model_name) else {
        eprintln!("unknown model {model_name:?}");
        usage()
    };
    let mut n_gpus = 10usize;
    let mut link_gbps = 25.0f64;
    let mut scheme = SyncScheme::RingAllReduce;
    let mut shared_jobs = 0u32;
    let mut trace_file: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--gpus" => {
                i += 1;
                n_gpus = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--gbps" => {
                i += 1;
                link_gbps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--scheme" => {
                i += 1;
                scheme = match args.get(i).map(String::as_str) {
                    Some("ps") => SyncScheme::ParameterServer,
                    Some("ring") => SyncScheme::RingAllReduce,
                    _ => usage(),
                };
            }
            "--shared-jobs" => {
                i += 1;
                shared_jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_file = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }

    let profile = ModelProfile::of(&model);
    let servers = n_gpus.div_ceil(2).max(1);
    let per_server = n_gpus.div_ceil(servers);
    let topo = ClusterTopology::single_switch(servers, per_server, GpuKind::P100, link_gbps);
    let n_gpus = topo.n_gpus().min(n_gpus);
    let mut state = ClusterState::new(topo);
    if shared_jobs > 0 {
        // Competing jobs on the first 60% of GPUs (gang-scheduled subset).
        let subset: Vec<GpuId> = (0..n_gpus * 6 / 10).map(GpuId).collect();
        for k in 0..shared_jobs {
            state.apply(&EventKind::JobArrive {
                id: BgJobId(u64::from(k)),
                gpus: subset.clone(),
                net_bytes_per_sec: gbps(link_gbps) / f64::from(shared_jobs + 1),
            });
        }
    }
    let env = ExperimentEnv {
        link_gbps,
        scheme,
        framework: ap_pipesim::Framework::pytorch(),
        schedule: ap_pipesim::ScheduleKind::PipeDreamAsync,
    };

    println!(
        "model {model_name}: {} layers, {:.1} M params, batch {}",
        profile.n_layers(),
        profile.total_params() / 4e6,
        profile.batch
    );
    println!(
        "cluster: {n_gpus} x P100, {link_gbps:.0} Gbps, {} sync, {shared_jobs} competing job(s)\n",
        scheme.label()
    );

    let gpus: Vec<GpuId> = (0..n_gpus).map(GpuId).collect();
    let pd = pipedream_plan(
        &profile,
        &gpus,
        PipeDreamView {
            bandwidth: gbps(link_gbps),
            gpu_flops: GpuKind::P100.peak_flops(),
        },
    );
    let ap = hill_climb(&env.model(&profile), pd.clone(), &state, 40);

    for (name, plan) in [("PipeDream", &pd), ("AutoPipe", &ap)] {
        let analytic = env.model(&profile).throughput(plan, &state);
        let simulated = engine_throughput(&profile, plan, &state, &env, 24);
        println!("{name} plan: {}", plan.summary());
        println!("  predicted {analytic:8.1} samples/s   simulated {simulated:8.1} samples/s");
        let mem = estimate_memory(&profile, plan, env.schedule);
        let worst = mem.iter().map(|e| e.total()).fold(0.0f64, f64::max);
        println!(
            "  peak worker memory {:.2} GB of {:.0} GB",
            worst / 1e9,
            GpuKind::P100.memory_bytes() / 1e9
        );
    }

    if let Some(path) = trace_file {
        let result = Engine::new(
            &profile,
            ap.clone(),
            state,
            ResourceTimeline::empty(),
            EngineConfig {
                scheme: env.scheme,
                framework: env.framework,
                schedule: env.schedule,
                record_timeline: true,
                calibration: None,
            },
        )
        .expect("valid partition")
        .run(12)
        .expect("engine run");
        fs::write(
            &path,
            to_chrome_trace(&result, &format!("autopipe {model_name}")),
        )
        .expect("write trace");
        println!("\nwrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }
}
