//! `repro` — regenerate every figure of the AutoPipe paper.
//!
//! ```text
//! repro <experiment|list|all> [--json DIR] [--trace DIR] [--smoke] [--calibrate]
//! ```
//!
//! `repro list` prints every experiment with a one-line description; an
//! unknown experiment name prints the valid set and exits 2.
//!
//! Each subcommand prints the figure's rows/series as a markdown table
//! (the source for EXPERIMENTS.md) and, with `--json DIR`, also writes the
//! raw rows as JSON. With `--trace DIR`, the dynamic figures (fig9/fig10)
//! additionally re-run their AutoPipe arm with the engine timeline
//! recorded and write `<fig>_trace.json` — one merged chrome trace
//! (load it at `chrome://tracing` or Perfetto) of per-worker compute
//! segments plus a "controller" lane of decision-journal events — and
//! `<fig>_journal.json`, the raw decision journal.

use std::env;
use std::fs;
use std::path::PathBuf;

use ap_bench::experiments::motivation::{panel_bandwidths, panel_models, MotivationRow, Scenario};
use ap_bench::experiments::{
    ablations, chaos, cluster_bench, convergence, dynamic, enhanced, exec_validate, mem_bench,
    multi_job, overhead, pipeline_fill, serve_bench, static_alloc,
};
use ap_bench::json::ToJson;
use ap_pipesim::ScheduleKind;

/// Every experiment name with a one-line description (`repro list`).
const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig2", "filling the pipeline: startup vs steady state"),
    ("fig3", "motivation: dynamic changing bandwidth"),
    ("fig4", "motivation: dynamic changing computation resource"),
    ("fig5", "motivation: a new distributed training job joins"),
    (
        "fig6",
        "motivation: an old distributed training job finishes",
    ),
    ("fig8", "static resource allocation grid"),
    ("fig9", "training under dynamic bandwidth"),
    ("fig10", "training under dynamic GPU contention"),
    ("fig11", "accuracy vs time across paradigms"),
    ("fig12", "computation time of worker-partition modeling"),
    ("fig13", "AutoPipe-enhanced pipeline variants"),
    ("multijob", "coordinated AutoPipe tenancy"),
    ("ablations", "design-choice ablations"),
    ("chaos", "seeded fault injection vs drain-and-restart"),
    (
        "cluster-bench",
        "ap-sched control plane: neighborhood vs whole-world re-planning at 10/100/1000 jobs",
    ),
    ("serve-bench", "ap-serve daemon under load"),
    (
        "exec-validate",
        "ap-exec runtime vs simulator prediction, with a live migration",
    ),
    (
        "mem-bench",
        "ap-mem memory-aware planning: schedule choice flipping with per-GPU capacity",
    ),
];

/// Iterations per engine measurement (kept moderate so `repro all`
/// finishes in minutes).
const MEASURE_ITERS: usize = 16;
/// Iterations for the dynamic speed-curve scenarios.
const DYNAMIC_ITERS: usize = 80;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = match args.first().map(String::as_str) {
        // Flags without an experiment name mean "all".
        None => "all",
        Some(c) if c.starts_with("--") => "all",
        Some(c) => c,
    };
    if cmd == "list" {
        println!("| experiment | description |");
        println!("|---|---|");
        for (name, desc) in EXPERIMENTS {
            println!("| {name} | {desc} |");
        }
        return;
    }
    if cmd != "all" && !EXPERIMENTS.iter().any(|(name, _)| *name == cmd) {
        eprintln!("unknown experiment '{cmd}'; valid names:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        eprintln!("  all");
        eprintln!("(or 'repro list' for descriptions)");
        std::process::exit(2);
    }
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let run = |name: &str| cmd == name || cmd == "all";

    if run("fig2") {
        fig2(&json_dir);
    }
    for (name, scenario) in [
        ("fig3", Scenario::BandwidthHalved),
        ("fig4", Scenario::GpuContention),
        ("fig5", Scenario::JobJoins),
        ("fig6", Scenario::JobFinishes),
    ] {
        if run(name) {
            motivation_figure(name, scenario, &json_dir);
        }
    }
    if run("fig8") {
        fig8(&json_dir);
    }
    if run("fig9") {
        dynamic_figure("fig9", dynamic::fig9(DYNAMIC_ITERS), &json_dir);
        if trace_dir.is_some() {
            dump_trace(&trace_dir, "fig9", dynamic::fig9_trace(DYNAMIC_ITERS));
        }
    }
    if run("fig10") {
        dynamic_figure("fig10", dynamic::fig10(DYNAMIC_ITERS), &json_dir);
        if trace_dir.is_some() {
            dump_trace(&trace_dir, "fig10", dynamic::fig10_trace(DYNAMIC_ITERS));
        }
    }
    if run("fig11") {
        fig11(&json_dir);
    }
    if run("fig12") {
        fig12(&json_dir);
    }
    if run("fig13") {
        fig13(&json_dir);
    }
    if run("multijob") {
        run_multijob(&json_dir);
    }
    if run("ablations") {
        run_ablations(&json_dir);
    }
    if run("chaos") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_chaos(smoke, &json_dir);
    }
    if run("cluster-bench") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_cluster_bench(smoke, &json_dir);
    }
    if run("serve-bench") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_serve_bench(smoke, &json_dir);
    }
    if run("exec-validate") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let calibrate = args.iter().any(|a| a == "--calibrate");
        let schedules = match args
            .iter()
            .position(|a| a == "--schedule")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
        {
            None => vec![ScheduleKind::PipeDreamAsync],
            Some("all") => ScheduleKind::zoo().to_vec(),
            Some(id) => match ScheduleKind::parse(id) {
                Some(k) => vec![k],
                None => {
                    eprintln!("unknown schedule '{id}'; valid: all");
                    for k in ScheduleKind::zoo() {
                        eprintln!("  {}", k.id());
                    }
                    std::process::exit(2);
                }
            },
        };
        run_exec_validate(smoke, calibrate, &schedules, &json_dir);
    }
    if run("mem-bench") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_mem_bench(smoke, &json_dir);
    }
}

/// The memory-planning drill: price a BERT-48 pipeline with the ap-mem
/// model and sweep per-GPU capacity from rich to hopeless, letting
/// `fit_schedule` keep / clamp / switch / reject the requested deep-async
/// schedule at each rung. Closed-form and clock-free, so smoke output is
/// byte-identical across runs and `AP_PAR_THREADS`. The full run exports
/// `BENCH_mem.json`. Exits non-zero if a gate fails (a stage over
/// capacity, or the choice failing to flip across the ladder).
fn run_mem_bench(smoke: bool, json: &Option<PathBuf>) {
    println!("\n## Mem — memory-aware planning across a capacity ladder\n");
    let r = mem_bench::run(smoke);
    println!(
        "mode {}; {} batch {}, {} stages, requested {}@{}\n",
        r.mode, r.model, r.batch, r.n_stages, r.requested, r.requested_in_flight
    );
    println!("| cluster | GiB/GPU | feasible | chosen | in-flight | switched | predicted (samples/s) | requested deficit (GiB) |");
    println!("|---|---|---|---|---|---|---|---|");
    for c in &r.cells {
        println!(
            "| {} | {:.2} | {} | {} | {} | {} | {:.1} | {:.2} |",
            c.cluster,
            c.capacity_gb,
            if c.feasible { "yes" } else { "NO" },
            c.chosen,
            c.in_flight,
            if c.switched { "yes" } else { "-" },
            c.predicted,
            c.requested_deficit_gb
        );
    }
    if let Some(worst) = r
        .cells
        .iter()
        .filter(|c| c.feasible)
        .flat_map(|c| c.stages.iter().map(move |s| (c, s)))
        .max_by(|a, b| {
            let fa = a.1.required_gb / a.1.capacity_gb;
            let fb = b.1.required_gb / b.1.capacity_gb;
            fa.total_cmp(&fb)
        })
    {
        println!(
            "\nTightest placed stage: {} stage {} at {:.2}/{:.2} GiB ({:.0}% of capacity)",
            worst.0.cluster,
            worst.1.stage,
            worst.1.required_gb,
            worst.1.capacity_gb,
            100.0 * worst.1.required_gb / worst.1.capacity_gb
        );
    }
    if !smoke {
        let out = PathBuf::from("BENCH_mem.json");
        fs::write(&out, r.to_json().pretty()).expect("write BENCH_mem.json");
        eprintln!("wrote {}", out.display());
    }
    dump_json(json, "mem", &r);
    if !r.all_ok() {
        eprintln!("FAIL: mem-bench gate violated (stage over capacity or no schedule flip)");
        std::process::exit(3);
    }
}

/// Simulator-vs-reality: run the same (schedule, partition, bandwidth)
/// configs on the real `ap-exec` pipeline runtime and as an IR-priced
/// prediction seeded from a host calibration pass, then replay one
/// controller-driven §4.4 reconfiguration live. `--schedule <id|all>`
/// picks which pipeline schedules get sim-vs-real rows (default
/// `pipedream_async`). The full run exports `BENCH_exec.json`; `--smoke`
/// zeroes every wall-clock-derived field so its `--json` output is
/// byte-identical across runs and `AP_PAR_THREADS` settings. Exits
/// non-zero if the pipeline drains during the switch, a pre-cutover loss
/// diverges, or training fails to make progress.
fn run_exec_validate(
    smoke: bool,
    calibrate: bool,
    schedules: &[ScheduleKind],
    json: &Option<PathBuf>,
) {
    println!("\n## Exec — real pipeline runtime vs simulator prediction\n");
    let r = match exec_validate::run_schedules(smoke, schedules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exec-validate failed to run: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "mode {}; model {:?}, batch {}, {} mini-batches per run\n",
        r.mode, r.sizes, r.batch, r.total
    );
    println!("| partition | raw pred (samples/s) | calibrated pred (samples/s) | measured (samples/s) | err raw | err cal | wire bytes | loss first -> last |");
    println!("|---|---|---|---|---|---|---|---|");
    for row in &r.rows {
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:+.1}% | {:+.1}% | {} | {:.4} -> {:.4} |",
            row.label,
            row.predicted,
            row.predicted_calibrated,
            row.measured,
            row.rel_error * 100.0,
            row.rel_error_calibrated * 100.0,
            row.wire_bytes,
            row.first_loss,
            row.last_loss
        );
    }
    if calibrate {
        let c = &r.calibration;
        println!(
            "\nCalibration ({}): per_frame {:.3e} s, per_byte {:.3e} s/B, stage_overhead {:.3e} s, stash {:.3e} s/B",
            if smoke { "synthetic" } else { "fitted on this host" },
            c.per_frame_s,
            c.per_byte_s,
            c.stage_overhead_s,
            c.stash_byte_s
        );
        let path = match json {
            Some(d) => {
                fs::create_dir_all(d).expect("create json dir");
                d.join("calibration.json")
            }
            None => PathBuf::from("CALIBRATION.json"),
        };
        fs::write(&path, c.to_json().pretty()).expect("write calibration json");
        eprintln!("wrote {}", path.display());
    }
    if !smoke {
        println!(
            "\nCalibrated ranking matches measured: {}; max calibrated error {:+.1}%",
            r.calibrated_ranking_matches_measured(),
            r.max_calibrated_error() * 100.0
        );
    }
    let m = &r.migration;
    println!(
        "\nLive reconfiguration: cuts {:?} -> {:?} at mini-batch {} (layers {:?} moved)",
        m.from_cuts, m.to_cuts, m.cutover_mb, m.moved_layers
    );
    println!(
        "  {} weight versions moved (stash order {:?}), {} param bytes on the wire vs {} predicted ({} total migration bytes)",
        m.versions_moved, m.versions_sent, m.measured_param_bytes, m.predicted_bytes, m.wire_bytes
    );
    println!(
        "  drain-free: {} (min in-flight {}), pre-cutover losses bit-identical: {}",
        m.drain_free, m.min_in_flight, m.pre_cutover_losses_match
    );
    if !smoke {
        println!("  switch took {:.6}s wall-clock", m.switch_seconds);
        let out = PathBuf::from("BENCH_exec.json");
        fs::write(&out, r.to_json().pretty()).expect("write BENCH_exec.json");
        eprintln!("wrote {}", out.display());
    }
    dump_json(json, "exec_validate", &r);
    if !r.all_ok() {
        eprintln!("FAIL: exec-validate invariant violated");
        std::process::exit(3);
    }
}

/// The serving-layer drill: spawn the `ap-serve` daemon on an ephemeral
/// loopback port and drive every endpoint — functional checks, a latency
/// sweep, a cached-plan throughput sweep, a 4x-capacity overload burst and
/// a graceful shutdown. The full run exports `BENCH_serve.json`; `--smoke`
/// runs the same checks with fixed-clock reporting (every wall-clock field
/// zeroed), so its `--json` output is byte-identical across runs and
/// `AP_PAR_THREADS` settings. Exits non-zero if the daemon misbehaves.
fn run_serve_bench(smoke: bool, json: &Option<PathBuf>) {
    println!("\n## Serve — planning-as-a-service daemon under load\n");
    let r = match serve_bench::run(smoke) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench failed to run: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "mode {}; {} workers, admission queue {}, plan cache {}\n",
        r.mode, r.workers, r.queue_capacity, r.cache_capacity
    );
    println!("| check | status | ok |");
    println!("|---|---|---|");
    for c in &r.checks {
        println!(
            "| {} | {} | {} |",
            c.name,
            c.status,
            if c.ok { "yes" } else { "NO" }
        );
    }
    if !smoke {
        println!(
            "\nPlan: {} -> {} (predicted {:.1} samples/s); cold {:.4}s, cached {:.6}s ({:.0}x)",
            r.plan.model,
            r.plan.partition,
            r.plan.predicted_throughput,
            r.plan.cold_seconds,
            r.plan.cached_seconds,
            r.plan.cache_speedup
        );
        println!("\n| endpoint | requests | p50 ms | p95 ms | p99 ms |");
        println!("|---|---|---|---|---|");
        for l in &r.latency {
            println!(
                "| {} | {} | {:.3} | {:.3} | {:.3} |",
                l.endpoint, l.requests, l.p50_ms, l.p95_ms, l.p99_ms
            );
        }
        println!("\n| connections | req/s | p50 ms | p95 ms | p99 ms | hit rate |");
        println!("|---|---|---|---|---|---|");
        for t in &r.throughput {
            println!(
                "| {} | {:.0} | {:.3} | {:.3} | {:.3} | {:.2} |",
                t.connections, t.req_per_sec, t.p50_ms, t.p95_ms, t.p99_ms, t.cache_hit_rate
            );
        }
        println!(
            "\nOverload: {} connections vs queue bound {}: {} served, {} shed with 503, peak depth {}; {} shed clients recovered after Retry-After",
            r.overload.offered_connections,
            r.overload.queue_capacity,
            r.overload.served_200,
            r.overload.shed_503,
            r.overload.peak_queue_depth,
            r.overload.recovered_after_hint
        );
        println!(
            "Degraded drill: {} induced failures -> {} degraded deadline-exhausted, breaker {}; \
             {} degraded breaker-open at p99 {:.3} ms; recovery {}; bulkhead shed {}",
            r.degraded.induced_failures,
            r.degraded.degraded_deadline,
            if r.degraded.breaker_opened {
                "opened"
            } else {
                "DID NOT OPEN"
            },
            r.degraded.degraded_breaker_open,
            r.degraded.degraded_p99_ms,
            if r.degraded.breaker_recovered {
                "via half-open probe"
            } else {
                "FAILED"
            },
            if r.degraded.bulkhead_shed {
                "ok"
            } else {
                "BAD"
            }
        );
        let out = PathBuf::from("BENCH_serve.json");
        fs::write(&out, r.to_json().pretty()).expect("write BENCH_serve.json");
        eprintln!("wrote {}", out.display());
    }
    dump_json(json, "serve", &r);
    if !r.all_ok() {
        eprintln!("FAIL: serve-bench checks failed");
        std::process::exit(3);
    }
}

/// The cluster control-plane drill: seeded arrival/departure/fault traces
/// at 10 → 100 → 1000 jobs through the ap-sched event loop, with
/// whole-world best-response forks sampled mid-trace for the latency and
/// quality comparison. The full run exports `BENCH_cluster.json` and
/// requires the largest scale's neighborhood re-planning to beat a
/// whole-world round by the declared factor; `--smoke` keeps to the small
/// scales with a fake clock (every wall-clock field zeroed), so its
/// `--json` output is byte-identical across runs and `AP_PAR_THREADS`
/// settings. Exits non-zero if a gate fails.
fn run_cluster_bench(smoke: bool, json: &Option<PathBuf>) {
    println!("\n## Cluster — the ap-sched control plane under a seeded job stream\n");
    let r = cluster_bench::run(smoke);
    println!(
        "mode {}; quality tolerance {:.0}% on instances ≤100 jobs{}\n",
        r.mode,
        r.equivalence_epsilon * 100.0,
        if smoke {
            String::new()
        } else {
            format!(
                ", required speedup {:.0}x at the largest scale",
                r.required_speedup
            )
        }
    );
    println!("| jobs | gpus | events | peak res | placed | queued | rejected | evacuated | moved | mean nbhd | worst Δ |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for s in &r.scales {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1} | {:+.2}% |",
            s.n_jobs,
            s.gpus,
            s.events,
            s.peak_resident,
            s.placed,
            s.queued,
            s.rejected,
            s.evacuated,
            s.plans_moved,
            s.mean_neighborhood,
            s.worst_quality_delta * 100.0
        );
    }
    if !smoke {
        println!("\n| jobs | event mean (ms) | event p99 (ms) | full round (ms) | speedup |");
        println!("|---|---|---|---|---|");
        for s in &r.scales {
            println!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.0}x |",
                s.n_jobs,
                s.event_latency_mean_s * 1e3,
                s.event_latency_p99_s * 1e3,
                s.full_latency_mean_s * 1e3,
                s.full_replan_speedup
            );
        }
        let out = PathBuf::from("BENCH_cluster.json");
        fs::write(&out, r.to_json().pretty()).expect("write BENCH_cluster.json");
        eprintln!("wrote {}", out.display());
    }
    dump_json(json, "cluster", &r);
    if !r.all_ok() {
        eprintln!("FAIL: cluster-bench gate violated (placement, quality epsilon, or speedup)");
        std::process::exit(3);
    }
}

/// The chaos drill: a seeded fault schedule against AutoPipe-with-recovery
/// and a drain-and-restart baseline. The full run exports
/// `BENCH_chaos.json` to the working directory (same-seed runs are
/// byte-identical); `--smoke` is a pure gate and writes nothing, so a CI
/// run never clobbers the committed full-length artifact. Exits non-zero
/// if the simulation wedges or AutoPipe fails to complete work inside any
/// scored outage window.
fn run_chaos(smoke: bool, json: &Option<PathBuf>) {
    const CHAOS_SEED: u64 = 9;
    let iters = if smoke { 30 } else { DYNAMIC_ITERS };
    println!("\n## Chaos — seeded worker failures and NIC flaps (ResNet50)\n");
    let r = match chaos::run(iters, CHAOS_SEED) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos run failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{} outage window(s), {} link-flap burst(s) over a {:.1}s horizon (seed {})\n",
        r.outages.len(),
        r.link_flaps,
        r.horizon,
        r.seed
    );
    println!("| outage | window (s) | AutoPipe units | drain-and-restart units |");
    println!("|---|---|---|---|");
    for w in &r.outages {
        println!(
            "| gpu{}{} | {:.1}-{:.1} | {} | {} |",
            w.worker,
            if w.scored { "" } else { " (unscored)" },
            w.start,
            w.end,
            w.autopipe_units,
            w.baseline_units
        );
    }
    println!(
        "\nMean throughput: AutoPipe {:.1} img/s vs drain-and-restart {:.1} img/s (+{:.0}%)",
        r.mean.0,
        r.mean.1,
        (r.mean.0 / r.mean.1.max(1e-12) - 1.0) * 100.0
    );
    println!(
        "Emergency repartitions: {}; rollbacks: {}; stranded-unit restarts: {}",
        r.emergency_switches, r.rollbacks, r.restarts
    );
    if !smoke {
        let out = PathBuf::from("BENCH_chaos.json");
        fs::write(&out, r.to_json().pretty()).expect("write BENCH_chaos.json");
        eprintln!("wrote {}", out.display());
    }
    dump_json(json, "chaos", &r);
    if !r.survived_all_outages {
        eprintln!("FAIL: AutoPipe completed no work inside a scored outage window");
        std::process::exit(3);
    }
}

fn run_multijob(json: &Option<PathBuf>) {
    println!("\n## Multi-job deployment — coordinated AutoPipe tenancy (§1)\n");
    let rows = multi_job::run();
    println!("| tenancy | resnet50 | vgg16 | bert12 | total (samples/s) | plan changes |");
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
            r.tenancy, r.per_job[0], r.per_job[1], r.per_job[2], r.total, r.changes
        );
    }
    println!(
        "\nTenancy-wide improvement: {:+.1}%",
        (rows[1].total / rows[0].total - 1.0) * 100.0
    );
    dump_json(json, "multijob", &rows);
}

fn dump_json<T: ToJson>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(d) = dir {
        fs::create_dir_all(d).expect("create json dir");
        let path = d.join(format!("{name}.json"));
        fs::write(&path, value.to_json().pretty()).expect("write json");
        eprintln!("wrote {}", path.display());
    }
}

/// Write a dynamic figure's merged decision/compute chrome trace and its
/// decision journal (stderr-only reporting: stdout stays byte-identical
/// to a run without `--trace`).
fn dump_trace(dir: &Option<PathBuf>, name: &str, trace: dynamic::DynamicTrace) {
    if let Some(d) = dir {
        fs::create_dir_all(d).expect("create trace dir");
        let path = d.join(format!("{name}_trace.json"));
        fs::write(&path, &trace.chrome_trace).expect("write chrome trace");
        eprintln!(
            "wrote {} ({} decision events)",
            path.display(),
            trace.journal.len()
        );
        dump_json(dir, &format!("{name}_journal"), &trace.journal);
    }
}

fn fig2(json: &Option<PathBuf>) {
    println!("\n## Figure 2 — filling the pipeline (startup vs steady state)\n");
    let fill = pipeline_fill::fig2(24);
    for row in pipeline_fill::ascii_timeline(&fill, 96) {
        println!("    {row}");
    }
    println!(
        "\n| window | mean utilization |\n|---|---|\n| startup (first quarter) | {:.1}% |\n| steady state (last half) | {:.1}% |",
        fill.startup_utilization * 100.0,
        fill.steady_utilization * 100.0
    );
    dump_json(json, "fig2", &fill);
}

fn motivation_title(s: Scenario) -> &'static str {
    match s {
        Scenario::BandwidthHalved => "dynamic changing bandwidth (halved mid-training)",
        Scenario::GpuContention => "dynamic changing computation resource (extra job per GPU)",
        Scenario::JobJoins => "a new distributed training job joins",
        Scenario::JobFinishes => "an old distributed training job finishes",
    }
}

fn motivation_figure(name: &str, scenario: Scenario, json: &Option<PathBuf>) {
    println!(
        "\n## {} — impact of {} on PipeDream\n",
        name.to_uppercase(),
        motivation_title(scenario)
    );
    let print_panel = |title: &str, rows: &[MotivationRow]| {
        println!("**{title}**\n");
        println!("| case | actual (img/s) | optimal (img/s) | degradation |");
        println!("|---|---|---|---|");
        for r in rows {
            println!(
                "| {} | {:.1} | {:.1} | {:.0}% |",
                r.label,
                r.actual,
                r.optimal,
                r.degradation_pct()
            );
        }
        println!();
    };
    let a = panel_models(scenario, MEASURE_ITERS);
    print_panel("(a) model influence @25Gbps", &a);
    let b = panel_bandwidths(scenario, MEASURE_ITERS);
    print_panel("(b) network speed influence (VGG16)", &b);
    dump_json(json, name, &(a, b));
}

fn fig8(json: &Option<PathBuf>) {
    println!("\n## Figure 8 — static resource allocation (3 identical jobs share the testbed)\n");
    let rows = static_alloc::full_grid(MEASURE_ITERS);
    println!(
        "| framework | scheme | model | Gbps | baseline | PipeDream | AutoPipe | vs base | vs PD |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {:.0} | {:.1} | {:.1} | {:.1} | +{:.0}% | +{:.0}% |",
            r.framework,
            r.scheme,
            r.model,
            r.gbps,
            r.baseline,
            r.pipedream,
            r.autopipe,
            r.speedup_vs_baseline_pct(),
            r.speedup_vs_pipedream_pct()
        );
    }
    let best_base = rows
        .iter()
        .map(static_alloc::Fig8Row::speedup_vs_baseline_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_pd = rows
        .iter()
        .map(static_alloc::Fig8Row::speedup_vs_pipedream_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\nBest speedup vs baseline: +{best_base:.0}% (paper: up to +177%)");
    println!("Best speedup vs PipeDream: +{best_pd:.0}% (paper: up to +89%)");
    dump_json(json, "fig8", &rows);
}

fn dynamic_figure(name: &str, r: dynamic::DynamicResult, json: &Option<PathBuf>) {
    println!(
        "\n## {} — training ResNet50 under {} \n",
        name.to_uppercase(),
        if name == "fig9" {
            "dynamic bandwidth (10→25→40→100 Gbps at iters 20/40/60)"
        } else {
            "dynamic GPUs (extra local jobs at iters 20/40)"
        }
    );
    println!("| iterations | AutoPipe (img/s) | PipeDream (img/s) |");
    println!("|---|---|---|");
    // Wall-clock speed over 8-iteration blocks (robust to simultaneous
    // completions): block time = sum of per-iteration batch/speed.
    let block = |series: &[(u64, f64)], lo: u64, hi: u64| -> Option<f64> {
        let dts: Vec<f64> = series
            .iter()
            .filter(|&&(i, _)| i >= lo && i < hi)
            .map(|&(_, s)| 128.0 / s)
            .collect();
        if dts.is_empty() {
            return None;
        }
        Some(dts.len() as f64 * 128.0 / dts.iter().sum::<f64>())
    };
    for lo in (0..=72).step_by(8) {
        let hi = lo + 8;
        let a = block(&r.autopipe, lo, hi).unwrap_or(0.0);
        let p = block(&r.pipedream, lo, hi).unwrap_or(0.0);
        println!("| {lo}-{hi} | {a:.1} | {p:.1} |");
    }
    println!(
        "\nMean throughput: AutoPipe {:.1} img/s vs PipeDream {:.1} img/s (+{:.0}%)",
        r.mean.0,
        r.mean.1,
        (r.mean.0 / r.mean.1 - 1.0) * 100.0
    );
    println!("Switches applied: {:?}", r.switches);
    dump_json(json, name, &r);
}

fn fig11(json: &Option<PathBuf>) {
    println!("\n## Figure 11 — accuracy vs time (AutoPipe / PipeDream / BSP / TAP)\n");
    let panels = convergence::fig11(MEASURE_ITERS);
    for (model, rows) in &panels {
        println!("**{model}**\n");
        println!(
            "| paradigm | throughput (img/s) | staleness | final top-1 | hours to 95% plateau |"
        );
        println!("|---|---|---|---|---|");
        for r in rows {
            println!(
                "| {} | {:.1} | {:.1} | {:.1}% | {} |",
                r.paradigm,
                r.throughput,
                r.staleness,
                r.final_accuracy,
                r.hours_to_target
                    .map(|h| format!("{h:.1}"))
                    .unwrap_or_else(|| "never".into())
            );
        }
        println!();
    }
    dump_json(json, "fig11", &panels);
}

fn fig12(json: &Option<PathBuf>) {
    println!("\n## Figure 12 — computation time of worker-partition modeling\n");
    let rows = overhead::fig12();
    println!("| model | PipeDream DP (s) | meta-net (s) | RL model (s) |");
    println!("|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.4} | {:.4} | {:.6} |",
            r.model, r.dp_seconds, r.meta_net_seconds, r.rl_seconds
        );
    }
    dump_json(json, "fig12", &rows);
}

fn fig13(json: &Option<PathBuf>) {
    println!("\n## Figure 13 — AutoPipe-enhanced pipeline variants (BERT-48)\n");
    let rows = enhanced::fig13();
    println!("| schedule | vanilla (seq/s) | enhanced (seq/s) | speedup |");
    println!("|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.1} | {:.1} | +{:.1}% |",
            r.schedule,
            r.vanilla,
            r.enhanced,
            r.speedup_pct()
        );
    }
    dump_json(json, "fig13", &rows);
}

fn run_ablations(json: &Option<PathBuf>) {
    println!("\n## Ablations (design choices of DESIGN.md §5)\n");
    let mut all = Vec::new();
    for (title, rows) in [
        ("Scorer", ablations::scorer_ablation(120)),
        ("Arbiter", ablations::arbiter_ablation(120)),
        ("Switching", ablations::switching_ablation(120)),
        (
            "Online adaptation (value = log-space MSE, lower is better)",
            ablations::adaptation_ablation(),
        ),
    ] {
        println!("**{title}**\n");
        println!("| variant | value | switches |");
        println!("|---|---|---|");
        for r in &rows {
            println!("| {} | {:.3} | {} |", r.variant, r.value, r.switches);
        }
        println!();
        all.push((title.to_string(), rows));
    }
    dump_json(json, "ablations", &all);
}
