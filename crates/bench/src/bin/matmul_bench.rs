//! Matmul hot-path wall-clock: naive ikj reference vs the blocked /
//! row-parallel production kernel (`Matrix::matmul`).
//!
//! The exec runtime spends most of its compute in `Matrix::matmul`, so
//! this binary measures exactly the before/after of the kernel rework:
//! `naive` is the seed implementation (plain ikj triple loop, kept here
//! verbatim as the reference), `blocked` is the shipped kernel — k-banded
//! for cache reuse and fanned over row-blocks with `ap_par` above the
//! parallel cutoff. Because the blocked kernel accumulates every output
//! element in the same order as the naive loop, the two must agree
//! **bit-for-bit** on every shape; this binary asserts that before timing.
//!
//! Results merge into the `"matmul"` key of `BENCH_hotpath.json` in the
//! current directory (or the path given as the first argument), leaving
//! other benches' keys intact.

use ap_bench::json::{merge_file_key, Json};
use ap_bench::timing;
use ap_nn::Matrix;
use std::hint::black_box;
use std::path::PathBuf;

const RUNS: usize = 9;

/// The seed kernel: plain ikj with the `a == 0.0` skip, no blocking, no
/// threads. The production kernel must reproduce its output exactly.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let av = a.get(i, kk);
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(kk, j));
            }
        }
    }
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_hotpath.json"));

    // Shapes bracketing the kernel's regimes: the exec runtime's own
    // per-layer products (small, serial), the serial blocked sweet spot,
    // and one comfortably above the parallel cutoff.
    let shapes: [(usize, usize, usize); 4] = [
        (32, 128, 128),
        (128, 128, 128),
        (256, 512, 256),
        (512, 512, 512),
    ];

    println!(
        "matmul: naive ikj vs blocked/parallel ({} threads)",
        ap_par::threads()
    );
    let mut rows = Vec::new();
    for (m, k, n) in shapes {
        let a = Matrix::xavier(m, k, 11);
        let b = Matrix::xavier(k, n, 13);

        // Equivalence gate: the speedup only counts if the bytes match.
        let want = naive_matmul(&a, &b);
        let got = a.matmul(&b);
        assert_eq!(
            want.data(),
            got.data(),
            "blocked kernel diverged from naive at {m}x{k}x{n}"
        );

        let naive = timing::bench(&format!("naive/{m}x{k}x{n}"), RUNS, || {
            black_box(naive_matmul(&a, &b));
        });
        println!("{}", naive.report());
        let blocked = timing::bench(&format!("blocked/{m}x{k}x{n}"), RUNS, || {
            black_box(a.matmul(&b));
        });
        println!("{}", blocked.report());
        let speedup = naive.median / blocked.median;
        println!("   speedup {speedup:.2}x\n");

        rows.push(Json::obj(vec![
            ("m", Json::Num(m as f64)),
            ("k", Json::Num(k as f64)),
            ("n", Json::Num(n as f64)),
            ("runs", Json::Num(RUNS as f64)),
            ("naive_median_s", Json::Num(naive.median)),
            ("blocked_median_s", Json::Num(blocked.median)),
            ("speedup", Json::Num(speedup)),
            ("bit_identical", Json::Bool(true)),
        ]));
    }

    let doc = Json::obj(vec![
        ("threads", Json::Num(ap_par::threads() as f64)),
        ("shapes", Json::Arr(rows)),
    ]);
    merge_file_key(&out_path, "matmul", doc).expect("write BENCH_hotpath.json");
    println!("merged key \"matmul\" into {}", out_path.display());
}
