//! Per-decision candidate-scoring wall-clock on the paper's models.
//!
//! A decision point scores the full two-worker incremental neighborhood
//! (O(L²) candidates) with the meta-network. This binary measures three
//! variants of that scan:
//!
//! * `serial_lstm` — the naive path: every candidate pays a full LSTM
//!   pass over the dynamic history plus the FC head (the seed behavior).
//! * `hoisted` — the history is encoded once per decision; candidates pay
//!   only the FC head. Static Table-1 metrics are memoized per distinct
//!   worker count.
//! * `hoisted_parallel` — the production path itself: the controller's
//!   [`Score`] stage (`Scorer::best`), which hoists the LSTM encoding and
//!   fans the per-candidate head across the in-tree `ap_par` worker pool.
//!
//! Results (median of N runs) are written to `BENCH_scoring.json` in the
//! current directory, or to the path given as the first argument.

use ap_bench::json::Json;
use ap_bench::timing;
use ap_cluster::{gbps, ClusterState, ClusterTopology, GpuId};
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_pipesim::{Framework, Partition, ScheduleKind, SyncScheme};
use ap_planner::{pipedream_plan, two_worker_moves, PipeDreamView};
use autopipe::controller::{Score, ScoreCtx};
use autopipe::metrics::{
    static_metrics_from_profile, FeatureEncoder, ProfilingMetrics, DYNAMIC_DIM,
};
use autopipe::{MetaNet, MetaNetConfig, Scorer};
use std::collections::VecDeque;
use std::hint::black_box;

const RUNS: usize = 31;

fn static_memo(profile: &ModelProfile, candidates: &[Partition]) -> Vec<(usize, ProfilingMetrics)> {
    let mut memo: Vec<(usize, ProfilingMetrics)> = Vec::new();
    for p in candidates {
        let n = p.n_workers();
        if !memo.iter().any(|&(k, _)| k == n) {
            memo.push((n, static_metrics_from_profile(profile, n)));
        }
    }
    memo
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scoring.json".to_string());
    let encoder = FeatureEncoder;
    let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
    let view = PipeDreamView {
        bandwidth: gbps(25.0),
        gpu_flops: 9.3e12,
    };

    let mut models_json = Vec::new();
    for model in [alexnet(), resnet50(), vgg16()] {
        let profile = ModelProfile::of(&model);
        let net = MetaNet::new(MetaNetConfig::default());
        let plan = pipedream_plan(&profile, &gpus, view);
        let candidates: Vec<Partition> = two_worker_moves(&plan, profile.n_layers())
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let dyn_seq: Vec<Vec<f64>> = (0..net.config().seq_len)
            .map(|i| vec![0.1 + 0.05 * i as f64; DYNAMIC_DIM])
            .collect();
        println!(
            "== {} ({} layers, {} candidates) ==",
            model.name,
            profile.n_layers(),
            candidates.len()
        );

        // Seed path: full LSTM pass per candidate.
        let serial = timing::bench(&format!("serial_lstm/{}", model.name), RUNS, || {
            let mut best = f64::NEG_INFINITY;
            for cand in &candidates {
                let m = static_metrics_from_profile(&profile, cand.n_workers());
                let stat = encoder.encode_static(&m, cand);
                best = best.max(net.predict(&dyn_seq, &stat));
            }
            black_box(best);
        });
        serial.report();

        // One LSTM pass per decision, serial FC head.
        let hoisted = timing::bench(&format!("hoisted/{}", model.name), RUNS, || {
            let h = net.encode_history(&dyn_seq);
            let memo = static_memo(&profile, &candidates);
            let mut best = f64::NEG_INFINITY;
            for cand in &candidates {
                let m = &memo
                    .iter()
                    .find(|&&(k, _)| k == cand.n_workers())
                    .unwrap()
                    .1;
                let stat = encoder.encode_static(m, cand);
                best = best.max(net.predict_from_encoding(&h, &stat));
            }
            black_box(best);
        });
        hoisted.report();

        // Production path: the controller's Score stage (hoisted encoding
        // + ap_par fan-out inside `Scorer::best`). The candidate clone is
        // part of the measured cost, exactly as in a live decision round.
        let history: VecDeque<Vec<f64>> = dyn_seq.iter().cloned().collect();
        let state = ClusterState::new(ClusterTopology::paper_testbed(25.0));
        let ctx = ScoreCtx {
            profile: &profile,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: ScheduleKind::PipeDreamAsync,
            calibration: None,
            history: &history,
            state: &state,
        };
        let scorer = Scorer::MetaNet(Box::new(MetaNet::new(MetaNetConfig::default())));
        let parallel = timing::bench(&format!("hoisted_parallel/{}", model.name), RUNS, || {
            let best = scorer.best(&ctx, candidates.clone());
            black_box(best);
        });
        parallel.report();

        let speedup_hoisted = serial.median / hoisted.median;
        let speedup_parallel = serial.median / parallel.median;
        println!(
            "   speedup: hoisted {speedup_hoisted:.1}x, hoisted+parallel {speedup_parallel:.1}x\n"
        );

        models_json.push(Json::obj(vec![
            ("model", Json::Str(model.name.clone())),
            ("layers", Json::Num(profile.n_layers() as f64)),
            ("candidates", Json::Num(candidates.len() as f64)),
            ("runs", Json::Num(RUNS as f64)),
            ("serial_lstm_median_s", Json::Num(serial.median)),
            ("hoisted_median_s", Json::Num(hoisted.median)),
            ("hoisted_parallel_median_s", Json::Num(parallel.median)),
            ("speedup_hoisted", Json::Num(speedup_hoisted)),
            ("speedup_hoisted_parallel", Json::Num(speedup_parallel)),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("per_decision_candidate_scoring".into())),
        ("threads", Json::Num(ap_par::threads() as f64)),
        ("models", Json::Arr(models_json)),
    ]);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_scoring.json");
    println!("wrote {out_path}");
}
