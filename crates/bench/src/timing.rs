//! Dependency-free micro-benchmark harness: `std::time::Instant` sampling
//! with median-of-N reporting.
//!
//! The `benches/` targets are plain `fn main()` binaries (`harness =
//! false`) built on this module. The protocol per benchmark: a couple of
//! warmup runs, then `n` timed runs, reporting the median (robust against
//! scheduler noise in a shared CI box) plus the min/max spread.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's timing summary, in seconds.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Median over the timed runs.
    pub median: f64,
    /// Fastest run.
    pub min: f64,
    /// Slowest run.
    pub max: f64,
    /// Number of timed runs.
    pub runs: usize,
    /// Every timed run, sorted ascending (for percentile queries).
    pub samples: Vec<f64>,
}

impl Sample {
    /// Build a summary from raw timings (sorts them internally).
    pub fn from_samples(name: &str, samples: Vec<f64>) -> Sample {
        assert!(!samples.is_empty(), "no samples");
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        Sample {
            name: name.to_string(),
            median: sorted_percentile(&sorted, 50.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            runs: sorted.len(),
            samples: sorted,
        }
    }

    /// The `p`-th percentile (0–100) of the timed runs, linearly
    /// interpolated between order statistics.
    pub fn percentile(&self, p: f64) -> f64 {
        sorted_percentile(&self.samples, p)
    }

    /// One-line human-readable report.
    pub fn report(&self) -> String {
        format!(
            "{:<44} median {:>12} (min {}, max {}, n={})",
            self.name,
            fmt_secs(self.median),
            fmt_secs(self.min),
            fmt_secs(self.max),
            self.runs
        )
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Median of a sample set (mean of the middle pair for even sizes).
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "no samples");
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// The `p`-th percentile (0–100) of an unsorted sample set, linearly
/// interpolated between order statistics (the "linear" / type-7 estimator:
/// rank `p/100 * (n-1)` into the sorted values). `p` is clamped to
/// [0, 100].
pub fn percentile(mut xs: Vec<f64>, p: f64) -> f64 {
    assert!(!xs.is_empty(), "no samples");
    xs.sort_by(f64::total_cmp);
    sorted_percentile(&xs, p)
}

/// [`percentile`] over an already ascending-sorted slice.
pub fn sorted_percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "no samples");
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Time `f` once, returning seconds. The result is passed through
/// [`black_box`] so the work cannot be optimized away.
pub fn time_once<R>(f: impl FnOnce() -> R) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

/// Run `f` `runs` times (after 2 warmups) and summarize.
pub fn bench<R>(name: &str, runs: usize, mut f: impl FnMut() -> R) -> Sample {
    assert!(runs >= 1);
    for _ in 0..2 {
        black_box(f());
    }
    let samples: Vec<f64> = (0..runs).map(|_| time_once(&mut f)).collect();
    Sample::from_samples(name, samples)
}

/// Run and print a benchmark; returns the sample for further use.
pub fn run(name: &str, runs: usize, f: impl FnMut()) -> Sample {
    let s = bench(name, runs, f);
    println!("{}", s.report());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn bench_counts_runs_and_orders_spread() {
        let s = bench("noop", 5, || 1 + 1);
        assert_eq!(s.runs, 5);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        // 1..=100: the linear estimator interpolates between order
        // statistics, so the landmarks are exact by hand.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(xs.clone(), 0.0), 1.0);
        assert_eq!(percentile(xs.clone(), 100.0), 100.0);
        assert!((percentile(xs.clone(), 50.0) - 50.5).abs() < 1e-12);
        assert!((percentile(xs.clone(), 95.0) - 95.05).abs() < 1e-12);
        assert!((percentile(xs.clone(), 99.0) - 99.01).abs() < 1e-12);
        // Order independence: shuffle-ish reversal sorts internally.
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        assert_eq!(percentile(rev, 95.0), percentile(xs, 95.0));
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(vec![3.0, 1.0], 150.0), 3.0);
        assert_eq!(percentile(vec![3.0, 1.0], -5.0), 1.0);
        // Single sample: every percentile is that sample.
        assert_eq!(percentile(vec![7.0], 99.0), 7.0);
    }

    #[test]
    fn sample_percentile_matches_free_function() {
        let s = Sample::from_samples("t", (1..=100).map(f64::from).collect());
        assert!((s.percentile(99.0) - 99.01).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.runs, 100);
    }

    #[test]
    fn formatting_picks_units() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
