//! Dependency-free micro-benchmark harness: `std::time::Instant` sampling
//! with median-of-N reporting.
//!
//! The `benches/` targets are plain `fn main()` binaries (`harness =
//! false`) built on this module. The protocol per benchmark: a couple of
//! warmup runs, then `n` timed runs, reporting the median (robust against
//! scheduler noise in a shared CI box) plus the min/max spread.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's timing summary, in seconds.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Median over the timed runs.
    pub median: f64,
    /// Fastest run.
    pub min: f64,
    /// Slowest run.
    pub max: f64,
    /// Number of timed runs.
    pub runs: usize,
}

impl Sample {
    /// One-line human-readable report.
    pub fn report(&self) -> String {
        format!(
            "{:<44} median {:>12} (min {}, max {}, n={})",
            self.name,
            fmt_secs(self.median),
            fmt_secs(self.min),
            fmt_secs(self.max),
            self.runs
        )
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Median of a sample set (mean of the middle pair for even sizes).
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "no samples");
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// Time `f` once, returning seconds. The result is passed through
/// [`black_box`] so the work cannot be optimized away.
pub fn time_once<R>(f: impl FnOnce() -> R) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

/// Run `f` `runs` times (after 2 warmups) and summarize.
pub fn bench<R>(name: &str, runs: usize, mut f: impl FnMut() -> R) -> Sample {
    assert!(runs >= 1);
    for _ in 0..2 {
        black_box(f());
    }
    let samples: Vec<f64> = (0..runs).map(|_| time_once(&mut f)).collect();
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Sample {
        name: name.to_string(),
        median: median(samples),
        min,
        max,
        runs,
    }
}

/// Run and print a benchmark; returns the sample for further use.
pub fn run(name: &str, runs: usize, f: impl FnMut() -> ()) -> Sample {
    let s = bench(name, runs, f);
    println!("{}", s.report());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn bench_counts_runs_and_orders_spread() {
        let s = bench("noop", 5, || 1 + 1);
        assert_eq!(s.runs, 5);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    fn formatting_picks_units() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" µs"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
