//! One submodule per paper figure (DESIGN.md §4 maps them).

pub mod ablations;
pub mod chaos;
pub mod cluster_bench;
pub mod convergence;
pub mod dynamic;
pub mod enhanced;
pub mod exec_validate;
pub mod mem_bench;
pub mod motivation;
pub mod multi_job;
pub mod overhead;
pub mod pipeline_fill;
pub mod serve_bench;
pub mod static_alloc;
