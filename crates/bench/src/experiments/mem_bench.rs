//! `repro mem-bench` — memory-aware planning on rich vs starved clusters.
//!
//! The drill prices a BERT-48 pipeline (4 stages, 1 GPU each) with the
//! [`ap_mem`] planning model and sweeps per-GPU memory capacity from
//! comfortably rich down to hopeless, asking [`ap_mem::fit_schedule`] to
//! fit a deep PipeDream-async request at every point. The ladder is
//! self-calibrating — rungs are placed relative to the model's own
//! requirements — so the expected flips are structural, not tuned:
//!
//! * **rich** (above the deep-async requirement): the request is kept
//!   verbatim — deep weight stashing is the throughput-optimal choice
//!   when memory is free.
//! * **mid** (between the depth-1 and deep requirement): same schedule,
//!   clamped to a shallower in-flight depth.
//! * **starved** (below even depth-1 async): the stash cannot fit at any
//!   depth, so the planner *switches schedule* to a flatter-memory
//!   alternative (GPipe's recompute discard or 2BW's two flat versions).
//! * **hopeless** (below half the flattest schedule's floor): nothing
//!   fits and the planner says so instead of emitting an OOM plan.
//!
//! Real GPU tiers (A100/V100/P100) ride along as ungated reference rows.
//! Everything is closed-form arithmetic — no wall clocks, no threads — so
//! the report is byte-identical across runs and `AP_PAR_THREADS`.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{ClusterState, ClusterTopology, GpuId};
use ap_mem::{check, fit_schedule, footprint, MemoryModel};
use ap_models::{bert48, ModelProfile};
use ap_pipesim::{AnalyticModel, Framework, Partition, ScheduleKind, SyncScheme};
use ap_planner::uniform_plan;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
const N_STAGES: usize = 4;
const BATCH: usize = 32;
const LINK_GBPS: f64 = 25.0;
/// The (deliberately deep) stash depth every cell requests.
const REQUESTED_IN_FLIGHT: usize = 8;

/// One stage's modeled demand vs the capacity it landed on.
#[derive(Debug, Clone)]
pub struct StageMemRow {
    pub stage: usize,
    pub required_gb: f64,
    pub capacity_gb: f64,
    pub fits: bool,
}

/// One capacity rung of the sweep.
#[derive(Debug, Clone)]
pub struct MemBenchCell {
    /// Rung label (`rich`, `mid`, `starved`, `hopeless`, or a GPU tier).
    pub cluster: String,
    /// Uniform per-GPU capacity at this rung, GiB.
    pub capacity_gb: f64,
    /// Whether any (schedule, depth) fits.
    pub feasible: bool,
    /// Winning schedule id (`-` when infeasible).
    pub chosen: String,
    /// Winning in-flight depth (0 when infeasible).
    pub in_flight: usize,
    /// True when the requested schedule had to be abandoned to fit.
    pub switched: bool,
    /// Analytic throughput of the winning config, samples/s.
    pub predicted: f64,
    /// Worst per-stage overshoot of the *requested* config at this rung,
    /// GiB (why the clamp/switch happened; 0 when the request fits).
    pub requested_deficit_gb: f64,
    /// The winning config's per-stage demand vs capacity (the requested
    /// config's, when nothing fits).
    pub stages: Vec<StageMemRow>,
}

/// The whole sweep plus the gates `repro` enforces.
#[derive(Debug, Clone)]
pub struct MemBenchResult {
    pub mode: String,
    pub model: String,
    pub batch: usize,
    pub n_stages: usize,
    pub requested: String,
    pub requested_in_flight: usize,
    pub cells: Vec<MemBenchCell>,
}

impl MemBenchResult {
    fn cell(&self, name: &str) -> Option<&MemBenchCell> {
        self.cells.iter().find(|c| c.cluster == name)
    }

    /// Every gate of the experiment:
    /// * no feasible cell places a stage over its device capacity;
    /// * `rich` keeps the requested schedule at the requested depth;
    /// * `mid` keeps the schedule but clamps the depth;
    /// * `starved` switches schedule (and still fits);
    /// * `hopeless` is reported infeasible rather than over-packed;
    /// * the schedule choice actually flips across the ladder.
    pub fn all_ok(&self) -> bool {
        let stages_fit = self
            .cells
            .iter()
            .filter(|c| c.feasible)
            .all(|c| c.stages.iter().all(|s| s.fits) && c.predicted > 0.0);
        let (Some(rich), Some(mid), Some(starved), Some(hopeless)) = (
            self.cell("rich"),
            self.cell("mid"),
            self.cell("starved"),
            self.cell("hopeless"),
        ) else {
            return false;
        };
        stages_fit
            && rich.feasible
            && !rich.switched
            && rich.in_flight == self.requested_in_flight
            && mid.feasible
            && !mid.switched
            && mid.in_flight < self.requested_in_flight
            && starved.feasible
            && starved.switched
            && !hopeless.feasible
            && rich.chosen != starved.chosen
    }
}

fn topology() -> ClusterTopology {
    ClusterTopology::single_switch(N_STAGES, 1, GpuKind::A100, LINK_GBPS)
}

/// Worst per-stage per-worker requirement of `kind` at `in_flight`, bytes.
fn peak_requirement(profile: &ModelProfile, partition: &Partition, kind: ScheduleKind) -> f64 {
    footprint(profile, partition, kind, &MemoryModel::default())
        .iter()
        .zip(&partition.stages)
        .map(|(f, st)| f.per_worker(st.workers.len()))
        .fold(0.0, f64::max)
}

fn run_cell(
    label: &str,
    capacity_bytes: f64,
    profile: &ModelProfile,
    partition: &Partition,
) -> MemBenchCell {
    let mut topo = topology();
    topo.set_uniform_memory_bytes(capacity_bytes);
    let state = ClusterState::new(topo);
    let model = MemoryModel::default();
    let score = |kind: ScheduleKind, n: usize| {
        let mut p = partition.clone();
        p.in_flight = n;
        AnalyticModel {
            profile,
            scheme: SyncScheme::RingAllReduce,
            framework: Framework::pytorch(),
            schedule: kind,
            calibration: None,
        }
        .throughput(&p, &state)
    };
    let requested = check(
        profile,
        partition,
        ScheduleKind::PipeDreamAsync,
        &model,
        &state,
    );
    let outcome = fit_schedule(
        profile,
        partition,
        ScheduleKind::PipeDreamAsync,
        &model,
        &state,
        &score,
    );
    let (feasible, chosen, in_flight, switched, predicted, mem) = match outcome {
        Some(o) => (
            true,
            o.kind.id().to_string(),
            o.in_flight,
            o.switched,
            score(o.kind, o.in_flight),
            o.check,
        ),
        None => (false, "-".to_string(), 0, false, 0.0, requested.clone()),
    };
    MemBenchCell {
        cluster: label.to_string(),
        capacity_gb: capacity_bytes / GIB,
        feasible,
        chosen,
        in_flight,
        switched,
        predicted,
        requested_deficit_gb: requested.worst_deficit() / GIB,
        stages: mem
            .stages
            .iter()
            .map(|s| StageMemRow {
                stage: s.stage,
                required_gb: s.required / GIB,
                capacity_gb: s.capacity / GIB,
                fits: s.fits(),
            })
            .collect(),
    }
}

/// Run the sweep. `smoke` only changes the reported mode string — the
/// computation is closed-form and already deterministic.
pub fn run(smoke: bool) -> MemBenchResult {
    let profile = ModelProfile::with_batch(&bert48(), BATCH);
    let gpus: Vec<GpuId> = (0..topology().n_gpus()).map(GpuId).collect();
    let mut partition = uniform_plan(&profile, N_STAGES, &gpus);
    partition.in_flight = REQUESTED_IN_FLIGHT;

    // Self-calibrating rungs: placed relative to the model's own needs so
    // the expected flips are structural, not tuned constants.
    let deep = peak_requirement(&profile, &partition, ScheduleKind::PipeDreamAsync);
    let shallow = {
        let mut p = partition.clone();
        p.in_flight = 1;
        peak_requirement(&profile, &p, ScheduleKind::PipeDreamAsync)
    };
    let floor = {
        let mut p = partition.clone();
        p.in_flight = 1;
        ScheduleKind::zoo()
            .into_iter()
            .map(|k| peak_requirement(&profile, &p, k))
            .fold(f64::INFINITY, f64::min)
    };
    let ladder: Vec<(String, f64)> = vec![
        ("rich".into(), deep * 1.10),
        ("mid".into(), (shallow + deep) / 2.0),
        ("starved".into(), shallow * 0.98),
        ("hopeless".into(), floor * 0.50),
        ("a100-40g".into(), GpuKind::A100.memory_bytes()),
        ("v100-32g".into(), GpuKind::V100.memory_bytes()),
        ("p100-16g".into(), GpuKind::P100.memory_bytes()),
    ];
    let cells = ladder
        .iter()
        .map(|(label, cap)| run_cell(label, *cap, &profile, &partition))
        .collect();
    MemBenchResult {
        mode: if smoke { "smoke" } else { "full" }.into(),
        model: profile.name.clone(),
        batch: BATCH,
        n_stages: N_STAGES,
        requested: ScheduleKind::PipeDreamAsync.id().to_string(),
        requested_in_flight: REQUESTED_IN_FLIGHT,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_upholds_every_gate() {
        let r = run(true);
        assert_eq!(r.cells.len(), 7);
        assert!(r.all_ok(), "gates violated: {r:#?}");
    }

    #[test]
    fn schedule_choice_flips_with_capacity() {
        let r = run(true);
        let rich = r.cells.iter().find(|c| c.cluster == "rich").unwrap();
        let starved = r.cells.iter().find(|c| c.cluster == "starved").unwrap();
        assert_eq!(rich.chosen, "pipedream_async");
        assert_ne!(starved.chosen, "pipedream_async");
        assert!(starved.requested_deficit_gb > 0.0);
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let a = format!("{:?}", run(true));
        let b = format!("{:?}", run(true));
        assert_eq!(a, b);
    }
}
