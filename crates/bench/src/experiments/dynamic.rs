//! Figures 9 and 10: dynamic resource allocation (§5.3).
//!
//! ResNet50 with Ring All-reduce on PyTorch. Figure 9 steps the bandwidth
//! 10 → 25 → 40 → 100 Gbps at iterations 20/40/60; Figure 10 adds a local
//! training job at iterations 20 and 40. PipeDream keeps its initial
//! partition; AutoPipe re-configures through its controller (meta-scored
//! two-worker moves + RL arbiter + fine-grained switching).

use ap_cluster::dynamics::BgJobId;
use ap_cluster::{ClusterTopology, EventKind, GpuId, ResourceTimeline};
use ap_models::{resnet50, ModelProfile};
use ap_pipesim::{Engine, EngineConfig};
use autopipe::arbiter::{default_episode_sampler, Arbiter, ArbiterMode};
use autopipe::controller::{run_dynamic_scenario, AutoPipeConfig, AutoPipeController, Scorer};

use crate::setup::{paper_pipedream_plan, ExperimentEnv};

/// Both systems' speed curves for one dynamic scenario.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// `(iteration, samples/sec)` for AutoPipe.
    pub autopipe: Vec<(u64, f64)>,
    /// `(iteration, samples/sec)` for static PipeDream.
    pub pipedream: Vec<(u64, f64)>,
    /// AutoPipe switches `(iteration, pause_seconds)`.
    pub switches: Vec<(u64, f64)>,
    /// Mean throughputs (AutoPipe, PipeDream).
    pub mean: (f64, f64),
}

/// Map "change at iteration K" onto wall-clock times by pre-running the
/// static baseline and reading iteration K's completion time.
fn iteration_times(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    env: &ExperimentEnv,
    plan: &ap_pipesim::Partition,
    marks: &[usize],
) -> Vec<f64> {
    let engine = Engine::new(
        profile,
        plan.clone(),
        ap_cluster::ClusterState::new(topo.clone()),
        ResourceTimeline::empty(),
        EngineConfig {
            scheme: env.scheme,
            framework: env.framework,
            schedule: env.schedule,
            record_timeline: false,
        },
    );
    let r = engine.run(marks.iter().copied().max().unwrap_or(1) + 1);
    marks
        .iter()
        .map(|&k| r.iterations[k.min(r.iterations.len() - 1)].finish)
        .collect()
}

/// A trained controller + config for the dynamic experiments.
fn controller_config(env: &ExperimentEnv) -> AutoPipeConfig {
    AutoPipeConfig {
        scheme: env.scheme,
        framework: env.framework,
        schedule: env.schedule,
        check_every: 6,
        horizon_iterations: 60.0,
        detector: ap_cluster::DetectorConfig {
            threshold: 0.12,
            persistence: 1,
        },
        switch_mode: autopipe::SwitchMode::FineGrained,
        profiler_noise: 0.01,
        moves_per_decision: 4,
        seed: 5,
    }
}

/// Run one dynamic scenario for both systems.
pub fn run_scenario(
    profile: &ModelProfile,
    timeline: &ResourceTimeline,
    env: &ExperimentEnv,
    n_iterations: usize,
) -> DynamicResult {
    let topo = ClusterTopology::paper_testbed(env.link_gbps);
    let init = paper_pipedream_plan(profile, env.link_gbps, topo.n_gpus());
    let cfg = controller_config(env);

    let pd = run_dynamic_scenario(
        profile,
        &topo,
        timeline,
        init.clone(),
        None,
        &cfg,
        n_iterations,
    );

    let mut arbiter = Arbiter::new(17);
    arbiter.train_offline(default_episode_sampler, 4000, 29);
    let mut ctrl = AutoPipeController::new(
        profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Rl(arbiter),
        cfg.clone(),
    );
    let ap = run_dynamic_scenario(
        profile,
        &topo,
        timeline,
        init,
        Some(&mut ctrl),
        &cfg,
        n_iterations,
    );

    DynamicResult {
        mean: (ap.mean_throughput, pd.mean_throughput),
        autopipe: ap.speed_series,
        pipedream: pd.speed_series,
        switches: ap.switches,
    }
}

/// Figure 9: the bandwidth staircase.
pub fn fig9(n_iterations: usize) -> DynamicResult {
    let profile = ModelProfile::of(&resnet50());
    let env = ExperimentEnv::default_at(10.0);
    let topo = ClusterTopology::paper_testbed(10.0);
    let init = paper_pipedream_plan(&profile, 10.0, topo.n_gpus());
    let times = iteration_times(&profile, &topo, &env, &init, &[20, 40, 60]);
    let mut tl = ResourceTimeline::empty();
    for (t, g) in times.iter().zip([25.0, 40.0, 100.0]) {
        tl.push(*t, EventKind::SetAllLinksGbps(g));
    }
    run_scenario(&profile, &tl, &env, n_iterations)
}

/// Figure 10: local jobs join at iterations 20 and 40.
pub fn fig10(n_iterations: usize) -> DynamicResult {
    let profile = ModelProfile::of(&resnet50());
    let env = ExperimentEnv::default_at(25.0);
    let topo = ClusterTopology::paper_testbed(25.0);
    let init = paper_pipedream_plan(&profile, 25.0, topo.n_gpus());
    let times = iteration_times(&profile, &topo, &env, &init, &[20, 40]);
    // "we simulate the change of computation resources (GPU) by adding new
    // local training jobs" — each lands on half the GPUs.
    let first: Vec<GpuId> = (0..topo.n_gpus() / 2).map(GpuId).collect();
    let second: Vec<GpuId> = (topo.n_gpus() / 2..topo.n_gpus()).map(GpuId).collect();
    let mut tl = ResourceTimeline::empty();
    tl.push(
        times[0],
        EventKind::JobArrive {
            id: BgJobId(21),
            gpus: first,
            net_bytes_per_sec: 0.0,
        },
    );
    tl.push(
        times[1],
        EventKind::JobArrive {
            id: BgJobId(22),
            gpus: second,
            net_bytes_per_sec: 0.0,
        },
    );
    run_scenario(&profile, &tl, &env, n_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_autopipe_keeps_the_lead() {
        let r = fig9(60);
        assert!(
            r.mean.0 >= r.mean.1 * 0.97,
            "AutoPipe mean {} must be at least PipeDream's {}",
            r.mean.0,
            r.mean.1
        );
        assert!(!r.autopipe.is_empty() && !r.pipedream.is_empty());
    }

    #[test]
    fn fig10_contention_slows_pipedream_more() {
        let r = fig10(55);
        // After both jobs land, the static plan runs on contended GPUs;
        // AutoPipe may rebalance. At minimum it never loses.
        assert!(r.mean.0 >= r.mean.1 * 0.95, "{:?}", r.mean);
        // Speed after iteration 45 must be below speed before 15 for the
        // static system (contention bites).
        let before: Vec<f64> = r
            .pipedream
            .iter()
            .filter(|&&(i, _)| i < 15)
            .map(|&(_, s)| s)
            .collect();
        let after: Vec<f64> = r
            .pipedream
            .iter()
            .filter(|&&(i, _)| i > 45)
            .map(|&(_, s)| s)
            .collect();
        let mb = before.iter().sum::<f64>() / before.len().max(1) as f64;
        let ma = after.iter().sum::<f64>() / after.len().max(1) as f64;
        assert!(ma < mb, "contention must slow the static plan: {mb} -> {ma}");
    }
}
