//! Figures 9 and 10: dynamic resource allocation (§5.3).
//!
//! ResNet50 with Ring All-reduce on PyTorch. Figure 9 steps the bandwidth
//! 10 → 25 → 40 → 100 Gbps at iterations 20/40/60; Figure 10 adds a local
//! training job at iterations 20 and 40. PipeDream keeps its initial
//! partition; AutoPipe re-configures through its controller (meta-scored
//! two-worker moves + RL arbiter + fine-grained switching).

use ap_cluster::dynamics::BgJobId;
use ap_cluster::{ClusterTopology, EventKind, GpuId, ResourceTimeline};
use ap_models::{resnet50, ModelProfile};
use ap_pipesim::{to_chrome_trace_with_events, Engine, EngineConfig};
use autopipe::arbiter::{default_episode_sampler, Arbiter, ArbiterMode};
use autopipe::controller::{
    run_dynamic_scenario, run_dynamic_scenario_traced, AutoPipeConfig, AutoPipeController, Scorer,
};
use autopipe::DecisionJournal;

use crate::setup::{paper_pipedream_plan, ExperimentEnv};

/// Both systems' speed curves for one dynamic scenario.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// `(iteration, samples/sec)` for AutoPipe.
    pub autopipe: Vec<(u64, f64)>,
    /// `(iteration, samples/sec)` for static PipeDream.
    pub pipedream: Vec<(u64, f64)>,
    /// AutoPipe switches `(iteration, pause_seconds)`.
    pub switches: Vec<(u64, f64)>,
    /// Mean throughputs (AutoPipe, PipeDream).
    pub mean: (f64, f64),
}

/// Map "change at iteration K" onto wall-clock times by pre-running the
/// static baseline and reading iteration K's completion time.
fn iteration_times(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    env: &ExperimentEnv,
    plan: &ap_pipesim::Partition,
    marks: &[usize],
) -> Vec<f64> {
    let engine = Engine::new(
        profile,
        plan.clone(),
        ap_cluster::ClusterState::new(topo.clone()),
        ResourceTimeline::empty(),
        EngineConfig {
            scheme: env.scheme,
            framework: env.framework,
            schedule: env.schedule,
            record_timeline: false,
            calibration: None,
        },
    )
    .expect("valid baseline plan");
    let r = engine
        .run(marks.iter().copied().max().unwrap_or(1) + 1)
        .expect("baseline pre-run");
    marks
        .iter()
        .map(|&k| r.iterations[k.min(r.iterations.len() - 1)].finish)
        .collect()
}

/// A trained controller + config for the dynamic experiments.
fn controller_config(env: &ExperimentEnv) -> AutoPipeConfig {
    AutoPipeConfig {
        scheme: env.scheme,
        framework: env.framework,
        schedule: env.schedule,
        check_every: 6,
        horizon_iterations: 60.0,
        detector: ap_cluster::DetectorConfig {
            threshold: 0.12,
            persistence: 1,
        },
        switch_mode: autopipe::SwitchMode::FineGrained,
        profiler_noise: 0.01,
        moves_per_decision: 4,
        seed: 5,
        ..AutoPipeConfig::default()
    }
}

/// Run one dynamic scenario for both systems.
pub fn run_scenario(
    profile: &ModelProfile,
    timeline: &ResourceTimeline,
    env: &ExperimentEnv,
    n_iterations: usize,
) -> DynamicResult {
    let topo = ClusterTopology::paper_testbed(env.link_gbps);
    let init = paper_pipedream_plan(profile, env.link_gbps, topo.n_gpus());
    let cfg = controller_config(env);

    let pd = run_dynamic_scenario(
        profile,
        &topo,
        timeline,
        init.clone(),
        None,
        &cfg,
        n_iterations,
    )
    .expect("static baseline scenario");

    let mut arbiter = Arbiter::new(17);
    arbiter.train_offline(default_episode_sampler, 4000, 29);
    let mut ctrl = AutoPipeController::new(
        profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Rl(arbiter),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let ap = run_dynamic_scenario(
        profile,
        &topo,
        timeline,
        init,
        Some(&mut ctrl),
        &cfg,
        n_iterations,
    )
    .expect("autopipe scenario");

    DynamicResult {
        mean: (ap.mean_throughput, pd.mean_throughput),
        autopipe: ap.speed_series,
        pipedream: pd.speed_series,
        switches: ap.switches,
    }
}

/// The AutoPipe arm of a scenario re-run with the engine timeline
/// recorded, yielding one merged chrome trace of compute segments and
/// controller decisions plus the decision journal itself.
#[derive(Debug, Clone)]
pub struct DynamicTrace {
    /// Trace Event Format JSON: worker rows + a "controller" decision lane.
    pub chrome_trace: String,
    /// The controller's decision journal for the run.
    pub journal: DecisionJournal,
}

/// Re-run the AutoPipe arm of a scenario with `record_timeline` on and
/// merge the decision journal into the engine's chrome trace. Uses the
/// same plan, arbiter training and controller configuration as
/// [`run_scenario`], so the decisions mirror the figure run.
pub fn run_scenario_traced(
    profile: &ModelProfile,
    timeline: &ResourceTimeline,
    env: &ExperimentEnv,
    n_iterations: usize,
    name: &str,
) -> DynamicTrace {
    let topo = ClusterTopology::paper_testbed(env.link_gbps);
    let init = paper_pipedream_plan(profile, env.link_gbps, topo.n_gpus());
    let cfg = controller_config(env);
    let mut arbiter = Arbiter::new(17);
    arbiter.train_offline(default_episode_sampler, 4000, 29);
    let mut ctrl = AutoPipeController::new(
        profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Rl(arbiter),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let (scenario, sim) = run_dynamic_scenario_traced(
        profile,
        &topo,
        timeline,
        init,
        Some(&mut ctrl),
        &cfg,
        n_iterations,
    )
    .expect("traced autopipe scenario");
    let events = scenario.journal.to_trace_events();
    DynamicTrace {
        chrome_trace: to_chrome_trace_with_events(&sim, name, "controller", &events),
        journal: scenario.journal,
    }
}

/// Figure 9's inputs: profile, environment, and the bandwidth-staircase
/// timeline anchored to baseline iteration times.
fn fig9_inputs() -> (ModelProfile, ExperimentEnv, ResourceTimeline) {
    let profile = ModelProfile::of(&resnet50());
    let env = ExperimentEnv::default_at(10.0);
    let topo = ClusterTopology::paper_testbed(10.0);
    let init = paper_pipedream_plan(&profile, 10.0, topo.n_gpus());
    let times = iteration_times(&profile, &topo, &env, &init, &[20, 40, 60]);
    let mut tl = ResourceTimeline::empty();
    for (t, g) in times.iter().zip([25.0, 40.0, 100.0]) {
        tl.push(*t, EventKind::SetAllLinksGbps(g));
    }
    (profile, env, tl)
}

/// Figure 10's inputs: local jobs joining at iterations 20 and 40.
fn fig10_inputs() -> (ModelProfile, ExperimentEnv, ResourceTimeline) {
    let profile = ModelProfile::of(&resnet50());
    let env = ExperimentEnv::default_at(25.0);
    let topo = ClusterTopology::paper_testbed(25.0);
    let init = paper_pipedream_plan(&profile, 25.0, topo.n_gpus());
    let times = iteration_times(&profile, &topo, &env, &init, &[20, 40]);
    // "we simulate the change of computation resources (GPU) by adding new
    // local training jobs" — each lands on half the GPUs.
    let first: Vec<GpuId> = (0..topo.n_gpus() / 2).map(GpuId).collect();
    let second: Vec<GpuId> = (topo.n_gpus() / 2..topo.n_gpus()).map(GpuId).collect();
    let mut tl = ResourceTimeline::empty();
    tl.push(
        times[0],
        EventKind::JobArrive {
            id: BgJobId(21),
            gpus: first,
            net_bytes_per_sec: 0.0,
        },
    );
    tl.push(
        times[1],
        EventKind::JobArrive {
            id: BgJobId(22),
            gpus: second,
            net_bytes_per_sec: 0.0,
        },
    );
    (profile, env, tl)
}

/// Figure 9: the bandwidth staircase.
pub fn fig9(n_iterations: usize) -> DynamicResult {
    let (profile, env, tl) = fig9_inputs();
    run_scenario(&profile, &tl, &env, n_iterations)
}

/// Figure 9's AutoPipe arm as a merged decision/compute chrome trace.
pub fn fig9_trace(n_iterations: usize) -> DynamicTrace {
    let (profile, env, tl) = fig9_inputs();
    run_scenario_traced(&profile, &tl, &env, n_iterations, "fig9 autopipe")
}

/// Figure 10: local jobs join at iterations 20 and 40.
pub fn fig10(n_iterations: usize) -> DynamicResult {
    let (profile, env, tl) = fig10_inputs();
    run_scenario(&profile, &tl, &env, n_iterations)
}

/// Figure 10's AutoPipe arm as a merged decision/compute chrome trace.
pub fn fig10_trace(n_iterations: usize) -> DynamicTrace {
    let (profile, env, tl) = fig10_inputs();
    run_scenario_traced(&profile, &tl, &env, n_iterations, "fig10 autopipe")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_autopipe_keeps_the_lead() {
        let r = fig9(60);
        assert!(
            r.mean.0 >= r.mean.1 * 0.97,
            "AutoPipe mean {} must be at least PipeDream's {}",
            r.mean.0,
            r.mean.1
        );
        assert!(!r.autopipe.is_empty() && !r.pipedream.is_empty());
    }

    #[test]
    fn fig10_contention_slows_pipedream_more() {
        let r = fig10(55);
        // After both jobs land, the static plan runs on contended GPUs;
        // AutoPipe may rebalance. At minimum it never loses.
        assert!(r.mean.0 >= r.mean.1 * 0.95, "{:?}", r.mean);
        // Speed after iteration 45 must be below speed before 15 for the
        // static system (contention bites).
        let before: Vec<f64> = r
            .pipedream
            .iter()
            .filter(|&&(i, _)| i < 15)
            .map(|&(_, s)| s)
            .collect();
        let after: Vec<f64> = r
            .pipedream
            .iter()
            .filter(|&&(i, _)| i > 45)
            .map(|&(_, s)| s)
            .collect();
        let mb = before.iter().sum::<f64>() / before.len().max(1) as f64;
        let ma = after.iter().sum::<f64>() / after.len().max(1) as f64;
        assert!(
            ma < mb,
            "contention must slow the static plan: {mb} -> {ma}"
        );
    }
}
