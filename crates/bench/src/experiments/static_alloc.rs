//! Figure 8: static resource allocation (§5.2).
//!
//! Three identical jobs share the testbed; we train ResNet50 / VGG16 /
//! AlexNet under {PS, Ring} x {TensorFlow, MXNet, PyTorch} x
//! {10, 25, 40, 100 Gbps} and compare the vanilla framework baseline
//! (pure data parallelism), PipeDream (one-shot DP plan with its
//! simplified view) and AutoPipe (environment-aware refinement).

use ap_models::ModelProfile;
use ap_pipesim::{Framework, SyncScheme};

use crate::setup::{
    baseline_plan, engine_throughput, image_models, paper_autopipe_plan, paper_pipedream_plan,
    shared_three_job_state, ExperimentEnv,
};

/// One bar triple of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Framework label.
    pub framework: String,
    /// Sync scheme label.
    pub scheme: String,
    /// Model name.
    pub model: String,
    /// Link speed in Gbps.
    pub gbps: f64,
    /// Vanilla framework (data parallelism), samples/sec.
    pub baseline: f64,
    /// PipeDream, samples/sec.
    pub pipedream: f64,
    /// AutoPipe, samples/sec.
    pub autopipe: f64,
}

impl Fig8Row {
    /// AutoPipe speedup over the baseline, percent.
    pub fn speedup_vs_baseline_pct(&self) -> f64 {
        (self.autopipe / self.baseline - 1.0) * 100.0
    }

    /// AutoPipe speedup over PipeDream, percent.
    pub fn speedup_vs_pipedream_pct(&self) -> f64 {
        (self.autopipe / self.pipedream - 1.0) * 100.0
    }
}

/// The (framework, scheme) panels of Figure 8, in the paper's order.
pub fn panels() -> Vec<(Framework, SyncScheme)> {
    vec![
        (Framework::tensorflow(), SyncScheme::ParameterServer),
        (Framework::mxnet(), SyncScheme::ParameterServer),
        (Framework::pytorch(), SyncScheme::RingAllReduce),
    ]
}

/// Measure one cell of Figure 8.
pub fn measure_cell(
    model: &ap_models::ModelDesc,
    framework: Framework,
    scheme: SyncScheme,
    gbps: f64,
    iterations: usize,
) -> Fig8Row {
    let profile = ModelProfile::of(model);
    let env = ExperimentEnv {
        link_gbps: gbps,
        scheme,
        framework,
        schedule: ap_pipesim::ScheduleKind::PipeDreamAsync,
    };
    let state = shared_three_job_state(gbps);
    let n = state.topology.n_gpus();
    let base = baseline_plan(&profile, n);
    let pd = paper_pipedream_plan(&profile, gbps, n);
    let ap = paper_autopipe_plan(&profile, &env, &state);
    // The vanilla-framework baseline is *synchronous* data parallelism:
    // every GPU computes its shard of the mini-batch, then the whole job
    // blocks on the gradient synchronization (PS or ring).
    let base_env = ExperimentEnv {
        schedule: ap_pipesim::ScheduleKind::Dapple { micro_batches: n },
        ..env
    };
    Fig8Row {
        framework: framework.name.to_string(),
        scheme: scheme.label().to_string(),
        model: model.name.clone(),
        gbps,
        baseline: engine_throughput(&profile, &base, &state, &base_env, iterations),
        pipedream: engine_throughput(&profile, &pd, &state, &env, iterations),
        autopipe: engine_throughput(&profile, &ap, &state, &env, iterations),
    }
}

/// The whole figure: 3 panels x 3 models x 4 bandwidths.
pub fn full_grid(iterations: usize) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for (fw, scheme) in panels() {
        for model in image_models() {
            for gbps in [10.0, 25.0, 40.0, 100.0] {
                rows.push(measure_cell(&model, fw, scheme, gbps, iterations));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_models::resnet50;

    #[test]
    fn autopipe_wins_the_headline_cell() {
        // ResNet50 / PS / TensorFlow — the paper's strongest case.
        let row = measure_cell(
            &resnet50(),
            Framework::tensorflow(),
            SyncScheme::ParameterServer,
            25.0,
            14,
        );
        assert!(
            row.autopipe >= row.pipedream * 0.98,
            "AutoPipe {} must not lose to PipeDream {}",
            row.autopipe,
            row.pipedream
        );
        assert!(
            row.autopipe > row.baseline,
            "AutoPipe {} must beat the DP baseline {}",
            row.autopipe,
            row.baseline
        );
    }

    #[test]
    fn pipeline_beats_pure_data_parallelism_at_low_bandwidth() {
        // At 10 Gbps, data-parallel all-reduce of VGG16's 138M params is
        // ruinous; both pipeline systems must win clearly.
        let row = measure_cell(
            &ap_models::vgg16(),
            Framework::pytorch(),
            SyncScheme::RingAllReduce,
            10.0,
            14,
        );
        assert!(row.pipedream > row.baseline, "{row:?}");
        assert!(row.autopipe > row.baseline, "{row:?}");
    }
}
