//! `repro serve-bench` — an in-process load generator for the `ap-serve`
//! daemon, over real sockets.
//!
//! Spawns the daemon on an ephemeral loopback port and drives every
//! endpoint through [`ap_serve::client::Client`]: functional checks
//! (plan, cache hit, invalidation, simulate, malformed input), a
//! single-connection latency sweep, a fixed-concurrency throughput sweep
//! on the cached plan path, a 4x-admission-capacity overload burst
//! against a one-worker daemon (shed clients honor the computed
//! `Retry-After` via [`ap_resilience::Retry`] and recover), a graceful
//! shutdown, and a degraded-operation drill: induced verification
//! failures trip the circuit breaker, `/plan` keeps answering 200 with
//! `"degraded": true`, and the half-open probe closes the breaker again.
//!
//! Two modes share the code path:
//!
//! * **full** — real measurements; `repro serve-bench` exports
//!   `BENCH_serve.json` (latency percentiles, throughput, cache speedup).
//! * **`--smoke`** — the same checks gated for CI with every wall-clock
//!   reading reported as zero (fixed-clock reporting) and racy overload
//!   tallies reduced to their boolean verdicts, so the emitted JSON is
//!   byte-identical across runs and `AP_PAR_THREADS` settings.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ap_json::{Json, ToJson};
use ap_resilience::{Retry, RetryConfig, SystemClock};
use ap_serve::client::Client;
use ap_serve::{spawn, ResilienceConfig, ServeConfig};

use crate::timing::percentile;

/// One pass/fail probe of the daemon.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// What was probed.
    pub name: String,
    /// Short outcome description (deterministic in smoke mode).
    pub status: String,
    /// Whether the probe passed.
    pub ok: bool,
}

/// The `/plan` cold-vs-cached story.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Model planned.
    pub model: String,
    /// Chosen partition, summary form.
    pub partition: String,
    /// The analytic scorer's throughput prediction, samples/sec.
    pub predicted_throughput: f64,
    /// Wall seconds for the cold plan (0 in smoke).
    pub cold_seconds: f64,
    /// Median wall seconds for a cached plan (0 in smoke).
    pub cached_seconds: f64,
    /// `cold / cached` (0 in smoke).
    pub cache_speedup: f64,
}

/// Single-connection latency for one endpoint.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Endpoint label.
    pub endpoint: String,
    /// Requests timed.
    pub requests: usize,
    /// Median latency, ms (0 in smoke).
    pub p50_ms: f64,
    /// 95th percentile, ms (0 in smoke).
    pub p95_ms: f64,
    /// 99th percentile, ms (0 in smoke).
    pub p99_ms: f64,
}

/// Sustained cached-plan throughput at one concurrency level.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Requests per second (0 in smoke).
    pub req_per_sec: f64,
    /// Median per-request latency, ms (0 in smoke).
    pub p50_ms: f64,
    /// 95th percentile, ms (0 in smoke).
    pub p95_ms: f64,
    /// 99th percentile, ms (0 in smoke).
    pub p99_ms: f64,
    /// Cache hit rate over the phase (prewarmed, so 1.0 when healthy).
    pub cache_hit_rate: f64,
}

/// What the 4x-capacity burst did to a one-worker daemon.
#[derive(Debug, Clone)]
pub struct OverloadSummary {
    /// Connections offered at once.
    pub offered_connections: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Connections shed with 503 (0 in smoke — racy tally).
    pub shed_503: u64,
    /// Connections served with 200 (0 in smoke — racy tally).
    pub served_200: u64,
    /// Every 503 carried `Retry-After`.
    pub got_retry_after: bool,
    /// Peak admission-queue depth observed (0 in smoke).
    pub peak_queue_depth: usize,
    /// Peak depth never exceeded the configured bound.
    pub depth_within_bound: bool,
    /// Shed clients that came back after honoring `Retry-After` and got a
    /// 200 (0 in smoke — racy tally).
    pub recovered_after_hint: u64,
    /// Every shed client recovered within its retry budget.
    pub all_shed_recovered: bool,
}

/// The degraded-operation drill against a tight-breaker daemon.
#[derive(Debug, Clone)]
pub struct DegradedSummary {
    /// Zero-budget (`deadline_ms: 0`) requests used to trip the breaker.
    pub induced_failures: usize,
    /// Responses degraded `deadline-exhausted` (equals `induced_failures`
    /// when healthy).
    pub degraded_deadline: u64,
    /// Responses degraded `breaker-open` while the breaker cooled down.
    pub degraded_breaker_open: u64,
    /// `/metrics` showed `ap_breaker_state 1` after the induced failures.
    pub breaker_opened: bool,
    /// The first request past the cooldown rode the half-open probe,
    /// verified fine, and closed the breaker again.
    pub breaker_recovered: bool,
    /// p99 of the degraded answers, ms (0 in smoke) — degrading must be
    /// cheap, that is the point.
    pub degraded_p99_ms: f64,
    /// A zero-capacity plan bulkhead shed with `503 + Retry-After` while
    /// `/simulate` kept working.
    pub bulkhead_shed: bool,
}

/// The full serve-bench outcome.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Worker threads the main daemon ran.
    pub workers: usize,
    /// Its admission bound.
    pub queue_capacity: usize,
    /// Its plan-cache capacity.
    pub cache_capacity: usize,
    /// Functional probes, in execution order.
    pub checks: Vec<CheckRow>,
    /// Cold-vs-cached plan economics.
    pub plan: PlanSummary,
    /// Per-endpoint latency.
    pub latency: Vec<LatencyRow>,
    /// Cached-plan throughput by concurrency.
    pub throughput: Vec<ThroughputRow>,
    /// The overload burst.
    pub overload: OverloadSummary,
    /// The breaker/degradation drill.
    pub degraded: DegradedSummary,
}

impl ServeBenchResult {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

fn check(name: &str, ok: bool, status: impl Into<String>) -> CheckRow {
    CheckRow {
        name: name.to_string(),
        status: status.into(),
        ok,
    }
}

/// The canonical bench plan request: vgg16 on a contended testbed so
/// refinement has something to do.
fn plan_body(link_gbps: f64) -> Json {
    Json::obj(vec![
        ("model", "vgg16".to_json()),
        (
            "cluster",
            Json::obj(vec![
                ("link_gbps", link_gbps.to_json()),
                (
                    "background_jobs",
                    Json::Arr(vec![Json::obj(vec![
                        ("gpus", vec![0usize, 1].to_json()),
                        ("gbps", 5.0.to_json()),
                    ])]),
                ),
            ]),
        ),
        (
            "planner",
            Json::obj(vec![("measure_iters", 8usize.to_json())]),
        ),
    ])
}

/// A cheap cold-plan request with a distinct cache key per index (used to
/// keep the overload worker busy without cache help).
fn cold_plan_body(i: usize) -> Json {
    Json::obj(vec![
        ("model", "alexnet".to_json()),
        (
            "cluster",
            Json::obj(vec![("link_gbps", (40.0 + i as f64).to_json())]),
        ),
        (
            "planner",
            Json::obj(vec![("measure_iters", 4usize.to_json())]),
        ),
    ])
}

/// Drop the volatile `cached` flag so cold and hit responses compare
/// equal.
fn strip_cached(j: &Json) -> Json {
    match j {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "cached")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run the bench. `smoke` shrinks request counts and zeroes every
/// wall-clock field in the result.
pub fn run(smoke: bool) -> Result<ServeBenchResult, String> {
    fn err(stage: &'static str) -> impl Fn(std::io::Error) -> String {
        move |e| format!("{stage}: {e}")
    }
    let workers = if smoke { 2 } else { 4 };
    let queue_capacity = 8;
    let cache_capacity = 32;
    let mut handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        cache_capacity,
        ..ServeConfig::default()
    })
    .map_err(err("spawn"))?;
    let addr = handle.addr();
    let mut checks = Vec::new();

    let mut c = Client::connect(addr).map_err(err("connect"))?;

    // -- functional checks ------------------------------------------------
    let r = c.request("GET", "/health", None).map_err(err("health"))?;
    let healthy = r.status == 200
        && r.json()
            .and_then(|j| j.get("status").and_then(Json::as_str).map(String::from))
            .as_deref()
            == Some("ok");
    checks.push(check(
        "health",
        healthy,
        if healthy { "200 ok" } else { "bad" },
    ));

    let body = plan_body(10.0);
    let t0 = Instant::now();
    let cold = c
        .request("POST", "/plan", Some(&body))
        .map_err(err("plan"))?;
    let cold_seconds = t0.elapsed().as_secs_f64();
    let cold_json = cold.json().unwrap_or(Json::Null);
    let plan_ok = cold.status == 200
        && cold_json.get("cached").and_then(Json::as_bool) == Some(false)
        && cold_json.get("partition").is_some();
    checks.push(check(
        "plan_cold",
        plan_ok,
        if plan_ok { "200 cached=false" } else { "bad" },
    ));

    let mut cached_samples = Vec::new();
    let reps = if smoke { 5 } else { 40 };
    let mut hit_json = Json::Null;
    let mut hit_ok = true;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = c
            .request("POST", "/plan", Some(&body))
            .map_err(err("plan hit"))?;
        cached_samples.push(t0.elapsed().as_secs_f64());
        hit_json = r.json().unwrap_or(Json::Null);
        hit_ok &= r.status == 200 && hit_json.get("cached").and_then(Json::as_bool) == Some(true);
    }
    let hit_matches = strip_cached(&hit_json).pretty() == strip_cached(&cold_json).pretty();
    checks.push(check(
        "plan_cache_hit",
        hit_ok && hit_matches,
        if hit_ok && hit_matches {
            "200 cached=true, body matches cold plan"
        } else {
            "mismatch"
        },
    ));
    let cached_seconds = percentile(cached_samples.clone(), 50.0);

    let r = c
        .request("POST", "/invalidate", None)
        .map_err(err("invalidate"))?;
    let gen_bumped = r.status == 200
        && r.json()
            .and_then(|j| j.get("generation").and_then(Json::as_usize))
            == Some(1);
    let recomputed = c
        .request("POST", "/plan", Some(&body))
        .map_err(err("replan"))?;
    let recomputed_json = recomputed.json().unwrap_or(Json::Null);
    let recompute_ok = gen_bumped
        && recomputed_json.get("cached").and_then(Json::as_bool) == Some(false)
        && strip_cached(&recomputed_json).pretty() == strip_cached(&cold_json).pretty();
    checks.push(check(
        "invalidate_then_recompute",
        recompute_ok,
        if recompute_ok {
            "generation bumped; recomputed plan is byte-identical"
        } else {
            "mismatch"
        },
    ));

    let sim_body = Json::obj(vec![
        ("model", "vgg16".to_json()),
        (
            "cluster",
            Json::obj(vec![
                ("link_gbps", 10.0.to_json()),
                (
                    "background_jobs",
                    Json::Arr(vec![Json::obj(vec![
                        ("gpus", vec![0usize, 1].to_json()),
                        ("gbps", 5.0.to_json()),
                    ])]),
                ),
            ]),
        ),
        (
            "partition",
            cold_json.get("partition").cloned().unwrap_or(Json::Null),
        ),
        ("iterations", 32usize.to_json()),
    ]);
    let r = c
        .request("POST", "/simulate", Some(&sim_body))
        .map_err(err("simulate"))?;
    let sim_ok = r.status == 200
        && r.json()
            .and_then(|j| j.get("throughput").and_then(Json::as_f64))
            .is_some_and(|t| t > 0.0);
    checks.push(check(
        "simulate_planned_partition",
        sim_ok,
        if sim_ok { "200, throughput > 0" } else { "bad" },
    ));

    let bad = c
        .send_raw(b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"model\":")
        .map_err(err("bad json"))?;
    let bad_ok = bad.status == 400;
    checks.push(check("bad_json_is_400", bad_ok, bad.status.to_string()));
    drop(c); // send_raw's 400 closes the connection

    let mut c = Client::connect(addr).map_err(err("reconnect"))?;
    let unk = c
        .request(
            "POST",
            "/plan",
            Some(&Json::obj(vec![("model", "vgg99".to_json())])),
        )
        .map_err(err("unknown model"))?;
    let unk_ok = unk.status == 422
        && unk
            .json()
            .and_then(|j| {
                j.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .map(String::from)
            })
            .as_deref()
            == Some("unknown-model");
    checks.push(check(
        "unknown_model_is_422",
        unk_ok,
        unk.status.to_string(),
    ));

    let nf = c.request("GET", "/nope", None).map_err(err("404"))?;
    checks.push(check(
        "unknown_route_is_404",
        nf.status == 404,
        nf.status.to_string(),
    ));
    let mna = c.request("DELETE", "/plan", None).map_err(err("405"))?;
    checks.push(check(
        "wrong_method_is_405",
        mna.status == 405,
        mna.status.to_string(),
    ));

    // A client that dies mid-body must get a clean 400, not wedge a worker.
    let mut t = Client::connect(addr).map_err(err("truncated connect"))?;
    t.send_partial(b"POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 400\r\n\r\n{\"model\"")
        .map_err(err("truncated write"))?;
    t.shutdown_write().map_err(err("truncated shutdown"))?;
    let tr = t.read_any().map_err(err("truncated read"))?;
    checks.push(check(
        "truncated_body_is_400",
        tr.status == 400,
        tr.status.to_string(),
    ));
    drop(t);

    // -- latency sweep ----------------------------------------------------
    let lat_reps = if smoke { 8 } else { 200 };
    let mut latency = Vec::new();
    let sim_small = sim_body.clone();
    for (endpoint, method, path, body) in [
        ("health", "GET", "/health", None),
        ("plan-cached", "POST", "/plan", Some(&body)),
        ("simulate", "POST", "/simulate", Some(&sim_small)),
    ] {
        let mut samples = Vec::with_capacity(lat_reps);
        for _ in 0..lat_reps {
            let t0 = Instant::now();
            let r = c.request(method, path, body).map_err(err("latency"))?;
            samples.push(ms(t0.elapsed()));
            if r.status != 200 {
                return Err(format!("latency sweep: {endpoint} returned {}", r.status));
            }
        }
        latency.push(LatencyRow {
            endpoint: endpoint.to_string(),
            requests: lat_reps,
            p50_ms: if smoke {
                0.0
            } else {
                percentile(samples.clone(), 50.0)
            },
            p95_ms: if smoke {
                0.0
            } else {
                percentile(samples.clone(), 95.0)
            },
            p99_ms: if smoke {
                0.0
            } else {
                percentile(samples, 99.0)
            },
        });
    }

    // -- throughput sweep (cached plan path) ------------------------------
    let conn_levels: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    let per_conn = if smoke { 5 } else { 100 };
    let mut throughput = Vec::new();
    for &conns in conn_levels {
        let stats_before = c.request("GET", "/stats", None).map_err(err("stats"))?;
        let hits_before = cache_hits(&stats_before);
        let barrier = Arc::new(Barrier::new(conns));
        let t0 = Instant::now();
        let threads: Vec<_> = (0..conns)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let body = plan_body(10.0);
                std::thread::spawn(move || -> Result<Vec<f64>, String> {
                    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                    barrier.wait();
                    let mut samples = Vec::with_capacity(per_conn);
                    for _ in 0..per_conn {
                        let t = Instant::now();
                        let r = c
                            .request("POST", "/plan", Some(&body))
                            .map_err(|e| e.to_string())?;
                        samples.push(ms(t.elapsed()));
                        if r.status != 200 {
                            return Err(format!("throughput request got {}", r.status));
                        }
                    }
                    Ok(samples)
                })
            })
            .collect();
        let mut samples = Vec::new();
        for t in threads {
            samples.extend(t.join().map_err(|_| "throughput thread panicked")??);
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats_after = c.request("GET", "/stats", None).map_err(err("stats"))?;
        let hits_after = cache_hits(&stats_after);
        let requests = conns * per_conn;
        let hit_rate = (hits_after - hits_before) as f64 / requests as f64;
        throughput.push(ThroughputRow {
            connections: conns,
            requests,
            req_per_sec: if smoke { 0.0 } else { requests as f64 / wall },
            p50_ms: if smoke {
                0.0
            } else {
                percentile(samples.clone(), 50.0)
            },
            p95_ms: if smoke {
                0.0
            } else {
                percentile(samples.clone(), 95.0)
            },
            p99_ms: if smoke {
                0.0
            } else {
                percentile(samples, 99.0)
            },
            cache_hit_rate: hit_rate,
        });
    }
    let warm_hits = throughput.iter().all(|t| t.cache_hit_rate >= 0.999);
    checks.push(check(
        "throughput_all_cache_hits",
        warm_hits,
        if warm_hits {
            "hit rate 1.0"
        } else {
            "cold misses"
        },
    ));

    // -- graceful shutdown ------------------------------------------------
    let r = c
        .request("POST", "/shutdown", None)
        .map_err(err("shutdown"))?;
    let drain_acked = r.status == 200
        && r.json()
            .and_then(|j| j.get("draining").and_then(Json::as_bool))
            == Some(true);
    drop(c);
    handle.shutdown();
    let refused = Client::connect(addr).is_err();
    checks.push(check(
        "graceful_shutdown",
        drain_acked && refused,
        if drain_acked && refused {
            "drained; listener closed"
        } else {
            "bad"
        },
    ));

    // -- overload: 4x admission capacity against one worker ---------------
    let overload_queue = 4;
    let offered = 4 * overload_queue;
    let mut small = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: overload_queue,
        cache_capacity: 4,
        ..ServeConfig::default()
    })
    .map_err(err("overload spawn"))?;
    let small_addr = small.addr();
    let barrier = Arc::new(Barrier::new(offered));
    let threads: Vec<_> = (0..offered)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<(u16, bool, bool), String> {
                let mut c = Client::connect(small_addr).map_err(|e| e.to_string())?;
                barrier.wait();
                // Shed connections get their 503 unprompted at accept time.
                let Some(r) = c.read_unsolicited(Duration::from_millis(400)) else {
                    let r = c
                        .request("POST", "/plan", Some(&cold_plan_body(i)))
                        .map_err(|e| e.to_string())?;
                    return Ok((r.status, r.header("retry-after").is_some(), false));
                };
                let Some(hint) = r.retry_after() else {
                    return Ok((r.status, false, false));
                };
                // A well-behaved client honors the hint: wait it out, then
                // come back under the composed retry policy (seeded
                // backoff, stretched by any further Retry-After).
                drop(c);
                std::thread::sleep(hint);
                let clock = SystemClock::new();
                let mut retry = Retry::new(
                    RetryConfig {
                        max_attempts: 5,
                        base_delay: Duration::from_millis(100),
                        max_delay: Duration::from_secs(2),
                    },
                    i as u64,
                );
                let recovered = retry
                    .run(&clock, std::thread::sleep, |_| {
                        let mut c =
                            Client::connect(small_addr).map_err(|e| (e.to_string(), None))?;
                        if let Some(r) = c.read_unsolicited(Duration::from_millis(200)) {
                            return Err((format!("re-shed {}", r.status), r.retry_after()));
                        }
                        let r = c
                            .request("POST", "/plan", Some(&cold_plan_body(i)))
                            .map_err(|e| (e.to_string(), None))?;
                        if r.status == 200 {
                            Ok(())
                        } else {
                            Err((format!("retry got {}", r.status), r.retry_after()))
                        }
                    })
                    .is_ok();
                Ok((r.status, true, recovered))
            })
        })
        .collect();
    let mut shed_503 = 0u64;
    let mut served_200 = 0u64;
    let mut recovered_after_hint = 0u64;
    let mut got_retry_after = true;
    let mut all_shed_recovered = true;
    let mut overload_errors = Vec::new();
    for t in threads {
        match t.join().map_err(|_| "overload thread panicked")? {
            Ok((200, _, _)) => served_200 += 1,
            Ok((503, retry, recovered)) => {
                shed_503 += 1;
                got_retry_after &= retry;
                all_shed_recovered &= recovered;
                recovered_after_hint += recovered as u64;
            }
            Ok((other, _, _)) => overload_errors.push(format!("unexpected status {other}")),
            Err(e) => overload_errors.push(e),
        }
    }
    let mut probe = Client::connect(small_addr).map_err(err("overload stats"))?;
    let stats = probe
        .request("GET", "/stats", None)
        .map_err(err("overload stats"))?;
    let peak_depth = stats
        .json()
        .and_then(|j| {
            j.get("queue")
                .and_then(|q| q.get("peak_depth"))
                .and_then(Json::as_usize)
        })
        .unwrap_or(usize::MAX);
    drop(probe);
    small.shutdown();
    let depth_within_bound = peak_depth <= overload_queue;
    let overload_ok = overload_errors.is_empty()
        && shed_503 > 0
        && served_200 > 0
        && served_200 + shed_503 == offered as u64
        && got_retry_after
        && depth_within_bound;
    checks.push(check(
        "overload_sheds_with_503",
        overload_ok,
        if overload_ok {
            "shed with Retry-After; queue depth stayed within bound".to_string()
        } else {
            format!(
                "served={served_200} shed={shed_503} retry_after={got_retry_after} \
                 peak_depth_ok={depth_within_bound} errors={overload_errors:?}"
            )
        },
    ));
    checks.push(check(
        "shed_clients_recover_after_hint",
        all_shed_recovered,
        if all_shed_recovered {
            "every shed client got a 200 after honoring Retry-After".to_string()
        } else {
            format!("recovered {recovered_after_hint}/{shed_503}")
        },
    ));

    let overload = OverloadSummary {
        offered_connections: offered,
        queue_capacity: overload_queue,
        shed_503: if smoke { 0 } else { shed_503 },
        served_200: if smoke { 0 } else { served_200 },
        got_retry_after,
        peak_queue_depth: if smoke { 0 } else { peak_depth },
        depth_within_bound,
        recovered_after_hint: if smoke { 0 } else { recovered_after_hint },
        all_shed_recovered,
    };

    // -- degraded operation: breaker trip, degrade, recover ---------------
    let degraded = degraded_drill(smoke, &mut checks)?;

    let cache_speedup = cold_seconds / cached_seconds.max(1e-9);
    if !smoke {
        checks.push(check(
            "cache_hit_at_least_10x_faster",
            cache_speedup >= 10.0,
            format!("cold {cold_seconds:.4}s / cached {cached_seconds:.6}s = {cache_speedup:.0}x"),
        ));
    }

    Ok(ServeBenchResult {
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workers,
        queue_capacity,
        cache_capacity,
        checks,
        plan: PlanSummary {
            model: "vgg16".to_string(),
            partition: cold_json
                .get("summary")
                .and_then(Json::as_str)
                .map(String::from)
                .unwrap_or_default(),
            predicted_throughput: cold_json
                .get("predicted_throughput")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            cold_seconds: if smoke { 0.0 } else { cold_seconds },
            cached_seconds: if smoke { 0.0 } else { cached_seconds },
            cache_speedup: if smoke { 0.0 } else { cache_speedup },
        },
        latency,
        throughput,
        overload,
        degraded,
    })
}

/// A `/plan` request with a born-expired budget (`deadline_ms: 0`) and a
/// distinct cache key per index: each one must degrade
/// `deadline-exhausted` and charge a failure to the verify breaker.
fn hurried_plan_body(i: usize) -> Json {
    Json::obj(vec![
        ("model", "alexnet".to_json()),
        (
            "cluster",
            Json::obj(vec![("link_gbps", (50.0 + i as f64).to_json())]),
        ),
        (
            "planner",
            Json::obj(vec![("deadline_ms", 0usize.to_json())]),
        ),
    ])
}

fn degraded_of(j: &Json) -> (Option<bool>, Option<String>) {
    (
        j.get("degraded").and_then(Json::as_bool),
        j.get("degraded_reason")
            .and_then(Json::as_str)
            .map(String::from),
    )
}

fn breaker_metric_gauge(c: &mut Client) -> Result<u64, String> {
    let r = c
        .request("GET", "/metrics", None)
        .map_err(|e| format!("metrics: {e}"))?;
    let text = String::from_utf8(r.body.clone()).map_err(|e| e.to_string())?;
    text.lines()
        .find_map(|l| l.strip_prefix("ap_breaker_state{breaker=\"verify\"} "))
        .ok_or_else(|| "breaker state series missing from /metrics".to_string())?
        .parse::<u64>()
        .map_err(|e| e.to_string())
}

/// Trip the verify breaker with induced failures, show `/plan` degrading
/// instead of failing, recover through the half-open probe, and prove the
/// zero-capacity bulkhead lever sheds cleanly.
fn degraded_drill(smoke: bool, checks: &mut Vec<CheckRow>) -> Result<DegradedSummary, String> {
    fn err(stage: &'static str) -> impl Fn(std::io::Error) -> String {
        move |e| format!("{stage}: {e}")
    }
    // Tight breaker: window 4, min 4, rate 0.5 -> four failures trip it.
    // The cooldown is long enough that the three in-between requests
    // cannot accidentally ride the probe, short enough to wait out.
    let cooldown = Duration::from_millis(400);
    let induced = 4usize;
    let mut dg = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        resilience: ResilienceConfig {
            breaker_window: 4,
            breaker_min_samples: 4,
            breaker_failure_rate: 0.5,
            breaker_cooldown_ms: cooldown.as_millis() as u64,
            breaker_probes: 1,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    })
    .map_err(err("degraded spawn"))?;
    let mut c = Client::connect(dg.addr()).map_err(err("degraded connect"))?;

    // Phase 1: four zero-budget requests, each 200 but degraded.
    let mut degraded_deadline = 0u64;
    let mut phase1_ok = true;
    for i in 0..induced {
        let r = c
            .request("POST", "/plan", Some(&hurried_plan_body(i)))
            .map_err(err("hurried plan"))?;
        let j = r.json().unwrap_or(Json::Null);
        let (flag, reason) = degraded_of(&j);
        let ok = r.status == 200
            && flag == Some(true)
            && reason.as_deref() == Some("deadline-exhausted")
            && j.get("partition").is_some();
        phase1_ok &= ok;
        degraded_deadline += ok as u64;
    }
    checks.push(check(
        "exhausted_deadline_degrades_not_fails",
        phase1_ok,
        if phase1_ok {
            format!("{induced}/{induced} zero-budget plans answered 200 degraded")
        } else {
            "a zero-budget plan failed outright".to_string()
        },
    ));

    // Phase 2: the failure rate tripped the breaker; patient requests now
    // degrade breaker-open — and cheaply, since the engine is skipped.
    let breaker_opened = breaker_metric_gauge(&mut c)? == 1;
    checks.push(check(
        "induced_failures_open_breaker",
        breaker_opened,
        if breaker_opened {
            "ap_breaker_state 1 after four failures"
        } else {
            "breaker still closed"
        },
    ));
    let mut degraded_breaker_open = 0u64;
    let mut open_samples = Vec::new();
    let mut phase2_ok = true;
    for i in 0..3usize {
        let body = cold_plan_body(100 + i);
        let t0 = Instant::now();
        let r = c
            .request("POST", "/plan", Some(&body))
            .map_err(err("open-breaker plan"))?;
        open_samples.push(ms(t0.elapsed()));
        let j = r.json().unwrap_or(Json::Null);
        let (flag, reason) = degraded_of(&j);
        let ok = r.status == 200
            && flag == Some(true)
            && reason.as_deref() == Some("breaker-open")
            && matches!(j.get("measured_throughput"), Some(Json::Null))
            && j.get("predicted_throughput")
                .and_then(Json::as_f64)
                .is_some_and(|t| t > 0.0);
        phase2_ok &= ok;
        degraded_breaker_open += ok as u64;
    }
    checks.push(check(
        "open_breaker_serves_analytic_plans",
        phase2_ok,
        if phase2_ok {
            "3/3 answered 200 degraded breaker-open, analytic prediction attached"
        } else {
            "a request under an open breaker misbehaved"
        },
    ));

    // Phase 3: wait out the cooldown; the next request is the half-open
    // probe, verification succeeds, and the breaker closes.
    std::thread::sleep(cooldown + Duration::from_millis(150));
    let r = c
        .request("POST", "/plan", Some(&cold_plan_body(200)))
        .map_err(err("probe plan"))?;
    let j = r.json().unwrap_or(Json::Null);
    let probe_full = r.status == 200
        && degraded_of(&j) == (Some(false), None)
        && j.get("measured_throughput")
            .and_then(Json::as_f64)
            .is_some_and(|t| t > 0.0);
    let breaker_recovered = probe_full && breaker_metric_gauge(&mut c)? == 0;
    checks.push(check(
        "half_open_probe_closes_breaker",
        breaker_recovered,
        if breaker_recovered {
            "first post-cooldown request verified fully; ap_breaker_state back to 0"
        } else {
            "probe did not close the breaker"
        },
    ));
    drop(c);
    dg.shutdown();

    // Bulkhead lever: capacity 0 on /plan sheds deterministically with a
    // computed Retry-After while /simulate (its own bulkhead) still works.
    let mut bh = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        resilience: ResilienceConfig {
            plan_bulkhead: 0,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    })
    .map_err(err("bulkhead spawn"))?;
    let mut c = Client::connect(bh.addr()).map_err(err("bulkhead connect"))?;
    let r = c
        .request("POST", "/plan", Some(&cold_plan_body(0)))
        .map_err(err("bulkhead plan"))?;
    let shed_right = r.status == 503
        && r.json()
            .and_then(|j| {
                j.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .map(String::from)
            })
            .as_deref()
            == Some("bulkhead-full")
        && r.retry_after()
            .is_some_and(|h| h >= Duration::from_secs(1) && h <= Duration::from_secs(30));
    let sim = Json::obj(vec![
        ("model", "alexnet".to_json()),
        (
            "partition",
            Json::obj(vec![(
                "stages",
                Json::Arr(vec![Json::obj(vec![
                    ("layers", vec![0usize, 11].to_json()),
                    ("workers", vec![0usize, 1].to_json()),
                ])]),
            )]),
        ),
        ("iterations", 12usize.to_json()),
    ]);
    let r = c
        .request("POST", "/simulate", Some(&sim))
        .map_err(err("bulkhead simulate"))?;
    let bulkhead_shed = shed_right && r.status == 200;
    checks.push(check(
        "zero_bulkhead_sheds_plan_only",
        bulkhead_shed,
        if bulkhead_shed {
            "plan 503 bulkhead-full with Retry-After; simulate unaffected"
        } else {
            "bulkhead lever misbehaved"
        },
    ));
    drop(c);
    bh.shutdown();

    Ok(DegradedSummary {
        induced_failures: induced,
        degraded_deadline,
        degraded_breaker_open,
        breaker_opened,
        breaker_recovered,
        degraded_p99_ms: if smoke {
            0.0
        } else {
            percentile(open_samples, 99.0)
        },
        bulkhead_shed,
    })
}

fn cache_hits(stats: &ap_serve::client::Response) -> u64 {
    stats
        .json()
        .and_then(|j| {
            j.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(Json::as_usize)
        })
        .unwrap_or(0) as u64
}
