//! Figure 13: AutoPipe-enhanced DAPPLE / Chimera / PipeDream-2BW on
//! BERT-48 (mini-batch 256, shared testbed).

use ap_models::{bert48, ModelProfile};
use ap_pipesim::{Framework, ScheduleKind, SyncScheme};
use autopipe::enhanced_throughput;

use crate::setup::shared_three_job_state;

/// One bar of Figure 13.
#[derive(Debug, Clone)]
pub struct EnhancedRow {
    /// Schedule label.
    pub schedule: String,
    /// Vanilla even-split throughput, samples/sec.
    pub vanilla: f64,
    /// AutoPipe-enhanced throughput, samples/sec.
    pub enhanced: f64,
}

impl EnhancedRow {
    /// Speedup percentage of the enhancement.
    pub fn speedup_pct(&self) -> f64 {
        (self.enhanced / self.vanilla - 1.0) * 100.0
    }
}

/// The whole figure.
pub fn fig13() -> Vec<EnhancedRow> {
    let profile = ModelProfile::of(&bert48());
    let state = shared_three_job_state(25.0);
    [
        ScheduleKind::Chimera { micro_batches: 8 },
        ScheduleKind::Dapple { micro_batches: 8 },
        ScheduleKind::PipeDream2Bw,
    ]
    .iter()
    .map(|&schedule| {
        let (vanilla, enhanced) = enhanced_throughput(
            schedule,
            &profile,
            &state,
            SyncScheme::RingAllReduce,
            Framework::pytorch(),
            5,
        );
        EnhancedRow {
            schedule: schedule.label().to_string(),
            vanilla,
            enhanced,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_improves() {
        for row in fig13() {
            assert!(
                row.enhanced >= row.vanilla,
                "{}: {} -> {}",
                row.schedule,
                row.vanilla,
                row.enhanced
            );
            assert!(
                row.speedup_pct() > 1.0,
                "{}: expected a visible speedup, got {:.2}%",
                row.schedule,
                row.speedup_pct()
            );
        }
    }
}
