//! `repro cluster-bench` — the ap-sched control plane chewing through a
//! seeded arrival/departure/fault trace at 10 → 100 → 1000 jobs.
//!
//! Each scale gets a fabric sized with the workload (≈ one 4-GPU server
//! per 8 jobs) and a Poisson trace whose mean job lifetime keeps the
//! steady-state residency near half the GPU count, so neighborhoods stay
//! non-trivial without collapsing into queueing. The headline comparison
//! is per-event planning cost: the scheduler's **neighborhood** re-plan
//! (O(degree) via the contention index) versus one round of whole-world
//! best-response from the same state, sampled by forking the live
//! scheduler mid-trace ([`ClusterScheduler::fork`]). The fork also keeps
//! running best-response to a fixed point, which prices the *quality* of
//! neighborhood planning: the blended cluster objective must stay within
//! [`EQUIVALENCE_EPSILON`] of the whole-world answer on small instances.
//!
//! `--smoke` swaps the wall clock for a [`FakeClock`] and zeroes every
//! latency field, so its `--json` output is byte-identical across runs
//! and `AP_PAR_THREADS` settings; the quality gate still runs (planning
//! itself is deterministic).

use std::sync::Arc;
use std::time::Instant;

use ap_cluster::{ClusterTopology, FaultPlanConfig, GpuKind};
use ap_models::{alexnet, synthetic_skewed, ModelProfile};
use ap_resilience::{Clock, FakeClock, SystemClock};
use ap_sched::trace::{self, TimedEvent, TraceConfig, TraceEventKind};
use ap_sched::{
    AdmitOutcome, ClusterScheduler, JobId, SchedConfig, SchedEvent, EQUIVALENCE_EPSILON,
};
use autopipe::HillClimbPlanner;

/// Hill-climb round budget per proposal — smaller than the controller's
/// default 20 because the bench prices *planning latency*, and the gains
/// past a handful of rounds are noise at these model sizes.
const PLANNER_ROUNDS: usize = 8;
/// Whole-world best-response rounds the quality fork runs to reach its
/// fixed point.
const QUALITY_ROUNDS: usize = 4;
/// Scales whose quality delta gates the verdict ("small instances" in
/// the sense of the equivalence property test).
const QUALITY_GATE_MAX_JOBS: usize = 100;
/// Required full-replan : neighborhood mean-latency ratio at the largest
/// scale (full runs only; smoke has no wall clock).
const REQUIRED_SPEEDUP: f64 = 10.0;

/// A mid-trace sample: fork the live scheduler, time one round of
/// whole-world best-response, then run it to a fixed point and compare
/// objectives.
#[derive(Debug, Clone)]
pub struct FullReplanSample {
    /// Index of the trace event after which the fork was taken.
    pub event_index: usize,
    /// Residents at the sample point.
    pub resident: usize,
    /// Wall-clock seconds for one whole-world best-response round
    /// (0 in smoke mode).
    pub full_latency_s: f64,
    /// Placements that round moved.
    pub full_moved: usize,
    /// Live aggregate predicted throughput at the sample, samples/s.
    pub live_aggregate: f64,
    /// Live fairness floor at the sample.
    pub live_fairness_floor: f64,
    /// Blended objective of the live (neighborhood-planned) scheduler.
    pub live_value: f64,
    /// Blended objective after whole-world best-response to fixed point.
    pub full_value: f64,
    /// `(full_value - live_value) / live_value` — how much the
    /// whole-world answer beats neighborhood planning.
    pub quality_delta: f64,
}

/// One workload scale's outcome.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Jobs in the trace.
    pub n_jobs: usize,
    /// Servers on the fabric.
    pub servers: usize,
    /// GPUs on the fabric.
    pub gpus: usize,
    /// Trace events delivered.
    pub events: usize,
    /// Peak resident jobs.
    pub peak_resident: usize,
    /// Admissions placed (including queue drains and evacuations).
    pub placed: u64,
    /// Jobs that waited in the queue at least once.
    pub queued: u64,
    /// Arrivals rejected outright.
    pub rejected: u64,
    /// Jobs that departed after placement.
    pub completed: u64,
    /// Jobs moved off a failed worker.
    pub evacuated: u64,
    /// Re-plan proposals considered across the trace.
    pub replans_considered: u64,
    /// Re-plans accepted.
    pub plans_moved: u64,
    /// Mean extracted-neighborhood size per event.
    pub mean_neighborhood: f64,
    /// Mean per-event planning latency, seconds (0 in smoke mode).
    pub event_latency_mean_s: f64,
    /// p99 per-event planning latency, seconds.
    pub event_latency_p99_s: f64,
    /// Worst per-event planning latency, seconds.
    pub event_latency_max_s: f64,
    /// Mean sampled whole-world round latency, seconds.
    pub full_latency_mean_s: f64,
    /// `full_latency_mean_s / event_latency_mean_s` (0 in smoke mode).
    pub full_replan_speedup: f64,
    /// Largest sampled live aggregate predicted throughput, samples/s.
    pub peak_aggregate: f64,
    /// Fairness floor at the peak-aggregate sample.
    pub fairness_floor: f64,
    /// Worst (most positive) sampled quality delta.
    pub worst_quality_delta: f64,
    /// Whether every sample stayed within [`EQUIVALENCE_EPSILON`].
    pub quality_within_epsilon: bool,
    /// The raw samples.
    pub samples: Vec<FullReplanSample>,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct ClusterBenchResult {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// Trace seed base.
    pub seed: u64,
    /// Declared quality tolerance (mirrors [`EQUIVALENCE_EPSILON`]).
    pub equivalence_epsilon: f64,
    /// Required latency ratio at the largest scale.
    pub required_speedup: f64,
    /// One row per scale, ascending.
    pub scales: Vec<ScaleRow>,
}

impl ClusterBenchResult {
    /// Every gate: work got placed everywhere, small instances match
    /// whole-world quality, and (full runs) the largest scale shows the
    /// promised latency separation.
    pub fn all_ok(&self) -> bool {
        let placed = self
            .scales
            .iter()
            .all(|s| s.events > 0 && s.placed > 0 && s.completed > 0);
        let quality = self
            .scales
            .iter()
            .filter(|s| s.n_jobs <= QUALITY_GATE_MAX_JOBS)
            .all(|s| s.quality_within_epsilon);
        let speedup = self.mode != "full"
            || self
                .scales
                .last()
                .is_some_and(|s| s.full_replan_speedup >= self.required_speedup);
        placed && quality && speedup
    }
}

/// The model palette jobs draw from: small profiles keep per-proposal
/// hill climbs cheap so the bench measures scheduling, not scoring.
fn palette() -> Vec<(&'static str, ModelProfile)> {
    vec![
        ("alexnet", ModelProfile::of(&alexnet())),
        (
            "synthetic-skewed",
            ModelProfile::with_batch(&synthetic_skewed(8, 2e9, 20e6, 8e6), 32),
        ),
        (
            "synthetic-wide",
            ModelProfile::with_batch(&synthetic_skewed(12, 4e9, 30e6, 12e6), 64),
        ),
    ]
}

/// Fabric and trace knobs for one scale: the cluster grows with the job
/// count and the mean lifetime keeps steady-state residency ≈ gpus/2.
fn scale_setup(n_jobs: usize) -> (ClusterTopology, TraceConfig) {
    let servers = (n_jobs / 8).max(2);
    let gpus = servers * 4;
    let topo = ClusterTopology::single_switch(servers, 4, GpuKind::P100, 25.0);
    let arrival_rate_hz = 1.0;
    let mean_duration_s = 0.5 * gpus as f64;
    let span = n_jobs as f64 / arrival_rate_hz + 3.0 * mean_duration_s;
    let cfg = TraceConfig {
        n_jobs,
        arrival_rate_hz,
        mean_duration_s,
        min_gpus: 1,
        max_gpus: 4,
        adaptive_fraction: 0.7,
        faults: Some(FaultPlanConfig {
            mtbf: span / 4.0,
            mttr: span / 8.0,
            max_concurrent_failures: 2,
            flap_mtbf: span / 3.0,
            flap_down_gbps: 2.0,
            flap_period: (span / 50.0).max(1.0),
            flap_count: 2,
        }),
    };
    (topo, cfg)
}

fn planner() -> Box<HillClimbPlanner> {
    Box::new(HillClimbPlanner {
        rounds: PLANNER_ROUNDS,
    })
}

/// Take one mid-trace sample (see [`FullReplanSample`]).
fn sample(sched: &mut ClusterScheduler, event_index: usize, smoke: bool) -> FullReplanSample {
    let mut fork = sched.fork(planner());
    let t0 = Instant::now();
    let full_moved = fork.full_replan(1);
    let full_latency_s = if smoke {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    };
    fork.full_replan(QUALITY_ROUNDS - 1);
    let live = sched.objective();
    let full = fork.objective();
    let live_value = live.value();
    let full_value = full.value();
    let quality_delta = if live_value > 0.0 {
        full_value / live_value - 1.0
    } else {
        0.0
    };
    FullReplanSample {
        event_index,
        resident: sched.n_resident(),
        full_latency_s,
        full_moved,
        live_aggregate: live.aggregate,
        live_fairness_floor: live.fairness_floor,
        live_value,
        full_value,
        quality_delta,
    }
}

/// Feed a trace through a fresh scheduler, resolving departure ordinals
/// exactly like [`trace::run`] but pausing at the quartile event indices
/// to take whole-world forks.
fn run_scale(n_jobs: usize, seed: u64, smoke: bool) -> ScaleRow {
    let (topo, cfg) = scale_setup(n_jobs);
    let servers = topo.n_gpus() / 4;
    let gpus = topo.n_gpus();
    let events: Vec<TimedEvent> = trace::generate(&topo, &palette(), &cfg, seed);
    let clock: Arc<dyn Clock> = if smoke {
        Arc::new(FakeClock::new())
    } else {
        Arc::new(SystemClock::new())
    };
    let mut sched = ClusterScheduler::new(topo, SchedConfig::default(), planner(), clock);

    let sample_at: Vec<usize> = [1, 2, 3].iter().map(|q| q * events.len() / 4).collect();
    let mut samples = Vec::new();
    let mut latencies = Vec::with_capacity(events.len());
    let mut neighborhoods = Vec::with_capacity(events.len());
    let mut peak_resident = 0usize;
    let mut delivered = 0usize;
    let mut ids: Vec<Option<JobId>> = Vec::new();
    for (i, te) in events.iter().enumerate() {
        let out = match &te.event {
            TraceEventKind::Arrive(req) => {
                let out = sched.on_event(te.time, &SchedEvent::Arrive(req.clone()));
                ids.push(match out.admit {
                    Some(AdmitOutcome::Placed(id)) | Some(AdmitOutcome::Queued(id, _)) => Some(id),
                    _ => None,
                });
                Some(out)
            }
            TraceEventKind::DepartOrdinal(ordinal) => ids
                .get(*ordinal)
                .copied()
                .flatten()
                .map(|id| sched.on_event(te.time, &SchedEvent::Depart(id))),
            TraceEventKind::WorkerFail(g) => {
                Some(sched.on_event(te.time, &SchedEvent::WorkerFail(*g)))
            }
            TraceEventKind::WorkerRecover(g) => {
                Some(sched.on_event(te.time, &SchedEvent::WorkerRecover(*g)))
            }
            TraceEventKind::LinkFlapDown(s, g) => {
                Some(sched.on_event(te.time, &SchedEvent::LinkFlapDown(*s, *g)))
            }
            TraceEventKind::LinkFlapRestore(s) => {
                Some(sched.on_event(te.time, &SchedEvent::LinkFlapRestore(*s)))
            }
        };
        if let Some(out) = out {
            delivered += 1;
            latencies.push(if smoke { 0.0 } else { out.replan.latency_s });
            neighborhoods.push(out.replan.neighborhood as f64);
            peak_resident = peak_resident.max(sched.n_resident());
        }
        if sample_at.contains(&i) && sched.n_resident() > 0 {
            samples.push(sample(&mut sched, i, smoke));
        }
    }

    let mean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * q) as usize]
        }
    };
    let event_latency_mean_s = mean(&latencies);
    let full_latency_mean_s = mean(&samples.iter().map(|s| s.full_latency_s).collect::<Vec<_>>());
    let full_replan_speedup = if smoke || event_latency_mean_s <= 0.0 {
        0.0
    } else {
        full_latency_mean_s / event_latency_mean_s
    };
    let worst_quality_delta = samples
        .iter()
        .map(|s| s.quality_delta)
        .fold(0.0f64, f64::max);
    let c = sched.counters();
    // The trace drains by its end, so "final" state is an empty cluster;
    // the busiest sample reports the cluster objective instead.
    let (peak_aggregate, fairness_floor) = samples
        .iter()
        .max_by(|a, b| a.live_aggregate.total_cmp(&b.live_aggregate))
        .map_or((0.0, 1.0), |s| (s.live_aggregate, s.live_fairness_floor));
    ScaleRow {
        n_jobs,
        servers,
        gpus,
        events: delivered,
        peak_resident,
        placed: c.placed,
        queued: c.queued,
        rejected: c.rejected,
        completed: c.completed,
        evacuated: c.evacuated,
        replans_considered: c.replans_considered,
        plans_moved: c.plans_moved,
        mean_neighborhood: mean(&neighborhoods),
        event_latency_mean_s,
        event_latency_p99_s: pick(0.99),
        event_latency_max_s: sorted.last().copied().unwrap_or(0.0),
        full_latency_mean_s,
        full_replan_speedup,
        peak_aggregate,
        fairness_floor,
        worst_quality_delta,
        quality_within_epsilon: worst_quality_delta <= EQUIVALENCE_EPSILON,
        samples,
    }
}

/// Run the experiment. Smoke keeps to the small scales; the full run
/// sweeps 10 → 100 → 1000 jobs.
pub fn run(smoke: bool) -> ClusterBenchResult {
    const SEED: u64 = 0x5eed;
    let scales: &[usize] = if smoke { &[10, 40] } else { &[10, 100, 1000] };
    ClusterBenchResult {
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        seed: SEED,
        equivalence_epsilon: EQUIVALENCE_EPSILON,
        required_speedup: REQUIRED_SPEEDUP,
        scales: scales
            .iter()
            .map(|&n| run_scale(n, SEED ^ n as u64, smoke))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_places_work_and_matches_whole_world_quality() {
        let r = run(true);
        assert_eq!(r.scales.len(), 2);
        assert!(r.all_ok(), "smoke gates must hold: {:?}", r.scales);
        for s in &r.scales {
            assert!(s.peak_resident > 0);
            assert_eq!(s.event_latency_mean_s, 0.0, "smoke zeroes wall clock");
            assert!(!s.samples.is_empty(), "mid-trace samples were taken");
        }
    }

    #[test]
    fn smoke_is_deterministic() {
        let a = run(true);
        let b = run(true);
        for (x, y) in a.scales.iter().zip(&b.scales) {
            assert_eq!(x.events, y.events);
            assert_eq!(x.placed, y.placed);
            assert_eq!(x.plans_moved, y.plans_moved);
            assert_eq!(
                x.worst_quality_delta.to_bits(),
                y.worst_quality_delta.to_bits()
            );
            assert_eq!(x.peak_aggregate.to_bits(), y.peak_aggregate.to_bits());
        }
    }
}
