//! `repro chaos` — fault-tolerant reconfiguration under a seeded fault
//! schedule (DESIGN.md §7).
//!
//! ResNet50 on the paper testbed with a [`FaultPlan`] of worker outages
//! and NIC flap bursts. Two arms run the identical schedule:
//!
//! * **AutoPipe with recovery** — the controller's emergency path
//!   repartitions onto the survivors the moment a worker dies (bypassing
//!   the arbiter's gain-vs-cost gate), retries failed switches under its
//!   backoff policy, and rolls back migrations a death interrupts.
//! * **Drain-and-restart** — the conventional fallback: on failure the
//!   pipeline drains and waits for the victim; on recovery it restarts
//!   the original plan from a checkpoint (a global stall).
//!
//! The headline claim is per-outage: inside every outage window AutoPipe
//! keeps completing mini-batches on the survivors while the baseline
//! completes none. Everything is seeded, so the exported
//! `BENCH_chaos.json` is byte-identical across runs and thread counts.

use ap_cluster::{
    ClusterState, ClusterTopology, FaultEvent, FaultPlan, FaultPlanConfig, ResourceTimeline,
};
use ap_models::{resnet50, ModelProfile};
use ap_pipesim::{Engine, IterationRecord, Partition, SimError, SimResult};
use autopipe::controller::run_dynamic_scenario_traced;
use autopipe::{
    ArbiterMode, AutoPipeConfig, AutoPipeController, DecisionEvent, DecisionJournal, Scorer,
};

use crate::setup::{paper_pipedream_plan, ExperimentEnv};

/// One worker-outage window and what each arm completed inside it.
#[derive(Debug, Clone)]
pub struct OutageWindow {
    /// The dead worker's GPU id.
    pub worker: usize,
    /// Failure time, seconds.
    pub start: f64,
    /// Recovery time, seconds.
    pub end: f64,
    /// Mini-batches AutoPipe completed inside the window.
    pub autopipe_units: usize,
    /// Mini-batches the drain-and-restart baseline completed inside it.
    pub baseline_units: usize,
    /// Whether the window opened early enough in the AutoPipe run to
    /// demonstrate anything (at least two fault-free iteration times
    /// before the run's end). Only scored windows gate the verdict.
    pub scored: bool,
}

/// The chaos scenario's outcome.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The fault-plan seed.
    pub seed: u64,
    /// Mini-batches each arm ran.
    pub n_iterations: usize,
    /// Fault-free makespan used as the fault-plan horizon, seconds.
    pub horizon: f64,
    /// Worker-outage windows in time order.
    pub outages: Vec<OutageWindow>,
    /// NIC flap bursts in the schedule.
    pub link_flaps: usize,
    /// `(iteration, samples/sec)` for AutoPipe with recovery.
    pub autopipe: Vec<(u64, f64)>,
    /// `(iteration, samples/sec)` for drain-and-restart.
    pub baseline: Vec<(u64, f64)>,
    /// Mean throughput `(autopipe, baseline)`, samples/sec.
    pub mean: (f64, f64),
    /// Wall-clock seconds to finish `(autopipe, baseline)`.
    pub total_seconds: (f64, f64),
    /// Emergency repartitions the controller performed.
    pub emergency_switches: usize,
    /// Mid-migration rollbacks the engine performed (both arms).
    pub rollbacks: usize,
    /// Stranded-unit restarts (both arms).
    pub restarts: usize,
    /// AutoPipe completed >0 mini-batches inside every scored outage.
    pub survived_all_outages: bool,
    /// The baseline completed 0 mini-batches inside some scored outage.
    pub baseline_stalled: bool,
    /// The AutoPipe arm's merged decision/fault journal.
    pub journal: DecisionJournal,
}

/// Controller configuration for the chaos arm: analytic scorer and a
/// small fixed switch threshold keep the run fast and fully
/// deterministic; the detector is tuned with persistence 2 so flap noise
/// is debounced (§4.1 hysteresis) while real collapses still trigger.
fn chaos_cfg(env: &ExperimentEnv) -> AutoPipeConfig {
    AutoPipeConfig {
        scheme: env.scheme,
        framework: env.framework,
        schedule: env.schedule,
        check_every: 5,
        horizon_iterations: 60.0,
        detector: ap_cluster::DetectorConfig {
            threshold: 0.15,
            persistence: 2,
        },
        switch_mode: autopipe::SwitchMode::FineGrained,
        profiler_noise: 0.01,
        moves_per_decision: 4,
        seed: 23,
        ..AutoPipeConfig::default()
    }
}

/// Per-iteration speeds from completion records (completions sharing an
/// instant share the rate measured at the next distinct completion).
fn speed_series(iterations: &[IterationRecord], batch: usize) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(iterations.len());
    let mut prev_finish = 0.0_f64;
    let mut pending: Vec<u64> = Vec::new();
    for (idx, rec) in iterations.iter().enumerate() {
        pending.push(idx as u64);
        let dt = rec.finish - prev_finish;
        if dt > 1e-12 {
            let speed = pending.len() as f64 * batch as f64 / dt;
            for &i in &pending {
                out.push((i, speed));
            }
            pending.clear();
            prev_finish = rec.finish;
        }
    }
    if !pending.is_empty() {
        let speed = out.last().map(|&(_, s)| s).unwrap_or(0.0);
        for &i in &pending {
            out.push((i, speed));
        }
    }
    out
}

/// Mini-batches finishing inside `[start, end]`.
fn units_in(iterations: &[IterationRecord], start: f64, end: f64) -> usize {
    iterations
        .iter()
        .filter(|r| r.finish >= start && r.finish <= end)
        .count()
}

/// The drain-and-restart baseline: never repartitions. On a failure the
/// whole job stops — in-flight work drains, then every worker idles until
/// the victim returns plus a checkpoint-reload pause (`restart_pause`);
/// on recovery the original plan is reinstated verbatim, which also
/// restarts any mini-batches the outage stranded. `outage_windows` is the
/// fault schedule's `(start, end)` list — a checkpoint system does not
/// predict recovery, but stalling until the known end is equivalent to
/// "wait for the node, then reload" and keeps the run deterministic.
#[allow(clippy::too_many_arguments)]
fn run_baseline(
    profile: &ModelProfile,
    topo: &ClusterTopology,
    timeline: &ResourceTimeline,
    init: &Partition,
    env: &ExperimentEnv,
    n_iterations: usize,
    restart_pause: f64,
    outage_windows: &[(f64, f64)],
) -> Result<SimResult, SimError> {
    let engine = Engine::new(
        profile,
        init.clone(),
        ClusterState::new(topo.clone()),
        timeline.clone(),
        env.engine_cfg(),
    )?;
    let mut down = false;
    let mut result = engine.run_controlled(n_iterations, 5, |state, _done, now, _measured| {
        if !state.failed_workers().is_empty() {
            let end = outage_windows
                .iter()
                .filter(|&&(s, e)| now >= s - 1e-9 && now < e)
                .map(|&(_, e)| e)
                .fold(f64::NEG_INFINITY, f64::max);
            if !down && end.is_finite() {
                down = true;
                // Stop the job for the rest of the outage + the reload.
                return Some((init.clone(), (end - now) + restart_pause, true));
            }
            return None;
        }
        if down {
            down = false;
            // Reinstate the full plan (the recovered worker rejoins its
            // stage); the reload pause was charged above.
            return Some((init.clone(), 0.0, false));
        }
        None
    })?;
    result.iterations.truncate(n_iterations);
    Ok(result)
}

/// Run the chaos scenario.
pub fn run(n_iterations: usize, seed: u64) -> Result<ChaosResult, SimError> {
    let profile = ModelProfile::of(&resnet50());
    let env = ExperimentEnv::default_at(25.0);
    let topo = ClusterTopology::paper_testbed(env.link_gbps);
    let init = paper_pipedream_plan(&profile, env.link_gbps, topo.n_gpus());

    // The fault-free makespan anchors the schedule: MTBF/MTTR scale with
    // it, so smoke runs and full runs draw the *same relative* schedule
    // from the same seed (exponential variates scale linearly with their
    // mean).
    let clean = Engine::new(
        &profile,
        init.clone(),
        ClusterState::new(topo.clone()),
        ResourceTimeline::empty(),
        env.engine_cfg(),
    )?
    .run(n_iterations)?;
    let horizon = clean.makespan;
    let iter_time = horizon / n_iterations.max(1) as f64;

    let fault_cfg = FaultPlanConfig {
        mtbf: horizon / 3.0,
        mttr: horizon / 2.0, // finite: every outage ends within the run
        max_concurrent_failures: 1,
        flap_mtbf: horizon / 1.5,
        flap_down_gbps: 2.0,
        flap_period: (horizon / 25.0).max(4.0 * iter_time),
        flap_count: 2,
    };
    let mut plan = FaultPlan::generate(&topo, &fault_cfg, horizon, seed);
    // Faults slow both arms past the horizon, so a recovery clipped off
    // the plan's end (a permanent failure) would still fall inside the
    // actual run — and a checkpoint baseline can never finish without its
    // worker. Keep the drill to transient outages; permanent loss is
    // exercised by the engine's unit tests.
    plan.faults
        .retain(|f| !matches!(f, FaultEvent::WorkerOutage { until: None, .. }));
    let timeline = plan.to_timeline();
    let outage_windows: Vec<(f64, f64)> = plan
        .faults
        .iter()
        .filter_map(|f| match f {
            FaultEvent::WorkerOutage {
                at, until: Some(u), ..
            } => Some((*at, *u)),
            _ => None,
        })
        .collect();

    // AutoPipe arm: emergency repartitions, retry policy, rollbacks. The
    // retry backoff scales with the simulated iteration time so a failed
    // emergency switch retries within the run, not after it.
    let mut cfg = chaos_cfg(&env);
    cfg.retry_base_delay_seconds = (4.0 * iter_time).max(1e-3);
    let mut ctrl = AutoPipeController::new(
        &profile,
        init.clone(),
        Scorer::Analytic,
        ArbiterMode::Threshold(0.02),
        cfg.clone(),
    )
    .expect("valid initial partition");
    let (scenario, ap_sim) = run_dynamic_scenario_traced(
        &profile,
        &topo,
        &timeline,
        init.clone(),
        Some(&mut ctrl),
        &cfg,
        n_iterations,
    )?;

    // Baseline arm: drain on failure, global-stall restart on recovery.
    // The restart pause models a checkpoint reload: two fault-free
    // iteration times (drain residue + pipeline re-fill).
    let bl_sim = run_baseline(
        &profile,
        &topo,
        &timeline,
        &init,
        &env,
        n_iterations,
        2.0 * iter_time,
        &outage_windows,
    )?;

    let ap_total = ap_sim.iterations.last().map(|r| r.finish).unwrap_or(0.0);
    let bl_total = bl_sim.iterations.last().map(|r| r.finish).unwrap_or(0.0);

    // Score each outage window: an outage only demonstrates survival if
    // it opens after the pipeline has filled, with room to spare before
    // the AutoPipe arm finishes, and lasts long enough that a healthy
    // pipeline would complete something inside it.
    let fill_time = init.in_flight as f64 * iter_time;
    let mut outages = Vec::new();
    for f in &plan.faults {
        if let FaultEvent::WorkerOutage {
            worker,
            at,
            until: Some(until),
        } = f
        {
            let scored = *at > fill_time
                && *at + 2.0 * iter_time < ap_total
                && *until - *at > 2.0 * iter_time;
            outages.push(OutageWindow {
                worker: worker.0,
                start: *at,
                end: *until,
                autopipe_units: units_in(&ap_sim.iterations, *at, (*until).min(ap_total).max(*at)),
                baseline_units: units_in(&bl_sim.iterations, *at, *until),
                scored,
            });
        }
    }
    let link_flaps = plan
        .faults
        .iter()
        .filter(|f| matches!(f, FaultEvent::LinkFlap { .. }))
        .count();

    let emergency_switches = scenario
        .journal
        .records
        .iter()
        .filter(|r| matches!(r.event, DecisionEvent::EmergencyRepartition { .. }))
        .count();
    let rollbacks = ap_sim
        .faults
        .iter()
        .chain(bl_sim.faults.iter())
        .filter(|f| matches!(f, ap_pipesim::FaultRecord::MigrationRolledBack { .. }))
        .count();
    let restarts = ap_sim
        .faults
        .iter()
        .chain(bl_sim.faults.iter())
        .filter(|f| matches!(f, ap_pipesim::FaultRecord::UnitsRestarted { .. }))
        .count();

    let survived_all_outages = outages
        .iter()
        .filter(|w| w.scored)
        .all(|w| w.autopipe_units > 0);
    let baseline_stalled = outages.iter().any(|w| w.scored && w.baseline_units == 0);

    let batch = profile.batch;
    Ok(ChaosResult {
        seed,
        n_iterations,
        horizon,
        outages,
        link_flaps,
        autopipe: speed_series(&ap_sim.iterations, batch),
        baseline: speed_series(&bl_sim.iterations, batch),
        mean: (
            ap_sim.iterations.len() as f64 * batch as f64 / ap_total.max(1e-12),
            bl_sim.iterations.len() as f64 * batch as f64 / bl_total.max(1e-12),
        ),
        total_seconds: (ap_total, bl_total),
        emergency_switches,
        rollbacks,
        restarts,
        survived_all_outages,
        baseline_stalled,
        journal: scenario.journal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_has_outages_and_autopipe_survives_them() {
        let r = run(30, 9).expect("chaos run");
        assert!(
            r.outages.iter().any(|w| w.scored),
            "the schedule must contain at least one scored outage: {:?}",
            r.outages
        );
        assert!(
            r.survived_all_outages,
            "AutoPipe must complete work inside every scored outage: {:?}",
            r.outages
        );
        assert!(r.emergency_switches > 0, "recovery must have repartitioned");
        assert!(r.mean.0 > 0.0 && r.mean.1 > 0.0);
    }

    #[test]
    fn chaos_is_deterministic() {
        let a = run(30, 9).expect("first run");
        let b = run(30, 9).expect("second run");
        assert_eq!(a.outages.len(), b.outages.len());
        assert_eq!(a.horizon.to_bits(), b.horizon.to_bits());
        assert_eq!(a.mean.0.to_bits(), b.mean.0.to_bits());
        assert_eq!(a.mean.1.to_bits(), b.mean.1.to_bits());
        assert_eq!(a.journal.records, b.journal.records);
    }
}
