//! Figure 12: computation time of the worker-partition modeling (§5.3).
//!
//! Wall-clock cost of deciding a partition: PipeDream's DP vs AutoPipe's
//! meta-network scoring of the full two-worker neighborhood plus one RL
//! arbiter pass. The paper reports both meta-net and RL far below the DP
//! and the total under one second.

use std::time::Instant;

use ap_cluster::{gbps, GpuId};
use ap_models::{alexnet, resnet50, vgg16, ModelProfile};
use ap_planner::{pipedream_plan, two_worker_moves, PipeDreamView};
use autopipe::arbiter::{Arbiter, ArbiterInput};
use autopipe::metrics::{
    static_metrics_from_profile, FeatureEncoder, ProfilingMetrics, DYNAMIC_DIM,
};
use autopipe::{MetaNet, MetaNetConfig};

/// One model's partition-modeling costs.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Model name.
    pub model: String,
    /// PipeDream's DP, seconds.
    pub dp_seconds: f64,
    /// Meta-network scoring of the whole O(L^2) neighborhood, seconds.
    pub meta_net_seconds: f64,
    /// One RL arbiter decision, seconds.
    pub rl_seconds: f64,
}

/// Time the three planners on one model.
pub fn measure(profile: &ModelProfile, net: &MetaNet, arbiter: &Arbiter) -> OverheadRow {
    let gpus: Vec<GpuId> = (0..10).map(GpuId).collect();
    let view = PipeDreamView {
        bandwidth: gbps(25.0),
        gpu_flops: 9.3e12,
    };

    let t0 = Instant::now();
    let plan = pipedream_plan(profile, &gpus, view);
    let dp_seconds = t0.elapsed().as_secs_f64();

    // Meta-net: score every two-worker move of the DP plan on the
    // production path — the history is encoded once, static metrics are
    // computed once per worker count, and the candidates fan out over the
    // in-tree thread pool.
    let encoder = FeatureEncoder;
    let dyn_seq: Vec<Vec<f64>> = (0..net.config().seq_len)
        .map(|_| vec![0.5; DYNAMIC_DIM])
        .collect();
    let t1 = Instant::now();
    let candidates = two_worker_moves(&plan, profile.n_layers());
    let h = net.encode_history(&dyn_seq);
    let mut static_by_workers: Vec<(usize, ProfilingMetrics)> = Vec::new();
    for (_, cand) in &candidates {
        let n = cand.n_workers();
        if !static_by_workers.iter().any(|&(k, _)| k == n) {
            static_by_workers.push((n, static_metrics_from_profile(profile, n)));
        }
    }
    let best = ap_par::map(candidates, |(_, cand)| {
        let m = &static_by_workers
            .iter()
            .find(|&&(k, _)| k == cand.n_workers())
            .expect("metrics precomputed for every worker count")
            .1;
        let stat = encoder.encode_static(m, &cand);
        net.predict_from_encoding(&h, &stat)
    })
    .into_iter()
    .fold(f64::NEG_INFINITY, f64::max);
    let meta_net_seconds = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let _ = arbiter.decide(&ArbiterInput {
        current_speed: 100.0,
        candidate_speed: best.exp(),
        switch_cost: 1.0,
        iteration_time: 0.5,
        horizon_iterations: 100.0,
        mean_bandwidth_norm: 0.25,
    });
    let rl_seconds = t2.elapsed().as_secs_f64();

    OverheadRow {
        model: profile.name.clone(),
        dp_seconds,
        meta_net_seconds,
        rl_seconds,
    }
}

/// Figure 12: AlexNet, ResNet50, VGG16.
pub fn fig12() -> Vec<OverheadRow> {
    let net = MetaNet::new(MetaNetConfig::default());
    let arbiter = Arbiter::new(3);
    [alexnet(), resnet50(), vgg16()]
        .iter()
        .map(|m| measure(&ModelProfile::of(m), &net, &arbiter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_sub_second() {
        for row in fig12() {
            assert!(row.dp_seconds < 1.0, "{row:?}");
            assert!(
                row.meta_net_seconds + row.rl_seconds < 1.0,
                "paper: total worker-partition calculation under 1 s; {row:?}"
            );
        }
    }

    #[test]
    fn rl_pass_is_cheapest() {
        for row in fig12() {
            assert!(row.rl_seconds <= row.meta_net_seconds, "{row:?}");
        }
    }
}
