//! Multi-job deployment (§1's closing claim): total tenancy throughput of
//! stale one-shot plans vs a coordinated AutoPipe tenancy.

use ap_cluster::gpu::GpuKind;
use ap_cluster::{gbps, ClusterTopology, GpuId};
use ap_models::{bert_n, resnet50, vgg16, ModelProfile};
use ap_planner::{pipedream_plan, PipeDreamView};
use autopipe::multi_job::{best_response_rounds, evaluate, JobSpec, MultiJobEnv};

/// One tenancy configuration's outcome.
#[derive(Debug, Clone)]
pub struct MultiJobRow {
    /// Tenancy label.
    pub tenancy: String,
    /// Per-job throughputs (samples/sec) in job order.
    pub per_job: Vec<f64>,
    /// Total.
    pub total: f64,
    /// Plan changes the adaptation applied.
    pub changes: usize,
}

fn tenancy(adaptive: bool) -> Vec<JobSpec> {
    let mk = |model: ap_models::ModelDesc, gpus: Vec<GpuId>| {
        let profile = ModelProfile::of(&model);
        let partition = pipedream_plan(
            &profile,
            &gpus,
            PipeDreamView {
                bandwidth: gbps(100.0),
                gpu_flops: GpuKind::P100.peak_flops(),
            },
        );
        JobSpec {
            profile,
            partition,
            adaptive,
        }
    };
    // Overlapping gang-scheduled footprints: contention is heterogeneous.
    vec![
        mk(resnet50(), (0..6).map(GpuId).collect()),
        mk(vgg16(), (4..10).map(GpuId).collect()),
        mk(bert_n(12), (0..10).map(GpuId).collect()),
    ]
}

/// Run the comparison: static stale plans vs coordinated AutoPipe.
pub fn run() -> Vec<MultiJobRow> {
    let topo = ClusterTopology::single_switch(5, 2, GpuKind::P100, 25.0);
    let env = MultiJobEnv::default();

    let static_jobs = tenancy(false);
    let before = evaluate(&topo, &static_jobs, &env).expect("static tenancy");

    let mut adaptive = tenancy(true);
    let changes = best_response_rounds(&topo, &mut adaptive, &env, 4).expect("best response");
    let after = evaluate(&topo, &adaptive, &env).expect("adaptive tenancy");

    vec![
        MultiJobRow {
            tenancy: "static PipeDream x3".into(),
            per_job: before.per_job,
            total: before.total,
            changes: 0,
        },
        MultiJobRow {
            tenancy: "AutoPipe x3 (coordinated)".into(),
            per_job: after.per_job,
            total: after.total,
            changes,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinated_tenancy_improves_total() {
        let rows = run();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].total > rows[0].total * 1.02,
            "expected a visible tenancy gain: {:.1} -> {:.1}",
            rows[0].total,
            rows[1].total
        );
        assert!(rows[1].changes >= 1);
    }
}
